//! Dense-table vs reference-path differential suite (DESIGN.md §16).
//!
//! The hot paths of the serving stack were rewritten from
//! `BTreeMap<ExpertId, _>` / `BTreeMap<usize, _>` onto flat dense-index
//! tables (`DenseIdSet` / `DenseIdMap`, the cache's dense residency
//! index, the predictor's `Vec`-backed element table). Two reference
//! paths were deliberately retained:
//!
//! * `IndexMode::Reference` on `EngineConfig` — the expert cache's
//!   original `BTreeMap<ExpertId, u32>` arena index, and
//! * `FmoePredictor::with_index_mode(IndexMode::Reference)` — the
//!   original `BTreeMap<usize, ElementState>` per-element table.
//!
//! This suite replays the golden online scenario for the paper lineup's
//! baselines plus fMoE on both paths with identical seeds and asserts
//! **byte-identical** output at every observable surface: the rendered
//! `OnlineReport`, the execution timeline, and the one-line-per-event
//! trace text. Any divergence — an iteration-order change, a dropped
//! entry, a different victim choice — shows up as a specific event diff,
//! in the same spirit as the arena-cache differential oracles of the
//! cache crate. CI runs this in release mode.

use fmoe_bench::{CellConfig, System};
use fmoe_model::presets;
use fmoe_serving::{serve, ExpertPredictor, IndexMode, ServeOptions};
use fmoe_trace::TraceSink;
use fmoe_workload::{AzureTraceSpec, DatasetSpec};

/// Same tiny cell as the golden-trace suite: small model, tight budget
/// (so prefetching and eviction both happen), short decode.
fn cell(system: System, mode: IndexMode) -> CellConfig {
    let mut cell = CellConfig::new(presets::tiny_test_model(), DatasetSpec::tiny_test(), system);
    cell.total_prompts = 20;
    cell.max_decode = 3;
    cell.max_history_iterations = 3;
    cell.cache_budget_bytes = cell.model.expert_bytes() * 8;
    cell.index_mode = mode;
    cell
}

/// Runs the golden online scenario and renders every observable surface.
/// Under `IndexMode::Reference` the engine uses the `BTreeMap` residency
/// index and (for fMoE) the predictor uses the `BTreeMap` element table.
fn surfaces(system: System, mode: IndexMode) -> (String, String, String) {
    let cell = cell(system, mode);
    let gate = cell.gate();
    let (history, _) = cell.split();
    let mut predictor: Box<dyn ExpertPredictor> =
        if system == System::Fmoe && mode == IndexMode::Reference {
            Box::new(cell.fmoe_predictor(&gate, &history).with_index_mode(mode))
        } else {
            cell.predictor(&gate, &history)
        };
    let mut engine = cell.engine(gate);
    engine.set_trace_sink(TraceSink::recording(1 << 16));
    engine.set_timeline_enabled(true);
    let mut spec = AzureTraceSpec::paper_online_serving(DatasetSpec::tiny_test());
    spec.num_requests = 3;
    let events = spec.generate();
    let report = serve(
        &mut engine,
        &events,
        predictor.as_mut(),
        &ServeOptions::fcfs(),
    )
    .expect("fcfs serving is infallible");
    assert_eq!(report.results.len(), 3, "scenario serves every request");
    assert_eq!(engine.trace_sink().dropped_records(), 0);
    let timeline = engine
        .take_timeline()
        .iter()
        .map(|entry| format!("{entry:?}\n"))
        .collect::<String>();
    let trace = fmoe_trace::events_text(&engine.trace_sink().take_records());
    (format!("{report:#?}"), timeline, trace)
}

fn assert_identical(system: System) {
    let (report_dense, timeline_dense, trace_dense) = surfaces(system, IndexMode::Dense);
    let (report_ref, timeline_ref, trace_ref) = surfaces(system, IndexMode::Reference);
    assert!(!trace_dense.is_empty(), "{}: empty trace", system.name());
    assert_eq!(
        report_dense,
        report_ref,
        "{}: OnlineReport diverges between dense and reference paths",
        system.name()
    );
    assert_eq!(
        timeline_dense,
        timeline_ref,
        "{}: execution timeline diverges between dense and reference paths",
        system.name()
    );
    assert_eq!(
        trace_dense,
        trace_ref,
        "{}: trace text diverges between dense and reference paths",
        system.name()
    );
}

#[test]
fn dense_matches_reference_fmoe() {
    assert_identical(System::Fmoe);
}

#[test]
fn dense_matches_reference_moe_infinity() {
    assert_identical(System::MoeInfinity);
}

#[test]
fn dense_matches_reference_promoe() {
    assert_identical(System::ProMoe);
}

#[test]
fn dense_matches_reference_oracle() {
    assert_identical(System::Oracle);
}

/// The index mode itself must be observable only in performance:
/// constructing twice in-process yields identical surfaces (guards
/// against hidden state leaking across constructions).
#[test]
fn reference_path_is_reproducible_in_process() {
    let a = surfaces(System::Fmoe, IndexMode::Reference);
    let b = surfaces(System::Fmoe, IndexMode::Reference);
    assert_eq!(a, b);
}
