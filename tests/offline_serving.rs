//! Cross-crate integration: the full offline pipeline — dataset → split →
//! history population → engine serving — for fMoE and the baselines, on a
//! scaled-down model so the suite stays fast.

use fmoe::predictor::HistoryRequest;
use fmoe::{FmoeConfig, FmoePredictor};
use fmoe_baselines::{DeepSpeedPredictor, MixtralOffloadingPredictor, OraclePredictor};
use fmoe_cache::{FmoePriorityPolicy, LruPolicy};
use fmoe_memsim::Topology;
use fmoe_model::{presets, GateParams, GateSimulator, GpuSpec, ModelConfig};
use fmoe_serving::{
    AggregateMetrics, EngineConfig, ExpertPredictor, RequestMetrics, ServingEngine,
};
use fmoe_workload::{split, DatasetSpec, Prompt};

fn model() -> ModelConfig {
    presets::small_test_model()
}

fn gate() -> GateSimulator {
    GateSimulator::new(model(), GateParams::for_model(&model()))
}

fn engine(slots_total: u64, policy_fmoe: bool) -> ServingEngine {
    let m = model();
    let policy: Box<dyn fmoe_cache::EvictionPolicy> = if policy_fmoe {
        Box::new(FmoePriorityPolicy::new().with_neutral_probability(1.0 / 8.0))
    } else {
        Box::new(LruPolicy::new())
    };
    let mut topo = Topology::paper_testbed();
    topo.num_gpus = 2;
    ServingEngine::new(
        gate(),
        GpuSpec::rtx_3090(),
        topo,
        policy,
        EngineConfig {
            cache_budget_bytes: m.expert_bytes() * slots_total,
            preload_all: false,
            max_decode_iterations: Some(10),
            context_collection_ns: 10_000,
            framework_overhead_per_layer_ns: 50_000,
            ..EngineConfig::paper_default()
        },
    )
}

fn workload() -> (Vec<Prompt>, Vec<Prompt>) {
    let prompts = DatasetSpec::tiny_test().prompts(60);
    split::paper_split(&prompts)
}

fn run(
    predictor: &mut dyn ExpertPredictor,
    slots: u64,
    fmoe_policy: bool,
) -> (AggregateMetrics, Vec<RequestMetrics>) {
    let (history, test) = workload();
    let mut engine = engine(slots, fmoe_policy);
    // Warm up with a couple of history prompts.
    for p in history.iter().take(2) {
        let _ = engine.serve_request(*p, predictor);
    }
    let metrics: Vec<RequestMetrics> = test
        .iter()
        .take(10)
        .map(|p| engine.serve_request(*p, predictor))
        .collect();
    (AggregateMetrics::from_requests(&metrics), metrics)
}

fn fmoe_predictor() -> FmoePredictor {
    let m = model();
    let mut p = FmoePredictor::new(m.clone(), FmoeConfig::for_model(&m));
    let (history, _) = workload();
    let hist: Vec<HistoryRequest> = history
        .iter()
        .map(|pr| HistoryRequest {
            routing: pr.routing,
            prompt_tokens: pr.prompt_tokens,
            iterations: pr.iterations().min(5),
        })
        .collect();
    p.populate_from_history(&gate(), &hist, 5);
    p
}

#[test]
fn fmoe_beats_no_prefetch_under_pressure() {
    // Budget: half the experts (32 of 64).
    let (fmoe_agg, _) = run(&mut fmoe_predictor(), 32, true);
    let (base_agg, _) = run(&mut DeepSpeedPredictor::new(), 32, false);
    assert!(
        fmoe_agg.hit_rate > base_agg.hit_rate + 0.1,
        "fMoE hit {} vs DeepSpeed {}",
        fmoe_agg.hit_rate,
        base_agg.hit_rate
    );
    assert!(
        fmoe_agg.mean_tpot_ms < base_agg.mean_tpot_ms,
        "fMoE TPOT {} vs DeepSpeed {}",
        fmoe_agg.mean_tpot_ms,
        base_agg.mean_tpot_ms
    );
}

#[test]
fn oracle_bounds_fmoe() {
    let (fmoe_agg, _) = run(&mut fmoe_predictor(), 32, true);
    let mut oracle = OraclePredictor::new(gate(), 3);
    let (oracle_agg, _) = run(&mut oracle, 32, false);
    assert!(
        oracle_agg.hit_rate >= fmoe_agg.hit_rate - 0.02,
        "oracle {} should not lose to fMoE {}",
        oracle_agg.hit_rate,
        fmoe_agg.hit_rate
    );
    assert!(oracle_agg.mean_tpot_ms <= fmoe_agg.mean_tpot_ms * 1.05);
}

#[test]
fn speculation_blocking_trades_latency_for_hits() {
    let m = model();
    let mut spec = MixtralOffloadingPredictor::new(&m);
    let (spec_agg, _) = run(&mut spec, 16, false);
    let (base_agg, _) = run(&mut DeepSpeedPredictor::new(), 16, false);
    // The blocking speculative loader achieves a much higher hit rate
    // than the expert-agnostic streamer at the same tight budget.
    assert!(
        spec_agg.hit_rate > base_agg.hit_rate,
        "speculation hit {} vs streaming {}",
        spec_agg.hit_rate,
        base_agg.hit_rate
    );
}

#[test]
fn larger_cache_never_hurts_fmoe() {
    let (small, _) = run(&mut fmoe_predictor(), 16, true);
    let (large, _) = run(&mut fmoe_predictor(), 64, true);
    assert!(large.hit_rate >= small.hit_rate - 0.02);
    assert!(large.mean_tpot_ms <= small.mean_tpot_ms * 1.05);
}

#[test]
fn store_grows_during_serving_and_respects_capacity() {
    let mut p = fmoe_predictor();
    let before = p.store_len();
    let (_, metrics) = run(&mut p, 32, true);
    assert!(!metrics.is_empty());
    assert!(p.store_len() >= before.min(p.config().store_capacity));
    assert!(p.store_len() <= p.config().store_capacity);
}

#[test]
fn results_are_reproducible_end_to_end() {
    let (a, am) = run(&mut fmoe_predictor(), 32, true);
    let (b, bm) = run(&mut fmoe_predictor(), 32, true);
    assert_eq!(am, bm);
    assert!((a.mean_ttft_ms - b.mean_ttft_ms).abs() < 1e-12);
    assert!((a.hit_rate - b.hit_rate).abs() < 1e-12);
}
