//! Determinism contract (DESIGN.md §10): identical inputs must yield
//! byte-identical results, run to run, within one process and across
//! processes.
//!
//! These tests run each serving path twice from identically-constructed
//! state and compare the *rendered* results byte for byte. `Debug`
//! rendering covers every field — timing, metrics, shed lists — so any
//! nondeterminism (hash-order iteration, unseeded randomness, wall-clock
//! leakage) shows up as a string mismatch, not a flaky tolerance.

use fmoe::{FmoeConfig, FmoePredictor};
use fmoe_cache::FmoePriorityPolicy;
use fmoe_memsim::{FaultSchedule, Topology};
use fmoe_model::{presets, GateParams, GateSimulator, GpuSpec};
use fmoe_serving::{serve, EngineConfig, ServeOptions, ServingEngine, SloAction, SloPolicy};
use fmoe_workload::{AzureTraceSpec, DatasetSpec, TraceEvent};

fn engine() -> ServingEngine {
    let m = presets::small_test_model();
    let gate = GateSimulator::new(m.clone(), GateParams::for_model(&m));
    let mut topo = Topology::paper_testbed();
    topo.num_gpus = 2;
    ServingEngine::new(
        gate,
        GpuSpec::rtx_3090(),
        topo,
        Box::new(FmoePriorityPolicy::new()),
        EngineConfig {
            cache_budget_bytes: m.expert_bytes() * 24,
            preload_all: false,
            max_decode_iterations: Some(6),
            context_collection_ns: 10_000,
            framework_overhead_per_layer_ns: 50_000,
            ..EngineConfig::paper_default()
        },
    )
}

fn predictor() -> FmoePredictor {
    let m = presets::small_test_model();
    FmoePredictor::new(m.clone(), FmoeConfig::for_model(&m))
}

fn trace(n: u64) -> Vec<TraceEvent> {
    let mut spec = AzureTraceSpec::paper_online_serving(DatasetSpec::tiny_test());
    spec.num_requests = n;
    spec.generate()
}

#[test]
fn serve_fcfs_is_byte_identical_across_runs() {
    let events = trace(10);
    let run = || {
        let mut eng = engine();
        let mut pred = predictor();
        let results = serve(&mut eng, &events, &mut pred, &ServeOptions::fcfs())
            .expect("fcfs serving is infallible")
            .results;
        format!("{results:?}")
    };
    let first = run();
    let second = run();
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "serve must be byte-identical for identical inputs"
    );
}

#[test]
fn serve_with_slo_and_inert_faults_is_byte_identical() {
    let events = trace(10);
    let slo = SloPolicy {
        max_queueing_ns: 2_000_000,
        action: SloAction::Degrade,
    };
    let run = |faults: Option<FaultSchedule>| {
        let mut eng = engine();
        if let Some(schedule) = faults {
            eng.set_fault_schedule(schedule);
        }
        let mut pred = predictor();
        let report = serve(
            &mut eng,
            &events,
            &mut pred,
            &ServeOptions::fcfs().with_slo(slo),
        )
        .expect("fcfs serving is infallible");
        format!("{report:?}")
    };
    let plain = run(None);
    let repeat = run(None);
    assert_eq!(plain, repeat, "SLO serving must be run-to-run identical");

    // An inert schedule (zero intensity) is the documented identity:
    // installing it must not perturb a single byte of the output.
    let inert = FaultSchedule::synthetic(7, 0.0, 1_000_000_000, 2);
    assert!(inert.is_inert());
    let faulted = run(Some(inert));
    assert_eq!(
        plain, faulted,
        "an inert fault schedule must leave the run byte-identical"
    );
}

#[test]
fn generated_traces_are_deterministic() {
    let a = format!("{:?}", trace(16));
    let b = format!("{:?}", trace(16));
    assert_eq!(a, b, "trace generation must be seed-deterministic");
}

/// A disabled trace sink is the zero-cost identity: serving output with
/// no sink installed, with an explicitly disabled sink, and with a
/// recording sink must all be byte-identical.
#[test]
fn trace_sink_state_never_perturbs_serving_output() {
    let events = trace(10);
    let run = |sink: Option<fmoe_trace::TraceSink>| {
        let mut eng = engine();
        if let Some(sink) = sink {
            eng.set_trace_sink(sink);
        }
        let mut pred = predictor();
        let results = serve(&mut eng, &events, &mut pred, &ServeOptions::fcfs())
            .expect("fcfs serving is infallible")
            .results;
        format!("{results:?}")
    };
    let bare = run(None);
    let disabled = run(Some(fmoe_trace::TraceSink::disabled()));
    let recording = run(Some(fmoe_trace::TraceSink::recording(1 << 16)));
    assert_eq!(bare, disabled, "a disabled sink must be a strict no-op");
    assert_eq!(
        bare, recording,
        "recording is observation only: it must not move a single event"
    );
}

/// With tracing enabled, the *exports* themselves are part of the
/// determinism contract: two identically-seeded runs must produce
/// byte-identical Chrome-trace JSON, golden-trace text, and metrics CSV.
#[test]
fn enabled_tracing_exports_are_byte_identical_across_runs() {
    let events = trace(10);
    let slo = SloPolicy {
        max_queueing_ns: 2_000_000,
        action: SloAction::Degrade,
    };
    let run = || {
        let mut eng = engine();
        eng.set_trace_sink(fmoe_trace::TraceSink::recording(1 << 16));
        let mut pred = predictor();
        let _ = serve(
            &mut eng,
            &events,
            &mut pred,
            &ServeOptions::fcfs().with_slo(slo),
        )
        .expect("fcfs serving is infallible");
        let records = eng.trace_sink().take_records();
        let metrics = eng.trace_sink().metrics_snapshot();
        (
            fmoe_trace::chrome_trace_json(&records),
            fmoe_trace::events_text(&records),
            metrics.to_csv(),
        )
    };
    let (json_a, text_a, csv_a) = run();
    let (json_b, text_b, csv_b) = run();
    assert!(!text_a.is_empty(), "the trace must capture the run");
    assert_eq!(json_a, json_b, "Chrome-trace export must be deterministic");
    assert_eq!(text_a, text_b, "events text must be deterministic");
    assert_eq!(csv_a, csv_b, "metrics CSV must be deterministic");
    fmoe_trace::json::validate(&json_a).expect("Chrome-trace export is valid JSON");
}
