//! Fast, scaled-down assertions of the paper's qualitative claims — the
//! shapes the full experiment binaries reproduce at scale. These run on
//! the small test model so CI catches a regression in any claim within
//! seconds.

use fmoe::predictor::HistoryRequest;
use fmoe::selection::select_experts;
use fmoe::{FmoeConfig, FmoePredictor};
use fmoe_baselines::moe_infinity::EamHistoryRequest;
use fmoe_baselines::MoeInfinityPredictor;
use fmoe_bench::harness::coverage_probe;
use fmoe_model::gate::TokenSpan;
use fmoe_model::{presets, GateParams, GateSimulator, ModelConfig};
use fmoe_stats::shannon_entropy_of_counts;
use fmoe_workload::{split, DatasetSpec, Prompt};

fn model() -> ModelConfig {
    presets::small_test_model()
}

fn gate() -> GateSimulator {
    GateSimulator::new(model(), GateParams::for_model(&model()))
}

fn workload() -> (Vec<Prompt>, Vec<Prompt>) {
    let prompts = DatasetSpec::tiny_test().prompts(80);
    let (h, t) = split::paper_split(&prompts);
    (h, t.into_iter().take(8).collect())
}

/// Paper §2.4 / Fig. 3: request-level aggregation has far higher entropy
/// (lower predictability) than iteration-level patterns.
#[test]
fn coarse_patterns_are_less_predictable_than_fine() {
    let g = gate();
    let j = model().experts_per_layer as usize;
    let mut coarse = 0.0;
    let mut fine = 0.0;
    let mut n = 0.0;
    for p in workload().1 {
        for layer in 0..model().num_layers {
            let mut agg = vec![0.0; j];
            let mut fine_acc = 0.0;
            let iters = p.iterations().min(12);
            for iter in 0..iters {
                let span = if iter == 0 {
                    TokenSpan::prefill(p.prompt_tokens)
                } else {
                    TokenSpan::single(p.prompt_tokens + iter - 1)
                };
                let mut one = vec![0.0; j];
                for s in g.activated_slots(p.routing, iter, layer, span) {
                    one[s as usize] += 1.0;
                    agg[s as usize] += 1.0;
                }
                fine_acc += shannon_entropy_of_counts(&one);
            }
            coarse += shannon_entropy_of_counts(&agg);
            fine += fine_acc / iters as f64;
            n += 1.0;
        }
    }
    assert!(
        coarse / n > fine / n + 0.5,
        "coarse entropy {} should clearly exceed fine {}",
        coarse / n,
        fine / n
    );
}

/// Paper Fig. 4 / Fig. 12a: fine-grained map matching predicts activations
/// far better than coarse request-level tracking, at equal budget.
#[test]
fn fine_grained_prediction_beats_coarse() {
    let g = gate();
    let (history, test) = workload();

    let mut config = FmoeConfig::for_model(&model());
    config.prefetch_window = 1;
    config.use_dynamic_threshold = false;
    let mut fine = FmoePredictor::new(model(), config);
    fine.populate_from_history(
        &g,
        &history
            .iter()
            .map(|p| HistoryRequest {
                routing: p.routing,
                prompt_tokens: p.prompt_tokens,
                iterations: p.iterations().min(5),
            })
            .collect::<Vec<_>>(),
        5,
    );

    let mut coarse = MoeInfinityPredictor::new(&model()).with_window(1);
    coarse.populate_from_history(
        &g,
        &history
            .iter()
            .map(|p| EamHistoryRequest {
                routing: p.routing,
                prompt_tokens: p.prompt_tokens,
                iterations: p.iterations().min(5),
            })
            .collect::<Vec<_>>(),
        5,
    );

    let fine_cov = coverage_probe(&g, &mut fine, &test, 8).coverage;
    let coarse_cov = coverage_probe(&g, &mut coarse, &test, 8).coverage;
    assert!(
        fine_cov > coarse_cov + 0.15,
        "fine {fine_cov} vs coarse {coarse_cov}"
    );
}

/// Paper Fig. 4: prediction quality decays gracefully with distance.
#[test]
fn coverage_decays_with_prefetch_distance() {
    let g = gate();
    let (history, test) = workload();
    let hist: Vec<HistoryRequest> = history
        .iter()
        .map(|p| HistoryRequest {
            routing: p.routing,
            prompt_tokens: p.prompt_tokens,
            iterations: p.iterations().min(5),
        })
        .collect();
    let at = |d: u32| {
        let mut config = FmoeConfig::for_model(&model()).with_distance(d);
        config.prefetch_window = 1;
        config.use_dynamic_threshold = false;
        let mut p = FmoePredictor::new(model(), config);
        p.populate_from_history(&g, &hist, 5);
        coverage_probe(&g, &mut p, &test, 8).coverage
    };
    let near = at(1);
    let far = at(6);
    assert!(near > far, "coverage d=1 {near} should exceed d=6 {far}");
    assert!(near > 0.5, "near coverage too low: {near}");
}

/// Paper §4.3: the dynamic threshold prefetches more experts when the
/// match is dubious and fewer when it is confident.
#[test]
fn dynamic_threshold_is_similarity_aware() {
    let dist = [0.4, 0.3, 0.12, 0.08, 0.05, 0.03, 0.015, 0.005];
    let confident = select_experts(&dist, 0.9, 1, 8).len();
    let dubious = select_experts(&dist, 0.1, 1, 8).len();
    assert!(
        dubious > confident,
        "dubious {dubious} <= confident {confident}"
    );
}

/// Paper §6.7: fMoE's synchronous per-iteration overhead stays a small
/// fraction of the iteration.
#[test]
fn sync_overhead_is_negligible() {
    use fmoe_bench::harness::{CellConfig, System};
    let mut cell = CellConfig::new(
        presets::phi35_moe(),
        DatasetSpec::lmsys_chat(),
        System::Fmoe,
    );
    cell.test_requests = 3;
    cell.max_decode = 8;
    let out = cell.run_offline();
    let b = out.breakdown;
    let frac = b.sync_overhead_per_iteration_ms() / b.per_iteration_ms(b.iteration_total_ns);
    assert!(frac < 0.05, "sync overhead fraction {frac}");
}

/// Paper Fig. 16: the map store's memory footprint stays trivial.
#[test]
fn store_memory_stays_small() {
    use fmoe::store::ExpertMapStore;
    for m in presets::evaluation_models() {
        let store = ExpertMapStore::new(
            32_000,
            m.num_layers as usize,
            m.experts_per_layer as usize,
            3,
        );
        let emb = GateParams::for_model(&m).embedding_dim as usize;
        let mb = store.memory_bytes_at_capacity(emb) as f64 / 1e6;
        assert!(mb < 200.0, "{}: {mb} MB at 32K maps", m.name);
    }
}
