//! Serving-API surface suite.
//!
//! The unified [`fmoe_serving::serve`] entry point is the only way to
//! drive trace-driven serving (the four legacy `serve_trace*` wrappers
//! are gone), and `EngineBuilder` is the only sugared way to assemble an
//! engine. This suite pins that surface: the builder must assemble the
//! exact engine the setters do, the `IndexMode` switch must be
//! observable only in performance, and expert parallelism must be inert
//! unless explicitly enabled on a multi-GPU topology.

use fmoe::{FmoeConfig, FmoePredictor};
use fmoe_cache::FmoePriorityPolicy;
use fmoe_memsim::Topology;
use fmoe_model::{presets, GateParams, GateSimulator, GpuSpec};
use fmoe_serving::{
    serve, EngineConfig, ExpertParallelConfig, IndexMode, PlacementPolicy, RoundRobinPlacement,
    ServeOptions, ServingEngine,
};
use fmoe_trace::TraceSink;
use fmoe_workload::{AzureTraceSpec, DatasetSpec, TraceEvent};

fn engine_with(config: EngineConfig, topology: Topology) -> ServingEngine {
    let m = presets::small_test_model();
    let gate = GateSimulator::new(m.clone(), GateParams::for_model(&m));
    let mut e = ServingEngine::new(
        gate,
        GpuSpec::rtx_3090(),
        topology,
        Box::new(FmoePriorityPolicy::new()),
        config,
    );
    e.set_timeline_enabled(true);
    e.set_trace_sink(TraceSink::recording(1 << 16));
    e
}

fn base_config() -> EngineConfig {
    let m = presets::small_test_model();
    EngineConfig {
        cache_budget_bytes: m.expert_bytes() * 16,
        preload_all: false,
        max_decode_iterations: Some(4),
        context_collection_ns: 10_000,
        framework_overhead_per_layer_ns: 50_000,
        ..EngineConfig::paper_default()
    }
}

fn engine() -> ServingEngine {
    engine_with(base_config(), Topology::single_gpu(8 << 30))
}

fn predictor() -> FmoePredictor {
    let m = presets::small_test_model();
    FmoePredictor::new(m.clone(), FmoeConfig::for_model(&m))
}

fn trace(n: u64) -> Vec<TraceEvent> {
    let mut spec = AzureTraceSpec::paper_online_serving(DatasetSpec::tiny_test());
    spec.num_requests = n;
    spec.generate()
}

/// Everything observable about a serving run, rendered to bytes: the
/// per-request results, the engine timeline, and the canonical trace
/// text. Equality here is the API's behavioural contract.
fn drain(engine: &mut ServingEngine, results: String) -> String {
    format!(
        "results:\n{results}\ntimeline:\n{:?}\ntrace:\n{}",
        engine.take_timeline(),
        fmoe_trace::events_text(&engine.trace_sink().take_records())
    )
}

fn fingerprint_of(mut engine: ServingEngine, events: &[TraceEvent]) -> String {
    let mut predictor = predictor();
    let report = serve(&mut engine, events, &mut predictor, &ServeOptions::fcfs())
        .expect("fcfs is infallible");
    let results = format!("{:?}", report.results);
    drain(&mut engine, results)
}

#[test]
fn builder_built_engine_matches_hand_assembled_engine() {
    let events = trace(8);
    let unified = fingerprint_of(engine(), &events);

    // Same configuration through EngineBuilder instead of the setters.
    let m = presets::small_test_model();
    let gate = GateSimulator::new(m.clone(), GateParams::for_model(&m));
    let built_engine =
        ServingEngine::builder(gate, GpuSpec::rtx_3090(), Topology::single_gpu(8 << 30))
            .policy(Box::new(FmoePriorityPolicy::new()))
            .config(base_config())
            .timeline(true)
            .trace_sink(TraceSink::recording(1 << 16))
            .build();
    let built = fingerprint_of(built_engine, &events);
    assert_eq!(
        unified, built,
        "EngineBuilder must assemble the exact engine the setters do"
    );
}

/// `IndexMode::Reference` swaps the residency-index representation
/// without changing a single observable byte.
#[test]
fn index_mode_is_observable_only_in_performance() {
    let events = trace(8);
    let dense = fingerprint_of(engine(), &events);
    let reference = fingerprint_of(
        engine_with(
            EngineConfig {
                index_mode: IndexMode::Reference,
                ..base_config()
            },
            Topology::single_gpu(8 << 30),
        ),
        &events,
    );
    assert_eq!(dense, reference, "IndexMode changed observable behaviour");
}

/// Expert parallelism on a single-GPU topology is a no-op: the config
/// may be present, but with one GPU there is nothing to shard, so the
/// run must stay byte-identical to an EP-free engine.
#[test]
fn expert_parallel_is_inert_on_single_gpu_topologies() {
    let events = trace(8);
    let plain = fingerprint_of(engine(), &events);
    let ep = fingerprint_of(
        engine_with(
            EngineConfig {
                expert_parallel: Some(ExpertParallelConfig::default()),
                ..base_config()
            },
            Topology::single_gpu(8 << 30),
        ),
        &events,
    );
    assert_eq!(plain, ep, "EP config must be inert on one GPU");
}

/// `EngineBuilder::placement_policy` is sugar for computing the
/// assignment and installing it with `set_expert_assignment`.
#[test]
fn builder_placement_policy_matches_manual_assignment() {
    let events = trace(8);
    let m = presets::small_test_model();
    let topo = Topology::builder()
        .num_gpus(4)
        .gpu_memory_bytes(8 << 30)
        .build()
        .expect("valid test topology");
    let config = EngineConfig {
        expert_parallel: Some(ExpertParallelConfig::default()),
        ..base_config()
    };

    let gate = GateSimulator::new(m.clone(), GateParams::for_model(&m));
    let via_builder = ServingEngine::builder(gate, GpuSpec::rtx_3090(), topo.clone())
        .policy(Box::new(FmoePriorityPolicy::new()))
        .config(config.clone())
        .placement_policy(&RoundRobinPlacement)
        .timeline(true)
        .trace_sink(TraceSink::recording(1 << 16))
        .build();
    let sugar = fingerprint_of(via_builder, &events);

    let mut by_hand = engine_with(config, topo.clone());
    by_hand.set_expert_assignment(RoundRobinPlacement.assign(&m, topo.num_gpus));
    let manual = fingerprint_of(by_hand, &events);

    assert_eq!(
        sugar, manual,
        "placement_policy must install exactly the policy's assignment"
    );
}
