//! Serving-API equivalence suite.
//!
//! The unified [`fmoe_serving::serve`] entry point replaced four older
//! functions (`serve_trace`, `serve_trace_with_slo`,
//! `serve_trace_continuous`, `try_serve_trace_continuous`), which remain
//! as deprecated wrappers. This suite pins the refactor: on the same
//! deterministic scenario, `serve` must produce **byte-identical**
//! results, timeline entries, and exported trace text to each legacy
//! entry point. Any divergence means the unification changed behaviour
//! rather than just the API surface.
#![allow(deprecated)]

use fmoe::{FmoeConfig, FmoePredictor};
use fmoe_cache::FmoePriorityPolicy;
use fmoe_memsim::Topology;
use fmoe_model::{presets, GateParams, GateSimulator, GpuSpec};
use fmoe_serving::{
    serve, serve_trace, serve_trace_continuous, serve_trace_with_slo, try_serve_trace_continuous,
    EngineConfig, ServeOptions, ServingEngine, SloPolicy,
};
use fmoe_trace::TraceSink;
use fmoe_workload::{AzureTraceSpec, DatasetSpec, TraceEvent};

fn engine() -> ServingEngine {
    let m = presets::small_test_model();
    let gate = GateSimulator::new(m.clone(), GateParams::for_model(&m));
    let mut e = ServingEngine::new(
        gate,
        GpuSpec::rtx_3090(),
        Topology::single_gpu(8 << 30),
        Box::new(FmoePriorityPolicy::new()),
        EngineConfig {
            cache_budget_bytes: m.expert_bytes() * 16,
            preload_all: false,
            max_decode_iterations: Some(4),
            context_collection_ns: 10_000,
            framework_overhead_per_layer_ns: 50_000,
            ..EngineConfig::paper_default()
        },
    );
    e.set_timeline_enabled(true);
    e.set_trace_sink(TraceSink::recording(1 << 16));
    e
}

fn predictor() -> FmoePredictor {
    let m = presets::small_test_model();
    FmoePredictor::new(m.clone(), FmoeConfig::for_model(&m))
}

fn trace(n: u64) -> Vec<TraceEvent> {
    let mut spec = AzureTraceSpec::paper_online_serving(DatasetSpec::tiny_test());
    spec.num_requests = n;
    spec.generate()
}

/// Everything observable about a serving run, rendered to bytes: the
/// per-request results, the engine timeline, and the canonical trace
/// text. Equality here is the refactor's contract.
fn fingerprint(run: impl FnOnce(&mut ServingEngine, &mut FmoePredictor) -> String) -> String {
    let mut engine = engine();
    let mut predictor = predictor();
    let results = run(&mut engine, &mut predictor);
    format!(
        "results:\n{results}\ntimeline:\n{:?}\ntrace:\n{}",
        engine.take_timeline(),
        fmoe_trace::events_text(&engine.trace_sink().take_records())
    )
}

#[test]
fn serve_matches_legacy_serve_trace() {
    let events = trace(10);
    let unified = fingerprint(|e, p| {
        let report = serve(e, &events, p, &ServeOptions::fcfs()).expect("fcfs is infallible");
        format!("{:?}", report.results)
    });
    let legacy = fingerprint(|e, p| format!("{:?}", serve_trace(e, &events, p)));
    assert_eq!(unified, legacy, "serve != serve_trace on the same scenario");
}

#[test]
fn serve_matches_legacy_serve_trace_with_slo() {
    // A t=0 burst against a zero-budget shed policy exercises both the
    // shed and the served paths.
    let mut events = trace(10);
    for e in &mut events {
        e.arrival_ns = 0;
    }
    for slo in [None, Some(SloPolicy::shed(0))] {
        let unified = fingerprint(|e, p| {
            let options = ServeOptions {
                slo,
                ..ServeOptions::fcfs()
            };
            let report = serve(e, &events, p, &options).expect("fcfs is infallible");
            format!("{report:?}")
        });
        let legacy = fingerprint(|e, p| format!("{:?}", serve_trace_with_slo(e, &events, p, slo)));
        assert_eq!(
            unified, legacy,
            "serve != serve_trace_with_slo (slo: {slo:?})"
        );
    }
}

#[test]
fn serve_matches_legacy_continuous_entry_points() {
    let events = trace(10);
    for slots in [1usize, 4] {
        let unified = fingerprint(|e, p| {
            let report =
                serve(e, &events, p, &ServeOptions::continuous(slots)).expect("bookkeeping holds");
            format!("{:?}", report.results)
        });
        let legacy =
            fingerprint(|e, p| format!("{:?}", serve_trace_continuous(e, &events, p, slots)));
        assert_eq!(
            unified, legacy,
            "serve != serve_trace_continuous (slots: {slots})"
        );
        let fallible = fingerprint(|e, p| {
            format!(
                "{:?}",
                try_serve_trace_continuous(e, &events, p, slots).expect("bookkeeping holds")
            )
        });
        assert_eq!(
            unified, fallible,
            "serve != try_serve_trace_continuous (slots: {slots})"
        );
    }
}

#[test]
fn builder_built_engine_matches_hand_assembled_engine() {
    let events = trace(8);
    let unified = fingerprint(|e, p| {
        let report = serve(e, &events, p, &ServeOptions::fcfs()).expect("fcfs is infallible");
        format!("{:?}", report.results)
    });

    // Same configuration through EngineBuilder instead of the setters.
    let m = presets::small_test_model();
    let gate = GateSimulator::new(m.clone(), GateParams::for_model(&m));
    let mut engine =
        ServingEngine::builder(gate, GpuSpec::rtx_3090(), Topology::single_gpu(8 << 30))
            .policy(Box::new(FmoePriorityPolicy::new()))
            .config(EngineConfig {
                cache_budget_bytes: m.expert_bytes() * 16,
                preload_all: false,
                max_decode_iterations: Some(4),
                context_collection_ns: 10_000,
                framework_overhead_per_layer_ns: 50_000,
                ..EngineConfig::paper_default()
            })
            .timeline(true)
            .trace_sink(TraceSink::recording(1 << 16))
            .build();
    let mut p = predictor();
    let report =
        serve(&mut engine, &events, &mut p, &ServeOptions::fcfs()).expect("fcfs is infallible");
    let built = format!(
        "results:\n{:?}\ntimeline:\n{:?}\ntrace:\n{}",
        report.results,
        engine.take_timeline(),
        fmoe_trace::events_text(&engine.trace_sink().take_records())
    );
    assert_eq!(
        unified, built,
        "EngineBuilder must assemble the exact engine the setters do"
    );
}
