//! Golden-trace regression suite.
//!
//! Each test replays one short, fully deterministic serving run for one
//! system, renders the captured trace in the canonical one-line-per-event
//! text format (`fmoe_trace::events_text`), and diffs it against the
//! committed golden under `tests/golden/`. Any behavioural drift in the
//! engine, transfer path, or cache shows up as a *specific event-level
//! diff* — which phase moved, on which layer, by how many nanoseconds —
//! rather than an opaque end-to-end latency change.
//!
//! To re-bless after an intentional change:
//!
//! ```text
//! FMOE_BLESS=1 cargo test --test golden_traces
//! ```
//!
//! then inspect `git diff tests/golden/` before committing.

use fmoe_bench::{CellConfig, System};
use fmoe_model::presets;
use fmoe_serving::{serve, ServeOptions};
use fmoe_trace::TraceSink;
use fmoe_workload::{AzureTraceSpec, DatasetSpec};
use std::path::PathBuf;

/// The tiny, fast cell every golden uses: small model, small budget (so
/// prefetching and eviction both happen), short decode.
fn cell(system: System) -> CellConfig {
    let mut cell = CellConfig::new(presets::tiny_test_model(), DatasetSpec::tiny_test(), system);
    cell.total_prompts = 20;
    cell.max_decode = 3;
    cell.max_history_iterations = 3;
    cell.cache_budget_bytes = cell.model.expert_bytes() * 8;
    cell
}

/// Runs the canonical golden scenario for `system` and renders the trace.
fn rendered_trace(system: System) -> String {
    let cell = cell(system);
    let gate = cell.gate();
    let (history, _) = cell.split();
    let mut predictor = cell.predictor(&gate, &history);
    let mut engine = cell.engine(gate);
    engine.set_trace_sink(TraceSink::recording(1 << 16));
    let mut spec = AzureTraceSpec::paper_online_serving(DatasetSpec::tiny_test());
    spec.num_requests = 3;
    let events = spec.generate();
    let results = serve(
        &mut engine,
        &events,
        predictor.as_mut(),
        &ServeOptions::fcfs(),
    )
    .expect("fcfs serving is infallible")
    .results;
    assert_eq!(results.len(), 3, "golden scenario serves every request");
    assert_eq!(
        engine.trace_sink().dropped_records(),
        0,
        "golden capacity must hold the whole run"
    );
    fmoe_trace::events_text(&engine.trace_sink().take_records())
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.trace"))
}

/// Diffs `actual` against the committed golden, or re-blesses it when
/// `FMOE_BLESS=1`. Mismatches report the first diverging line so the
/// failure reads as an event-level diff.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("FMOE_BLESS").as_deref() == Ok("1") {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nrun `FMOE_BLESS=1 cargo test --test golden_traces` to create it",
            path.display()
        )
    });
    if expected == actual {
        return;
    }
    let mut line = 0usize;
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            line = i + 1;
            panic!(
                "golden trace `{name}` diverges at line {line}:\n  expected: {e}\n  actual:   {a}\n\
                 re-bless with FMOE_BLESS=1 if the change is intentional"
            );
        }
    }
    line += expected.lines().count().min(actual.lines().count());
    panic!(
        "golden trace `{name}` length changed: expected {} lines, got {} (first extra line {})\n\
         re-bless with FMOE_BLESS=1 if the change is intentional",
        expected.lines().count(),
        actual.lines().count(),
        line + 1
    );
}

#[test]
fn golden_trace_fmoe() {
    check_golden("fmoe", &rendered_trace(System::Fmoe));
}

#[test]
fn golden_trace_moe_infinity() {
    check_golden("moe_infinity", &rendered_trace(System::MoeInfinity));
}

#[test]
fn golden_trace_promoe() {
    check_golden("promoe", &rendered_trace(System::ProMoe));
}

#[test]
fn golden_trace_oracle() {
    check_golden("oracle", &rendered_trace(System::Oracle));
}

/// The golden scenario itself must be reproducible, otherwise a diff
/// would mean nothing: two in-process runs render identically.
#[test]
fn golden_scenario_is_reproducible_in_process() {
    let a = rendered_trace(System::Fmoe);
    let b = rendered_trace(System::Fmoe);
    assert!(!a.is_empty());
    assert_eq!(a, b, "golden scenario must be run-to-run identical");
}
