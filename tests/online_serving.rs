//! Cross-crate integration: trace-driven online serving (the paper's
//! §6.3 setting) — empty stores, FCFS queueing, warm state across
//! requests.

use fmoe::{FmoeConfig, FmoePredictor};
use fmoe_cache::FmoePriorityPolicy;
use fmoe_memsim::Topology;
use fmoe_model::{presets, GateParams, GateSimulator, GpuSpec};
use fmoe_serving::{serve, EngineConfig, ServeOptions, ServingEngine, SloPolicy};
use fmoe_workload::{AzureTraceSpec, DatasetSpec, TraceEvent};

fn engine() -> ServingEngine {
    let m = presets::small_test_model();
    let gate = GateSimulator::new(m.clone(), GateParams::for_model(&m));
    let mut topo = Topology::paper_testbed();
    topo.num_gpus = 2;
    ServingEngine::new(
        gate,
        GpuSpec::rtx_3090(),
        topo,
        Box::new(FmoePriorityPolicy::new()),
        EngineConfig {
            cache_budget_bytes: m.expert_bytes() * 32,
            preload_all: false,
            max_decode_iterations: Some(8),
            context_collection_ns: 10_000,
            framework_overhead_per_layer_ns: 50_000,
            ..EngineConfig::paper_default()
        },
    )
}

fn trace(n: u64) -> Vec<TraceEvent> {
    let mut spec = AzureTraceSpec::paper_online_serving(DatasetSpec::tiny_test());
    spec.num_requests = n;
    spec.generate()
}

fn serve_fcfs(
    eng: &mut ServingEngine,
    t: &[TraceEvent],
    predictor: &mut FmoePredictor,
) -> Vec<fmoe_serving::OnlineResult> {
    serve(eng, t, predictor, &ServeOptions::fcfs())
        .expect("fcfs serving is infallible")
        .results
}

#[test]
fn online_serving_from_cold_store() {
    let m = presets::small_test_model();
    let mut predictor = FmoePredictor::new(m.clone(), FmoeConfig::for_model(&m));
    assert_eq!(predictor.store_len(), 0);

    let mut eng = engine();
    let results = serve_fcfs(&mut eng, &trace(12), &mut predictor);
    assert_eq!(results.len(), 12);
    // The store filled online (one map per served iteration, capped).
    assert!(
        predictor.store_len() > 12,
        "store has {} maps",
        predictor.store_len()
    );
    // FCFS invariants.
    for r in &results {
        assert!(r.start_ns >= r.arrival_ns);
        assert!(r.finish_ns > r.start_ns);
        assert!(r.request_latency_ns() >= r.metrics.total_ns);
    }
    for w in results.windows(2) {
        assert!(w[0].finish_ns <= w[1].start_ns, "FCFS ordering violated");
    }
}

#[test]
fn online_hit_rate_improves_as_history_accumulates() {
    let m = presets::small_test_model();
    let mut predictor = FmoePredictor::new(m.clone(), FmoeConfig::for_model(&m));
    let mut eng = engine();
    let results = serve_fcfs(&mut eng, &trace(24), &mut predictor);

    // Compare the first third against the last third: the growing map
    // store and warm cache should lift hit rates online.
    let third = results.len() / 3;
    let early: f64 = results[..third]
        .iter()
        .map(|r| r.metrics.hit_rate())
        .sum::<f64>()
        / third as f64;
    let late: f64 = results[results.len() - third..]
        .iter()
        .map(|r| r.metrics.hit_rate())
        .sum::<f64>()
        / third as f64;
    assert!(
        late > early,
        "late hit rate {late} should exceed early {early} as history accumulates"
    );
}

#[test]
fn queueing_latency_appears_under_bursts() {
    let m = presets::small_test_model();
    let mut predictor = FmoePredictor::new(m.clone(), FmoeConfig::for_model(&m));
    let mut eng = engine();
    // Aggressive trace: everything arrives at time zero.
    let mut t = trace(6);
    for e in &mut t {
        e.arrival_ns = 0;
    }
    let results = serve_fcfs(&mut eng, &t, &mut predictor);
    // All but the first request queue.
    assert_eq!(results[0].queueing_ns(), 0);
    for r in &results[1..] {
        assert!(r.queueing_ns() > 0);
    }
    // Queueing delays are cumulative: monotone nondecreasing.
    for w in results.windows(2) {
        assert!(w[1].queueing_ns() >= w[0].queueing_ns());
    }
}

#[test]
fn slo_report_accounts_for_every_trace_request() {
    let m = presets::small_test_model();
    // Burst at t=0 so the SLO has something to act on.
    let mut t = trace(8);
    for e in &mut t {
        e.arrival_ns = 0;
    }
    for policy in [SloPolicy::shed(0), SloPolicy::degrade(0)] {
        let mut predictor = FmoePredictor::new(m.clone(), FmoeConfig::for_model(&m));
        let mut eng = engine();
        let report = serve(
            &mut eng,
            &t,
            &mut predictor,
            &ServeOptions::fcfs().with_slo(policy),
        )
        .expect("fcfs serving is infallible");
        // Shed + served always sums to the trace length.
        assert_eq!(report.results.len() + report.shed.len(), t.len());
        // Queueing delays are non-negative by construction and shed
        // requests always violated the (zero) budget.
        for r in &report.results {
            assert!(r.start_ns >= r.arrival_ns, "queueing must be non-negative");
        }
        for s in &report.shed {
            assert!(s.queued_ns > 0);
        }
        // Served results come back in trace (arrival) order.
        for w in report.results.windows(2) {
            assert!(w[0].arrival_ns <= w[1].arrival_ns);
            assert!(w[0].finish_ns <= w[1].start_ns, "FCFS ordering violated");
        }
        // Degrade mode flags exactly the violators it served.
        let flagged = report
            .results
            .iter()
            .filter(|r| r.metrics.served_degraded)
            .count() as u64;
        assert_eq!(flagged, report.degraded_serves);
    }
}

#[test]
fn slo_disabled_report_matches_plain_fcfs_serve() {
    let m = presets::small_test_model();
    let t = trace(8);
    let mut p1 = FmoePredictor::new(m.clone(), FmoeConfig::for_model(&m));
    let mut e1 = engine();
    let plain = serve_fcfs(&mut e1, &t, &mut p1);
    let mut p2 = FmoePredictor::new(m.clone(), FmoeConfig::for_model(&m));
    let mut e2 = engine();
    let report =
        serve(&mut e2, &t, &mut p2, &ServeOptions::fcfs()).expect("fcfs serving is infallible");
    assert!(report.shed.is_empty());
    assert_eq!(report.degraded_serves, 0);
    assert_eq!(plain.len(), report.results.len());
    for (a, b) in plain.iter().zip(&report.results) {
        assert_eq!(a.request_id, b.request_id);
        assert_eq!(a.start_ns, b.start_ns);
        assert_eq!(a.finish_ns, b.finish_ns);
        assert_eq!(a.metrics, b.metrics);
    }
}

#[test]
fn idle_gaps_do_not_corrupt_state() {
    let m = presets::small_test_model();
    let mut predictor = FmoePredictor::new(m.clone(), FmoeConfig::for_model(&m));
    let mut eng = engine();
    // Trace with an enormous idle gap in the middle.
    let mut t = trace(4);
    t[2].arrival_ns += 3_600_000_000_000; // +1 hour
    t[3].arrival_ns = t[2].arrival_ns + 1;
    let results = serve_fcfs(&mut eng, &t, &mut predictor);
    assert_eq!(results.len(), 4);
    assert!(results[2].start_ns >= t[2].arrival_ns);
    assert!(results[3].finish_ns > results[2].finish_ns);
}
