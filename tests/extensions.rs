//! Integration tests for the extension features layered on top of the
//! paper's design: tunable memory budgets (SwapMoE-style) and
//! mixed-precision expert staging (Hobbit-style).

use fmoe::predictor::HistoryRequest;
use fmoe::{FmoeConfig, FmoePredictor};
use fmoe_cache::FmoePriorityPolicy;
use fmoe_memsim::Topology;
use fmoe_model::{presets, GateParams, GateSimulator, GpuSpec, ModelConfig};
use fmoe_serving::{EngineConfig, ServingEngine};
use fmoe_workload::{split, DatasetSpec, Prompt};

fn model() -> ModelConfig {
    presets::small_test_model()
}

fn engine(slots: u64, low_precision: Option<f64>) -> ServingEngine {
    let m = model();
    let gate = GateSimulator::new(m.clone(), GateParams::for_model(&m));
    let mut topo = Topology::paper_testbed();
    topo.num_gpus = 2;
    ServingEngine::new(
        gate,
        GpuSpec::rtx_3090(),
        topo,
        Box::new(FmoePriorityPolicy::new().with_neutral_probability(1.0 / 8.0)),
        EngineConfig {
            cache_budget_bytes: m.expert_bytes() * slots,
            preload_all: false,
            max_decode_iterations: Some(10),
            context_collection_ns: 10_000,
            framework_overhead_per_layer_ns: 50_000,
            low_precision_threshold: low_precision,
            ..EngineConfig::paper_default()
        },
    )
}

fn predictor() -> FmoePredictor {
    let m = model();
    let gate = GateSimulator::new(m.clone(), GateParams::for_model(&m));
    let mut p = FmoePredictor::new(m.clone(), FmoeConfig::for_model(&m));
    let (history, _) = workload();
    let hist: Vec<HistoryRequest> = history
        .iter()
        .map(|pr| HistoryRequest {
            routing: pr.routing,
            prompt_tokens: pr.prompt_tokens,
            iterations: pr.iterations().min(5),
        })
        .collect();
    p.populate_from_history(&gate, &hist, 5);
    p
}

fn workload() -> (Vec<Prompt>, Vec<Prompt>) {
    let prompts = DatasetSpec::tiny_test().prompts(50);
    split::paper_split(&prompts)
}

#[test]
fn budget_shrink_mid_serving_stays_consistent() {
    let mut eng = engine(48, None);
    let mut p = predictor();
    let (_, test) = workload();
    let m = model();

    let _ = eng.serve_request(test[0], &mut p);
    let full_budget = eng.cache_budget();
    assert_eq!(full_budget, m.expert_bytes() * 48);

    // Shrink to a quarter; evictions happen immediately.
    let evicted = eng.set_cache_budget(m.expert_bytes() * 12);
    assert!(evicted > 0, "shrinking a warm cache must evict");
    assert_eq!(eng.cache_budget(), m.expert_bytes() * 12);

    // Serving continues correctly under the tighter budget.
    let tight = eng.serve_request(test[1], &mut p);
    assert!(tight.expert_hits + tight.expert_misses > 0);

    // Growing back restores headroom; the next request performs at least
    // as well as the tight one on hit rate (same prompt replayed).
    let _ = eng.set_cache_budget(m.expert_bytes() * 48);
    let roomy = eng.serve_request(test[1], &mut p);
    assert!(roomy.hit_rate() >= tight.hit_rate() - 0.05);
}

#[test]
fn mixed_precision_produces_degraded_hits_only_when_enabled() {
    let (_, test) = workload();

    let mut lossless_engine = engine(16, None);
    let mut p1 = predictor();
    let mut lossless_degraded = 0;
    for t in test.iter().take(6) {
        lossless_degraded += lossless_engine.serve_request(*t, &mut p1).degraded_hits;
    }
    assert_eq!(lossless_degraded, 0, "lossless serving must never degrade");

    // An aggressive threshold quantizes most prefetches.
    let mut lossy_engine = engine(16, Some(0.9));
    let mut p2 = predictor();
    let mut lossy_degraded = 0;
    let mut hits = 0;
    for t in test.iter().take(6) {
        let m = lossy_engine.serve_request(*t, &mut p2);
        lossy_degraded += m.degraded_hits;
        hits += m.expert_hits;
    }
    assert!(
        lossy_degraded > 0,
        "aggressive quantization must produce degraded hits (hits={hits})"
    );
    assert!(lossy_degraded <= hits);
}

#[test]
fn mixed_precision_never_degrades_on_demand_loads() {
    // With a policy that never prefetches, every expert arrives through
    // the on-demand path, which is always full precision — no matter how
    // aggressive the quantization threshold is.
    let mut eng = engine(16, Some(0.9));
    let mut p = fmoe_serving::predictor::NoPrefetch;
    let (_, test) = workload();
    for t in test.iter().take(4) {
        let metrics = eng.serve_request(*t, &mut p);
        assert_eq!(metrics.degraded_hits, 0);
    }
}

#[test]
fn degraded_fraction_aggregates() {
    use fmoe_serving::{AggregateMetrics, RequestMetrics};
    let rm = |hits: u64, degraded: u64| RequestMetrics {
        request_id: 0,
        ttft_ns: 1,
        decode_ns: 1,
        decode_iterations: 1,
        total_ns: 2,
        expert_hits: hits,
        expert_misses: 10 - hits,
        degraded_hits: degraded,
        degraded_loads: 0,
        served_degraded: false,
    };
    let a = AggregateMetrics::from_requests(&[rm(8, 4), rm(6, 0)]);
    // 4 degraded of 20 accesses.
    assert!((a.degraded_fraction - 0.2).abs() < 1e-12);
}

#[test]
fn kv_aware_budget_squeezes_and_reclaims() {
    use fmoe_serving::predictor::NoPrefetch;
    let m = model();
    let gate = GateSimulator::new(m.clone(), GateParams::for_model(&m));
    let mut topo = Topology::paper_testbed();
    topo.num_gpus = 2;
    // Budget sized so a long context visibly eats into expert slots.
    let budget = m.expert_bytes() * 32;
    let mut eng = ServingEngine::new(
        gate,
        GpuSpec::rtx_3090(),
        topo,
        Box::new(FmoePriorityPolicy::new()),
        EngineConfig {
            cache_budget_bytes: budget,
            max_decode_iterations: Some(6),
            kv_aware_budget: true,
            ..EngineConfig::paper_default()
        },
    );
    // A very long prompt: its KV cache is worth several experts.
    let long = Prompt {
        id: 1,
        routing: fmoe_model::RequestRouting {
            cluster: 1,
            request_seed: 1,
        },
        prompt_tokens: (4 * m.expert_bytes() / m.kv_bytes_per_token()).max(1),
        output_tokens: 4,
    };
    let _ = eng.serve_request(long, &mut NoPrefetch);
    // During the long request the cache was squeezed; the engine's base
    // budget is unchanged and serving completed consistently.
    assert_eq!(eng.cache_budget(), budget);
    let short = Prompt {
        id: 2,
        routing: fmoe_model::RequestRouting {
            cluster: 1,
            request_seed: 2,
        },
        prompt_tokens: 8,
        output_tokens: 4,
    };
    let metrics = eng.serve_request(short, &mut NoPrefetch);
    assert!(metrics.expert_hits + metrics.expert_misses > 0);
}

#[test]
fn continuous_batching_with_fmoe_predictor() {
    use fmoe_serving::online::{serve, ServeOptions};
    use fmoe_workload::AzureTraceSpec;
    let m = model();
    let mut predictor = FmoePredictor::new(m.clone(), FmoeConfig::for_model(&m));
    let mut eng = engine(32, None);
    let mut spec = AzureTraceSpec::paper_online_serving(DatasetSpec::tiny_test());
    spec.num_requests = 10;
    let trace = spec.generate();
    let results = serve(
        &mut eng,
        &trace,
        &mut predictor,
        &ServeOptions::continuous(3),
    )
    .expect("continuous serving succeeds")
    .results;
    assert_eq!(results.len(), 10);
    // The store learned online despite slot reuse across requests.
    assert!(predictor.store_len() > 10);
    for r in &results {
        assert!(r.metrics.expert_hits + r.metrics.expert_misses > 0);
        assert!(r.finish_ns > r.arrival_ns);
    }
}

#[test]
fn store_persistence_round_trips_through_predictor() {
    let p1 = predictor();
    let dir = std::env::temp_dir().join("fmoe_ext_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("warm_store.fmoe");
    p1.save_store_to_path(&path).unwrap();

    let m = model();
    let mut p2 = FmoePredictor::new(m.clone(), FmoeConfig::for_model(&m));
    assert_eq!(p2.store_len(), 0);
    p2.load_store_from_path(&path).unwrap();
    assert_eq!(p2.store_len(), p1.store_len());

    // Mismatched model dimensions are rejected.
    let tiny = presets::tiny_test_model();
    let mut p3 = FmoePredictor::new(tiny.clone(), FmoeConfig::for_model(&tiny));
    assert!(p3.load_store_from_path(&path).is_err());
    std::fs::remove_file(&path).unwrap();
}
