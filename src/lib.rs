//! Umbrella crate for the fMoE reproduction workspace.
//!
//! This crate exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); it re-exports every member
//! crate so examples can use one coherent namespace:
//!
//! * [`fmoe`] — the paper's contribution: expert maps, the Expert Map
//!   Store, hybrid semantic/trajectory matching, similarity-aware
//!   prefetching.
//! * [`fmoe_model`] — model presets, the synthetic router, compute costs.
//! * [`fmoe_workload`] — datasets, splits, Azure-style traces.
//! * [`fmoe_memsim`] — virtual clock, PCIe links, transfer engine.
//! * [`fmoe_cache`] — the byte-budgeted expert cache and eviction policies.
//! * [`fmoe_serving`] — the serving-engine simulator and metrics.
//! * [`fmoe_baselines`] — DeepSpeed-Inference, Mixtral-Offloading, ProMoE,
//!   MoE-Infinity, Oracle.
//!
//! Start with `examples/quickstart.rs`.

#![forbid(unsafe_code)]

pub use fmoe;
pub use fmoe_baselines;
pub use fmoe_cache;
pub use fmoe_memsim;
pub use fmoe_model;
pub use fmoe_serving;
pub use fmoe_stats;
pub use fmoe_workload;
