#!/usr/bin/env bash
# Regenerates every table, figure, and extension experiment of the fMoE
# reproduction. Tables print to stdout and land in results/logs/; CSVs in
# results/; curve figures also render results/*.svg.
#
# Usage: scripts/reproduce_all.sh [--quick]
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK_FLAG="${1:-}"
mkdir -p results/logs

PAPER_BINS=(
  table1_models
  fig3_entropy
  fig4_prefetch_distance
  fig8_pearson
  fig9_overall
  fig9_confidence
  fig10_online_cdf
  fig11_cache_limits
  fig12_ablation
  fig13_distance_sensitivity
  fig14_sensitivity
  fig15_breakdown
  fig16_store_memory
)
EXTENSION_BINS=(
  ablation_design_choices
  ablation_placement
  ext_tunable_budget
  ext_mixed_precision
  ext_continuous_batching
  ext_conversations
  ext_kv_budget
  ext_theory_coverage
  fig12_cluster_scaling
  # Fault tolerance, both granularities: chaos_faults injects link/memory
  # faults inside one engine's transfer fabric (DESIGN.md §9);
  # fig13_cluster_chaos crashes, drains, and warm-restarts whole replicas
  # in the fleet (DESIGN.md §14).
  chaos_faults
  fig13_cluster_chaos
  # fig17_ep_all2all shards experts across a replica's GPUs and sweeps
  # placement x width x all2all backend against host offloading (§17).
  fig17_ep_all2all
)

for bin in "${PAPER_BINS[@]}" "${EXTENSION_BINS[@]}"; do
  echo "==> $bin"
  if [[ "$QUICK_FLAG" == "--quick" ]]; then
    cargo run --release -p fmoe-bench --bin "$bin" -- --quick \
      | tee "results/logs/$bin.txt"
  else
    cargo run --release -p fmoe-bench --bin "$bin" \
      | tee "results/logs/$bin.txt"
  fi
  echo
done

echo "All experiments regenerated. Tables: results/logs/, CSV: results/, SVG: results/*.svg"
