//! Capacity planning: sweep the expert-cache budget for a model and see
//! where fMoE lands on the latency–memory trade-off (the paper's Fig. 11
//! viewpoint, turned into a what-if tool).
//!
//! ```sh
//! cargo run --release --example cache_budget_planner [model] [target_tpot_ms]
//! ```

use fmoe_bench::harness::{CellConfig, System};
use fmoe_model::presets;
use fmoe_workload::DatasetSpec;

fn main() {
    let mut args = std::env::args().skip(1);
    let model = match args.next().as_deref() {
        None | Some("mixtral") => presets::mixtral_8x7b(),
        Some("qwen") => presets::qwen15_moe_a27b(),
        Some("phi") => presets::phi35_moe(),
        Some(other) => {
            eprintln!("unknown model '{other}': use mixtral | qwen | phi");
            std::process::exit(1);
        }
    };
    let target_tpot_ms: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(250.0);

    let total_gb = model.total_expert_bytes() as f64 / (1u64 << 30) as f64;
    println!(
        "{}: {:.0} GB of routed experts at fp16; target TPOT {:.0} ms",
        model.name, total_gb, target_tpot_ms
    );
    println!(
        "\n{:>9}  {:>10}  {:>9}  {:>12}",
        "cache", "TPOT", "hit rate", "meets target"
    );

    let mut needed: Option<u64> = None;
    for budget_gb in [6u64, 12, 24, 48, 72, 96] {
        let mut cell = CellConfig::new(model.clone(), DatasetSpec::lmsys_chat(), System::Fmoe);
        cell.cache_budget_bytes = budget_gb << 30;
        cell.test_requests = 8;
        cell.max_decode = 20;
        let out = cell.run_offline();
        let tpot = out.aggregate.mean_tpot_ms;
        let ok = tpot <= target_tpot_ms;
        if ok && needed.is_none() {
            needed = Some(budget_gb);
        }
        println!(
            "{:>6} GB  {:>7.1} ms  {:>8.1}%  {:>12}",
            budget_gb,
            tpot,
            out.aggregate.hit_rate * 100.0,
            if ok { "yes" } else { "no" }
        );
    }

    match needed {
        Some(gb) => println!(
            "\n=> {} GB of expert cache ({:.0}% of the full expert set) meets the target with fMoE.",
            gb,
            gb as f64 / total_gb * 100.0
        ),
        None => println!("\n=> no swept budget meets the target; lower the target or add GPUs."),
    }
}
