//! Quickstart: serve a few requests with fMoE on a simulated six-GPU
//! testbed and print the metrics the paper reports.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fmoe::predictor::HistoryRequest;
use fmoe::{FmoeConfig, FmoePredictor};
use fmoe_cache::FmoePriorityPolicy;
use fmoe_memsim::Topology;
use fmoe_model::{presets, GateParams, GateSimulator, GpuSpec};
use fmoe_serving::{EngineConfig, ServingEngine};
use fmoe_workload::{split, DatasetSpec};

fn main() {
    // 1. Pick a model (paper Table 1) and build its synthetic router.
    let model = presets::mixtral_8x7b();
    let gate = GateSimulator::new(model.clone(), GateParams::for_model(&model));
    println!(
        "model: {} — {} layers x {} experts, top-{} routing, {:.0} MB/expert",
        model.name,
        model.num_layers,
        model.experts_per_layer,
        model.top_k,
        model.expert_bytes() as f64 / 1e6
    );

    // 2. Generate an LMSYS-like workload and split it 70/30: history
    //    populates the Expert Map Store, the rest is served.
    let dataset = DatasetSpec::lmsys_chat();
    let prompts = dataset.prompts(80);
    let (history, test) = split::paper_split(&prompts);

    // 3. Build the fMoE policy and pre-populate its store.
    let mut predictor = FmoePredictor::new(model.clone(), FmoeConfig::for_model(&model));
    let hist: Vec<HistoryRequest> = history
        .iter()
        .map(|p| HistoryRequest {
            routing: p.routing,
            prompt_tokens: p.prompt_tokens,
            iterations: p.iterations().min(6),
        })
        .collect();
    predictor.populate_from_history(&gate, &hist, 6);
    println!(
        "expert map store: {} maps from {} history prompts",
        predictor.store_len(),
        history.len()
    );

    // 4. Build the serving engine: the paper's six-GPU testbed with a
    //    48 GB expert-cache budget and fMoE's probability-aware eviction.
    let engine_config = EngineConfig::paper_default().with_max_decode(32);
    let mut engine = ServingEngine::new(
        gate,
        GpuSpec::rtx_3090(),
        Topology::paper_testbed(),
        Box::new(FmoePriorityPolicy::new()),
        engine_config,
    );

    // 5. Serve the test split and report TTFT / TPOT / expert hit rate.
    println!(
        "\n{:>6}  {:>10}  {:>10}  {:>9}",
        "req", "TTFT", "TPOT", "hit rate"
    );
    for prompt in test.iter().take(8) {
        let m = engine.serve_request(*prompt, &mut predictor);
        println!(
            "{:>6}  {:>7.1} ms  {:>7.1} ms  {:>8.1}%",
            m.request_id,
            m.ttft_ns as f64 / 1e6,
            m.tpot_ns() / 1e6,
            m.hit_rate() * 100.0
        );
    }

    let stats = engine.cache_stats();
    let transfers = engine.transfer_stats();
    println!(
        "\ncache: {} hits / {} misses ({:.1}% hit rate), {} evictions",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.evictions
    );
    println!(
        "transfers: {:.1} GB prefetched, {:.1} GB on demand, {} prefetches cancelled",
        transfers.prefetch_bytes as f64 / 1e9,
        transfers.on_demand_bytes as f64 / 1e9,
        transfers.cancelled_jobs
    );
}
