//! Online serving driven by an Azure-style arrival trace (the paper's
//! §6.3 / Figure 10 scenario): the Expert Map Store starts *empty* and
//! fills as requests stream in; request latency includes queueing.
//!
//! ```sh
//! cargo run --release --example online_trace_serving
//! ```

use fmoe::{FmoeConfig, FmoePredictor};
use fmoe_cache::FmoePriorityPolicy;
use fmoe_memsim::Topology;
use fmoe_model::{presets, GateParams, GateSimulator, GpuSpec};
use fmoe_serving::{serve, EngineConfig, ServeOptions, ServingEngine};
use fmoe_stats::EmpiricalCdf;
use fmoe_workload::{AzureTraceSpec, DatasetSpec};

fn main() {
    let model = presets::phi35_moe();
    let gate = GateSimulator::new(model.clone(), GateParams::for_model(&model));

    // The paper drives 64 LMSYS prompts with Azure LLM-trace timings.
    let mut trace_spec = AzureTraceSpec::paper_online_serving(DatasetSpec::lmsys_chat());
    trace_spec.num_requests = 32;
    let trace = trace_spec.generate();
    println!(
        "replaying {} requests over {:.1} s of simulated arrivals ({})",
        trace.len(),
        trace.last().map_or(0.0, |e| e.arrival_ns as f64 / 1e9),
        model.name
    );

    // Online setting: the store starts empty and learns on the fly.
    let mut predictor = FmoePredictor::new(model.clone(), FmoeConfig::for_model(&model));
    let mut engine = ServingEngine::new(
        gate,
        GpuSpec::rtx_3090(),
        Topology::paper_testbed(),
        Box::new(FmoePriorityPolicy::new()),
        EngineConfig::paper_default().with_max_decode(24),
    );

    let results = serve(&mut engine, &trace, &mut predictor, &ServeOptions::fcfs())
        .expect("fcfs serving is infallible")
        .results;

    // The paper plots the CDF of end-to-end request latency.
    let latencies: Vec<f64> = results
        .iter()
        .map(|r| r.request_latency_ns() as f64 / 1e6)
        .collect();
    let cdf = EmpiricalCdf::new(latencies);
    println!("\nrequest latency CDF (queueing + serving):");
    for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.99] {
        println!(
            "  p{:<3} {:>9.1} ms",
            (q * 100.0) as u32,
            cdf.quantile(q).unwrap()
        );
    }

    let queued: Vec<&_> = results.iter().filter(|r| r.queueing_ns() > 0).collect();
    println!(
        "\n{} of {} requests queued behind earlier ones; store grew to {} maps online",
        queued.len(),
        results.len(),
        predictor.store_len()
    );
}
