//! Compare fMoE against every baseline the paper evaluates, on one model
//! and dataset — a single cell of the paper's Figure 9, plus the Oracle
//! and No-offload references.
//!
//! ```sh
//! cargo run --release --example serving_comparison [model]
//! ```
//!
//! `model` is one of `mixtral` (default), `qwen`, `phi`.

use fmoe_bench::harness::{CellConfig, System};
use fmoe_model::presets;
use fmoe_workload::DatasetSpec;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "mixtral".into());
    let model = match arg.as_str() {
        "mixtral" => presets::mixtral_8x7b(),
        "qwen" => presets::qwen15_moe_a27b(),
        "phi" => presets::phi35_moe(),
        other => {
            eprintln!("unknown model '{other}': use mixtral | qwen | phi");
            std::process::exit(1);
        }
    };
    println!(
        "serving {} with the LMSYS-like dataset (offline, 70/30 split)\n",
        model.name
    );
    println!(
        "{:<20}  {:>10}  {:>10}  {:>9}  {:>10}",
        "system", "TTFT", "TPOT", "hit rate", "p95 latency"
    );

    let systems = [
        System::DeepSpeed,
        System::MixtralOffloading,
        System::ProMoe,
        System::MoeInfinity,
        System::Fmoe,
        System::Oracle,
        System::NoOffload,
    ];
    for system in systems {
        let mut cell = CellConfig::new(model.clone(), DatasetSpec::lmsys_chat(), system);
        cell.test_requests = 10;
        cell.max_decode = 24;
        let out = cell.run_offline();
        println!(
            "{:<20}  {:>7.1} ms  {:>7.1} ms  {:>8.1}%  {:>7.1} ms",
            system.name(),
            out.aggregate.mean_ttft_ms,
            out.aggregate.mean_tpot_ms,
            out.aggregate.hit_rate * 100.0,
            out.aggregate.p95_total_ms
        );
    }
    println!("\nexpect: fMoE leads every real system on all three metrics;");
    println!("DeepSpeed pays expert-agnostic streaming, Mixtral-Offloading");
    println!("buys its hit rate with synchronous stalls (paper Fig. 9).");
}
