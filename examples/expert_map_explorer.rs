//! Explore the expert-map machinery directly: record maps, measure the
//! coarse- vs. fine-grained entropy gap that motivates the paper (§2.4,
//! Fig. 3), and watch semantic + trajectory search find the right history.
//!
//! ```sh
//! cargo run --release --example expert_map_explorer
//! ```

use fmoe::map::ExpertMap;
use fmoe::matcher::{Matcher, TrajectoryTracker};
use fmoe::selection::select_experts;
use fmoe::store::ExpertMapStore;
use fmoe_model::gate::TokenSpan;
use fmoe_model::{presets, GateParams, GateSimulator, RequestRouting};
use fmoe_stats::{shannon_entropy, shannon_entropy_of_counts};

fn record_map(gate: &GateSimulator, routing: RequestRouting, iter: u64) -> ExpertMap {
    let span = TokenSpan::single(32 + iter);
    let rows: Vec<Vec<f64>> = (0..gate.config().num_layers)
        .map(|l| gate.iteration_distribution(routing, iter, l, span))
        .collect();
    ExpertMap::new(rows)
}

fn main() {
    let model = presets::mixtral_8x7b();
    let gate = GateSimulator::new(model.clone(), GateParams::for_model(&model));
    let routing = RequestRouting {
        cluster: 7,
        request_seed: 1234,
    };

    // --- Part 1: the predictability gap (paper Fig. 3) ------------------
    let iters = 32;
    let j = model.experts_per_layer as usize;
    let mut fine_entropy = 0.0;
    let mut counts = vec![0.0; j];
    for i in 0..iters {
        let map = record_map(&gate, routing, i);
        fine_entropy += shannon_entropy(map.layer(8));
        for row in map.to_top_k_counts(model.top_k as usize) {
            let _ = row;
        }
        for (c, row) in counts.iter_mut().zip(map.to_top_k_counts(2)[8].iter()) {
            *c += *row as f64;
        }
    }
    fine_entropy /= iters as f64;
    let coarse_entropy = shannon_entropy_of_counts(&counts);
    println!("layer-8 entropy over {} iterations of one request:", iters);
    println!("  fine-grained  (per-iteration distributions): {fine_entropy:.2} bits");
    println!("  coarse-grained (aggregated activation counts): {coarse_entropy:.2} bits");
    println!("  uniform bound: {:.2} bits", (j as f64).log2());
    println!("  -> aggregation destroys the signal the gate emits each step\n");

    // --- Part 2: store + hybrid search ----------------------------------
    let mut store = ExpertMapStore::new(
        256,
        model.num_layers as usize,
        model.experts_per_layer as usize,
        3,
    );
    // History: 6 requests from cluster 7, 4 iterations each.
    for r in 0..6u64 {
        let hist = RequestRouting {
            cluster: 7,
            request_seed: 2000 + r,
        };
        for i in 0..4 {
            store.insert(gate.semantic_embedding(hist, i), record_map(&gate, hist, i));
        }
    }
    // Plus unrelated clutter from other clusters.
    for r in 0..6u64 {
        let other = RequestRouting {
            cluster: 40 + r,
            request_seed: 3000 + r,
        };
        store.insert(
            gate.semantic_embedding(other, 0),
            record_map(&gate, other, 0),
        );
    }
    println!(
        "store: {} maps ({} KB at fp32)",
        store.len(),
        store.memory_bytes() / 1024
    );

    // A new request from cluster 7 arrives.
    let query = RequestRouting {
        cluster: 7,
        request_seed: 9999,
    };
    let emb = gate.semantic_embedding(query, 1);
    let sem = Matcher::semantic_match(&store, &emb).expect("store not empty");
    println!(
        "\nsemantic search: best entry #{} with score {:.3}",
        sem.entry_index, sem.score
    );

    // Observe three layers, then ask the trajectory tracker.
    let mut tracker = TrajectoryTracker::new();
    tracker.reset(&store);
    let truth = record_map(&gate, query, 1);
    for l in 0..3 {
        tracker.observe_layer(&store, truth.layer(l));
    }
    let traj = tracker.best(&store).expect("observations made");
    println!(
        "trajectory search after 3 layers: entry #{} with score {:.3}",
        traj.entry_index, traj.score
    );

    // Similarity-aware selection for target layer 3 + 3 = 6.
    let matched = store.entry(traj.entry_index);
    let selection = select_experts(matched.map.layer(6), traj.score, 3, j);
    let activated = gate.activated_slots(query, 1, 6, TokenSpan::single(33));
    println!(
        "\nlayer 6: δ = {:.3} selects {} experts {:?}",
        (1.0 - traj.score).clamp(0.0, 1.0),
        selection.len(),
        selection.iter().map(|s| s.0).collect::<Vec<_>>()
    );
    println!("layer 6 truly activates slots {activated:?}");
    let covered = activated
        .iter()
        .filter(|s| selection.iter().any(|&(slot, _)| slot as u32 == **s))
        .count();
    println!(
        "coverage: {covered}/{} activated experts prefetched in advance",
        activated.len()
    );
}
