//! Replica-level fault tolerance: crash reconciliation, health-aware
//! routing, warm restart, and the inert-schedule identity.

use fmoe::predictor::HistoryRequest;
use fmoe::{FmoeConfig, FmoePredictor};
use fmoe_cluster::{AffinityConfig, Cluster, FailoverConfig, RoutingPolicy, WarmupMode};
use fmoe_faults::ReplicaFaultSchedule;
use fmoe_memsim::Topology;
use fmoe_model::{presets, GateParams, GateSimulator, GpuSpec, ModelConfig, RequestRouting};
use fmoe_serving::{EngineBuilder, EngineConfig, SloPolicy};
use fmoe_trace::{Marker, TraceSink};
use fmoe_workload::{AzureTraceSpec, DatasetSpec, TraceEvent};

fn model() -> ModelConfig {
    presets::small_test_model()
}

fn gate() -> GateSimulator {
    let m = model();
    GateSimulator::new(m.clone(), GateParams::for_model(&m))
}

fn engine_config() -> EngineConfig {
    let m = model();
    EngineConfig {
        cache_budget_bytes: m.expert_bytes() * 16,
        preload_all: false,
        max_decode_iterations: Some(4),
        context_collection_ns: 10_000,
        framework_overhead_per_layer_ns: 50_000,
        ..EngineConfig::paper_default()
    }
}

fn builder() -> EngineBuilder {
    EngineBuilder::new(gate(), GpuSpec::rtx_3090(), Topology::single_gpu(8 << 30))
        .config(engine_config())
}

fn predictor() -> FmoePredictor {
    let m = model();
    FmoePredictor::new(m.clone(), FmoeConfig::for_model(&m))
}

fn warmed_predictor(clusters: &[u64]) -> FmoePredictor {
    let mut p = predictor();
    let hist: Vec<HistoryRequest> = clusters
        .iter()
        .enumerate()
        .map(|(i, &cluster)| HistoryRequest {
            routing: RequestRouting {
                cluster,
                request_seed: 900 + i as u64,
            },
            prompt_tokens: 24,
            iterations: 3,
        })
        .collect();
    p.populate_from_history(&gate(), &hist, 3);
    p
}

fn trace(n: u64) -> Vec<TraceEvent> {
    let mut spec = AzureTraceSpec::paper_online_serving(DatasetSpec::tiny_test());
    spec.num_requests = n;
    spec.generate()
}

/// A burst of `burst` requests at t = 0 followed by `late` stragglers at
/// `late_at` — the shape every crash test needs: the burst stacks FCFS
/// queues, a crash window opens inside the backlog, and the stragglers'
/// arrivals advance virtual time past the transition instants.
fn burst_then_late(burst: usize, late: usize, late_at: u64) -> Vec<TraceEvent> {
    let mut events = trace((burst + late) as u64);
    for (i, e) in events.iter_mut().enumerate() {
        e.arrival_ns = if i < burst { 0 } else { late_at };
    }
    events
}

fn cluster(n: usize, policy: RoutingPolicy, slo: Option<SloPolicy>) -> Cluster {
    let mut c = Cluster::new(gate(), policy, slo);
    for _ in 0..n {
        c.add_replica(builder(), Box::new(predictor()));
    }
    c
}

#[test]
fn inert_schedule_is_byte_identical_to_no_schedule() {
    let events = trace(12);
    let run = |schedule: Option<ReplicaFaultSchedule>| {
        let mut c = Cluster::new(gate(), RoutingPolicy::JoinShortestQueue, None);
        for _ in 0..2 {
            c.add_replica(
                builder().trace_sink(TraceSink::recording(1 << 16)),
                Box::new(predictor()),
            );
        }
        if let Some(s) = schedule {
            c.set_replica_fault_schedule(s, FailoverConfig::default());
        }
        let report = c.dispatch(&events);
        (
            format!("{report:?}"),
            format!("{:?}", c.take_merged_trace()),
        )
    };
    let baseline = run(None);
    assert_eq!(
        baseline,
        run(Some(ReplicaFaultSchedule::none())),
        "ReplicaFaultSchedule::none() must be a perfect identity"
    );
    // A schedule built only from dropped no-op windows is inert too.
    let noop = ReplicaFaultSchedule::builder(7)
        .crash(0, 500, 500)
        .brownout(1, 100, 200, 1.0)
        .drain(0, 90, 90)
        .build();
    assert!(noop.is_inert());
    assert_eq!(baseline, run(Some(noop)));
}

#[test]
fn crash_fails_over_unfinished_work() {
    // 8 requests stack both replicas at t = 0; replica 1 crashes at
    // t = 1ms with its whole backlog unfinished; 4 stragglers at t = 1s
    // advance time past the transition.
    let events = burst_then_late(8, 4, 1_000_000_000);
    let mut c = cluster(2, RoutingPolicy::RoundRobin, None);
    c.set_replica_fault_schedule(
        ReplicaFaultSchedule::builder(1)
            .crash(1, 1_000_000, u64::MAX)
            .build(),
        FailoverConfig::default(),
    );
    let report = c.dispatch(&events);
    assert_eq!(report.failover.crashes, 1);
    assert_eq!(report.failover.recoveries, 0, "window never closes");
    assert!(
        report.failover.failed_over >= 4,
        "replica 1's backlog fails over: {:?}",
        report.failover
    );
    assert_eq!(
        report.failover.failover_completed, report.failover.failed_over,
        "every failed-over request completes on the survivor"
    );
    assert_eq!(report.failover.failover_shed, 0);
    assert_eq!(report.failover.no_healthy_shed, 0);
    assert!(report.accounting_balances(), "{:?}", report.failover);
    // Everything invalidated left replica 1; nothing it reports finishes
    // after the crash instant.
    for r in &report.replicas[1].results {
        assert!(r.finish_ns <= 1_000_000);
    }
    // The stragglers route around the dead replica.
    assert!(report.replicas[0].results.len() >= 8 + 4);
}

#[test]
fn redispatch_cap_sheds_instead_of_ping_ponging() {
    let events = burst_then_late(8, 2, 1_000_000_000);
    let mut c = cluster(2, RoutingPolicy::RoundRobin, None);
    c.set_replica_fault_schedule(
        ReplicaFaultSchedule::builder(1)
            .crash(1, 1_000_000, u64::MAX)
            .build(),
        FailoverConfig {
            max_redispatches: 0,
            warmup: WarmupMode::Cold,
        },
    );
    let report = c.dispatch(&events);
    assert_eq!(report.failover.failed_over, 0);
    assert!(
        report.failover.failover_shed >= 4,
        "cap 0 sheds every invalidated request: {:?}",
        report.failover
    );
    assert_eq!(
        report.failover.failover_shed as usize,
        report.failover_shed.len()
    );
    assert!(report.accounting_balances());
    for s in &report.failover_shed {
        assert_eq!(s.arrival_ns, 0);
        assert_eq!(s.queued_ns, 1_000_000, "shed at the crash instant");
    }
}

#[test]
fn full_outage_sheds_at_cluster_level() {
    let mut events = trace(5);
    for e in &mut events {
        e.arrival_ns = 500;
    }
    let mut c = cluster(2, RoutingPolicy::JoinShortestQueue, None);
    c.set_replica_fault_schedule(
        ReplicaFaultSchedule::builder(1)
            .crash(0, 0, u64::MAX)
            .crash(1, 0, u64::MAX)
            .build(),
        FailoverConfig::default(),
    );
    let report = c.dispatch(&events);
    assert_eq!(report.total_served(), 0);
    assert_eq!(report.failover.no_healthy_shed, 5);
    assert_eq!(report.failover_shed.len(), 5);
    assert!(report.accounting_balances());
}

#[test]
fn drain_window_diverts_without_failover() {
    // Replica 1 drains over the stragglers' arrival window: they all
    // land on replica 0, nothing is invalidated, and the cache survives.
    // One final arrival after the window closes fires the DrainEnd
    // transition (transitions are processed lazily, on arrivals).
    let mut events = trace(11);
    for (i, e) in events.iter_mut().enumerate() {
        e.arrival_ns = match i {
            0..=5 => 0,
            6..=9 => 1_000_000_000,
            _ => 3_000_000_000,
        };
    }
    let mut c = cluster(2, RoutingPolicy::RoundRobin, None);
    c.set_replica_fault_schedule(
        ReplicaFaultSchedule::builder(1)
            .drain(1, 500_000_000, 2_000_000_000)
            .build(),
        FailoverConfig::default(),
    );
    let report = c.dispatch(&events);
    assert_eq!(report.failover.drains, 1);
    assert_eq!(report.failover.crashes, 0);
    assert_eq!(report.failover.failed_over, 0);
    assert!(report.accounting_balances());
    // The burst split 3/3; the 4 mid-drain stragglers all avoided the
    // draining replica; the post-drain arrival resumed the rotation.
    assert_eq!(report.replicas[0].results.len(), 3 + 4);
    assert_eq!(
        report.replicas[1].results.len(),
        3 + 1,
        "drained queue completes and the replica rejoins"
    );
    // Drain start and end markers appear in the merged timeline even
    // with engine sinks disabled.
    let merged = c.take_merged_trace();
    let drains: Vec<u64> = merged
        .iter()
        .filter_map(|r| match r.record.event {
            fmoe_trace::TraceEvent::Instant {
                marker: Marker::ReplicaDrain,
                value,
                ..
            } => Some(value),
            _ => None,
        })
        .collect();
    assert_eq!(drains, vec![1, 0], "drain open then close");
}

#[test]
fn brownout_penalizes_jsq_scoring() {
    // Two idle replicas, one browned out: JSQ must prefer the healthy
    // one for every arrival even though both queues drain between the
    // widely spaced requests.
    let mut events = trace(6);
    for (i, e) in events.iter_mut().enumerate() {
        e.arrival_ns = i as u64 * 10_000_000_000;
    }
    let mut c = cluster(2, RoutingPolicy::JoinShortestQueue, None);
    c.set_replica_fault_schedule(
        ReplicaFaultSchedule::builder(1)
            .brownout(0, 0, u64::MAX, 4.0)
            .build(),
        FailoverConfig::default(),
    );
    let report = c.dispatch(&events);
    assert_eq!(report.replicas[0].results.len(), 0);
    assert_eq!(report.replicas[1].results.len(), 6);
    assert!(report.accounting_balances());
}

#[test]
fn crash_recovery_restarts_cold_and_serves_again() {
    let events = burst_then_late(6, 6, 3_000_000_000);
    let mut c = cluster(2, RoutingPolicy::RoundRobin, None);
    c.set_replica_fault_schedule(
        ReplicaFaultSchedule::builder(1)
            .crash(1, 1_000_000, 2_000_000_000)
            .build(),
        FailoverConfig {
            max_redispatches: 3,
            warmup: WarmupMode::Cold,
        },
    );
    let report = c.dispatch(&events);
    assert_eq!(report.failover.crashes, 1);
    assert_eq!(report.failover.recoveries, 1);
    assert_eq!(
        report.failover.warmup_transfers, 0,
        "cold restart copies nothing"
    );
    assert_eq!(report.failover.warmup_bytes, 0);
    assert!(report.accounting_balances());
    // The restarted replica serves stragglers again (round robin deals
    // it half of the 6 post-recovery arrivals).
    assert_eq!(report.replicas[1].results.len(), 3);
    // Lifetime cache counters still include the pre-crash segment.
    let post_restart = c.replica_engine(1).expect("replica exists").cache_stats();
    assert!(
        report.replicas[1].cache.accesses() > post_restart.accesses(),
        "report carries pre-crash cache accesses across the restart"
    );
}

#[test]
fn donor_warmed_restart_pays_transfer_and_recovers_hit_rate_faster() {
    // Phase 1 builds both caches; replica 1 crashes and recovers; phase
    // 2 measures the restarted replica's post-restart hit rate. The
    // donor-warmed restart starts from the donor's residency + store and
    // must beat the cold restart from the very same schedule.
    let run = |warmup: WarmupMode| {
        let events = burst_then_late(10, 8, 3_000_000_000);
        let mut c = Cluster::new(gate(), RoutingPolicy::RoundRobin, None);
        for _ in 0..2 {
            c.add_replica(builder(), Box::new(warmed_predictor(&[0, 1, 2, 3])));
        }
        c.set_replica_fault_schedule(
            ReplicaFaultSchedule::builder(1)
                .crash(1, 1_000_000, 2_000_000_000)
                .build(),
            FailoverConfig {
                max_redispatches: 3,
                warmup,
            },
        );
        let report = c.dispatch(&events);
        assert!(report.accounting_balances());
        assert_eq!(report.failover.recoveries, 1);
        let post_restart = c.replica_engine(1).expect("replica exists").cache_stats();
        (report, post_restart)
    };

    let (cold_report, cold_cache) = run(WarmupMode::Cold);
    let (warm_report, warm_cache) = run(WarmupMode::DonorWarmed);

    assert_eq!(cold_report.failover.warmup_transfers, 0);
    assert_eq!(warm_report.failover.warmup_transfers, 1);
    assert!(warm_report.failover.warmup_bytes > 0);
    assert!(
        warm_report.failover.warmup_ns > 0,
        "the donor copy costs virtual time"
    );
    assert!(
        warm_cache.hit_rate() > cold_cache.hit_rate(),
        "donor-warmed restart must recover hit rate faster: warm {} vs cold {}",
        warm_cache.hit_rate(),
        cold_cache.hit_rate()
    );
}

#[test]
fn dispatch_under_faults_is_byte_identical_across_runs() {
    let events = burst_then_late(8, 6, 3_000_000_000);
    let horizon = 4_000_000_000;
    for policy in [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::JoinShortestQueue,
        RoutingPolicy::SemanticAffinity(AffinityConfig::default()),
    ] {
        let run = || {
            let mut c = Cluster::new(gate(), policy, None);
            for _ in 0..3 {
                c.add_replica(
                    builder().trace_sink(TraceSink::recording(1 << 16)),
                    Box::new(warmed_predictor(&[0, 1, 2, 3])),
                );
            }
            c.set_replica_fault_schedule(
                ReplicaFaultSchedule::synthetic(42, 0.8, horizon, 3),
                FailoverConfig {
                    max_redispatches: 2,
                    warmup: WarmupMode::DonorWarmed,
                },
            );
            let report = c.dispatch(&events);
            (
                format!("{report:?}"),
                format!("{:?}", c.take_merged_trace()),
            )
        };
        assert_eq!(
            run(),
            run(),
            "{} chaos must be deterministic",
            policy.name()
        );
    }
}

#[test]
fn shed_requests_do_not_inflate_queue_depth_stats() {
    // Regression (queue-depth bookkeeping): a shed request never joins
    // the FIFO queue, so it must not raise max/mean depth accounting.
    // With shed(0), the first t = 0 arrival serves (depth 1) and every
    // later one sheds against the observed depth of 1.
    let mut events = trace(10);
    for e in &mut events {
        e.arrival_ns = 0;
    }
    let mut c = cluster(1, RoutingPolicy::RoundRobin, Some(SloPolicy::shed(0)));
    let report = c.dispatch(&events);
    let r = &report.replicas[0];
    assert_eq!(r.results.len(), 1);
    assert_eq!(r.shed.len(), 9);
    assert_eq!(
        r.max_queue_depth, 1,
        "shed requests must not stack the depth statistics"
    );
    assert!((r.mean_queue_depth - 1.0).abs() < 1e-12);
}

#[test]
fn jsq_does_not_over_count_shed_replicas() {
    // Regression (queue-depth bookkeeping): sheds leave the virtual
    // queue model untouched, so JSQ keeps routing by *served* backlog
    // only. Both replicas serve exactly one request from a t = 0 burst
    // and their depth stats agree.
    let mut events = trace(8);
    for e in &mut events {
        e.arrival_ns = 0;
    }
    let mut c = cluster(
        2,
        RoutingPolicy::JoinShortestQueue,
        Some(SloPolicy::shed(0)),
    );
    let report = c.dispatch(&events);
    assert_eq!(report.replicas[0].results.len(), 1);
    assert_eq!(report.replicas[1].results.len(), 1);
    assert_eq!(report.total_served() + report.total_shed(), 8);
    for r in &report.replicas {
        assert_eq!(
            r.max_queue_depth, 1,
            "replica {} over-counts shed requests",
            r.replica
        );
    }
}

#[test]
fn routing_stats_partition_affinity_dispatches() {
    // Dedicated fallback-path coverage: one warmed replica draws every
    // request by affinity; a tight imbalance factor diverts the burst's
    // tail to JSQ. Every dispatched request lands in exactly one
    // RoutingStats bucket.
    let mut events = trace(8);
    for e in &mut events {
        e.arrival_ns = 0;
    }
    let mut c = Cluster::new(
        gate(),
        RoutingPolicy::SemanticAffinity(AffinityConfig {
            imbalance_factor: 0.5,
        }),
        None,
    );
    c.add_replica(builder(), Box::new(warmed_predictor(&[0, 1, 2, 3])));
    c.add_replica(builder(), Box::new(predictor()));
    let report = c.dispatch(&events);
    let routed = report.routing.affinity_routed
        + report.routing.jsq_fallbacks
        + report.routing.cold_fallbacks;
    assert_eq!(
        routed, 8,
        "buckets partition the dispatch: {:?}",
        report.routing
    );
    assert!(report.routing.affinity_routed > 0);
    assert!(report.routing.jsq_fallbacks > 0);
    assert_eq!(
        report.routing.cold_fallbacks, 0,
        "a warmed replica leaves no cold starts"
    );
}

#[test]
fn routing_stats_count_cold_start_fallbacks() {
    // Dedicated fallback-path coverage: with every store empty the
    // affinity router cold-falls back to JSQ until serving populates a
    // store, after which the counter stops moving.
    let events = trace(6);
    let mut c = Cluster::new(
        gate(),
        RoutingPolicy::SemanticAffinity(AffinityConfig::default()),
        None,
    );
    for _ in 0..2 {
        c.add_replica(builder(), Box::new(predictor()));
    }
    let first = c.dispatch(&events);
    assert!(first.routing.cold_fallbacks >= 1);
    assert_eq!(
        first.routing.affinity_routed + first.routing.jsq_fallbacks + first.routing.cold_fallbacks,
        6,
        "{:?}",
        first.routing
    );
    // The stores now have history; a second dispatch routes by affinity
    // and leaves the cold counter exactly where it was.
    let second = c.dispatch(&trace(4));
    assert_eq!(second.routing.cold_fallbacks, first.routing.cold_fallbacks);
    assert_eq!(
        second.routing.affinity_routed
            + second.routing.jsq_fallbacks
            + second.routing.cold_fallbacks,
        10,
        "{:?}",
        second.routing
    );
    assert!(second.routing.affinity_routed > first.routing.affinity_routed);
}

#[test]
fn warm_restart_books_replays_as_warmup_not_demand_insertions() {
    // Regression: warm-seeded experts used to be counted as regular
    // `insertions`, so lifetime accounting (pre-crash snapshot merged
    // with the post-restart segment) inflated demand insertions by the
    // replayed residents. They must land in `warmup_inserts` instead,
    // and the lookup identity must hold per replica and fleet-wide.
    let run = |warmup: WarmupMode| {
        let events = burst_then_late(10, 8, 3_000_000_000);
        let mut c = Cluster::new(gate(), RoutingPolicy::RoundRobin, None);
        for _ in 0..2 {
            c.add_replica(builder(), Box::new(warmed_predictor(&[0, 1, 2, 3])));
        }
        c.set_replica_fault_schedule(
            ReplicaFaultSchedule::builder(1)
                .crash(1, 1_000_000, 2_000_000_000)
                .build(),
            FailoverConfig {
                max_redispatches: 3,
                warmup,
            },
        );
        c.dispatch(&events)
    };

    let cold = run(WarmupMode::Cold);
    let warm = run(WarmupMode::DonorWarmed);
    assert!(cold.cache_accounting_balances());
    assert!(warm.cache_accounting_balances());
    assert_eq!(
        cold.replicas[1].cache.warmup_inserts, 0,
        "cold restart replays nothing"
    );
    assert!(
        warm.replicas[1].cache.warmup_inserts > 0,
        "donor-warmed restart must book its replays under warmup_inserts"
    );
    assert_eq!(
        warm.replicas[0].cache.warmup_inserts, 0,
        "the donor itself replays nothing"
    );
    for report in [&cold, &warm] {
        for r in &report.replicas {
            assert_eq!(
                r.cache.hits + r.cache.misses,
                r.cache.lookups,
                "per-replica lookup identity"
            );
        }
    }
}
