//! Property tests for cluster fault handling: merged-trace ordering
//! under interleaved lifecycle markers, and the inert-schedule identity.

use fmoe::{FmoeConfig, FmoePredictor};
use fmoe_cluster::{Cluster, FailoverConfig, RoutingPolicy, WarmupMode};
use fmoe_faults::ReplicaFaultSchedule;
use fmoe_memsim::Topology;
use fmoe_model::{presets, GateParams, GateSimulator, GpuSpec, ModelConfig};
use fmoe_serving::{EngineBuilder, EngineConfig};
use fmoe_trace::TraceSink;
use fmoe_workload::{AzureTraceSpec, DatasetSpec, TraceEvent};
use proptest::prelude::*;

fn model() -> ModelConfig {
    presets::small_test_model()
}

fn gate() -> GateSimulator {
    let m = model();
    GateSimulator::new(m.clone(), GateParams::for_model(&m))
}

fn builder() -> EngineBuilder {
    let m = model();
    let config = EngineConfig {
        cache_budget_bytes: m.expert_bytes() * 16,
        preload_all: false,
        max_decode_iterations: Some(2),
        context_collection_ns: 10_000,
        framework_overhead_per_layer_ns: 50_000,
        ..EngineConfig::paper_default()
    };
    EngineBuilder::new(gate(), GpuSpec::rtx_3090(), Topology::single_gpu(8 << 30)).config(config)
}

fn predictor() -> FmoePredictor {
    let m = model();
    FmoePredictor::new(m.clone(), FmoeConfig::for_model(&m))
}

/// A small trace whose arrivals bracket the fault windows: a t = 0
/// burst, mid-horizon stragglers, and a tail arrival that flushes every
/// pending lifecycle transition.
fn chaos_trace(n: u64, horizon: u64) -> Vec<TraceEvent> {
    let mut spec = AzureTraceSpec::paper_online_serving(DatasetSpec::tiny_test());
    spec.num_requests = n.max(3);
    let mut events = spec.generate();
    let len = events.len();
    for (i, e) in events.iter_mut().enumerate() {
        e.arrival_ns = if i + 1 == len {
            horizon + horizon / 2
        } else if i < len / 2 {
            0
        } else {
            horizon / 2
        };
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The merged cluster timeline stays ordered by (at_ns, replica id)
    /// no matter how crashes, drains, and brownouts interleave lifecycle
    /// markers with the per-replica engine streams.
    #[test]
    fn merged_trace_is_ordered_under_chaos(
        seed in 0u64..1_000,
        intensity in 0.0f64..1.0,
        n in 6u64..14,
    ) {
        let horizon = 2_000_000_000u64;
        let mut c = Cluster::new(gate(), RoutingPolicy::JoinShortestQueue, None);
        for _ in 0..3 {
            c.add_replica(
                builder().trace_sink(TraceSink::recording(1 << 14)),
                Box::new(predictor()),
            );
        }
        c.set_replica_fault_schedule(
            ReplicaFaultSchedule::synthetic(seed, intensity, horizon, 3),
            FailoverConfig {
                max_redispatches: 2,
                warmup: WarmupMode::DonorWarmed,
            },
        );
        let report = c.dispatch(&chaos_trace(n, horizon));
        prop_assert!(report.accounting_balances());
        let merged = c.take_merged_trace();
        for pair in merged.windows(2) {
            let a = (pair[0].record.at_ns, pair[0].replica);
            let b = (pair[1].record.at_ns, pair[1].replica);
            prop_assert!(
                a <= b,
                "merged trace out of order: {:?} then {:?}",
                a,
                b
            );
        }
    }

    /// A `ReplicaFaultSchedule` assembled entirely from no-op windows
    /// (zero length, or slowdown 1.0) is inert, and an inert schedule
    /// leaves the `ClusterReport` byte-identical to a run with no
    /// schedule installed at all.
    #[test]
    fn inert_schedule_leaves_report_byte_identical(
        starts in prop::collection::vec(0u64..3_000_000_000, 1..5),
        replica in 0u32..3,
        n in 4u64..10,
    ) {
        let events = chaos_trace(n, 2_000_000_000);
        let run = |schedule: Option<ReplicaFaultSchedule>| {
            let mut c = Cluster::new(gate(), RoutingPolicy::JoinShortestQueue, None);
            for _ in 0..3 {
                c.add_replica(builder(), Box::new(predictor()));
            }
            if let Some(s) = schedule {
                c.set_replica_fault_schedule(s, FailoverConfig::default());
            }
            format!("{:?}", c.dispatch(&events))
        };
        let mut b = ReplicaFaultSchedule::builder(starts[0]);
        for &s in &starts {
            b = b.crash(replica, s, s).brownout(replica, s, s + 100, 1.0);
        }
        let schedule = b.build();
        prop_assert!(schedule.is_inert());
        prop_assert_eq!(run(Some(schedule)), run(None));
    }
}
