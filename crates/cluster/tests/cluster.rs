//! Cluster determinism, routing behaviour, and single-engine equivalence.

use fmoe::predictor::HistoryRequest;
use fmoe::{FmoeConfig, FmoePredictor};
use fmoe_cluster::{AffinityConfig, Cluster, RoutingPolicy};
use fmoe_memsim::Topology;
use fmoe_model::{presets, GateParams, GateSimulator, GpuSpec, ModelConfig, RequestRouting};
use fmoe_serving::{serve, EngineBuilder, EngineConfig, NoPrefetch, ServeOptions, SloPolicy};
use fmoe_trace::TraceSink;
use fmoe_workload::{AzureTraceSpec, DatasetSpec, TraceEvent};

fn model() -> ModelConfig {
    presets::small_test_model()
}

fn gate() -> GateSimulator {
    let m = model();
    GateSimulator::new(m.clone(), GateParams::for_model(&m))
}

fn engine_config() -> EngineConfig {
    let m = model();
    EngineConfig {
        cache_budget_bytes: m.expert_bytes() * 16,
        preload_all: false,
        max_decode_iterations: Some(4),
        context_collection_ns: 10_000,
        framework_overhead_per_layer_ns: 50_000,
        ..EngineConfig::paper_default()
    }
}

fn builder() -> EngineBuilder {
    EngineBuilder::new(gate(), GpuSpec::rtx_3090(), Topology::single_gpu(8 << 30))
        .config(engine_config())
}

fn predictor() -> FmoePredictor {
    let m = model();
    FmoePredictor::new(m.clone(), FmoeConfig::for_model(&m))
}

/// A predictor warmed with history drawn from the given semantic
/// clusters, so its store answers affinity queries for those clusters.
fn warmed_predictor(clusters: &[u64]) -> FmoePredictor {
    let mut p = predictor();
    let hist: Vec<HistoryRequest> = clusters
        .iter()
        .enumerate()
        .map(|(i, &cluster)| HistoryRequest {
            routing: RequestRouting {
                cluster,
                request_seed: 900 + i as u64,
            },
            prompt_tokens: 24,
            iterations: 3,
        })
        .collect();
    p.populate_from_history(&gate(), &hist, 3);
    p
}

fn trace(n: u64) -> Vec<TraceEvent> {
    let mut spec = AzureTraceSpec::paper_online_serving(DatasetSpec::tiny_test());
    spec.num_requests = n;
    spec.generate()
}

fn cluster(n: usize, policy: RoutingPolicy, slo: Option<SloPolicy>) -> Cluster {
    let mut c = Cluster::new(gate(), policy, slo);
    for _ in 0..n {
        c.add_replica(builder(), Box::new(predictor()));
    }
    c
}

#[test]
fn dispatch_is_byte_identical_across_runs() {
    let events = trace(18);
    for policy in [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::JoinShortestQueue,
        RoutingPolicy::SemanticAffinity(AffinityConfig::default()),
    ] {
        let run = || {
            let mut c = cluster(3, policy, None);
            let report = c.dispatch(&events);
            format!("{report:?}")
        };
        assert_eq!(run(), run(), "{} must be deterministic", policy.name());
    }
}

#[test]
fn merged_trace_is_byte_identical_across_runs() {
    let events = trace(12);
    let run = || {
        let mut c = Cluster::new(gate(), RoutingPolicy::RoundRobin, None);
        for _ in 0..2 {
            c.add_replica(
                builder().trace_sink(TraceSink::recording(1 << 16)),
                Box::new(predictor()),
            );
        }
        c.dispatch(&events);
        format!("{:?}", c.take_merged_trace())
    };
    assert_eq!(run(), run());
}

#[test]
fn one_replica_cluster_matches_plain_serve() {
    let events = trace(12);

    let mut single_engine = builder().build();
    let mut single_pred = predictor();
    let report = serve(
        &mut single_engine,
        &events,
        &mut single_pred,
        &ServeOptions::fcfs(),
    )
    .expect("fcfs serving is infallible");

    for policy in [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::JoinShortestQueue,
        RoutingPolicy::SemanticAffinity(AffinityConfig::default()),
    ] {
        let mut c = cluster(1, policy, None);
        let cluster_report = c.dispatch(&events);
        assert_eq!(
            format!("{:?}", cluster_report.replicas[0].results),
            format!("{:?}", report.results),
            "1-replica {} cluster must equal single-engine serve",
            policy.name()
        );
    }
}

#[test]
fn one_replica_cluster_matches_plain_serve_under_slo() {
    let mut events = trace(8);
    for e in &mut events {
        e.arrival_ns = 0;
    }
    let slo = SloPolicy::shed(0);

    let mut single_engine = builder().build();
    let mut single_pred = predictor();
    let report = serve(
        &mut single_engine,
        &events,
        &mut single_pred,
        &ServeOptions::fcfs().with_slo(slo),
    )
    .expect("fcfs serving is infallible");

    let mut c = cluster(1, RoutingPolicy::RoundRobin, Some(slo));
    let cluster_report = c.dispatch(&events);
    assert_eq!(
        format!("{:?}", cluster_report.replicas[0].results),
        format!("{:?}", report.results)
    );
    assert_eq!(
        format!("{:?}", cluster_report.replicas[0].shed),
        format!("{:?}", report.shed)
    );
    assert_eq!(cluster_report.total_shed(), report.shed.len());
}

#[test]
fn round_robin_cycles_replicas() {
    let events = trace(9);
    let mut c = cluster(3, RoutingPolicy::RoundRobin, None);
    let report = c.dispatch(&events);
    for r in &report.replicas {
        assert_eq!(r.results.len(), 3, "round robin deals evenly");
    }
}

#[test]
fn jsq_spreads_simultaneous_arrivals() {
    let mut events = trace(9);
    for e in &mut events {
        e.arrival_ns = 0;
    }
    let mut c = cluster(3, RoutingPolicy::JoinShortestQueue, None);
    let report = c.dispatch(&events);
    let served: Vec<usize> = report.replicas.iter().map(|r| r.results.len()).collect();
    let max = *served.iter().max().unwrap();
    let min = *served.iter().min().unwrap();
    assert!(min >= 1, "every replica takes work: {served:?}");
    assert!(max - min <= 1, "JSQ balances a uniform burst: {served:?}");
    // All-idle ties break toward replica 0 first.
    assert_eq!(
        report.replicas[0].results[0].request_id,
        events[0].prompt.id
    );
}

#[test]
fn affinity_with_no_history_falls_back_to_jsq() {
    let events = trace(6);
    let mut c = Cluster::new(
        gate(),
        RoutingPolicy::SemanticAffinity(AffinityConfig::default()),
        None,
    );
    for _ in 0..2 {
        // NoPrefetch keeps no history: affinity is always `None`.
        c.add_replica(builder(), Box::new(NoPrefetch));
    }
    let report = c.dispatch(&events);
    assert_eq!(report.routing.cold_fallbacks, 6);
    assert_eq!(report.routing.affinity_routed, 0);
    assert_eq!(report.routing.jsq_fallbacks, 0);
    assert_eq!(report.total_served(), 6);
}

#[test]
fn affinity_prefers_the_replica_with_history() {
    let events = trace(10);
    let mut c = Cluster::new(
        gate(),
        RoutingPolicy::SemanticAffinity(AffinityConfig::default()),
        None,
    );
    // Replica 0 is cold (empty store → no affinity signal); replica 1
    // has seen every cluster the tiny dataset routes.
    c.add_replica(builder(), Box::new(predictor()));
    c.add_replica(builder(), Box::new(warmed_predictor(&[0, 1, 2, 3])));
    let report = c.dispatch(&events);
    assert_eq!(report.routing.affinity_routed, 10);
    assert_eq!(report.replicas[1].results.len(), 10);
    assert!(report.replicas[0].results.is_empty());
}

#[test]
fn imbalance_escape_hatch_diverts_overload() {
    // Everyone arrives at once and replica 0 is the unique affinity
    // target; a tight imbalance factor must divert the pile-up to the
    // idle replica.
    let mut events = trace(8);
    for e in &mut events {
        e.arrival_ns = 0;
    }
    let mut c = Cluster::new(
        gate(),
        RoutingPolicy::SemanticAffinity(AffinityConfig {
            imbalance_factor: 0.5,
        }),
        None,
    );
    c.add_replica(builder(), Box::new(warmed_predictor(&[0, 1, 2, 3])));
    c.add_replica(builder(), Box::new(predictor()));
    let report = c.dispatch(&events);
    assert!(report.routing.jsq_fallbacks > 0, "{:?}", report.routing);
    assert!(
        !report.replicas[1].results.is_empty(),
        "diverted requests land on the idle replica"
    );
    assert_eq!(report.total_served(), 8);
}

#[test]
fn shed_accounting_reconciles_under_slo() {
    let mut events = trace(10);
    for e in &mut events {
        e.arrival_ns = 0;
    }
    let mut c = cluster(2, RoutingPolicy::RoundRobin, Some(SloPolicy::shed(0)));
    let report = c.dispatch(&events);
    assert_eq!(report.total_served() + report.total_shed(), 10);
    assert!(report.total_shed() > 0, "a t=0 burst must shed");
    assert!(report.goodput() > 0.0 && report.goodput() < 1.0);
    for r in &report.replicas {
        for s in &r.shed {
            assert!(s.queued_ns > 0);
        }
    }
}

#[test]
fn merged_trace_is_time_ordered_and_attributed() {
    let events = trace(8);
    let mut c = Cluster::new(gate(), RoutingPolicy::RoundRobin, None);
    for _ in 0..2 {
        c.add_replica(
            builder().trace_sink(TraceSink::recording(1 << 16)),
            Box::new(predictor()),
        );
    }
    c.dispatch(&events);
    let merged = c.take_merged_trace();
    assert!(!merged.is_empty());
    for w in merged.windows(2) {
        assert!(
            w[0].record.at_ns <= w[1].record.at_ns,
            "merged timeline must be time-ordered"
        );
        if w[0].record.at_ns == w[1].record.at_ns && w[0].replica != w[1].replica {
            assert!(w[0].replica <= w[1].replica, "ties break by replica id");
        }
    }
    let replicas: std::collections::BTreeSet<usize> = merged.iter().map(|r| r.replica).collect();
    assert_eq!(replicas.len(), 2, "both replicas contribute records");
    // Draining leaves the sinks empty.
    assert!(c.take_merged_trace().is_empty());
}

#[test]
fn empty_cluster_serves_nothing() {
    let events = trace(4);
    let mut c = Cluster::new(gate(), RoutingPolicy::RoundRobin, None);
    let report = c.dispatch(&events);
    assert!(report.replicas.is_empty());
    assert_eq!(report.total_served(), 0);
    assert_eq!(report.goodput(), 0.0);
}

#[test]
fn queue_depths_are_tracked() {
    let mut events = trace(6);
    for e in &mut events {
        e.arrival_ns = 0;
    }
    let mut c = cluster(1, RoutingPolicy::RoundRobin, None);
    let report = c.dispatch(&events);
    let r = &report.replicas[0];
    assert_eq!(r.results.len(), 6);
    assert_eq!(r.max_queue_depth, 6, "a t=0 burst stacks the whole queue");
    assert!(r.mean_queue_depth > 1.0);
    assert!(r.latency_quantile_ns(0.5).is_some());
}

#[test]
fn shared_host_cache_observes_without_perturbing_replica_output() {
    use fmoe_cache::{PolicyKind, ShardedExpertCache};
    use std::sync::Arc;

    let events = trace(12);
    let run = |host: Option<Arc<ShardedExpertCache>>| {
        let mut c = Cluster::new(gate(), RoutingPolicy::RoundRobin, None);
        if let Some(h) = &host {
            c.set_shared_host_cache(Arc::clone(h));
        }
        for _ in 0..2 {
            c.add_replica(builder(), Box::new(warmed_predictor(&[0, 1])));
        }
        c.dispatch(&events)
    };

    let m = model();
    let host = Arc::new(ShardedExpertCache::new(
        &m,
        m.expert_bytes() * 32,
        4,
        PolicyKind::Sieve,
    ));
    let with_host = run(Some(Arc::clone(&host)));
    let without = run(None);

    // The host tier is observational: per-replica serving output must be
    // byte-identical with and without it attached.
    assert_eq!(
        format!("{:?}", with_host.replicas),
        format!("{:?}", without.replicas),
        "host cache must not perturb the sim path"
    );
    assert!(without.host_cache.is_none());

    // But the fleet report now carries the merged host view, and it saw
    // every expert access the replicas recorded.
    let host_stats = with_host.host_cache.expect("host stats in report");
    assert_eq!(host_stats, host.stats());
    assert!(host_stats.lookups > 0, "host tier observed accesses");
    assert!(host_stats.check_invariants());
    assert!(with_host.cache_accounting_balances());
    let replica_lookups: u64 = with_host.replicas.iter().map(|r| r.cache.lookups).sum();
    assert_eq!(
        host_stats.lookups, replica_lookups,
        "every replica access is mirrored exactly once"
    );
    assert!(host.resident_count() > 0);
    assert_eq!(host.occupancy().len(), 4);
}

/// EP×DP composition: a fleet of multi-GPU EP replicas serves the same
/// trace deterministically, and the fleet report attributes per-GPU
/// compute and all2all time inside every replica.
#[test]
fn ep_replicas_compose_with_data_parallel_dispatch() {
    use fmoe_serving::{ExpertParallelConfig, LoadBalancedPlacement};

    let events = trace(12);
    let run = || {
        let topo = Topology::builder()
            .num_gpus(2)
            .gpu_memory_bytes(8 << 30)
            .build()
            .expect("valid test topology");
        let config = EngineConfig {
            expert_parallel: Some(ExpertParallelConfig::default()),
            ..engine_config()
        };
        let mut c = Cluster::new(gate(), RoutingPolicy::RoundRobin, None);
        for _ in 0..2 {
            let b = EngineBuilder::new(gate(), GpuSpec::rtx_3090(), topo.clone())
                .config(config.clone())
                .placement_policy(&LoadBalancedPlacement::uniform());
            c.add_replica(b, Box::new(predictor()));
        }
        c.dispatch(&events)
    };

    let a = run();
    let b = run();
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "EP fleet dispatch must be deterministic"
    );

    assert!(a.accounting_balances());
    assert_eq!(a.replicas.len(), 2);
    for r in &a.replicas {
        assert!(!r.results.is_empty(), "round-robin feeds every replica");
        assert_eq!(r.per_gpu.num_gpus(), 2, "breakdown covers both GPUs");
        let compute: u64 = (0..2).map(|g| r.per_gpu.compute_ns[g]).sum();
        let all2all: u64 = (0..2).map(|g| r.per_gpu.all2all_ns[g]).sum();
        assert!(compute > 0, "expert compute attributed to GPUs");
        assert!(all2all > 0, "token routing charged as all2all time");
    }

    // Single-GPU replicas must report an all-zero all2all row: the EP
    // config is inert without peers.
    let mut single = Cluster::new(gate(), RoutingPolicy::RoundRobin, None);
    single.add_replica(builder(), Box::new(predictor()));
    let s = single.dispatch(&events);
    assert!(s.replicas[0].per_gpu.all2all_ns.iter().all(|&ns| ns == 0));
}
