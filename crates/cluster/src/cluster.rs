//! The [`Cluster`]: N independent engine replicas behind one router.

use crate::report::{ClusterReport, ReplicaReport};
use crate::routing::{shortest_queue, RoutingPolicy, RoutingStats};
use fmoe_memsim::Nanos;
use fmoe_model::GateSimulator;
use fmoe_serving::online::{serve_event_fcfs, FcfsOutcome};
use fmoe_serving::{
    EngineBuilder, ExpertPredictor, OnlineResult, ServingEngine, ShedRequest, SloPolicy,
};
use fmoe_trace::TraceRecord;
use fmoe_workload::TraceEvent;
use serde::Serialize;

/// One replica: an engine, its predictor, and FIFO-queue bookkeeping.
struct Replica {
    engine: ServingEngine,
    predictor: Box<dyn ExpertPredictor>,
    /// Finish times of served requests, monotone under FCFS.
    finish_times: Vec<Nanos>,
    /// Cursor into `finish_times`: everything before it finished at or
    /// before the most recent arrival instant (arrivals are monotone, so
    /// the cursor only moves forward — O(1) amortized depth queries).
    drained: usize,
    results: Vec<OnlineResult>,
    shed: Vec<ShedRequest>,
    max_queue_depth: usize,
    /// Σ (depth including the arriving request) over routed arrivals.
    depth_sum: u64,
    arrivals: u64,
}

impl Replica {
    /// Requests routed here that are still queued or in service at `t`:
    /// served requests whose finish time lies beyond `t`. Shed requests
    /// never occupy the queue (they are rejected the instant their turn
    /// comes, contributing no service time).
    fn queue_depth(&mut self, t: Nanos) -> usize {
        while self.drained < self.finish_times.len() && self.finish_times[self.drained] <= t {
            self.drained += 1;
        }
        self.finish_times.len() - self.drained
    }
}

/// A per-replica trace record in the merged cluster timeline.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterTraceRecord {
    /// Which replica emitted the record.
    pub replica: usize,
    /// The record itself (timestamps are each replica's virtual time;
    /// all replicas share t = 0 at cluster start).
    pub record: TraceRecord,
}

/// A deterministic multi-replica serving cluster.
///
/// Replicas are added through [`Cluster::add_replica`] (which finishes an
/// [`EngineBuilder`], so every replica is built the one supported way),
/// then a shared trace is pushed through [`Cluster::dispatch`]. Each
/// replica is an independent FCFS queue: once a request is routed, it is
/// served by [`serve_event_fcfs`] with exactly the semantics of
/// `fmoe_serving::serve` — which makes a 1-replica cluster byte-identical
/// to single-engine serving.
pub struct Cluster {
    /// Embedding oracle for [`RoutingPolicy::SemanticAffinity`]: the
    /// router observes the same iteration-0 semantic embedding the
    /// engines feed their predictors.
    gate: GateSimulator,
    policy: RoutingPolicy,
    slo: Option<SloPolicy>,
    replicas: Vec<Replica>,
    /// Next replica for [`RoutingPolicy::RoundRobin`].
    rr_next: usize,
    routing: RoutingStats,
}

impl Cluster {
    /// Creates an empty cluster. `gate` must simulate the same model the
    /// replicas serve (its only cluster-level role is producing prompt
    /// embeddings for affinity routing).
    #[must_use]
    pub fn new(gate: GateSimulator, policy: RoutingPolicy, slo: Option<SloPolicy>) -> Self {
        Self {
            gate,
            policy,
            slo,
            replicas: Vec::new(),
            rr_next: 0,
            routing: RoutingStats::default(),
        }
    }

    /// Builds `engine` and registers it (with its predictor) as the next
    /// replica. Returns the new replica's id. Install a recording
    /// `TraceSink` on the builder to have the replica contribute to
    /// [`Cluster::take_merged_trace`].
    pub fn add_replica(
        &mut self,
        engine: EngineBuilder,
        predictor: Box<dyn ExpertPredictor>,
    ) -> usize {
        self.replicas.push(Replica {
            engine: engine.build(),
            predictor,
            finish_times: Vec::new(),
            drained: 0,
            results: Vec::new(),
            shed: Vec::new(),
            max_queue_depth: 0,
            depth_sum: 0,
            arrivals: 0,
        });
        self.replicas.len() - 1
    }

    /// Number of replicas.
    #[must_use]
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The routing policy in force.
    #[must_use]
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Read access to a replica's engine (diagnostics).
    #[must_use]
    pub fn replica_engine(&self, replica: usize) -> Option<&ServingEngine> {
        self.replicas.get(replica).map(|r| &r.engine)
    }

    /// Routes and serves every trace event, returning the aggregated
    /// report. Events must be sorted by arrival time. Dispatching on an
    /// empty cluster serves nothing and returns an empty report. State
    /// (caches, stores, queues) persists across calls, so consecutive
    /// dispatches model one continuous workload; the report covers
    /// everything routed so far.
    pub fn dispatch(&mut self, trace: &[TraceEvent]) -> ClusterReport {
        if self.replicas.is_empty() {
            return ClusterReport {
                replicas: Vec::new(),
                routing: self.routing,
            };
        }
        for event in trace {
            let mut depths = Vec::with_capacity(self.replicas.len());
            for replica in &mut self.replicas {
                depths.push(replica.queue_depth(event.arrival_ns));
            }
            let chosen = self.route(event, &depths);
            let replica = &mut self.replicas[chosen];
            let depth_here = depths[chosen] + 1;
            replica.max_queue_depth = replica.max_queue_depth.max(depth_here);
            replica.depth_sum += depth_here as u64;
            replica.arrivals += 1;
            match serve_event_fcfs(
                &mut replica.engine,
                event,
                replica.predictor.as_mut(),
                self.slo,
            ) {
                FcfsOutcome::Served(result) => {
                    replica.finish_times.push(result.finish_ns);
                    replica.results.push(result);
                }
                FcfsOutcome::Shed(request) => replica.shed.push(request),
            }
        }
        self.report()
    }

    /// Picks the replica for `event` given per-replica queue `depths`.
    fn route(&mut self, event: &TraceEvent, depths: &[usize]) -> usize {
        match self.policy {
            RoutingPolicy::RoundRobin => {
                let chosen = self.rr_next % self.replicas.len();
                self.rr_next += 1;
                chosen
            }
            RoutingPolicy::JoinShortestQueue => shortest_queue(depths),
            RoutingPolicy::SemanticAffinity(cfg) => {
                let embedding = self.gate.semantic_embedding(event.prompt.routing, 0);
                // Highest affinity wins; `total_cmp` keeps NaN-free
                // ordering deterministic and strict `>` breaks ties
                // toward the lowest replica id.
                let mut best: Option<(usize, f64)> = None;
                for (i, replica) in self.replicas.iter().enumerate() {
                    if let Some(score) = replica.predictor.semantic_affinity(&embedding) {
                        let better = match best {
                            None => true,
                            Some((_, incumbent)) => {
                                score.total_cmp(&incumbent) == std::cmp::Ordering::Greater
                            }
                        };
                        if better {
                            best = Some((i, score));
                        }
                    }
                }
                let Some((preferred, _)) = best else {
                    // No replica has semantic history yet: place by load.
                    self.routing.cold_fallbacks += 1;
                    return shortest_queue(depths);
                };
                let mean = depths.iter().sum::<usize>() as f64 / depths.len() as f64;
                if depths[preferred] as f64 > cfg.imbalance_factor * mean {
                    self.routing.jsq_fallbacks += 1;
                    shortest_queue(depths)
                } else {
                    self.routing.affinity_routed += 1;
                    preferred
                }
            }
        }
    }

    /// Builds the cumulative report.
    fn report(&self) -> ClusterReport {
        let replicas = self
            .replicas
            .iter()
            .enumerate()
            .map(|(id, replica)| ReplicaReport {
                replica: id,
                results: replica.results.clone(),
                shed: replica.shed.clone(),
                degraded_serves: replica
                    .results
                    .iter()
                    .filter(|r| r.metrics.served_degraded)
                    .count() as u64,
                cache: replica.engine.cache_stats(),
                max_queue_depth: replica.max_queue_depth,
                mean_queue_depth: if replica.arrivals == 0 {
                    0.0
                } else {
                    replica.depth_sum as f64 / replica.arrivals as f64
                },
            })
            .collect();
        ClusterReport {
            replicas,
            routing: self.routing,
        }
    }

    /// Drains every replica's trace sink and merges the streams into one
    /// cluster timeline: ordered by record timestamp, ties broken by
    /// lower replica id, per-replica order preserved. Replicas whose
    /// sink is disabled (the default) contribute nothing.
    pub fn take_merged_trace(&mut self) -> Vec<ClusterTraceRecord> {
        let streams: Vec<Vec<TraceRecord>> = self
            .replicas
            .iter_mut()
            .map(|r| r.engine.trace_sink().take_records())
            .collect();
        let total: usize = streams.iter().map(Vec::len).sum();
        let mut merged = Vec::with_capacity(total);
        let mut cursors = vec![0usize; streams.len()];
        while merged.len() < total {
            // Min over stream heads by (at_ns, replica id); strict `<`
            // on timestamps keeps the tie with the lowest id.
            let mut pick: Option<usize> = None;
            for (replica, stream) in streams.iter().enumerate() {
                if cursors[replica] >= stream.len() {
                    continue;
                }
                let at = stream[cursors[replica]].at_ns;
                let better = match pick {
                    None => true,
                    Some(p) => at < streams[p][cursors[p]].at_ns,
                };
                if better {
                    pick = Some(replica);
                }
            }
            let Some(replica) = pick else {
                break;
            };
            merged.push(ClusterTraceRecord {
                replica,
                record: streams[replica][cursors[replica]],
            });
            cursors[replica] += 1;
        }
        merged
    }
}
