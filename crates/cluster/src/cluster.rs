//! The [`Cluster`]: N independent engine replicas behind one router.

use crate::lifecycle::{FailoverConfig, FailoverStats, WarmupMode};
use crate::report::{ClusterReport, ReplicaReport};
use crate::routing::{shortest_effective_queue, RoutingPolicy, RoutingStats};
use fmoe_faults::{ReplicaFaultSchedule, ReplicaTransition, TransitionKind};
use fmoe_memsim::Nanos;
use fmoe_model::GateSimulator;
use fmoe_serving::online::{serve_event_fcfs, FcfsOutcome};
use fmoe_serving::{
    EngineBuilder, ExpertPredictor, OnlineResult, ServingEngine, ShedRequest, SloPolicy,
};
use fmoe_trace::{Marker, TraceRecord, NO_GPU, NO_LAYER, NO_REQUEST, NO_SLOT};
use fmoe_workload::TraceEvent;
use serde::Serialize;
use std::sync::Arc;

/// One replica: an engine, its predictor, and FIFO-queue bookkeeping.
struct Replica {
    engine: ServingEngine,
    predictor: Box<dyn ExpertPredictor>,
    /// Finish times of served requests, monotone under FCFS.
    finish_times: Vec<Nanos>,
    /// Cursor into `finish_times`: everything before it finished at or
    /// before the most recent arrival instant (arrivals are monotone, so
    /// the cursor only moves forward — O(1) amortized depth queries).
    drained: usize,
    results: Vec<OnlineResult>,
    /// The trace event behind each entry of `results` plus its
    /// re-dispatch count, kept index-aligned so a crash can identify and
    /// re-route the invalidated suffix.
    events: Vec<(TraceEvent, u32)>,
    shed: Vec<ShedRequest>,
    max_queue_depth: usize,
    /// Σ observed queue depth over routed arrivals (the arriving request
    /// included only when it actually joins the queue — shed requests
    /// never occupy it).
    depth_sum: u64,
    arrivals: u64,
    /// Cache counters accumulated before restarts: `ExpertCache::clear`
    /// resets stats, so lifetime accounting carries pre-crash snapshots
    /// here and merges them back in at report time.
    carried_cache: fmoe_cache::CacheStats,
    /// The replica accepts no new requests before this instant (warmup
    /// after a donor-warmed restart). `0` = always available.
    available_at: Nanos,
}

impl Replica {
    /// Requests routed here that are still queued or in service at `t`:
    /// served requests whose finish time lies beyond `t`. Shed requests
    /// never occupy the queue (they are rejected the instant their turn
    /// comes, contributing no service time).
    fn queue_depth(&mut self, t: Nanos) -> usize {
        while self.drained < self.finish_times.len() && self.finish_times[self.drained] <= t {
            self.drained += 1;
        }
        self.finish_times.len() - self.drained
    }

    /// Lifetime cache counters: the live cache plus everything carried
    /// across restarts.
    fn lifetime_cache(&self) -> fmoe_cache::CacheStats {
        self.carried_cache.merged(&self.engine.cache_stats())
    }
}

/// A per-replica trace record in the merged cluster timeline.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterTraceRecord {
    /// Which replica emitted the record.
    pub replica: usize,
    /// The record itself (timestamps are each replica's virtual time;
    /// all replicas share t = 0 at cluster start).
    pub record: TraceRecord,
}

/// A deterministic multi-replica serving cluster.
///
/// Replicas are added through [`Cluster::add_replica`] (which finishes an
/// [`EngineBuilder`], so every replica is built the one supported way),
/// then a shared trace is pushed through [`Cluster::dispatch`]. Each
/// replica is an independent FCFS queue: once a request is routed, it is
/// served by [`serve_event_fcfs`] with exactly the semantics of
/// `fmoe_serving::serve` — which makes a 1-replica cluster byte-identical
/// to single-engine serving.
///
/// An optional [`ReplicaFaultSchedule`] (see
/// [`Cluster::set_replica_fault_schedule`]) injects replica-level
/// lifecycle events — crashes, brownouts, planned drains — which the
/// dispatcher consumes: crashed replicas' unfinished work is failed over,
/// routing becomes health-aware, and restarts warm up per the configured
/// [`WarmupMode`]. An inert schedule leaves every output byte-identical
/// to a schedule-free run.
pub struct Cluster {
    /// Embedding oracle for [`RoutingPolicy::SemanticAffinity`]: the
    /// router observes the same iteration-0 semantic embedding the
    /// engines feed their predictors.
    gate: GateSimulator,
    policy: RoutingPolicy,
    slo: Option<SloPolicy>,
    replicas: Vec<Replica>,
    /// Next replica for [`RoutingPolicy::RoundRobin`].
    rr_next: usize,
    routing: RoutingStats,
    /// Replica-level fault schedule (inert by default).
    faults: ReplicaFaultSchedule,
    failover_cfg: FailoverConfig,
    /// Effective lifecycle transitions of `faults`, sorted by
    /// `(at, replica, kind)`, with a cursor advanced as arrivals pass
    /// each transition instant. Transitions beyond the last arrival are
    /// never processed (the simulation ends with the workload).
    transitions: Vec<ReplicaTransition>,
    transition_cursor: usize,
    failover: FailoverStats,
    /// Cluster-level sheds: requests that exhausted their re-dispatch
    /// budget or found no healthy replica. Replica-level SLO sheds live
    /// in each replica's report instead.
    failover_shed: Vec<ShedRequest>,
    /// Lifecycle markers (crash/drain/restart/failover/warmup) recorded
    /// by the dispatcher itself; merged into the cluster timeline by
    /// [`Cluster::take_merged_trace`]. Empty under an inert schedule.
    lifecycle: Vec<ClusterTraceRecord>,
    /// Requests routed so far (both dispatch arrivals and nothing else:
    /// failovers re-route existing requests and do not re-count).
    dispatched: u64,
    /// Optional shared host-tier expert cache every replica engine
    /// mirrors accesses into (see
    /// [`fmoe_serving::ServingEngine::set_shared_host_cache`]).
    /// Observational; `None` keeps output byte-identical to before the
    /// feature existed.
    host_cache: Option<Arc<fmoe_cache::ShardedExpertCache>>,
}

impl Cluster {
    /// Creates an empty cluster. `gate` must simulate the same model the
    /// replicas serve (its only cluster-level role is producing prompt
    /// embeddings for affinity routing).
    #[must_use]
    pub fn new(gate: GateSimulator, policy: RoutingPolicy, slo: Option<SloPolicy>) -> Self {
        Self {
            gate,
            policy,
            slo,
            replicas: Vec::new(),
            rr_next: 0,
            routing: RoutingStats::default(),
            faults: ReplicaFaultSchedule::none(),
            failover_cfg: FailoverConfig::default(),
            transitions: Vec::new(),
            transition_cursor: 0,
            failover: FailoverStats::default(),
            failover_shed: Vec::new(),
            lifecycle: Vec::new(),
            dispatched: 0,
            host_cache: None,
        }
    }

    /// Attaches a shared host-tier [`fmoe_cache::ShardedExpertCache`]:
    /// every replica (existing and future) mirrors its expert accesses
    /// into it, modelling one host-memory expert pool under the fleet.
    /// The fleet-wide host view lands in
    /// [`ClusterReport::host_cache`](crate::report::ClusterReport).
    pub fn set_shared_host_cache(&mut self, host: Arc<fmoe_cache::ShardedExpertCache>) {
        for replica in &mut self.replicas {
            replica.engine.set_shared_host_cache(Arc::clone(&host));
        }
        self.host_cache = Some(host);
    }

    /// The attached shared host-tier cache, if any.
    #[must_use]
    pub fn shared_host_cache(&self) -> Option<&Arc<fmoe_cache::ShardedExpertCache>> {
        self.host_cache.as_ref()
    }

    /// Builds `engine` and registers it (with its predictor) as the next
    /// replica. Returns the new replica's id. Install a recording
    /// `TraceSink` on the builder to have the replica contribute to
    /// [`Cluster::take_merged_trace`].
    pub fn add_replica(
        &mut self,
        engine: EngineBuilder,
        predictor: Box<dyn ExpertPredictor>,
    ) -> usize {
        let mut engine = engine.build();
        if let Some(host) = &self.host_cache {
            engine.set_shared_host_cache(Arc::clone(host));
        }
        self.replicas.push(Replica {
            engine,
            predictor,
            finish_times: Vec::new(),
            drained: 0,
            results: Vec::new(),
            events: Vec::new(),
            shed: Vec::new(),
            max_queue_depth: 0,
            depth_sum: 0,
            arrivals: 0,
            carried_cache: fmoe_cache::CacheStats::default(),
            available_at: 0,
        });
        self.replicas.len() - 1
    }

    /// Number of replicas.
    #[must_use]
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The routing policy in force.
    #[must_use]
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Read access to a replica's engine (diagnostics).
    #[must_use]
    pub fn replica_engine(&self, replica: usize) -> Option<&ServingEngine> {
        self.replicas.get(replica).map(|r| &r.engine)
    }

    /// Installs a replica-level fault schedule and failover policy.
    /// Call before the first [`Cluster::dispatch`]: transitions are
    /// derived once here and consumed in arrival order. Installing
    /// [`ReplicaFaultSchedule::none`] (or never calling this) keeps
    /// every output byte-identical to a schedule-free run.
    pub fn set_replica_fault_schedule(
        &mut self,
        schedule: ReplicaFaultSchedule,
        config: FailoverConfig,
    ) {
        self.transitions = schedule.transitions();
        self.transition_cursor = 0;
        self.faults = schedule;
        self.failover_cfg = config;
    }

    /// The failover policy in force.
    #[must_use]
    pub fn failover_config(&self) -> FailoverConfig {
        self.failover_cfg
    }

    /// Routes and serves every trace event, returning the aggregated
    /// report. Events must be sorted by arrival time. Dispatching on an
    /// empty cluster serves nothing and returns an empty report. State
    /// (caches, stores, queues) persists across calls, so consecutive
    /// dispatches model one continuous workload; the report covers
    /// everything routed so far.
    ///
    /// Under a replica fault schedule, lifecycle transitions are
    /// processed lazily as arrivals pass them: a crash reconciles the
    /// replica's unfinished work (re-dispatched to healthy peers up to
    /// [`FailoverConfig::max_redispatches`] times, then shed), routing
    /// excludes down replicas and penalizes browned-out ones, and a
    /// closing crash window restarts the replica per the configured
    /// [`WarmupMode`]. Transitions after the last arrival never fire.
    pub fn dispatch(&mut self, trace: &[TraceEvent]) -> ClusterReport {
        if self.replicas.is_empty() {
            return self.report();
        }
        for event in trace {
            let t = event.arrival_ns;
            self.dispatched += 1;
            self.process_transitions_through(t);

            let (effective, healthy) = self.survey(t);
            if !healthy.iter().any(|&h| h) {
                // Full outage: nothing can take the request.
                self.failover.no_healthy_shed += 1;
                self.failover_shed.push(ShedRequest {
                    request_id: event.prompt.id,
                    arrival_ns: t,
                    queued_ns: 0,
                });
                continue;
            }
            let Some(chosen) = self.route(event, &effective, &healthy) else {
                // Unreachable with a healthy replica present, but kept
                // total: treat as a full-outage shed.
                self.failover.no_healthy_shed += 1;
                self.failover_shed.push(ShedRequest {
                    request_id: event.prompt.id,
                    arrival_ns: t,
                    queued_ns: 0,
                });
                continue;
            };
            self.serve_on(chosen, event, 0, t);
        }
        self.report()
    }

    /// Per-replica effective queue depths and health at instant `t`.
    ///
    /// Effective depth is `slowdown × (depth + 1) − 1`: exactly the
    /// integer depth for a healthy replica (`slowdown = 1`), strictly
    /// larger under brownout — including at depth 0, so an idle healthy
    /// replica always beats an idle browned-out one. A replica is
    /// healthy when it is neither crashed nor draining at `t` and has
    /// finished any restart warmup.
    fn survey(&mut self, t: Nanos) -> (Vec<f64>, Vec<bool>) {
        let n = self.replicas.len();
        let mut effective = Vec::with_capacity(n);
        let mut healthy = Vec::with_capacity(n);
        for (i, replica) in self.replicas.iter_mut().enumerate() {
            let depth = replica.queue_depth(t) as f64;
            let slowdown = self.faults.slowdown(i as u32, t);
            effective.push(slowdown * (depth + 1.0) - 1.0);
            healthy.push(!self.faults.is_down(i as u32, t) && t >= replica.available_at);
        }
        (effective, healthy)
    }

    /// Picks the replica for `event` among healthy replicas given
    /// effective queue depths. `None` only when no replica is healthy.
    fn route(&mut self, event: &TraceEvent, effective: &[f64], healthy: &[bool]) -> Option<usize> {
        match self.policy {
            RoutingPolicy::RoundRobin => {
                let n = self.replicas.len();
                for k in 0..n {
                    let cand = (self.rr_next + k) % n;
                    if healthy[cand] {
                        self.rr_next = cand + 1;
                        return Some(cand);
                    }
                }
                None
            }
            RoutingPolicy::JoinShortestQueue => shortest_effective_queue(effective, healthy),
            RoutingPolicy::SemanticAffinity(cfg) => {
                let embedding = self.gate.semantic_embedding(event.prompt.routing, 0);
                // Highest affinity among healthy replicas wins;
                // `total_cmp` keeps NaN-free ordering deterministic and
                // strict `>` breaks ties toward the lowest replica id.
                let mut best: Option<(usize, f64)> = None;
                for (i, replica) in self.replicas.iter().enumerate() {
                    if !healthy[i] {
                        continue;
                    }
                    if let Some(score) = replica.predictor.semantic_affinity(&embedding) {
                        let better = match best {
                            None => true,
                            Some((_, incumbent)) => {
                                score.total_cmp(&incumbent) == std::cmp::Ordering::Greater
                            }
                        };
                        if better {
                            best = Some((i, score));
                        }
                    }
                }
                let Some((preferred, _)) = best else {
                    // No healthy replica has semantic history yet:
                    // place by load.
                    self.routing.cold_fallbacks += 1;
                    return shortest_effective_queue(effective, healthy);
                };
                let healthy_count = healthy.iter().filter(|&&h| h).count();
                let mean = healthy
                    .iter()
                    .zip(effective)
                    .filter(|(&h, _)| h)
                    .map(|(_, &d)| d)
                    .sum::<f64>()
                    / healthy_count as f64;
                if effective[preferred] > cfg.imbalance_factor * mean {
                    self.routing.jsq_fallbacks += 1;
                    shortest_effective_queue(effective, healthy)
                } else {
                    self.routing.affinity_routed += 1;
                    Some(preferred)
                }
            }
        }
    }

    /// Serves `event` on replica `chosen`, recording queue-depth
    /// bookkeeping at instant `depth_at` (the arrival for fresh
    /// requests, the crash instant for failovers). `redispatches` is how
    /// many times this request has already been failed over.
    fn serve_on(&mut self, chosen: usize, event: &TraceEvent, redispatches: u32, depth_at: Nanos) {
        let slo = self.slo;
        let replica = &mut self.replicas[chosen];
        let observed = replica.queue_depth(depth_at);
        replica.arrivals += 1;
        match serve_event_fcfs(&mut replica.engine, event, replica.predictor.as_mut(), slo) {
            FcfsOutcome::Served(result) => {
                // The request joins the queue: count it in the depth.
                let depth_here = observed + 1;
                replica.max_queue_depth = replica.max_queue_depth.max(depth_here);
                replica.depth_sum += depth_here as u64;
                replica.finish_times.push(result.finish_ns);
                replica.results.push(result);
                replica.events.push((*event, redispatches));
            }
            FcfsOutcome::Shed(request) => {
                // A shed request never occupies the queue: record the
                // depth it observed without counting itself, so JSQ
                // statistics do not over-count shed-heavy replicas.
                replica.max_queue_depth = replica.max_queue_depth.max(observed);
                replica.depth_sum += observed as u64;
                replica.shed.push(request);
            }
        }
    }

    /// Fires every lifecycle transition at or before `t`, in order.
    fn process_transitions_through(&mut self, t: Nanos) {
        while self.transition_cursor < self.transitions.len()
            && self.transitions[self.transition_cursor].at <= t
        {
            let tr = self.transitions[self.transition_cursor];
            self.transition_cursor += 1;
            let replica = tr.replica as usize;
            if replica >= self.replicas.len() {
                // The schedule names a replica this cluster doesn't
                // have; ignore (schedules are reusable across sizes).
                continue;
            }
            match tr.kind {
                TransitionKind::CrashStart => self.on_crash(replica, tr.at),
                TransitionKind::Recovery => self.on_recovery(replica, tr.at),
                TransitionKind::DrainStart => {
                    self.failover.drains += 1;
                    self.push_lifecycle(tr.at, replica, Marker::ReplicaDrain, NO_REQUEST, 1);
                }
                TransitionKind::DrainEnd => {
                    self.push_lifecycle(tr.at, replica, Marker::ReplicaDrain, NO_REQUEST, 0);
                }
            }
        }
    }

    /// A replica crashed at `c`: everything it had not finished by then
    /// is invalidated and failed over. Under FCFS finish times are
    /// monotone, so the invalidated results form a suffix.
    fn on_crash(&mut self, idx: usize, c: Nanos) {
        self.failover.crashes += 1;
        let replica = &mut self.replicas[idx];
        let cut = replica.finish_times.partition_point(|&f| f <= c);
        let invalidated = replica.events.split_off(cut);
        replica.finish_times.truncate(cut);
        replica.results.truncate(cut);
        replica.drained = replica.drained.min(cut);
        self.push_lifecycle(
            c,
            idx,
            Marker::ReplicaCrash,
            NO_REQUEST,
            invalidated.len() as u64,
        );
        for (event, redispatches) in invalidated {
            self.redispatch(&event, redispatches + 1, c);
        }
    }

    /// Re-routes one crash-invalidated request at instant `c`. The
    /// original arrival time rides along, so the surviving replica's SLO
    /// policy sees the full queueing delay the request has accumulated.
    fn redispatch(&mut self, event: &TraceEvent, attempts: u32, c: Nanos) {
        if attempts > self.failover_cfg.max_redispatches {
            self.failover.failover_shed += 1;
            self.failover_shed.push(ShedRequest {
                request_id: event.prompt.id,
                arrival_ns: event.arrival_ns,
                queued_ns: c.saturating_sub(event.arrival_ns),
            });
            return;
        }
        let (effective, healthy) = self.survey(c);
        let Some(target) = shortest_effective_queue(&effective, &healthy) else {
            self.failover.no_healthy_shed += 1;
            self.failover_shed.push(ShedRequest {
                request_id: event.prompt.id,
                arrival_ns: event.arrival_ns,
                queued_ns: c.saturating_sub(event.arrival_ns),
            });
            return;
        };
        self.failover.failed_over += 1;
        self.push_lifecycle(
            c,
            target,
            Marker::Failover,
            event.prompt.id,
            u64::from(attempts),
        );
        self.serve_on(target, event, attempts, c);
    }

    /// A crash window closed at `at`: restart the replica per the
    /// configured [`WarmupMode`].
    fn on_recovery(&mut self, idx: usize, at: Nanos) {
        self.failover.recoveries += 1;
        let pre_crash = self.replicas[idx].engine.restart_at(at);
        self.replicas[idx].carried_cache = self.replicas[idx].carried_cache.merged(&pre_crash);

        let donor = match self.failover_cfg.warmup {
            WarmupMode::Cold => None,
            WarmupMode::DonorWarmed => self.pick_donor(idx, at),
        };
        let Some(donor) = donor else {
            // Cold restart (or no healthy donor exists): empty cache,
            // reset predictor, available immediately.
            self.replicas[idx].predictor.reset();
            self.replicas[idx].available_at = at;
            self.push_lifecycle(at, idx, Marker::ReplicaRestart, NO_REQUEST, 0);
            return;
        };
        let snapshot = self.replicas[donor].predictor.warm_state();
        let residents = self.replicas[donor].engine.resident_experts();
        let extra_bytes = snapshot.as_ref().map_or(0, Vec::len) as u64;
        let restored = match &snapshot {
            Some(s) => self.replicas[idx].predictor.restore_warm_state(s),
            None => false,
        };
        if !restored {
            self.replicas[idx].predictor.reset();
        }
        let replica = &mut self.replicas[idx];
        let done = replica.engine.warm_seed(&residents, extra_bytes, at);
        // The engine's transfer fabric is fresh post-restart, so its
        // warmup counters cover exactly this seeding.
        let bytes = replica.engine.transfer_stats().warmup_bytes;
        replica.available_at = done;
        self.failover.warmup_transfers += 1;
        self.failover.warmup_bytes += bytes;
        self.failover.warmup_ns += done - at;
        self.push_lifecycle(at, idx, Marker::ReplicaRestart, NO_REQUEST, done - at);
        self.push_lifecycle(done, idx, Marker::CacheWarmup, NO_REQUEST, bytes);
    }

    /// The healthiest peer to seed a restart from: the healthy replica
    /// (other than `idx`) with the highest lifetime cache hit rate; ties
    /// go to the lowest replica id. `None` when every peer is down.
    fn pick_donor(&mut self, idx: usize, at: Nanos) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.replicas.len() {
            if i == idx || self.faults.is_down(i as u32, at) || at < self.replicas[i].available_at {
                continue;
            }
            let rate = self.replicas[i].lifetime_cache().hit_rate();
            let better = match best {
                None => true,
                Some((_, incumbent)) => rate.total_cmp(&incumbent) == std::cmp::Ordering::Greater,
            };
            if better {
                best = Some((i, rate));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Records one lifecycle marker in the cluster's own trace stream.
    fn push_lifecycle(
        &mut self,
        at: Nanos,
        replica: usize,
        marker: Marker,
        request: u64,
        value: u64,
    ) {
        self.lifecycle.push(ClusterTraceRecord {
            replica,
            record: TraceRecord {
                at_ns: at,
                event: fmoe_trace::TraceEvent::Instant {
                    marker,
                    request,
                    layer: NO_LAYER,
                    slot: NO_SLOT,
                    gpu: NO_GPU,
                    value,
                },
            },
        });
    }

    /// Builds the cumulative report.
    fn report(&self) -> ClusterReport {
        let replicas: Vec<ReplicaReport> = self
            .replicas
            .iter()
            .enumerate()
            .map(|(id, replica)| ReplicaReport {
                replica: id,
                results: replica.results.clone(),
                shed: replica.shed.clone(),
                degraded_serves: replica
                    .results
                    .iter()
                    .filter(|r| r.metrics.served_degraded)
                    .count() as u64,
                cache: replica.lifetime_cache(),
                max_queue_depth: replica.max_queue_depth,
                mean_queue_depth: if replica.arrivals == 0 {
                    0.0
                } else {
                    replica.depth_sum as f64 / replica.arrivals as f64
                },
                per_gpu: replica.engine.per_gpu_breakdown().clone(),
            })
            .collect();
        let mut failover = self.failover;
        failover.failover_completed = self
            .replicas
            .iter()
            .flat_map(|r| r.events.iter())
            .filter(|(_, redispatches)| *redispatches > 0)
            .count() as u64;
        ClusterReport {
            replicas,
            routing: self.routing,
            failover,
            failover_shed: self.failover_shed.clone(),
            dispatched: self.dispatched,
            host_cache: self.host_cache.as_ref().map(|h| h.stats()),
        }
    }

    /// Drains every replica's trace sink, joins the cluster's own
    /// lifecycle markers, and merges everything into one timeline:
    /// ordered by `(at_ns, replica id)`, with each replica's per-stream
    /// order preserved among equal keys (engine records before lifecycle
    /// markers at the same instant). Replicas whose sink is disabled
    /// (the default) contribute only lifecycle markers; with an inert
    /// fault schedule there are none, so the merge is byte-identical to
    /// a schedule-free run.
    pub fn take_merged_trace(&mut self) -> Vec<ClusterTraceRecord> {
        let mut merged: Vec<ClusterTraceRecord> = Vec::new();
        for (replica, r) in self.replicas.iter_mut().enumerate() {
            merged.extend(
                r.engine
                    .trace_sink()
                    .take_records()
                    .into_iter()
                    .map(|record| ClusterTraceRecord { replica, record }),
            );
        }
        merged.append(&mut self.lifecycle);
        // Stable by construction: each source stream is time-monotone
        // and concatenated in replica order, so a stable sort yields
        // (at_ns, replica) order with per-stream order intact.
        merged.sort_by_key(|r| (r.record.at_ns, r.replica));
        merged
    }
}
