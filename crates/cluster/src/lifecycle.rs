//! Replica lifecycle policy knobs and failover accounting.

use serde::Serialize;

/// How a restarted replica's cache and Expert Map Store come back after
/// a crash window closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum WarmupMode {
    /// Restart with an empty cache and a reset predictor: every expert
    /// is re-learned from live traffic. The replica accepts requests the
    /// instant its crash window closes.
    Cold,
    /// Seed the restarted replica's cache residency and Expert Map Store
    /// from the healthiest surviving peer (highest lifetime cache hit
    /// rate; ties to the lowest replica id). The copy pays a bulk
    /// transfer cost through the replica's `fmoe-memsim` links, so the
    /// replica rejoins the rotation *later* than a cold restart — the
    /// trade the cluster chaos benchmark quantifies.
    DonorWarmed,
}

impl WarmupMode {
    /// Display name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Cold => "cold",
            Self::DonorWarmed => "donor-warmed",
        }
    }
}

/// Failover policy for crashed replicas' reconciled work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FailoverConfig {
    /// Maximum number of times one request may be re-dispatched after
    /// losing its replica before the cluster sheds it. Guards against a
    /// request ping-ponging through a cascade of crashing replicas.
    pub max_redispatches: u32,
    /// How restarted replicas warm back up.
    pub warmup: WarmupMode,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        Self {
            max_redispatches: 3,
            warmup: WarmupMode::Cold,
        }
    }
}

/// Counters describing replica-lifecycle churn over a dispatch. All zero
/// when the installed [`fmoe_faults::ReplicaFaultSchedule`] is inert.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FailoverStats {
    /// Crash windows that opened (replica outages).
    pub crashes: u64,
    /// Crash windows that closed (replica restarts).
    pub recoveries: u64,
    /// Planned drain windows that opened.
    pub drains: u64,
    /// Re-dispatch attempts: requests a crash invalidated that were
    /// routed to a healthy replica.
    pub failed_over: u64,
    /// Failed-over requests whose re-dispatch ultimately completed (they
    /// stand in some replica's results at report time).
    pub failover_completed: u64,
    /// Requests shed because they exhausted
    /// [`FailoverConfig::max_redispatches`].
    pub failover_shed: u64,
    /// Requests shed because no healthy replica existed to take them
    /// (at arrival or at failover time).
    pub no_healthy_shed: u64,
    /// Donor-warmed restarts that copied state from a peer.
    pub warmup_transfers: u64,
    /// Total bytes moved by warmup transfers (cache residency plus
    /// Expert Map Store snapshots).
    pub warmup_bytes: u64,
    /// Total virtual nanoseconds restarted replicas spent warming up
    /// (unavailable to the router) after their crash windows closed.
    pub warmup_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_mode_names_are_stable() {
        assert_eq!(WarmupMode::Cold.name(), "cold");
        assert_eq!(WarmupMode::DonorWarmed.name(), "donor-warmed");
    }

    #[test]
    fn default_config_is_cold_with_bounded_redispatch() {
        let cfg = FailoverConfig::default();
        assert_eq!(cfg.warmup, WarmupMode::Cold);
        assert!(cfg.max_redispatches >= 1);
        assert_eq!(FailoverStats::default(), FailoverStats::default());
    }
}
