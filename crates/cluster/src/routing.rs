//! Request → replica placement policies.

use serde::Serialize;

/// Tuning for [`RoutingPolicy::SemanticAffinity`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AffinityConfig {
    /// Load-imbalance escape hatch: when the affinity-preferred replica's
    /// queue depth exceeds `imbalance_factor ×` the cluster-mean depth,
    /// the request is routed by join-shortest-queue instead. Larger
    /// values chase cache locality harder at the price of hot spots;
    /// `0.0` degenerates to JSQ whenever the preferred replica has any
    /// queue at all while another is idle.
    pub imbalance_factor: f64,
}

impl Default for AffinityConfig {
    fn default() -> Self {
        Self {
            imbalance_factor: 2.0,
        }
    }
}

/// How the cluster assigns each arriving request to a replica.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum RoutingPolicy {
    /// Cycle through replicas in id order, ignoring load and history.
    RoundRobin,
    /// Route to the replica with the fewest requests still queued or in
    /// service at the arrival instant; ties go to the lowest replica id.
    JoinShortestQueue,
    /// Route to the replica whose predictor reports the highest semantic
    /// affinity to the prompt embedding (ties → lowest replica id),
    /// falling back to join-shortest-queue when no replica has history
    /// yet or when the preferred replica is overloaded per
    /// [`AffinityConfig::imbalance_factor`].
    SemanticAffinity(AffinityConfig),
}

impl RoutingPolicy {
    /// Display name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::RoundRobin => "round-robin",
            Self::JoinShortestQueue => "jsq",
            Self::SemanticAffinity(_) => "semantic-affinity",
        }
    }
}

/// How routing decisions broke down over a dispatch. All zero for the
/// load-only policies; under [`RoutingPolicy::SemanticAffinity`] every
/// request lands in exactly one bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RoutingStats {
    /// Requests placed on their affinity-preferred replica.
    pub affinity_routed: u64,
    /// Requests diverted to JSQ by the imbalance escape hatch.
    pub jsq_fallbacks: u64,
    /// Requests routed by JSQ because no replica had semantic history.
    pub cold_fallbacks: u64,
}

/// Join-shortest-queue over per-replica depths; strict `<` breaks ties
/// toward the lowest replica id. Returns 0 for an empty slice (callers
/// guard against empty clusters).
#[must_use]
pub(crate) fn shortest_queue(depths: &[usize]) -> usize {
    let mut best = 0usize;
    for (i, &d) in depths.iter().enumerate() {
        if d < depths[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shortest_queue_breaks_ties_low() {
        assert_eq!(shortest_queue(&[2, 1, 1, 3]), 1);
        assert_eq!(shortest_queue(&[0, 0, 0]), 0);
        assert_eq!(shortest_queue(&[5]), 0);
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(RoutingPolicy::RoundRobin.name(), "round-robin");
        assert_eq!(RoutingPolicy::JoinShortestQueue.name(), "jsq");
        assert_eq!(
            RoutingPolicy::SemanticAffinity(AffinityConfig::default()).name(),
            "semantic-affinity"
        );
    }
}
