//! Request → replica placement policies.

use serde::Serialize;

/// Tuning for [`RoutingPolicy::SemanticAffinity`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AffinityConfig {
    /// Load-imbalance escape hatch: when the affinity-preferred replica's
    /// queue depth exceeds `imbalance_factor ×` the cluster-mean depth,
    /// the request is routed by join-shortest-queue instead. Larger
    /// values chase cache locality harder at the price of hot spots;
    /// `0.0` degenerates to JSQ whenever the preferred replica has any
    /// queue at all while another is idle.
    pub imbalance_factor: f64,
}

impl Default for AffinityConfig {
    fn default() -> Self {
        Self {
            imbalance_factor: 2.0,
        }
    }
}

/// How the cluster assigns each arriving request to a replica.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum RoutingPolicy {
    /// Cycle through replicas in id order, ignoring load and history.
    RoundRobin,
    /// Route to the replica with the fewest requests still queued or in
    /// service at the arrival instant; ties go to the lowest replica id.
    JoinShortestQueue,
    /// Route to the replica whose predictor reports the highest semantic
    /// affinity to the prompt embedding (ties → lowest replica id),
    /// falling back to join-shortest-queue when no replica has history
    /// yet or when the preferred replica is overloaded per
    /// [`AffinityConfig::imbalance_factor`].
    SemanticAffinity(AffinityConfig),
}

impl RoutingPolicy {
    /// Display name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::RoundRobin => "round-robin",
            Self::JoinShortestQueue => "jsq",
            Self::SemanticAffinity(_) => "semantic-affinity",
        }
    }
}

/// How routing decisions broke down over a dispatch. All zero for the
/// load-only policies; under [`RoutingPolicy::SemanticAffinity`] every
/// request lands in exactly one bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RoutingStats {
    /// Requests placed on their affinity-preferred replica.
    pub affinity_routed: u64,
    /// Requests diverted to JSQ by the imbalance escape hatch.
    pub jsq_fallbacks: u64,
    /// Requests routed by JSQ because no replica had semantic history.
    pub cold_fallbacks: u64,
}

/// Join-shortest-queue over per-replica *effective* depths, considering
/// only healthy replicas. Effective depths are real-valued so brownout
/// penalties compose (see `Cluster::dispatch`); with every replica
/// healthy and un-browned they equal the integer queue depths, making
/// this byte-identical to plain JSQ. Strict `<` under `total_cmp`
/// breaks ties toward the lowest replica id. `None` when no replica is
/// healthy.
#[must_use]
pub(crate) fn shortest_effective_queue(effective: &[f64], healthy: &[bool]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, &d) in effective.iter().enumerate() {
        if !healthy[i] {
            continue;
        }
        let better = match best {
            None => true,
            Some(b) => d.total_cmp(&effective[b]) == std::cmp::Ordering::Less,
        };
        if better {
            best = Some(i);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shortest_effective_queue_breaks_ties_low() {
        let all = [true; 4];
        assert_eq!(
            shortest_effective_queue(&[2.0, 1.0, 1.0, 3.0], &all),
            Some(1)
        );
        assert_eq!(
            shortest_effective_queue(&[0.0, 0.0, 0.0], &all[..3]),
            Some(0)
        );
        assert_eq!(shortest_effective_queue(&[5.0], &all[..1]), Some(0));
    }

    #[test]
    fn shortest_effective_queue_skips_unhealthy() {
        assert_eq!(
            shortest_effective_queue(&[0.0, 4.0, 2.0], &[false, true, true]),
            Some(2)
        );
        assert_eq!(shortest_effective_queue(&[1.0, 2.0], &[false, false]), None);
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(RoutingPolicy::RoundRobin.name(), "round-robin");
        assert_eq!(RoutingPolicy::JoinShortestQueue.name(), "jsq");
        assert_eq!(
            RoutingPolicy::SemanticAffinity(AffinityConfig::default()).name(),
            "semantic-affinity"
        );
    }
}
