//! Cluster-level serving: N independent [`fmoe_serving::ServingEngine`]
//! replicas behind one router.
//!
//! The ROADMAP's north star is a fleet, not a single engine — and fMoE's
//! Expert Map Store (paper §4) gives a cluster router a signal no
//! baseline has: a replica whose store has seen semantically similar
//! prompts will prefetch better, so routing for *cache locality* and
//! routing for *load* pull in different directions. This crate models
//! that tension deterministically, in virtual time:
//!
//! * [`Cluster`] owns the replicas (each with its own cache, transfer
//!   engine, expert-map store, and optional fault schedule) plus
//!   per-replica FIFO queues, and dispatches a shared trace through a
//!   pluggable [`RoutingPolicy`].
//! * [`RoutingPolicy::SemanticAffinity`] routes each request to the
//!   replica whose predictor reports the highest
//!   [`fmoe_serving::ExpertPredictor::semantic_affinity`] to the prompt
//!   embedding (fMoE answers via its `top_k_cosine_slab` fast path),
//!   with a load-imbalance escape hatch that falls back to
//!   join-shortest-queue when the preferred replica's queue exceeds a
//!   configurable factor of the cluster mean.
//! * Replicas are independent FCFS queues driven by
//!   [`fmoe_serving::serve_event_fcfs`], so a 1-replica cluster under
//!   any policy is *exactly* `fmoe_serving::serve` — pinned by tests.
//! * Per-replica `TraceSink`s merge into one cluster timeline
//!   ([`Cluster::take_merged_trace`]) ordered by virtual time with
//!   replica id as the tie-break.
//! * A seeded `fmoe_faults::ReplicaFaultSchedule`
//!   ([`Cluster::set_replica_fault_schedule`]) injects replica crashes,
//!   brownouts, and planned drains: routing becomes health-aware,
//!   crashed replicas' unfinished work fails over to healthy peers
//!   (capped re-dispatch, then shed — counted in [`FailoverStats`]),
//!   and restarts come back cold or donor-warmed ([`WarmupMode`]) with
//!   the warmup copy paying real transfer cost through `fmoe-memsim`.
//!   Lifecycle markers (crash/drain/restart/failover/warmup) land in
//!   the merged timeline; an inert schedule leaves every output
//!   byte-identical to a schedule-free run.
//!
//! Everything follows the workspace determinism contract: no wall clock,
//! no unseeded randomness, `BTreeMap`-only state, byte-identical reports
//! run-to-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod lifecycle;
pub mod report;
pub mod routing;

pub use cluster::{Cluster, ClusterTraceRecord};
pub use lifecycle::{FailoverConfig, FailoverStats, WarmupMode};
pub use report::{ClusterReport, ReplicaReport};
pub use routing::{AffinityConfig, RoutingPolicy, RoutingStats};
