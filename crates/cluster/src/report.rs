//! Aggregated outcome of a cluster dispatch.

use crate::lifecycle::FailoverStats;
use crate::routing::RoutingStats;
use fmoe_cache::CacheStats;
use fmoe_serving::{OnlineResult, PerGpuBreakdown, ShedRequest};
use fmoe_stats::EmpiricalCdf;
use serde::Serialize;

/// One replica's share of a [`ClusterReport`].
#[derive(Debug, Clone, Serialize)]
pub struct ReplicaReport {
    /// Replica id (index in the cluster).
    pub replica: usize,
    /// Served requests, in this replica's arrival order.
    pub results: Vec<OnlineResult>,
    /// Requests the SLO policy shed on this replica, in arrival order.
    pub shed: Vec<ShedRequest>,
    /// How many of `results` were served in degraded mode.
    pub degraded_serves: u64,
    /// Expert-cache counters (hits/misses/evictions) for the replica.
    pub cache: CacheStats,
    /// Peak FIFO queue depth observed at any arrival (the arriving
    /// request included; shed requests never occupy the queue).
    pub max_queue_depth: usize,
    /// Mean queue depth over this replica's arrivals, requests included.
    pub mean_queue_depth: f64,
    /// Per-GPU compute/all2all/transfer attribution inside the replica
    /// (expert parallelism; all-zero on single-GPU replicas that never
    /// load an expert).
    pub per_gpu: PerGpuBreakdown,
}

impl ReplicaReport {
    /// End-to-end latencies of served requests, in nanoseconds.
    #[must_use]
    pub fn latencies_ns(&self) -> Vec<f64> {
        self.results
            .iter()
            .map(|r| r.request_latency_ns() as f64)
            .collect()
    }

    /// Latency quantile in nanoseconds; `None` when nothing was served.
    #[must_use]
    pub fn latency_quantile_ns(&self, q: f64) -> Option<f64> {
        EmpiricalCdf::new(self.latencies_ns()).quantile(q)
    }
}

/// Fleet-wide outcome of [`crate::Cluster::dispatch`].
#[derive(Debug, Clone, Serialize)]
pub struct ClusterReport {
    /// Per-replica breakdown, in replica-id order.
    pub replicas: Vec<ReplicaReport>,
    /// Routing-decision counters (see [`RoutingStats`]).
    pub routing: RoutingStats,
    /// Replica-lifecycle counters (see [`FailoverStats`]); all zero
    /// under an inert (or absent) replica fault schedule.
    pub failover: FailoverStats,
    /// Cluster-level sheds: requests that exhausted their re-dispatch
    /// budget after repeated crashes, or arrived during a full outage.
    /// Disjoint from the per-replica SLO sheds. Empty under an inert
    /// schedule.
    pub failover_shed: Vec<ShedRequest>,
    /// Requests routed by `dispatch` so far (failover re-dispatches
    /// re-route existing requests and do not re-count).
    pub dispatched: u64,
    /// Fleet-wide stats of the shared host-tier cache (the field-wise
    /// merge of its shards), when one was attached via
    /// `Cluster::set_shared_host_cache`. `None` otherwise.
    pub host_cache: Option<CacheStats>,
}

impl ClusterReport {
    /// Total requests served across the fleet.
    #[must_use]
    pub fn total_served(&self) -> usize {
        self.replicas.iter().map(|r| r.results.len()).sum()
    }

    /// Total requests shed across the fleet: per-replica SLO sheds plus
    /// cluster-level failover sheds.
    #[must_use]
    pub fn total_shed(&self) -> usize {
        self.replicas.iter().map(|r| r.shed.len()).sum::<usize>() + self.failover_shed.len()
    }

    /// The zero-lost-requests identity: every dispatched request is
    /// accounted for exactly once, as served (possibly after failover)
    /// or shed (by a replica's SLO policy or by the cluster itself).
    #[must_use]
    pub fn accounting_balances(&self) -> bool {
        self.dispatched == (self.total_served() + self.total_shed()) as u64
    }

    /// Goodput: fraction of dispatched requests that were served.
    #[must_use]
    pub fn goodput(&self) -> f64 {
        let total = self.total_served() + self.total_shed();
        if total == 0 {
            0.0
        } else {
            self.total_served() as f64 / total as f64
        }
    }

    /// Fleet cache hit rate: pooled hits over pooled accesses across all
    /// replica caches — the locality number `SemanticAffinity` exists to
    /// improve.
    #[must_use]
    pub fn fleet_hit_rate(&self) -> f64 {
        let hits: u64 = self.replicas.iter().map(|r| r.cache.hits).sum();
        let misses: u64 = self.replicas.iter().map(|r| r.cache.misses).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// The per-replica lookup identity, fleet-wide: every replica's
    /// lifetime cache stats (and the shared host cache, if attached)
    /// satisfy `hits + misses == lookups`. Restart carry-over merges
    /// snapshots field-wise, which preserves the identity — a
    /// double-counted warmup or rejection would break it here.
    #[must_use]
    pub fn cache_accounting_balances(&self) -> bool {
        self.replicas.iter().all(|r| r.cache.check_invariants())
            && self.host_cache.is_none_or(|h| h.check_invariants())
    }

    /// Fleet-wide end-to-end latency CDF over every served request.
    #[must_use]
    pub fn fleet_latency_cdf(&self) -> EmpiricalCdf {
        EmpiricalCdf::new(
            self.replicas
                .iter()
                .flat_map(ReplicaReport::latencies_ns)
                .collect(),
        )
    }

    /// Fleet-wide latency quantile in nanoseconds; `None` when nothing
    /// was served.
    #[must_use]
    pub fn fleet_latency_quantile_ns(&self, q: f64) -> Option<f64> {
        self.fleet_latency_cdf().quantile(q)
    }
}
