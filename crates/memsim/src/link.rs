//! Interconnect link model.

use crate::clock::Nanos;
use serde::{Deserialize, Serialize};

/// A unidirectional data path with fixed bandwidth and per-transfer setup
/// latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Sustained bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Fixed per-transfer setup latency in nanoseconds (driver + DMA
    /// descriptor overhead).
    pub setup_latency: Nanos,
}

impl Link {
    /// PCIe 4.0 ×16 host↔GPU link as in the paper's testbed: 32 GB/s with
    /// a 10 µs setup cost per transfer.
    #[must_use]
    pub fn pcie4_x16() -> Self {
        Self {
            bandwidth: 32e9,
            setup_latency: 10_000,
        }
    }

    /// Pairwise NVLink between GPUs (3090-class NVLink bridge, ~112 GB/s).
    #[must_use]
    pub fn nvlink() -> Self {
        Self {
            bandwidth: 112e9,
            setup_latency: 5_000,
        }
    }

    /// Pure wire time for `bytes`, excluding setup latency.
    #[must_use]
    pub fn wire_time(&self, bytes: u64) -> Nanos {
        ((bytes as f64 / self.bandwidth) * 1e9).ceil() as Nanos
    }

    /// Total time for a single isolated transfer of `bytes`.
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> Nanos {
        self.setup_latency + self.wire_time(bytes)
    }

    /// Bytes moved in `duration` nanoseconds of pure wire time.
    #[must_use]
    pub fn bytes_in(&self, duration: Nanos) -> f64 {
        self.bandwidth * duration as f64 / 1e9
    }

    /// Fraction of the link's capacity consumed by moving `bytes` over
    /// an `elapsed_ns` observation window (clamped to `[0, 1]`; zero for
    /// an empty window). Used by trace-driven phase breakdowns to report
    /// per-link wire occupancy.
    #[must_use]
    pub fn utilization(&self, bytes: u64, elapsed_ns: Nanos) -> f64 {
        if elapsed_ns == 0 {
            return 0.0;
        }
        let capacity = self.bytes_in(elapsed_ns);
        if capacity <= 0.0 {
            return 0.0;
        }
        (bytes as f64 / capacity).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_expert_transfer_time_is_realistic() {
        // A 352 MB Mixtral expert over 32 GB/s should take ~11 ms.
        let link = Link::pcie4_x16();
        let bytes = 352 * 1024 * 1024;
        let ms = link.transfer_time(bytes) as f64 / 1e6;
        assert!((10.0..13.0).contains(&ms), "{ms} ms");
    }

    #[test]
    fn wire_time_is_linear_in_bytes() {
        let link = Link::pcie4_x16();
        let t1 = link.wire_time(1_000_000);
        let t2 = link.wire_time(2_000_000);
        assert!((t2 as f64 - 2.0 * t1 as f64).abs() <= 2.0);
    }

    #[test]
    fn transfer_includes_setup() {
        let link = Link {
            bandwidth: 1e9,
            setup_latency: 500,
        };
        assert_eq!(link.transfer_time(0), 500);
        assert_eq!(link.transfer_time(1_000_000_000), 500 + 1_000_000_000);
    }

    #[test]
    fn bytes_in_round_trips_wire_time() {
        let link = Link::pcie4_x16();
        let bytes = 64 * 1024 * 1024u64;
        let t = link.wire_time(bytes);
        let back = link.bytes_in(t);
        assert!((back - bytes as f64).abs() / (bytes as f64) < 1e-3);
    }

    #[test]
    fn utilization_is_bounded_and_proportional() {
        let link = Link::pcie4_x16();
        let bytes = 64 * 1024 * 1024u64;
        let wire = link.wire_time(bytes);
        // Moving `bytes` in exactly its wire time saturates the link.
        assert!((link.utilization(bytes, wire) - 1.0).abs() < 1e-3);
        // Twice the window → half the utilization.
        assert!((link.utilization(bytes, wire * 2) - 0.5).abs() < 1e-3);
        // Degenerate windows report zero, and overload clamps to 1.
        assert_eq!(link.utilization(bytes, 0), 0.0);
        assert_eq!(link.utilization(u64::MAX, 1), 1.0);
    }

    #[test]
    fn nvlink_is_faster_than_pcie() {
        let b = 100 * 1024 * 1024;
        assert!(Link::nvlink().transfer_time(b) < Link::pcie4_x16().transfer_time(b));
    }
}
