//! Multi-GPU topology description.

use crate::link::Link;
use serde::{Deserialize, Serialize};

/// Index of a GPU device in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GpuId(pub u32);

impl GpuId {
    /// The id as a `usize` for slice indexing.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A host with `n` GPUs, each with its own host link and device memory.
///
/// Matches the paper's testbed shape: every GPU hangs off its own PCIe 4.0
/// ×16 slot (so host→GPU transfers to different GPUs proceed in parallel),
/// and GPUs are pairwise NVLink-connected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of GPUs.
    pub num_gpus: u32,
    /// Device memory per GPU, in bytes.
    pub gpu_memory_bytes: u64,
    /// Host↔GPU link (one independent instance per GPU).
    pub host_link: Link,
    /// GPU↔GPU link.
    pub peer_link: Link,
    /// Host (CPU) memory in bytes — capacity for offloaded experts.
    pub host_memory_bytes: u64,
}

impl Topology {
    /// The paper's six-GPU testbed: 6× RTX 3090 (24 GB), PCIe 4.0 ×16 to
    /// host, pairwise NVLink, 480 GB host memory.
    #[must_use]
    pub fn paper_testbed() -> Self {
        Self {
            num_gpus: 6,
            gpu_memory_bytes: 24 * (1u64 << 30),
            host_link: Link::pcie4_x16(),
            peer_link: Link::nvlink(),
            host_memory_bytes: 480 * (1u64 << 30),
        }
    }

    /// A single-GPU topology for unit tests and small examples.
    #[must_use]
    pub fn single_gpu(gpu_memory_bytes: u64) -> Self {
        Self {
            num_gpus: 1,
            gpu_memory_bytes,
            host_link: Link::pcie4_x16(),
            peer_link: Link::nvlink(),
            host_memory_bytes: 480 * (1u64 << 30),
        }
    }

    /// Iterator over all GPU ids.
    pub fn gpus(&self) -> impl Iterator<Item = GpuId> {
        (0..self.num_gpus).map(GpuId)
    }

    /// Total GPU memory across the cluster.
    #[must_use]
    pub fn total_gpu_memory(&self) -> u64 {
        u64::from(self.num_gpus) * self.gpu_memory_bytes
    }

    /// Round-robin home GPU for a dense expert index — the paper's expert-
    /// parallel placement ("round-robin manner to balance the overall GPU
    /// load", §5).
    #[must_use]
    pub fn round_robin_gpu(&self, dense_expert_index: usize) -> GpuId {
        GpuId((dense_expert_index % self.num_gpus as usize) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let t = Topology::paper_testbed();
        assert_eq!(t.num_gpus, 6);
        assert_eq!(t.total_gpu_memory(), 6 * 24 * (1u64 << 30));
        assert_eq!(t.gpus().count(), 6);
    }

    #[test]
    fn round_robin_balances() {
        let t = Topology::paper_testbed();
        let mut counts = [0u32; 6];
        for i in 0..600 {
            counts[t.round_robin_gpu(i).index()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100));
    }

    #[test]
    fn single_gpu_topology() {
        let t = Topology::single_gpu(8 << 30);
        assert_eq!(t.num_gpus, 1);
        assert_eq!(t.round_robin_gpu(17), GpuId(0));
    }
}
