//! Multi-GPU topology description.

use crate::link::Link;
use serde::{Deserialize, Serialize};

/// Index of a GPU device in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GpuId(pub u32);

impl GpuId {
    /// The id as a `usize` for slice indexing.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A host with `n` GPUs, each with its own host link and device memory.
///
/// Matches the paper's testbed shape: every GPU hangs off its own PCIe 4.0
/// ×16 slot (so host→GPU transfers to different GPUs proceed in parallel),
/// and GPUs are pairwise NVLink-connected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of GPUs.
    pub num_gpus: u32,
    /// Device memory per GPU, in bytes.
    pub gpu_memory_bytes: u64,
    /// Host↔GPU link (one independent instance per GPU).
    pub host_link: Link,
    /// GPU↔GPU link.
    pub peer_link: Link,
    /// Host (CPU) memory in bytes — capacity for offloaded experts.
    pub host_memory_bytes: u64,
}

impl Topology {
    /// Start a validated [`TopologyBuilder`], seeded with the paper's
    /// per-GPU defaults (24 GiB devices, PCIe 4.0 ×16 host links,
    /// pairwise NVLink, 480 GiB host memory) and a single GPU.
    #[must_use]
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// The paper's six-GPU testbed: 6× RTX 3090 (24 GB), PCIe 4.0 ×16 to
    /// host, pairwise NVLink, 480 GB host memory.
    #[must_use]
    pub fn paper_testbed() -> Self {
        Self {
            num_gpus: 6,
            gpu_memory_bytes: 24 * (1u64 << 30),
            host_link: Link::pcie4_x16(),
            peer_link: Link::nvlink(),
            host_memory_bytes: 480 * (1u64 << 30),
        }
    }

    /// A single-GPU topology for unit tests and small examples.
    #[must_use]
    pub fn single_gpu(gpu_memory_bytes: u64) -> Self {
        Self {
            num_gpus: 1,
            gpu_memory_bytes,
            host_link: Link::pcie4_x16(),
            peer_link: Link::nvlink(),
            host_memory_bytes: 480 * (1u64 << 30),
        }
    }

    /// Iterator over all GPU ids.
    pub fn gpus(&self) -> impl Iterator<Item = GpuId> {
        (0..self.num_gpus).map(GpuId)
    }

    /// Total GPU memory across the cluster.
    #[must_use]
    pub fn total_gpu_memory(&self) -> u64 {
        u64::from(self.num_gpus) * self.gpu_memory_bytes
    }

    /// Round-robin home GPU for a dense expert index — the paper's expert-
    /// parallel placement ("round-robin manner to balance the overall GPU
    /// load", §5).
    #[must_use]
    pub fn round_robin_gpu(&self, dense_expert_index: usize) -> GpuId {
        GpuId((dense_expert_index % self.num_gpus as usize) as u32)
    }
}

/// Why a [`TopologyBuilder::build`] call was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// `num_gpus` was zero — a topology needs at least one device.
    ZeroGpus,
    /// Per-GPU device memory was zero.
    ZeroGpuMemory,
    /// Host memory was zero — the offload tier needs somewhere to live.
    ZeroHostMemory,
}

impl core::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::ZeroGpus => write!(f, "topology must have at least one GPU"),
            Self::ZeroGpuMemory => write!(f, "per-GPU memory must be non-zero"),
            Self::ZeroHostMemory => write!(f, "host memory must be non-zero"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Validated builder for [`Topology`] — the one construction path for
/// custom shapes. Rejects degenerate configurations (`num_gpus == 0`,
/// zero device or host memory) that the raw struct literal would let
/// through into division-by-zero land.
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    num_gpus: u32,
    gpu_memory_bytes: u64,
    host_link: Link,
    peer_link: Link,
    host_memory_bytes: u64,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        Self {
            num_gpus: 1,
            gpu_memory_bytes: 24 * (1u64 << 30),
            host_link: Link::pcie4_x16(),
            peer_link: Link::nvlink(),
            host_memory_bytes: 480 * (1u64 << 30),
        }
    }
}

impl TopologyBuilder {
    /// Number of GPUs in the replica.
    #[must_use]
    pub fn num_gpus(mut self, n: u32) -> Self {
        self.num_gpus = n;
        self
    }

    /// Device memory per GPU, in bytes.
    #[must_use]
    pub fn gpu_memory_bytes(mut self, bytes: u64) -> Self {
        self.gpu_memory_bytes = bytes;
        self
    }

    /// Host↔GPU link (one independent instance per GPU).
    #[must_use]
    pub fn host_link(mut self, link: Link) -> Self {
        self.host_link = link;
        self
    }

    /// GPU↔GPU peer link used by peer fetches and the EP all2all.
    #[must_use]
    pub fn peer_link(mut self, link: Link) -> Self {
        self.peer_link = link;
        self
    }

    /// Host (CPU) memory in bytes.
    #[must_use]
    pub fn host_memory_bytes(mut self, bytes: u64) -> Self {
        self.host_memory_bytes = bytes;
        self
    }

    /// Validate and build the topology.
    ///
    /// # Errors
    /// Returns a [`TopologyError`] when the shape is degenerate:
    /// zero GPUs, zero per-GPU memory, or zero host memory.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.num_gpus == 0 {
            return Err(TopologyError::ZeroGpus);
        }
        if self.gpu_memory_bytes == 0 {
            return Err(TopologyError::ZeroGpuMemory);
        }
        if self.host_memory_bytes == 0 {
            return Err(TopologyError::ZeroHostMemory);
        }
        Ok(Topology {
            num_gpus: self.num_gpus,
            gpu_memory_bytes: self.gpu_memory_bytes,
            host_link: self.host_link,
            peer_link: self.peer_link,
            host_memory_bytes: self.host_memory_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let t = Topology::paper_testbed();
        assert_eq!(t.num_gpus, 6);
        assert_eq!(t.total_gpu_memory(), 6 * 24 * (1u64 << 30));
        assert_eq!(t.gpus().count(), 6);
    }

    #[test]
    fn round_robin_balances() {
        let t = Topology::paper_testbed();
        let mut counts = [0u32; 6];
        for i in 0..600 {
            counts[t.round_robin_gpu(i).index()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100));
    }

    #[test]
    fn single_gpu_topology() {
        let t = Topology::single_gpu(8 << 30);
        assert_eq!(t.num_gpus, 1);
        assert_eq!(t.round_robin_gpu(17), GpuId(0));
    }

    #[test]
    fn builder_matches_presets() {
        let built = Topology::builder()
            .num_gpus(6)
            .gpu_memory_bytes(24 * (1u64 << 30))
            .build()
            .expect("paper shape is valid");
        assert_eq!(built, Topology::paper_testbed());
        let single = Topology::builder()
            .gpu_memory_bytes(8 << 30)
            .build()
            .expect("single-GPU shape is valid");
        assert_eq!(single, Topology::single_gpu(8 << 30));
    }

    #[test]
    fn builder_rejects_degenerate_shapes() {
        assert_eq!(
            Topology::builder().num_gpus(0).build(),
            Err(TopologyError::ZeroGpus)
        );
        assert_eq!(
            Topology::builder().gpu_memory_bytes(0).build(),
            Err(TopologyError::ZeroGpuMemory)
        );
        assert_eq!(
            Topology::builder().host_memory_bytes(0).build(),
            Err(TopologyError::ZeroHostMemory)
        );
        assert!(TopologyError::ZeroGpus.to_string().contains("GPU"));
    }
}
