//! Hardware substrate simulator for the fMoE reproduction.
//!
//! The paper's testbed is six RTX 3090s connected to host memory over
//! PCIe 4.0 ×16 (32 GB/s). Offloading systems live and die by how expert
//! weight traffic interleaves with compute on that fabric:
//!
//! * prefetches run *in the background*, overlapping compute;
//! * a mispredicted expert triggers an **on-demand load** that blocks the
//!   forward pass and — in fMoE's design (§4.5) — *pauses all prefetch
//!   traffic* until the missed expert arrives;
//! * every byte of bandwidth spent on a wrong prefetch delays later
//!   traffic.
//!
//! This crate models exactly that: a [`clock::VirtualClock`] in integer
//! nanoseconds, [`link::Link`] descriptions of PCIe/NVLink paths, per-GPU
//! [`topology::Topology`], and a [`transfer::TransferEngine`] that
//! simulates per-link FIFO prefetch queues with preemptive on-demand
//! loads. It is policy-agnostic: jobs are opaque `u64` tags.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod all2all;
pub mod clock;
pub mod link;
pub mod topology;
pub mod transfer;

pub use all2all::{all2all_layer_time, gate_skew, All2AllBackend};
pub use clock::{Nanos, VirtualClock};
pub use link::Link;
pub use topology::{GpuId, Topology, TopologyBuilder, TopologyError};
pub use transfer::{
    FailedTransfer, OnDemandOutcome, RetryPolicy, TransferClass, TransferEngine, TransferError,
    TransferStats,
};

pub use fmoe_faults::FaultSchedule;

#[cfg(test)]
mod proptests;
