//! Virtual time.

use serde::{Deserialize, Serialize};

/// Virtual nanoseconds since simulation start.
pub type Nanos = u64;

/// One millisecond in [`Nanos`].
pub const MILLISECOND: Nanos = 1_000_000;

/// One second in [`Nanos`].
pub const SECOND: Nanos = 1_000_000_000;

/// A monotonically advancing virtual clock.
///
/// The serving engine owns the clock and advances it as compute, transfer
/// and queueing delays accrue; everything downstream (metrics, traces)
/// reads time from here. Virtual time never goes backward — attempting to
/// do so is a simulation bug and panics loudly rather than corrupting
/// results.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualClock {
    now: Nanos,
}

impl VirtualClock {
    /// A clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self { now: 0 }
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Advances the clock by `delta` nanoseconds and returns the new time.
    pub fn advance(&mut self, delta: Nanos) -> Nanos {
        self.now += delta;
        self.now
    }

    /// Moves the clock forward to `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is in the past — the simulation must never
    /// rewind.
    pub fn advance_to(&mut self, target: Nanos) -> Nanos {
        assert!(
            target >= self.now,
            "clock cannot rewind: now={}, target={}",
            self.now,
            target
        );
        self.now = target;
        self.now
    }

    /// Convenience: the current time in fractional milliseconds.
    #[must_use]
    pub fn now_ms(&self) -> f64 {
        self.now as f64 / MILLISECOND as f64
    }
}

/// Converts virtual nanoseconds to fractional milliseconds.
#[must_use]
pub fn to_ms(t: Nanos) -> f64 {
    t as f64 / MILLISECOND as f64
}

/// Converts virtual nanoseconds to fractional seconds.
#[must_use]
pub fn to_secs(t: Nanos) -> f64 {
    t as f64 / SECOND as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(5), 5);
        assert_eq!(c.advance_to(100), 100);
        assert_eq!(c.now(), 100);
    }

    #[test]
    fn advance_to_current_time_is_a_noop() {
        let mut c = VirtualClock::new();
        c.advance(10);
        assert_eq!(c.advance_to(10), 10);
    }

    #[test]
    #[should_panic(expected = "cannot rewind")]
    fn clock_refuses_to_rewind() {
        let mut c = VirtualClock::new();
        c.advance(10);
        c.advance_to(9);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(to_ms(1_500_000), 1.5);
        assert_eq!(to_secs(2_000_000_000), 2.0);
        let mut c = VirtualClock::new();
        c.advance(2 * MILLISECOND);
        assert_eq!(c.now_ms(), 2.0);
    }
}
