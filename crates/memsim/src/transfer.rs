//! The transfer engine: per-GPU host↔device links with background
//! prefetch queues and preemptive on-demand loads.
//!
//! Semantics (matching the paper's §4.5 "On-demand expert loading"):
//!
//! * Prefetch jobs are FIFO per link and consume bandwidth in the
//!   background while virtual time advances.
//! * An on-demand load **pauses** the link's prefetch queue, transfers
//!   immediately, and the queue resumes afterward — "fMoE pauses all
//!   expert prefetching tasks and immediately loads missed experts".
//! * Jobs can be cancelled while still queued (e.g. the target layer has
//!   already executed, or the expert arrived via an on-demand load).
//!
//! The engine is purely virtual-time driven: callers advance it explicitly
//! and collect completion events. Job identity is an opaque `u64` tag.
//!
//! # Failure semantics
//!
//! An optional [`FaultSchedule`] (see [`TransferEngine::set_fault_schedule`])
//! makes the link fabric imperfect:
//!
//! * bandwidth-degradation windows scale wire time; full stalls freeze the
//!   link (including setup) until the window closes;
//! * a job reaching its last byte may suffer a **transient failure**: its
//!   bytes are discarded and it re-enqueues at the tail with capped
//!   exponential backoff (virtual time, see [`RetryPolicy`]); after
//!   `max_retries` it fails permanently and is reported via
//!   [`TransferEngine::drain_failures`];
//! * on-demand loads accept a deadline
//!   ([`TransferEngine::on_demand_load_with_deadline`]): when the projected
//!   completion overshoots it, the engine falls back to a smaller degraded
//!   payload (e.g. half precision) instead of blocking indefinitely.
//!
//! With no schedule installed — or [`FaultSchedule::none`] — every code
//! path below is byte-identical to the fault-free engine.

use crate::clock::Nanos;
use crate::link::Link;
use crate::topology::{GpuId, Topology};
use fmoe_faults::FaultSchedule;
use fmoe_trace::{Marker, Phase, TraceSink, NO_LAYER, NO_REQUEST, NO_SLOT};
use serde::Serialize;
use std::collections::VecDeque;
use std::fmt;

/// Bandwidth factors below this are treated as a full stall to avoid
/// astronomically scaled wire times.
const STALL_EPSILON: f64 = 1e-6;

/// Typed error for fallible transfer operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferError {
    /// The GPU index is outside the engine's topology.
    UnknownGpu {
        /// The offending GPU index.
        gpu: u32,
        /// Number of GPUs the engine was built with.
        num_gpus: usize,
    },
    /// A load could not finish by its deadline, even degraded.
    DeadlineExceeded {
        /// Projected completion time of the (possibly degraded) load.
        projected: Nanos,
        /// The deadline that was missed.
        deadline: Nanos,
    },
}

impl fmt::Display for TransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferError::UnknownGpu { gpu, num_gpus } => {
                write!(f, "GPU {gpu} outside topology of {num_gpus} GPUs")
            }
            TransferError::DeadlineExceeded {
                projected,
                deadline,
            } => write!(
                f,
                "load projected to finish at {projected} ns, past deadline {deadline} ns"
            ),
        }
    }
}

impl std::error::Error for TransferError {}

/// Retry/backoff policy for transient transfer failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct RetryPolicy {
    /// Retries before a job fails permanently.
    pub max_retries: u32,
    /// Backoff before the first retry, virtual ns.
    pub base_backoff_ns: Nanos,
    /// Cap on the exponentially growing backoff, virtual ns.
    pub max_backoff_ns: Nanos,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 6,
            base_backoff_ns: 50_000,
            max_backoff_ns: 5_000_000,
        }
    }
}

impl RetryPolicy {
    /// Backoff after the `attempt`-th failed attempt (0-based), doubling
    /// each time up to the cap.
    #[must_use]
    pub fn backoff_after(&self, attempt: u32) -> Nanos {
        let shift = attempt.min(20);
        self.base_backoff_ns
            .saturating_mul(1 << shift)
            .min(self.max_backoff_ns)
    }
}

/// A prefetch job that exhausted its retries and failed permanently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailedTransfer {
    /// The job's tag, as passed to `submit_prefetch`.
    pub tag: u64,
    /// GPU whose link carried the job.
    pub gpu: GpuId,
    /// Virtual time of the final failed attempt.
    pub failed_at: Nanos,
    /// Total attempts made (initial + retries).
    pub attempts: u32,
}

/// Result of an on-demand load performed under a deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnDemandOutcome {
    /// Virtual time at which the load completed.
    pub completed_at: Nanos,
    /// Bytes actually moved (the fallback size when degraded).
    pub bytes_loaded: u64,
    /// Whether the engine fell back to the degraded payload.
    pub degraded: bool,
    /// Whether even the final payload missed the deadline.
    pub missed_deadline: bool,
    /// Transient-failure retries absorbed by this load.
    pub retries: u32,
}

/// Class of a transfer, for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TransferClass {
    /// Background prefetch (overlaps compute).
    Prefetch,
    /// Blocking on-demand load (expert miss).
    OnDemand,
}

/// A completed prefetch job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The job's tag, as passed to `submit_prefetch`.
    pub tag: u64,
    /// GPU whose link carried the job.
    pub gpu: GpuId,
    /// Virtual time at which the last byte arrived.
    pub completed_at: Nanos,
    /// Size of the transferred payload.
    pub bytes: u64,
}

/// Aggregate transfer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct TransferStats {
    /// Completed prefetch jobs.
    pub prefetch_jobs: u64,
    /// Bytes moved by completed prefetch jobs.
    pub prefetch_bytes: u64,
    /// On-demand loads performed.
    pub on_demand_loads: u64,
    /// Bytes moved on demand.
    pub on_demand_bytes: u64,
    /// Total virtual nanoseconds spent blocked on on-demand loads.
    pub on_demand_blocked_ns: Nanos,
    /// Prefetch jobs cancelled before completion.
    pub cancelled_jobs: u64,
    /// Transient faults injected by the active fault schedule.
    pub faults_injected: u64,
    /// Retry attempts re-enqueued after transient failures.
    pub retries: u64,
    /// Prefetch jobs that exhausted retries and failed permanently.
    pub failed_jobs: u64,
    /// Total virtual nanoseconds of retry backoff delay.
    pub backoff_ns: Nanos,
    /// On-demand loads that fell back to a degraded payload to meet a
    /// deadline.
    pub degraded_on_demand: u64,
    /// On-demand loads that missed their deadline outright.
    pub missed_deadlines: u64,
    /// Warm-restart cache-seeding bulk loads performed.
    pub warmup_loads: u64,
    /// Bytes moved by warm-restart cache seeding.
    pub warmup_bytes: u64,
    /// Total virtual nanoseconds spent inside warmup transfers.
    pub warmup_ns: Nanos,
}

#[derive(Debug, Clone)]
struct Job {
    tag: u64,
    setup_remaining: Nanos,
    bytes_remaining: f64,
    total_bytes: u64,
    /// 0-based attempt number (incremented on each transient failure).
    attempt: u32,
    /// Retry backoff: the job makes no progress before this instant.
    not_before: Nanos,
}

#[derive(Debug, Clone)]
struct LinkState {
    link: Link,
    queue: VecDeque<Job>,
    synced_at: Nanos,
}

impl LinkState {
    /// Simulates the link from `synced_at` to `target`, popping completed
    /// jobs into `completions`.
    fn advance_to(&mut self, target: Nanos, gpu: GpuId, completions: &mut Vec<Completion>) {
        debug_assert!(target >= self.synced_at, "link time cannot rewind");
        let mut now = self.synced_at;
        while now < target {
            let Some(job) = self.queue.front_mut() else {
                break;
            };
            let budget = target - now;
            // Pay setup first.
            if job.setup_remaining > 0 {
                let pay = job.setup_remaining.min(budget);
                job.setup_remaining -= pay;
                now += pay;
                continue;
            }
            // Then wire time.
            let wire_needed = self.link.wire_time(job.bytes_remaining.ceil() as u64);
            if wire_needed > budget {
                job.bytes_remaining -= self.link.bytes_in(budget);
                job.bytes_remaining = job.bytes_remaining.max(0.0);
                now = target;
            } else {
                now += wire_needed;
                if let Some(job) = self.queue.pop_front() {
                    completions.push(Completion {
                        tag: job.tag,
                        gpu,
                        completed_at: now,
                        bytes: job.total_bytes,
                    });
                }
            }
        }
        self.synced_at = target;
    }

    /// Fault-aware variant of [`Self::advance_to`]: integrates link
    /// progress piecewise over the schedule's bandwidth segments, honors
    /// retry backoff, and injects transient failures at completion
    /// instants.
    #[allow(clippy::too_many_arguments)]
    fn advance_to_faulty(
        &mut self,
        target: Nanos,
        gpu: GpuId,
        completions: &mut Vec<Completion>,
        failures: &mut Vec<FailedTransfer>,
        schedule: &FaultSchedule,
        retry: &RetryPolicy,
        stats: &mut TransferStats,
        trace: &TraceSink,
    ) {
        debug_assert!(target >= self.synced_at, "link time cannot rewind");
        let gpu_idx = gpu.index() as u32;
        let mut now = self.synced_at;
        while now < target {
            if self.queue.is_empty() {
                break;
            }
            let seg = schedule.link_segment(gpu_idx, now);
            let seg_end = seg.until.min(target);
            // A stall freezes the link — setup included — to the end of
            // the window.
            if seg.factor < STALL_EPSILON {
                now = seg_end.max(now + 1).min(target);
                continue;
            }
            let Some(job) = self.queue.front_mut() else {
                break;
            };
            // Retry backoff: the head-of-line job sits idle until
            // eligible (failed jobs re-enqueue at the tail, so this only
            // stalls the link once the queue has drained to them).
            if job.not_before > now {
                now = job.not_before.min(seg_end);
                continue;
            }
            let budget = seg_end - now;
            if budget == 0 {
                now = seg_end.max(now + 1).min(target);
                continue;
            }
            // Setup latency runs at nominal speed under degradation.
            if job.setup_remaining > 0 {
                let pay = job.setup_remaining.min(budget);
                job.setup_remaining -= pay;
                now += pay;
                continue;
            }
            // Wire time is stretched by the reciprocal bandwidth factor.
            let wire_nominal = self.link.wire_time(job.bytes_remaining.ceil() as u64);
            let wire_needed = scale_wire_time(wire_nominal, seg.factor);
            if wire_needed > budget {
                job.bytes_remaining -= self.link.bytes_in(budget) * seg.factor;
                job.bytes_remaining = job.bytes_remaining.max(0.0);
                now = seg_end;
            } else {
                now += wire_needed;
                let Some(mut job) = self.queue.pop_front() else {
                    break;
                };
                if schedule.fails_transfer(gpu_idx, job.tag, job.attempt) {
                    stats.faults_injected += 1;
                    if job.attempt >= retry.max_retries {
                        stats.failed_jobs += 1;
                        failures.push(FailedTransfer {
                            tag: job.tag,
                            gpu,
                            failed_at: now,
                            attempts: job.attempt + 1,
                        });
                    } else {
                        let backoff = retry.backoff_after(job.attempt);
                        stats.retries += 1;
                        stats.backoff_ns += backoff;
                        trace.instant(
                            now,
                            Marker::TransferRetry,
                            NO_REQUEST,
                            NO_LAYER,
                            NO_SLOT,
                            gpu.0,
                            backoff,
                        );
                        trace.count("transfer.retries", 1);
                        job.attempt += 1;
                        job.setup_remaining = self.link.setup_latency;
                        job.bytes_remaining = job.total_bytes as f64;
                        job.not_before = now + backoff;
                        self.queue.push_back(job);
                    }
                } else {
                    completions.push(Completion {
                        tag: job.tag,
                        gpu,
                        completed_at: now,
                        bytes: job.total_bytes,
                    });
                }
            }
        }
        self.synced_at = target;
    }
}

/// Stretches nominal wire time by `1 / factor`, saturating.
fn scale_wire_time(nominal: Nanos, factor: f64) -> Nanos {
    if factor >= 1.0 {
        return nominal;
    }
    let scaled = (nominal as f64 / factor).ceil();
    if scaled >= Nanos::MAX as f64 {
        Nanos::MAX
    } else {
        scaled as Nanos
    }
}

/// Duration of an isolated (queue-frozen) transfer of `bytes` starting at
/// `start`, integrating the schedule's bandwidth segments.
fn faulty_transfer_duration(
    link: &Link,
    schedule: &FaultSchedule,
    gpu: u32,
    bytes: u64,
    start: Nanos,
) -> Nanos {
    let mut t = start;
    let mut setup = link.setup_latency;
    let mut wire_remaining = link.wire_time(bytes) as f64;
    loop {
        let seg = schedule.link_segment(gpu, t);
        let seg_end = seg.until;
        if seg.factor < STALL_EPSILON {
            // Stalled: jump to the end of the window (finite by
            // construction — windows have bounded ends).
            t = seg_end.max(t + 1);
            continue;
        }
        if setup > 0 {
            let span = seg_end.saturating_sub(t);
            let pay = setup.min(span);
            setup -= pay;
            t += pay;
            if setup > 0 {
                continue;
            }
        }
        let span_left = seg_end.saturating_sub(t);
        let wire_here = span_left as f64 * seg.factor;
        if wire_remaining <= wire_here {
            return t + (wire_remaining / seg.factor).ceil() as Nanos;
        }
        wire_remaining -= wire_here;
        t = seg_end;
    }
}

/// Per-GPU transfer simulation. See the module docs for semantics.
///
/// ```
/// use fmoe_memsim::{GpuId, Topology, TransferEngine};
///
/// let mut engine = TransferEngine::new(&Topology::single_gpu(8 << 30));
/// engine.submit_prefetch(GpuId(0), 1, 32 << 20, 0);
/// // An on-demand load pauses the prefetch and runs immediately.
/// let done = engine.on_demand_load(GpuId(0), 32 << 20, 0);
/// engine.advance_to(done + 20_000_000);
/// // The paused prefetch finished after the on-demand load.
/// let completions = engine.drain_completions();
/// assert_eq!(completions.len(), 1);
/// assert!(completions[0].completed_at > done);
/// ```
#[derive(Debug, Clone)]
pub struct TransferEngine {
    links: Vec<LinkState>,
    completions: Vec<Completion>,
    failures: Vec<FailedTransfer>,
    stats: TransferStats,
    faults: Option<FaultSchedule>,
    retry: RetryPolicy,
    /// Sequence counter giving each on-demand load a distinct identity
    /// for deterministic failure decisions.
    on_demand_seq: u64,
    /// Observability sink; disabled by default (zero-cost no-op).
    trace: TraceSink,
}

/// Pure projection of one on-demand load under the active fault
/// schedule: where it lands, how many transient retries it absorbed,
/// and how much backoff delay those retries added.
#[derive(Debug, Clone, Copy)]
struct OnDemandProjection {
    done: Nanos,
    retries: u32,
    backoff_ns: Nanos,
}

impl TransferEngine {
    /// Creates an engine with one independent host link per GPU in the
    /// topology.
    #[must_use]
    pub fn new(topology: &Topology) -> Self {
        let links = topology
            .gpus()
            .map(|_| LinkState {
                link: topology.host_link,
                queue: VecDeque::new(),
                synced_at: 0,
            })
            .collect();
        Self {
            links,
            completions: Vec::new(),
            failures: Vec::new(),
            stats: TransferStats::default(),
            faults: None,
            retry: RetryPolicy::default(),
            on_demand_seq: 0,
            trace: TraceSink::disabled(),
        }
    }

    /// Installs an observability sink. Transfer spans, retry markers,
    /// and counters are emitted into it; with a disabled sink (the
    /// default) every emission is a no-op and timings are untouched.
    pub fn set_trace_sink(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    /// Installs a fault schedule. An inert schedule
    /// ([`FaultSchedule::is_inert`]) is normalized to "no schedule" so
    /// the fault-free fast path stays byte-identical.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.faults = if schedule.is_inert() {
            None
        } else {
            Some(schedule)
        };
    }

    /// The active fault schedule, if any non-inert one is installed.
    #[must_use]
    pub fn fault_schedule(&self) -> Option<&FaultSchedule> {
        self.faults.as_ref()
    }

    /// Overrides the retry/backoff policy for transient failures.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The active retry/backoff policy.
    #[must_use]
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    fn link_mut(&mut self, gpu: GpuId) -> &mut LinkState {
        &mut self.links[gpu.index()]
    }

    /// Validates a GPU index against the topology.
    fn check_gpu(&self, gpu: GpuId) -> Result<(), TransferError> {
        if gpu.index() < self.links.len() {
            Ok(())
        } else {
            Err(TransferError::UnknownGpu {
                gpu: gpu.0,
                num_gpus: self.links.len(),
            })
        }
    }

    /// Advances every link to `now`, accruing prefetch progress.
    pub fn advance_to(&mut self, now: Nanos) {
        let Self {
            links,
            completions,
            failures,
            stats,
            faults,
            retry,
            trace,
            ..
        } = self;
        for (i, link) in links.iter_mut().enumerate() {
            if now > link.synced_at {
                match faults {
                    Some(schedule)
                        if !schedule.link_is_clean(i as u32) || schedule.failure_rate() > 0.0 =>
                    {
                        link.advance_to_faulty(
                            now,
                            GpuId(i as u32),
                            completions,
                            failures,
                            schedule,
                            retry,
                            stats,
                            trace,
                        );
                    }
                    _ => link.advance_to(now, GpuId(i as u32), completions),
                }
            }
        }
        // Account completed prefetches.
        // (Stats are updated on drain to keep this hot path cheap.)
    }

    /// Enqueues a background prefetch of `bytes` to `gpu`.
    ///
    /// The engine is first advanced to `now`; the job then joins the tail
    /// of the link's FIFO queue.
    pub fn submit_prefetch(&mut self, gpu: GpuId, tag: u64, bytes: u64, now: Nanos) {
        self.advance_to(now);
        let setup = self.links[gpu.index()].link.setup_latency;
        self.link_mut(gpu).queue.push_back(Job {
            tag,
            setup_remaining: setup,
            bytes_remaining: bytes as f64,
            total_bytes: bytes,
            attempt: 0,
            not_before: 0,
        });
    }

    /// Performs a blocking on-demand load of `bytes` to `gpu` starting at
    /// `now`, pausing the link's prefetch queue for its duration.
    ///
    /// Returns the virtual time at which the load completes. Under an
    /// active fault schedule the duration reflects bandwidth windows and
    /// transient-failure retries (without a deadline the load retries
    /// until the policy's cap, then completes regardless — an on-demand
    /// load cannot be abandoned, the forward pass needs the weights).
    pub fn on_demand_load(&mut self, gpu: GpuId, bytes: u64, now: Nanos) -> Nanos {
        self.advance_to(now);
        let done = match &self.faults {
            None => now + self.links[gpu.index()].link.transfer_time(bytes),
            Some(_) => {
                let od_tag = self.next_on_demand_tag();
                let proj = self.project_on_demand(gpu, od_tag, bytes, now);
                self.account_on_demand_retries(&proj);
                proj.done
            }
        };
        let link = self.link_mut(gpu);
        // The prefetch queue is frozen during [now, done): simply declare
        // the link already synced to `done` without giving jobs progress.
        link.synced_at = done;
        self.stats.on_demand_loads += 1;
        self.stats.on_demand_bytes += bytes;
        self.stats.on_demand_blocked_ns += done - now;
        self.trace.span(
            done,
            Phase::Transfer,
            NO_REQUEST,
            NO_LAYER,
            gpu.0,
            done - now,
            bytes,
        );
        self.trace.count("transfer.on_demand_loads", 1);
        done
    }

    /// A warm-restart seeding transfer: one bulk load of `bytes` onto
    /// `gpu`'s link starting at `now`, returning the completion instant.
    ///
    /// Used when a restarted cluster replica copies cache residency (and
    /// its donor's Expert Map Store snapshot) from a healthy peer. The
    /// transfer occupies the link exactly like an on-demand load — the
    /// prefetch queue makes no progress until it completes — but is
    /// booked under separate warmup counters so recovery cost stays
    /// distinguishable from steady-state miss servicing. Faults on the
    /// link (degradation windows, transient failures) apply as usual.
    pub fn warmup_load(&mut self, gpu: GpuId, bytes: u64, now: Nanos) -> Nanos {
        self.advance_to(now);
        let done = match &self.faults {
            None => now + self.links[gpu.index()].link.transfer_time(bytes),
            Some(_) => {
                let od_tag = self.next_on_demand_tag();
                let proj = self.project_on_demand(gpu, od_tag, bytes, now);
                self.account_on_demand_retries(&proj);
                proj.done
            }
        };
        let link = self.link_mut(gpu);
        link.synced_at = done;
        self.stats.warmup_loads += 1;
        self.stats.warmup_bytes += bytes;
        self.stats.warmup_ns += done - now;
        self.trace.span(
            done,
            Phase::Transfer,
            NO_REQUEST,
            NO_LAYER,
            gpu.0,
            done - now,
            bytes,
        );
        self.trace.count("transfer.warmup_loads", 1);
        done
    }

    /// Like [`Self::on_demand_load`], but with a completion deadline and
    /// a degraded fallback payload (typically half-precision weights).
    ///
    /// When the projected completion of the full payload overshoots
    /// `deadline`, the engine loads `fallback_bytes` instead and flags
    /// the outcome as degraded. If even the fallback misses the deadline
    /// the load still runs to completion (the simulation must progress),
    /// with `missed_deadline` set so callers can account an SLO
    /// violation.
    pub fn on_demand_load_with_deadline(
        &mut self,
        gpu: GpuId,
        bytes: u64,
        now: Nanos,
        deadline: Nanos,
        fallback_bytes: u64,
    ) -> Result<OnDemandOutcome, TransferError> {
        self.check_gpu(gpu)?;
        self.advance_to(now);
        // One logical load = one on-demand identity, even when both the
        // full and fallback payloads are projected: faults, retries, and
        // backoff are accounted only for the projection actually taken.
        let od_tag = match &self.faults {
            None => None,
            Some(_) => Some(self.next_on_demand_tag()),
        };
        let project = |eng: &Self, payload: u64| match od_tag {
            None => OnDemandProjection {
                done: now + eng.links[gpu.index()].link.transfer_time(payload),
                retries: 0,
                backoff_ns: 0,
            },
            Some(tag) => eng.project_on_demand(gpu, tag, payload, now),
        };
        let full = project(self, bytes);
        let (chosen, bytes_loaded, degraded) = if full.done > deadline && fallback_bytes < bytes {
            (project(self, fallback_bytes), fallback_bytes, true)
        } else {
            (full, bytes, false)
        };
        let done = chosen.done;
        let retries = chosen.retries;
        let missed_deadline = done > deadline;
        self.account_on_demand_retries(&chosen);
        let link = self.link_mut(gpu);
        link.synced_at = done;
        self.stats.on_demand_loads += 1;
        self.stats.on_demand_bytes += bytes_loaded;
        self.stats.on_demand_blocked_ns += done - now;
        if degraded {
            self.stats.degraded_on_demand += 1;
        }
        if missed_deadline {
            self.stats.missed_deadlines += 1;
        }
        self.trace.span(
            done,
            Phase::Transfer,
            NO_REQUEST,
            NO_LAYER,
            gpu.0,
            done - now,
            bytes_loaded,
        );
        self.trace.count("transfer.on_demand_loads", 1);
        if degraded {
            self.trace.instant(
                done,
                Marker::OnDemandDegraded,
                NO_REQUEST,
                NO_LAYER,
                NO_SLOT,
                gpu.0,
                bytes_loaded,
            );
            self.trace.count("transfer.degraded_on_demand", 1);
        }
        if missed_deadline {
            self.trace.instant(
                done,
                Marker::MissedDeadline,
                NO_REQUEST,
                NO_LAYER,
                NO_SLOT,
                gpu.0,
                done - deadline,
            );
            self.trace.count("transfer.missed_deadlines", 1);
        }
        Ok(OnDemandOutcome {
            completed_at: done,
            bytes_loaded,
            degraded,
            missed_deadline,
            retries,
        })
    }

    /// Allocates the next on-demand identity. The high bit marks the tag
    /// space as on-demand so failure decisions never collide with
    /// prefetch tags. Exactly one identity is consumed per logical load.
    fn next_on_demand_tag(&mut self) -> u64 {
        self.on_demand_seq += 1;
        self.on_demand_seq | (1 << 63)
    }

    /// Projects the completion time of an on-demand load under the
    /// active fault schedule, absorbing transient-failure retries
    /// (bounded by the retry policy). Pure: no stats or sequence state
    /// is touched, so callers can project alternative payloads and then
    /// account only the projection they commit to.
    fn project_on_demand(
        &self,
        gpu: GpuId,
        od_tag: u64,
        bytes: u64,
        now: Nanos,
    ) -> OnDemandProjection {
        let Some(schedule) = &self.faults else {
            return OnDemandProjection {
                done: now + self.links[gpu.index()].link.transfer_time(bytes),
                retries: 0,
                backoff_ns: 0,
            };
        };
        let gpu_idx = gpu.index() as u32;
        let link = self.links[gpu.index()].link;
        let mut t = now;
        let mut retries = 0u32;
        let mut backoff_total: Nanos = 0;
        loop {
            let done = faulty_transfer_duration(&link, schedule, gpu_idx, bytes, t);
            if retries < self.retry.max_retries && schedule.fails_transfer(gpu_idx, od_tag, retries)
            {
                let backoff = self.retry.backoff_after(retries);
                backoff_total += backoff;
                retries += 1;
                t = done + backoff;
            } else {
                return OnDemandProjection {
                    done,
                    retries,
                    backoff_ns: backoff_total,
                };
            }
        }
    }

    /// Folds a committed on-demand projection into the counters: each
    /// absorbed retry is one injected fault, one retry, and its backoff.
    fn account_on_demand_retries(&mut self, proj: &OnDemandProjection) {
        self.stats.faults_injected += u64::from(proj.retries);
        self.stats.retries += u64::from(proj.retries);
        self.stats.backoff_ns += proj.backoff_ns;
        if proj.retries > 0 {
            self.trace
                .count("transfer.retries", u64::from(proj.retries));
        }
    }

    /// Promotes a queued job to the front of its link's queue (the
    /// forward pass needs it *now*); the preempted front job keeps its
    /// partial progress and resumes afterward. Returns `false` when the
    /// tag is not queued (already completed or never submitted).
    pub fn promote_to_front(&mut self, gpu: GpuId, tag: u64, now: Nanos) -> bool {
        self.advance_to(now);
        let link = self.link_mut(gpu);
        let Some(pos) = link.queue.iter().position(|j| j.tag == tag) else {
            return false;
        };
        if pos > 0 {
            if let Some(job) = link.queue.remove(pos) {
                link.queue.push_front(job);
            }
        }
        true
    }

    /// Cancels a queued (or partially transferred) prefetch job by tag.
    ///
    /// Returns `true` if a job was removed. The engine is advanced to
    /// `now` first, so a job that completed before `now` is *not*
    /// cancellable.
    pub fn cancel_prefetch(&mut self, gpu: GpuId, tag: u64, now: Nanos) -> bool {
        self.advance_to(now);
        let link = self.link_mut(gpu);
        let before = link.queue.len();
        link.queue.retain(|j| j.tag != tag);
        let removed = link.queue.len() < before;
        if removed {
            self.stats.cancelled_jobs += 1;
            self.trace.instant(
                now,
                Marker::PrefetchCancelled,
                NO_REQUEST,
                NO_LAYER,
                NO_SLOT,
                gpu.0,
                tag,
            );
            self.trace.count("transfer.cancelled_jobs", 1);
        }
        removed
    }

    /// Cancels every queued prefetch on all links.
    pub fn cancel_all_prefetches(&mut self, now: Nanos) {
        self.advance_to(now);
        for link in &mut self.links {
            self.stats.cancelled_jobs += link.queue.len() as u64;
            link.queue.clear();
        }
    }

    /// Number of jobs currently queued (including in flight) on a GPU's
    /// link.
    #[must_use]
    pub fn queued_jobs(&self, gpu: GpuId) -> usize {
        self.links[gpu.index()].queue.len()
    }

    /// Virtual time at which the link would finish everything currently
    /// queued, assuming no further traffic.
    #[must_use]
    pub fn drain_time(&self, gpu: GpuId) -> Nanos {
        let link = &self.links[gpu.index()];
        let mut t = link.synced_at;
        for job in &link.queue {
            t += job.setup_remaining + link.link.wire_time(job.bytes_remaining.ceil() as u64);
        }
        t
    }

    /// Estimated completion time of a specific queued job, accounting for
    /// everything queued ahead of it. `None` when the tag is not queued
    /// on this link (never submitted, already completed, or cancelled).
    #[must_use]
    pub fn completion_time_of(&self, gpu: GpuId, tag: u64) -> Option<Nanos> {
        let link = &self.links[gpu.index()];
        let mut t = link.synced_at;
        for job in &link.queue {
            t += job.setup_remaining + link.link.wire_time(job.bytes_remaining.ceil() as u64);
            if job.tag == tag {
                return Some(t);
            }
        }
        None
    }

    /// Takes all completion events accumulated since the last drain,
    /// ordered by completion time.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        for c in &self.completions {
            self.stats.prefetch_jobs += 1;
            self.stats.prefetch_bytes += c.bytes;
        }
        let mut out = std::mem::take(&mut self.completions);
        out.sort_by_key(|c| c.completed_at);
        if self.trace.is_enabled() && !out.is_empty() {
            for c in &out {
                // Wire occupancy approximated by the nominal transfer
                // time; queueing delay is visible as the gap to the
                // preceding events on the same GPU track.
                let dur = self.links[c.gpu.index()].link.transfer_time(c.bytes);
                self.trace.span(
                    c.completed_at,
                    Phase::Transfer,
                    NO_REQUEST,
                    NO_LAYER,
                    c.gpu.0,
                    dur,
                    c.bytes,
                );
            }
            self.trace.count("transfer.prefetch_jobs", out.len() as u64);
        }
        out
    }

    /// Takes all permanent prefetch failures accumulated since the last
    /// drain, ordered by failure time. Callers should stop waiting for
    /// these tags — they will never complete.
    pub fn drain_failures(&mut self) -> Vec<FailedTransfer> {
        let mut out = std::mem::take(&mut self.failures);
        out.sort_by_key(|f| f.failed_at);
        if self.trace.is_enabled() && !out.is_empty() {
            for f in &out {
                self.trace.instant(
                    f.failed_at,
                    Marker::TransferFailed,
                    NO_REQUEST,
                    NO_LAYER,
                    NO_SLOT,
                    f.gpu.0,
                    u64::from(f.attempts),
                );
            }
            self.trace.count("transfer.failed_jobs", out.len() as u64);
        }
        out
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> TransferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(n: u32) -> TransferEngine {
        let mut topo = Topology::paper_testbed();
        topo.num_gpus = n;
        TransferEngine::new(&topo)
    }

    const MB: u64 = 1024 * 1024;
    fn link() -> Link {
        Link::pcie4_x16()
    }

    #[test]
    fn single_prefetch_completes_after_transfer_time() {
        let mut e = engine(1);
        e.submit_prefetch(GpuId(0), 1, 320 * MB, 0);
        let t = link().transfer_time(320 * MB);
        e.advance_to(t - 1);
        assert!(e.drain_completions().is_empty());
        e.advance_to(t);
        let done = e.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 1);
        assert_eq!(done[0].completed_at, t);
    }

    #[test]
    fn fifo_jobs_complete_in_order() {
        let mut e = engine(1);
        e.submit_prefetch(GpuId(0), 1, 100 * MB, 0);
        e.submit_prefetch(GpuId(0), 2, 100 * MB, 0);
        let t1 = link().transfer_time(100 * MB);
        let t2 = t1 + link().transfer_time(100 * MB);
        e.advance_to(t2 + 1);
        let done = e.drain_completions();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].tag, 1);
        assert_eq!(done[1].tag, 2);
        assert_eq!(done[0].completed_at, t1);
        assert_eq!(done[1].completed_at, t2);
    }

    #[test]
    fn gpus_have_independent_links() {
        let mut e = engine(2);
        e.submit_prefetch(GpuId(0), 1, 100 * MB, 0);
        e.submit_prefetch(GpuId(1), 2, 100 * MB, 0);
        let t = link().transfer_time(100 * MB);
        e.advance_to(t);
        let done = e.drain_completions();
        // Both complete at the same time: no shared-bandwidth contention.
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(|c| c.completed_at == t));
    }

    #[test]
    fn on_demand_pauses_prefetch() {
        let mut e = engine(1);
        e.submit_prefetch(GpuId(0), 1, 100 * MB, 0);
        // Let half the prefetch run, then preempt with an on-demand load.
        let half = link().transfer_time(100 * MB) / 2;
        let od_done = e.on_demand_load(GpuId(0), 50 * MB, half);
        assert_eq!(od_done, half + link().transfer_time(50 * MB));
        // The prefetch resumes after od_done and finishes late by exactly
        // the on-demand duration.
        let expected = link().transfer_time(100 * MB) + link().transfer_time(50 * MB);
        e.advance_to(expected + 1);
        let done = e.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].completed_at, expected);
    }

    #[test]
    fn on_demand_tracks_blocking_stats() {
        let mut e = engine(1);
        let done = e.on_demand_load(GpuId(0), 64 * MB, 1000);
        let s = e.stats();
        assert_eq!(s.on_demand_loads, 1);
        assert_eq!(s.on_demand_bytes, 64 * MB);
        assert_eq!(s.on_demand_blocked_ns, done - 1000);
    }

    #[test]
    fn warmup_load_books_separate_counters_and_pauses_prefetch() {
        let mut e = engine(1);
        e.submit_prefetch(GpuId(0), 1, 100 * MB, 0);
        let half = link().transfer_time(100 * MB) / 2;
        let done = e.warmup_load(GpuId(0), 64 * MB, half);
        assert_eq!(done, half + link().transfer_time(64 * MB));
        let s = e.stats();
        assert_eq!(s.warmup_loads, 1);
        assert_eq!(s.warmup_bytes, 64 * MB);
        assert_eq!(s.warmup_ns, done - half);
        // Warmup is not an on-demand miss.
        assert_eq!(s.on_demand_loads, 0);
        assert_eq!(s.on_demand_bytes, 0);
        // The prefetch queue was frozen for the warmup's duration.
        let expected = link().transfer_time(100 * MB) + link().transfer_time(64 * MB);
        e.advance_to(expected + 1);
        let finished = e.drain_completions();
        assert_eq!(finished.len(), 1);
        assert_eq!(finished[0].completed_at, expected);
    }

    #[test]
    fn cancel_removes_queued_job() {
        let mut e = engine(1);
        e.submit_prefetch(GpuId(0), 1, 100 * MB, 0);
        e.submit_prefetch(GpuId(0), 2, 100 * MB, 0);
        assert!(e.cancel_prefetch(GpuId(0), 2, 0));
        assert!(!e.cancel_prefetch(GpuId(0), 2, 0));
        e.advance_to(link().transfer_time(100 * MB) * 3);
        assert_eq!(e.drain_completions().len(), 1);
        assert_eq!(e.stats().cancelled_jobs, 1);
    }

    #[test]
    fn cancel_after_completion_fails() {
        let mut e = engine(1);
        e.submit_prefetch(GpuId(0), 1, 10 * MB, 0);
        let t = link().transfer_time(10 * MB);
        assert!(!e.cancel_prefetch(GpuId(0), 1, t));
        assert_eq!(e.drain_completions().len(), 1);
    }

    #[test]
    fn cancel_all_clears_every_link() {
        let mut e = engine(2);
        e.submit_prefetch(GpuId(0), 1, 10 * MB, 0);
        e.submit_prefetch(GpuId(1), 2, 10 * MB, 0);
        e.cancel_all_prefetches(0);
        assert_eq!(e.queued_jobs(GpuId(0)), 0);
        assert_eq!(e.queued_jobs(GpuId(1)), 0);
        assert_eq!(e.stats().cancelled_jobs, 2);
    }

    #[test]
    fn drain_time_accounts_queue() {
        let mut e = engine(1);
        assert_eq!(e.drain_time(GpuId(0)), 0);
        e.submit_prefetch(GpuId(0), 1, 100 * MB, 0);
        e.submit_prefetch(GpuId(0), 2, 100 * MB, 0);
        assert_eq!(e.drain_time(GpuId(0)), 2 * link().transfer_time(100 * MB));
    }

    #[test]
    fn partial_progress_is_preserved_across_advances() {
        let mut e = engine(1);
        e.submit_prefetch(GpuId(0), 1, 100 * MB, 0);
        let total = link().transfer_time(100 * MB);
        // Advance in many tiny steps; the completion time must not drift
        // by more than rounding.
        let steps = 97;
        for i in 1..=steps {
            e.advance_to(total * i / steps);
        }
        let done = e.drain_completions();
        assert_eq!(done.len(), 1);
        let drift = done[0].completed_at.abs_diff(total);
        assert!(drift < 1_000, "drift {drift} ns");
    }

    #[test]
    fn promote_reorders_the_queue() {
        let mut e = engine(1);
        e.submit_prefetch(GpuId(0), 1, 100 * MB, 0);
        e.submit_prefetch(GpuId(0), 2, 100 * MB, 0);
        e.submit_prefetch(GpuId(0), 3, 100 * MB, 0);
        // Promote the tail job to the front at time zero.
        assert!(e.promote_to_front(GpuId(0), 3, 0));
        e.advance_to(3 * link().transfer_time(100 * MB) + 1);
        let done = e.drain_completions();
        let order: Vec<u64> = done.iter().map(|c| c.tag).collect();
        assert_eq!(order, vec![3, 1, 2]);
    }

    #[test]
    fn promote_preserves_partial_progress_of_the_preempted_job() {
        let mut e = engine(1);
        e.submit_prefetch(GpuId(0), 1, 100 * MB, 0);
        e.submit_prefetch(GpuId(0), 2, 100 * MB, 0);
        // Let job 1 transfer half, then promote job 2 past it.
        let half = link().transfer_time(100 * MB) / 2;
        assert!(e.promote_to_front(GpuId(0), 2, half));
        // completion_time_of reflects the new order: job 2 finishes a
        // full transfer after `half`, then job 1's remaining half.
        let c2 = e.completion_time_of(GpuId(0), 2).unwrap();
        let c1 = e.completion_time_of(GpuId(0), 1).unwrap();
        assert_eq!(c2, half + link().transfer_time(100 * MB));
        // Job 1 already paid its setup and half its wire time.
        let remaining_wire = link().wire_time(100 * MB) - (half - link().setup_latency);
        assert!(c1.abs_diff(c2 + remaining_wire) < 1000, "c1={c1}, c2={c2}");
        e.advance_to(c1 + 1);
        assert_eq!(e.drain_completions().len(), 2);
    }

    #[test]
    fn promote_missing_or_front_tags() {
        let mut e = engine(1);
        assert!(!e.promote_to_front(GpuId(0), 9, 0));
        e.submit_prefetch(GpuId(0), 1, 10 * MB, 0);
        // Promoting the current front is a no-op that reports success.
        assert!(e.promote_to_front(GpuId(0), 1, 0));
        let t = link().transfer_time(10 * MB);
        e.advance_to(t);
        assert_eq!(e.drain_completions().len(), 1);
    }

    #[test]
    fn completion_time_of_accounts_queue_order() {
        let mut e = engine(1);
        e.submit_prefetch(GpuId(0), 1, 50 * MB, 0);
        e.submit_prefetch(GpuId(0), 2, 50 * MB, 0);
        let t = link().transfer_time(50 * MB);
        assert_eq!(e.completion_time_of(GpuId(0), 1), Some(t));
        assert_eq!(e.completion_time_of(GpuId(0), 2), Some(2 * t));
        assert_eq!(e.completion_time_of(GpuId(0), 3), None);
    }

    #[test]
    fn zero_byte_transfer_costs_setup_only() {
        let mut e = engine(1);
        let done = e.on_demand_load(GpuId(0), 0, 0);
        assert_eq!(done, link().setup_latency);
    }

    #[test]
    fn inert_schedule_is_normalized_away() {
        let mut e = engine(1);
        e.set_fault_schedule(FaultSchedule::none());
        assert!(e.fault_schedule().is_none());
    }

    #[test]
    fn inert_schedule_leaves_timings_identical() {
        let mut plain = engine(2);
        let mut faulty = engine(2);
        faulty.set_fault_schedule(FaultSchedule::none());
        for e in [&mut plain, &mut faulty] {
            e.submit_prefetch(GpuId(0), 1, 100 * MB, 0);
            e.submit_prefetch(GpuId(1), 2, 50 * MB, 0);
            let od = e.on_demand_load(GpuId(0), 30 * MB, 500_000);
            e.advance_to(od + link().transfer_time(200 * MB));
        }
        assert_eq!(plain.drain_completions(), faulty.drain_completions());
        assert_eq!(plain.stats(), faulty.stats());
    }

    #[test]
    fn degraded_window_stretches_wire_time() {
        let mut e = engine(1);
        // Half bandwidth over a window wide enough to cover everything.
        e.set_fault_schedule(
            FaultSchedule::builder(1)
                .degrade_link(Some(0), 0, Nanos::MAX - 1, 0.5)
                .build(),
        );
        e.submit_prefetch(GpuId(0), 1, 100 * MB, 0);
        let nominal = link().transfer_time(100 * MB);
        let expected = link().setup_latency + 2 * link().wire_time(100 * MB);
        e.advance_to(2 * nominal + 1);
        let done = e.drain_completions();
        assert_eq!(done.len(), 1);
        assert!(
            done[0].completed_at.abs_diff(expected) < 1_000,
            "completed {} vs expected {expected}",
            done[0].completed_at
        );
    }

    #[test]
    fn stall_window_freezes_link() {
        let stall_len = 2_000_000;
        let mut e = engine(1);
        e.set_fault_schedule(
            FaultSchedule::builder(1)
                .stall_link(Some(0), 0, stall_len)
                .build(),
        );
        e.submit_prefetch(GpuId(0), 1, 10 * MB, 0);
        let nominal = link().transfer_time(10 * MB);
        e.advance_to(stall_len + nominal + 1);
        let done = e.drain_completions();
        assert_eq!(done.len(), 1);
        assert!(
            done[0].completed_at.abs_diff(stall_len + nominal) < 1_000,
            "completed {}",
            done[0].completed_at
        );
    }

    #[test]
    fn transient_failures_retry_and_eventually_complete() {
        // Rate 1.0 fails every attempt: jobs exhaust retries and fail
        // permanently — but never hang.
        let mut e = engine(1);
        e.set_fault_schedule(
            FaultSchedule::builder(3)
                .transient_failure_rate(1.0)
                .build(),
        );
        e.submit_prefetch(GpuId(0), 7, 10 * MB, 0);
        e.advance_to(60 * crate::clock::SECOND);
        assert!(e.drain_completions().is_empty());
        let failures = e.drain_failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].tag, 7);
        assert_eq!(failures[0].attempts, e.retry_policy().max_retries + 1);
        let s = e.stats();
        assert_eq!(s.failed_jobs, 1);
        assert_eq!(s.retries, u64::from(e.retry_policy().max_retries));
        assert_eq!(
            s.faults_injected,
            u64::from(e.retry_policy().max_retries) + 1
        );
        assert!(s.backoff_ns > 0);
    }

    #[test]
    fn moderate_failure_rate_retries_then_completes() {
        let mut e = engine(1);
        e.set_fault_schedule(
            FaultSchedule::builder(11)
                .transient_failure_rate(0.5)
                .build(),
        );
        for tag in 0..20 {
            e.submit_prefetch(GpuId(0), tag, MB, 0);
        }
        e.advance_to(60 * crate::clock::SECOND);
        let done = e.drain_completions();
        let failed = e.drain_failures();
        assert_eq!(done.len() + failed.len(), 20);
        assert!(!done.is_empty(), "at 0.5 rate most jobs should complete");
        assert!(e.stats().retries > 0);
    }

    #[test]
    fn backoff_grows_exponentially_to_cap() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff_ns: 1_000,
            max_backoff_ns: 16_000,
        };
        assert_eq!(p.backoff_after(0), 1_000);
        assert_eq!(p.backoff_after(1), 2_000);
        assert_eq!(p.backoff_after(4), 16_000);
        assert_eq!(p.backoff_after(9), 16_000);
    }

    #[test]
    fn deadline_fallback_degrades_payload() {
        let mut e = engine(1);
        // Quarter bandwidth: the full 100 MB cannot make a deadline that
        // the 50 MB fallback can.
        e.set_fault_schedule(
            FaultSchedule::builder(5)
                .degrade_link(Some(0), 0, Nanos::MAX - 1, 0.25)
                .build(),
        );
        let full_time = link().setup_latency + 4 * link().wire_time(100 * MB);
        let half_time = link().setup_latency + 4 * link().wire_time(50 * MB);
        let deadline = (full_time + half_time) / 2;
        let out = e
            .on_demand_load_with_deadline(GpuId(0), 100 * MB, 0, deadline, 50 * MB)
            .unwrap();
        assert!(out.degraded);
        assert!(!out.missed_deadline, "degraded load should meet deadline");
        assert_eq!(out.bytes_loaded, 50 * MB);
        assert!(out.completed_at <= deadline);
        let s = e.stats();
        assert_eq!(s.degraded_on_demand, 1);
        assert_eq!(s.missed_deadlines, 0);
        assert_eq!(s.on_demand_bytes, 50 * MB);
    }

    #[test]
    fn hopeless_deadline_is_flagged_not_hung() {
        let mut e = engine(1);
        e.set_fault_schedule(
            FaultSchedule::builder(5)
                .stall_link(Some(0), 0, 10_000_000)
                .build(),
        );
        let out = e
            .on_demand_load_with_deadline(GpuId(0), 100 * MB, 0, 1_000, 50 * MB)
            .unwrap();
        assert!(out.missed_deadline);
        assert!(out.completed_at >= 10_000_000);
        assert_eq!(e.stats().missed_deadlines, 1);
    }

    #[test]
    fn deadline_load_without_faults_matches_plain_load() {
        let mut a = engine(1);
        let mut b = engine(1);
        let plain = a.on_demand_load(GpuId(0), 64 * MB, 1000);
        let out = b
            .on_demand_load_with_deadline(GpuId(0), 64 * MB, 1000, Nanos::MAX, 32 * MB)
            .unwrap();
        assert_eq!(out.completed_at, plain);
        assert!(!out.degraded);
        assert!(!out.missed_deadline);
        assert_eq!(out.retries, 0);
    }

    #[test]
    fn unknown_gpu_is_a_typed_error() {
        let mut e = engine(2);
        let err = e
            .on_demand_load_with_deadline(GpuId(9), MB, 0, Nanos::MAX, MB / 2)
            .unwrap_err();
        assert_eq!(
            err,
            TransferError::UnknownGpu {
                gpu: 9,
                num_gpus: 2
            }
        );
        assert!(err.to_string().contains("GPU 9"));
    }

    #[test]
    fn completion_exactly_at_deadline_is_not_missed() {
        // Deadlines are inclusive: a load whose last byte lands exactly
        // at the deadline instant is neither degraded nor missed.
        let mut e = engine(1);
        let deadline = 1_000 + link().transfer_time(64 * MB);
        let out = e
            .on_demand_load_with_deadline(GpuId(0), 64 * MB, 1_000, deadline, 32 * MB)
            .unwrap();
        assert_eq!(out.completed_at, deadline);
        assert!(!out.degraded);
        assert!(!out.missed_deadline);
        assert_eq!(e.stats().missed_deadlines, 0);
        assert_eq!(e.stats().degraded_on_demand, 0);
    }

    #[test]
    fn stall_window_starting_exactly_at_deadline_does_not_delay_completion() {
        // A fault window opening at the very instant the transfer
        // finishes must not touch it: windows are half-open [start, end)
        // and the last byte lands at `start`.
        let mut e = engine(1);
        let deadline = link().transfer_time(64 * MB);
        e.set_fault_schedule(
            FaultSchedule::builder(9)
                .stall_link(Some(0), deadline, deadline + 10_000_000)
                .build(),
        );
        let out = e
            .on_demand_load_with_deadline(GpuId(0), 64 * MB, 0, deadline, 32 * MB)
            .unwrap();
        assert_eq!(out.completed_at, deadline);
        assert!(!out.degraded);
        assert!(!out.missed_deadline);
    }

    #[test]
    fn overlapping_degradation_windows_compound_on_the_wire() {
        // Two half-bandwidth windows covering the same span behave like
        // one quarter-bandwidth window.
        let wide = Nanos::MAX - 1;
        let mut stacked = engine(1);
        stacked.set_fault_schedule(
            FaultSchedule::builder(5)
                .degrade_link(Some(0), 0, wide, 0.5)
                .degrade_link(Some(0), 0, wide, 0.5)
                .build(),
        );
        let mut quartered = engine(1);
        quartered.set_fault_schedule(
            FaultSchedule::builder(5)
                .degrade_link(Some(0), 0, wide, 0.25)
                .build(),
        );
        let a = stacked.on_demand_load(GpuId(0), 50 * MB, 0);
        let b = quartered.on_demand_load(GpuId(0), 50 * MB, 0);
        assert_eq!(a, b, "overlapping windows must multiply factors");
        assert_eq!(a, link().setup_latency + 4 * link().wire_time(50 * MB));
    }

    #[test]
    fn zero_length_fault_windows_are_inert() {
        // A [t, t) window covers nothing; a schedule made only of such
        // windows is inert and normalized away entirely.
        let schedule = FaultSchedule::builder(3)
            .stall_link(Some(0), 5_000, 5_000)
            .degrade_link(Some(0), 9_000, 9_000, 0.25)
            .memory_pressure(7_000, 7_000, 0.5)
            .build();
        assert!(schedule.is_inert());
        let mut plain = engine(1);
        let mut faulty = engine(1);
        faulty.set_fault_schedule(schedule);
        assert!(faulty.fault_schedule().is_none());
        for e in [&mut plain, &mut faulty] {
            e.submit_prefetch(GpuId(0), 1, 50 * MB, 0);
            let od = e.on_demand_load(GpuId(0), 20 * MB, 4_000);
            e.advance_to(od + link().transfer_time(100 * MB));
        }
        assert_eq!(plain.drain_completions(), faulty.drain_completions());
        assert_eq!(plain.stats(), faulty.stats());
    }

    #[test]
    fn degraded_deadline_load_counts_one_load_plus_retries() {
        // Regression for the retry double-count: projecting both the
        // full and fallback payloads used to burn two on-demand
        // identities and charge both projections' faults and backoff to
        // the stats. A retried, degraded load must count as exactly one
        // load plus the *chosen* projection's retries.
        let mut e = engine(1);
        e.set_retry_policy(RetryPolicy {
            max_retries: 2,
            base_backoff_ns: 1_000,
            max_backoff_ns: 4_000,
        });
        e.set_fault_schedule(
            FaultSchedule::builder(5)
                .degrade_link(Some(0), 0, Nanos::MAX - 1, 0.25)
                .transient_failure_rate(1.0)
                .build(),
        );
        // Every attempt fails, so both payloads absorb exactly
        // max_retries retries: done = 3 * duration + (1000 + 2000).
        let dur_full = link().setup_latency + 4 * link().wire_time(100 * MB);
        let dur_fb = link().setup_latency + 4 * link().wire_time(50 * MB);
        let full_done = 3 * dur_full + 3_000;
        let fb_done = 3 * dur_fb + 3_000;
        let deadline = (full_done + fb_done) / 2;
        let out = e
            .on_demand_load_with_deadline(GpuId(0), 100 * MB, 0, deadline, 50 * MB)
            .unwrap();
        assert!(out.degraded);
        assert!(!out.missed_deadline);
        assert_eq!(out.completed_at, fb_done);
        assert_eq!(out.retries, 2);
        let s = e.stats();
        assert_eq!(
            s.on_demand_loads, 1,
            "one logical load, not one per projection"
        );
        assert_eq!(s.retries, 2);
        assert_eq!(
            s.faults_injected, 2,
            "only the chosen projection's faults count"
        );
        assert_eq!(
            s.backoff_ns, 3_000,
            "only the chosen projection's backoff counts"
        );
        assert_eq!(s.degraded_on_demand, 1);
        assert_eq!(s.missed_deadlines, 0);
    }

    #[test]
    fn trace_sink_records_transfer_activity_without_perturbing_timings() {
        let sink = fmoe_trace::TraceSink::recording(1024);
        let mut traced = engine(1);
        traced.set_trace_sink(sink.clone());
        let mut plain = engine(1);
        for e in [&mut plain, &mut traced] {
            e.submit_prefetch(GpuId(0), 1, 50 * MB, 0);
            let od = e.on_demand_load(GpuId(0), 20 * MB, 1_000);
            e.advance_to(od + link().transfer_time(100 * MB));
        }
        assert_eq!(plain.drain_completions(), traced.drain_completions());
        assert_eq!(plain.stats(), traced.stats());
        let records = sink.take_records();
        assert!(!records.is_empty(), "transfer spans must be recorded");
        let spans = records
            .iter()
            .filter(|r| {
                matches!(
                    r.event,
                    fmoe_trace::TraceEvent::Span {
                        phase: fmoe_trace::Phase::Transfer,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(spans, 2, "one on-demand span + one drained prefetch span");
        let metrics = sink.metrics_snapshot();
        assert_eq!(metrics.counter("transfer.on_demand_loads"), 1);
        assert_eq!(metrics.counter("transfer.prefetch_jobs"), 1);
    }

    #[test]
    fn failed_jobs_count_as_resolved_in_conservation() {
        // submitted == completed + cancelled + failed must hold so the
        // serving engine can reconcile its in-flight map.
        let mut e = engine(1);
        e.set_fault_schedule(
            FaultSchedule::builder(13)
                .transient_failure_rate(0.7)
                .build(),
        );
        for tag in 0..30 {
            e.submit_prefetch(GpuId(0), tag, MB, 0);
        }
        e.cancel_prefetch(GpuId(0), 29, 0);
        e.advance_to(120 * crate::clock::SECOND);
        let done = e.drain_completions().len() as u64;
        let failed = e.drain_failures().len() as u64;
        let s = e.stats();
        assert_eq!(done + failed + s.cancelled_jobs, 30);
        assert_eq!(s.failed_jobs, failed);
    }
}
