//! The transfer engine: per-GPU host↔device links with background
//! prefetch queues and preemptive on-demand loads.
//!
//! Semantics (matching the paper's §4.5 "On-demand expert loading"):
//!
//! * Prefetch jobs are FIFO per link and consume bandwidth in the
//!   background while virtual time advances.
//! * An on-demand load **pauses** the link's prefetch queue, transfers
//!   immediately, and the queue resumes afterward — "fMoE pauses all
//!   expert prefetching tasks and immediately loads missed experts".
//! * Jobs can be cancelled while still queued (e.g. the target layer has
//!   already executed, or the expert arrived via an on-demand load).
//!
//! The engine is purely virtual-time driven: callers advance it explicitly
//! and collect completion events. Job identity is an opaque `u64` tag.

use crate::clock::Nanos;
use crate::link::Link;
use crate::topology::{GpuId, Topology};
use serde::Serialize;
use std::collections::VecDeque;

/// Class of a transfer, for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TransferClass {
    /// Background prefetch (overlaps compute).
    Prefetch,
    /// Blocking on-demand load (expert miss).
    OnDemand,
}

/// A completed prefetch job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The job's tag, as passed to `submit_prefetch`.
    pub tag: u64,
    /// GPU whose link carried the job.
    pub gpu: GpuId,
    /// Virtual time at which the last byte arrived.
    pub completed_at: Nanos,
    /// Size of the transferred payload.
    pub bytes: u64,
}

/// Aggregate transfer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct TransferStats {
    /// Completed prefetch jobs.
    pub prefetch_jobs: u64,
    /// Bytes moved by completed prefetch jobs.
    pub prefetch_bytes: u64,
    /// On-demand loads performed.
    pub on_demand_loads: u64,
    /// Bytes moved on demand.
    pub on_demand_bytes: u64,
    /// Total virtual nanoseconds spent blocked on on-demand loads.
    pub on_demand_blocked_ns: Nanos,
    /// Prefetch jobs cancelled before completion.
    pub cancelled_jobs: u64,
}

#[derive(Debug, Clone)]
struct Job {
    tag: u64,
    setup_remaining: Nanos,
    bytes_remaining: f64,
    total_bytes: u64,
}

#[derive(Debug, Clone)]
struct LinkState {
    link: Link,
    queue: VecDeque<Job>,
    synced_at: Nanos,
}

impl LinkState {
    /// Simulates the link from `synced_at` to `target`, popping completed
    /// jobs into `completions`.
    fn advance_to(&mut self, target: Nanos, gpu: GpuId, completions: &mut Vec<Completion>) {
        debug_assert!(target >= self.synced_at, "link time cannot rewind");
        let mut now = self.synced_at;
        while now < target {
            let Some(job) = self.queue.front_mut() else {
                break;
            };
            let budget = target - now;
            // Pay setup first.
            if job.setup_remaining > 0 {
                let pay = job.setup_remaining.min(budget);
                job.setup_remaining -= pay;
                now += pay;
                continue;
            }
            // Then wire time.
            let wire_needed = self.link.wire_time(job.bytes_remaining.ceil() as u64);
            if wire_needed > budget {
                job.bytes_remaining -= self.link.bytes_in(budget);
                job.bytes_remaining = job.bytes_remaining.max(0.0);
                now = target;
            } else {
                now += wire_needed;
                let job = self.queue.pop_front().expect("front exists");
                completions.push(Completion {
                    tag: job.tag,
                    gpu,
                    completed_at: now,
                    bytes: job.total_bytes,
                });
            }
        }
        self.synced_at = target;
    }
}

/// Per-GPU transfer simulation. See the module docs for semantics.
///
/// ```
/// use fmoe_memsim::{GpuId, Topology, TransferEngine};
///
/// let mut engine = TransferEngine::new(&Topology::single_gpu(8 << 30));
/// engine.submit_prefetch(GpuId(0), 1, 32 << 20, 0);
/// // An on-demand load pauses the prefetch and runs immediately.
/// let done = engine.on_demand_load(GpuId(0), 32 << 20, 0);
/// engine.advance_to(done + 20_000_000);
/// // The paused prefetch finished after the on-demand load.
/// let completions = engine.drain_completions();
/// assert_eq!(completions.len(), 1);
/// assert!(completions[0].completed_at > done);
/// ```
#[derive(Debug, Clone)]
pub struct TransferEngine {
    links: Vec<LinkState>,
    completions: Vec<Completion>,
    stats: TransferStats,
}

impl TransferEngine {
    /// Creates an engine with one independent host link per GPU in the
    /// topology.
    #[must_use]
    pub fn new(topology: &Topology) -> Self {
        let links = topology
            .gpus()
            .map(|_| LinkState {
                link: topology.host_link,
                queue: VecDeque::new(),
                synced_at: 0,
            })
            .collect();
        Self {
            links,
            completions: Vec::new(),
            stats: TransferStats::default(),
        }
    }

    fn link_mut(&mut self, gpu: GpuId) -> &mut LinkState {
        &mut self.links[gpu.index()]
    }

    /// Advances every link to `now`, accruing prefetch progress.
    pub fn advance_to(&mut self, now: Nanos) {
        for (i, link) in self.links.iter_mut().enumerate() {
            if now > link.synced_at {
                link.advance_to(now, GpuId(i as u32), &mut self.completions);
            }
        }
        // Account completed prefetches.
        // (Stats are updated on drain to keep this hot path cheap.)
    }

    /// Enqueues a background prefetch of `bytes` to `gpu`.
    ///
    /// The engine is first advanced to `now`; the job then joins the tail
    /// of the link's FIFO queue.
    pub fn submit_prefetch(&mut self, gpu: GpuId, tag: u64, bytes: u64, now: Nanos) {
        self.advance_to(now);
        let setup = self.links[gpu.index()].link.setup_latency;
        self.link_mut(gpu).queue.push_back(Job {
            tag,
            setup_remaining: setup,
            bytes_remaining: bytes as f64,
            total_bytes: bytes,
        });
    }

    /// Performs a blocking on-demand load of `bytes` to `gpu` starting at
    /// `now`, pausing the link's prefetch queue for its duration.
    ///
    /// Returns the virtual time at which the load completes.
    pub fn on_demand_load(&mut self, gpu: GpuId, bytes: u64, now: Nanos) -> Nanos {
        self.advance_to(now);
        let link = self.link_mut(gpu);
        let done = now + link.link.transfer_time(bytes);
        // The prefetch queue is frozen during [now, done): simply declare
        // the link already synced to `done` without giving jobs progress.
        link.synced_at = done;
        self.stats.on_demand_loads += 1;
        self.stats.on_demand_bytes += bytes;
        self.stats.on_demand_blocked_ns += done - now;
        done
    }

    /// Promotes a queued job to the front of its link's queue (the
    /// forward pass needs it *now*); the preempted front job keeps its
    /// partial progress and resumes afterward. Returns `false` when the
    /// tag is not queued (already completed or never submitted).
    pub fn promote_to_front(&mut self, gpu: GpuId, tag: u64, now: Nanos) -> bool {
        self.advance_to(now);
        let link = self.link_mut(gpu);
        let Some(pos) = link.queue.iter().position(|j| j.tag == tag) else {
            return false;
        };
        if pos > 0 {
            let job = link.queue.remove(pos).expect("position is valid");
            link.queue.push_front(job);
        }
        true
    }

    /// Cancels a queued (or partially transferred) prefetch job by tag.
    ///
    /// Returns `true` if a job was removed. The engine is advanced to
    /// `now` first, so a job that completed before `now` is *not*
    /// cancellable.
    pub fn cancel_prefetch(&mut self, gpu: GpuId, tag: u64, now: Nanos) -> bool {
        self.advance_to(now);
        let link = self.link_mut(gpu);
        let before = link.queue.len();
        link.queue.retain(|j| j.tag != tag);
        let removed = link.queue.len() < before;
        if removed {
            self.stats.cancelled_jobs += 1;
        }
        removed
    }

    /// Cancels every queued prefetch on all links.
    pub fn cancel_all_prefetches(&mut self, now: Nanos) {
        self.advance_to(now);
        for link in &mut self.links {
            self.stats.cancelled_jobs += link.queue.len() as u64;
            link.queue.clear();
        }
    }

    /// Number of jobs currently queued (including in flight) on a GPU's
    /// link.
    #[must_use]
    pub fn queued_jobs(&self, gpu: GpuId) -> usize {
        self.links[gpu.index()].queue.len()
    }

    /// Virtual time at which the link would finish everything currently
    /// queued, assuming no further traffic.
    #[must_use]
    pub fn drain_time(&self, gpu: GpuId) -> Nanos {
        let link = &self.links[gpu.index()];
        let mut t = link.synced_at;
        for job in &link.queue {
            t += job.setup_remaining + link.link.wire_time(job.bytes_remaining.ceil() as u64);
        }
        t
    }

    /// Estimated completion time of a specific queued job, accounting for
    /// everything queued ahead of it. `None` when the tag is not queued
    /// on this link (never submitted, already completed, or cancelled).
    #[must_use]
    pub fn completion_time_of(&self, gpu: GpuId, tag: u64) -> Option<Nanos> {
        let link = &self.links[gpu.index()];
        let mut t = link.synced_at;
        for job in &link.queue {
            t += job.setup_remaining + link.link.wire_time(job.bytes_remaining.ceil() as u64);
            if job.tag == tag {
                return Some(t);
            }
        }
        None
    }

    /// Takes all completion events accumulated since the last drain,
    /// ordered by completion time.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        for c in &self.completions {
            self.stats.prefetch_jobs += 1;
            self.stats.prefetch_bytes += c.bytes;
        }
        let mut out = std::mem::take(&mut self.completions);
        out.sort_by_key(|c| c.completed_at);
        out
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> TransferStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(n: u32) -> TransferEngine {
        let mut topo = Topology::paper_testbed();
        topo.num_gpus = n;
        TransferEngine::new(&topo)
    }

    const MB: u64 = 1024 * 1024;
    fn link() -> Link {
        Link::pcie4_x16()
    }

    #[test]
    fn single_prefetch_completes_after_transfer_time() {
        let mut e = engine(1);
        e.submit_prefetch(GpuId(0), 1, 320 * MB, 0);
        let t = link().transfer_time(320 * MB);
        e.advance_to(t - 1);
        assert!(e.drain_completions().is_empty());
        e.advance_to(t);
        let done = e.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 1);
        assert_eq!(done[0].completed_at, t);
    }

    #[test]
    fn fifo_jobs_complete_in_order() {
        let mut e = engine(1);
        e.submit_prefetch(GpuId(0), 1, 100 * MB, 0);
        e.submit_prefetch(GpuId(0), 2, 100 * MB, 0);
        let t1 = link().transfer_time(100 * MB);
        let t2 = t1 + link().transfer_time(100 * MB);
        e.advance_to(t2 + 1);
        let done = e.drain_completions();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].tag, 1);
        assert_eq!(done[1].tag, 2);
        assert_eq!(done[0].completed_at, t1);
        assert_eq!(done[1].completed_at, t2);
    }

    #[test]
    fn gpus_have_independent_links() {
        let mut e = engine(2);
        e.submit_prefetch(GpuId(0), 1, 100 * MB, 0);
        e.submit_prefetch(GpuId(1), 2, 100 * MB, 0);
        let t = link().transfer_time(100 * MB);
        e.advance_to(t);
        let done = e.drain_completions();
        // Both complete at the same time: no shared-bandwidth contention.
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(|c| c.completed_at == t));
    }

    #[test]
    fn on_demand_pauses_prefetch() {
        let mut e = engine(1);
        e.submit_prefetch(GpuId(0), 1, 100 * MB, 0);
        // Let half the prefetch run, then preempt with an on-demand load.
        let half = link().transfer_time(100 * MB) / 2;
        let od_done = e.on_demand_load(GpuId(0), 50 * MB, half);
        assert_eq!(od_done, half + link().transfer_time(50 * MB));
        // The prefetch resumes after od_done and finishes late by exactly
        // the on-demand duration.
        let expected = link().transfer_time(100 * MB) + link().transfer_time(50 * MB);
        e.advance_to(expected + 1);
        let done = e.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].completed_at, expected);
    }

    #[test]
    fn on_demand_tracks_blocking_stats() {
        let mut e = engine(1);
        let done = e.on_demand_load(GpuId(0), 64 * MB, 1000);
        let s = e.stats();
        assert_eq!(s.on_demand_loads, 1);
        assert_eq!(s.on_demand_bytes, 64 * MB);
        assert_eq!(s.on_demand_blocked_ns, done - 1000);
    }

    #[test]
    fn cancel_removes_queued_job() {
        let mut e = engine(1);
        e.submit_prefetch(GpuId(0), 1, 100 * MB, 0);
        e.submit_prefetch(GpuId(0), 2, 100 * MB, 0);
        assert!(e.cancel_prefetch(GpuId(0), 2, 0));
        assert!(!e.cancel_prefetch(GpuId(0), 2, 0));
        e.advance_to(link().transfer_time(100 * MB) * 3);
        assert_eq!(e.drain_completions().len(), 1);
        assert_eq!(e.stats().cancelled_jobs, 1);
    }

    #[test]
    fn cancel_after_completion_fails() {
        let mut e = engine(1);
        e.submit_prefetch(GpuId(0), 1, 10 * MB, 0);
        let t = link().transfer_time(10 * MB);
        assert!(!e.cancel_prefetch(GpuId(0), 1, t));
        assert_eq!(e.drain_completions().len(), 1);
    }

    #[test]
    fn cancel_all_clears_every_link() {
        let mut e = engine(2);
        e.submit_prefetch(GpuId(0), 1, 10 * MB, 0);
        e.submit_prefetch(GpuId(1), 2, 10 * MB, 0);
        e.cancel_all_prefetches(0);
        assert_eq!(e.queued_jobs(GpuId(0)), 0);
        assert_eq!(e.queued_jobs(GpuId(1)), 0);
        assert_eq!(e.stats().cancelled_jobs, 2);
    }

    #[test]
    fn drain_time_accounts_queue() {
        let mut e = engine(1);
        assert_eq!(e.drain_time(GpuId(0)), 0);
        e.submit_prefetch(GpuId(0), 1, 100 * MB, 0);
        e.submit_prefetch(GpuId(0), 2, 100 * MB, 0);
        assert_eq!(e.drain_time(GpuId(0)), 2 * link().transfer_time(100 * MB));
    }

    #[test]
    fn partial_progress_is_preserved_across_advances() {
        let mut e = engine(1);
        e.submit_prefetch(GpuId(0), 1, 100 * MB, 0);
        let total = link().transfer_time(100 * MB);
        // Advance in many tiny steps; the completion time must not drift
        // by more than rounding.
        let steps = 97;
        for i in 1..=steps {
            e.advance_to(total * i / steps);
        }
        let done = e.drain_completions();
        assert_eq!(done.len(), 1);
        let drift = done[0].completed_at.abs_diff(total);
        assert!(drift < 1_000, "drift {drift} ns");
    }

    #[test]
    fn promote_reorders_the_queue() {
        let mut e = engine(1);
        e.submit_prefetch(GpuId(0), 1, 100 * MB, 0);
        e.submit_prefetch(GpuId(0), 2, 100 * MB, 0);
        e.submit_prefetch(GpuId(0), 3, 100 * MB, 0);
        // Promote the tail job to the front at time zero.
        assert!(e.promote_to_front(GpuId(0), 3, 0));
        e.advance_to(3 * link().transfer_time(100 * MB) + 1);
        let done = e.drain_completions();
        let order: Vec<u64> = done.iter().map(|c| c.tag).collect();
        assert_eq!(order, vec![3, 1, 2]);
    }

    #[test]
    fn promote_preserves_partial_progress_of_the_preempted_job() {
        let mut e = engine(1);
        e.submit_prefetch(GpuId(0), 1, 100 * MB, 0);
        e.submit_prefetch(GpuId(0), 2, 100 * MB, 0);
        // Let job 1 transfer half, then promote job 2 past it.
        let half = link().transfer_time(100 * MB) / 2;
        assert!(e.promote_to_front(GpuId(0), 2, half));
        // completion_time_of reflects the new order: job 2 finishes a
        // full transfer after `half`, then job 1's remaining half.
        let c2 = e.completion_time_of(GpuId(0), 2).unwrap();
        let c1 = e.completion_time_of(GpuId(0), 1).unwrap();
        assert_eq!(c2, half + link().transfer_time(100 * MB));
        // Job 1 already paid its setup and half its wire time.
        let remaining_wire = link().wire_time(100 * MB) - (half - link().setup_latency);
        assert!(c1.abs_diff(c2 + remaining_wire) < 1000, "c1={c1}, c2={c2}");
        e.advance_to(c1 + 1);
        assert_eq!(e.drain_completions().len(), 2);
    }

    #[test]
    fn promote_missing_or_front_tags() {
        let mut e = engine(1);
        assert!(!e.promote_to_front(GpuId(0), 9, 0));
        e.submit_prefetch(GpuId(0), 1, 10 * MB, 0);
        // Promoting the current front is a no-op that reports success.
        assert!(e.promote_to_front(GpuId(0), 1, 0));
        let t = link().transfer_time(10 * MB);
        e.advance_to(t);
        assert_eq!(e.drain_completions().len(), 1);
    }

    #[test]
    fn completion_time_of_accounts_queue_order() {
        let mut e = engine(1);
        e.submit_prefetch(GpuId(0), 1, 50 * MB, 0);
        e.submit_prefetch(GpuId(0), 2, 50 * MB, 0);
        let t = link().transfer_time(50 * MB);
        assert_eq!(e.completion_time_of(GpuId(0), 1), Some(t));
        assert_eq!(e.completion_time_of(GpuId(0), 2), Some(2 * t));
        assert_eq!(e.completion_time_of(GpuId(0), 3), None);
    }

    #[test]
    fn zero_byte_transfer_costs_setup_only() {
        let mut e = engine(1);
        let done = e.on_demand_load(GpuId(0), 0, 0);
        assert_eq!(done, link().setup_latency);
    }
}
