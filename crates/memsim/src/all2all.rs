//! All2all token-routing cost model for expert parallelism (EP).
//!
//! With EP, every MoE layer performs two collective phases on the peer
//! fabric: **dispatch** (each GPU sends the hidden activations of tokens
//! routed to remotely-owned experts) and **combine** (expert outputs
//! return to the token's source GPU). The phase is gate-dependent: the
//! bottleneck device is the one whose experts attract the most tokens,
//! so gate skew directly stretches the critical path.
//!
//! The model is analytic and clocked in virtual time on the topology's
//! [`Link`] parameters — no queueing through the transfer engine, since
//! all2all is a synchronous collective on the forward critical path:
//!
//! ```text
//! phase_time(g) = setup_factor · peer.setup_latency
//!              + wire(cross_bytes(g)) / efficiency
//! layer_time    = 2 · max_g phase_time(g)        (dispatch + combine)
//! cross_bytes(g) = recv_tokens(g) · bytes_per_token · (n-1)/n
//! ```
//!
//! where `recv_tokens(g)` is the per-destination routed load for the
//! skew-sensitive backends, or the *total* token load for the
//! skew-oblivious allgather/reduce-scatter backend (every device
//! materialises every token, so skew cannot hurt it — but it always
//! moves the full payload). `(n-1)/n` is the expected cross-device
//! fraction for uniformly spread token sources.

use crate::clock::Nanos;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// Communication backend profile for the EP all2all, mirroring the
/// usual kernel families in serving stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum All2AllBackend {
    /// Static allgather + reduce-scatter schedule: one fused phase with
    /// minimal setup, dense payload (every GPU receives every token),
    /// insensitive to gate skew.
    AllGatherReduceScatter,
    /// Latency-optimised per-destination sends: half the setup cost of
    /// the throughput kernels but only ~60% of wire bandwidth. Wins on
    /// small decode payloads.
    #[default]
    LowLatency,
    /// Throughput-optimised pipelined all2all: high setup amortised over
    /// large payloads at ~95% of wire bandwidth. Wins on prefill-sized
    /// payloads.
    HighThroughput,
}

impl All2AllBackend {
    /// All profiles, in sweep order.
    pub const ALL: [Self; 3] = [
        Self::AllGatherReduceScatter,
        Self::LowLatency,
        Self::HighThroughput,
    ];

    /// Stable kebab-case name for CSV columns and CLI flags.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::AllGatherReduceScatter => "allgather-rs",
            Self::LowLatency => "low-latency",
            Self::HighThroughput => "high-throughput",
        }
    }

    /// Multiplier on the peer link's per-transfer setup latency for one
    /// collective phase.
    #[must_use]
    fn setup_factor(self) -> f64 {
        match self {
            Self::AllGatherReduceScatter => 1.0,
            Self::LowLatency => 0.5,
            Self::HighThroughput => 4.0,
        }
    }

    /// Fraction of the peer link's wire bandwidth the kernel sustains.
    #[must_use]
    fn efficiency(self) -> f64 {
        match self {
            Self::AllGatherReduceScatter => 0.95,
            Self::LowLatency => 0.6,
            Self::HighThroughput => 0.95,
        }
    }

    /// Whether the backend's per-device payload ignores routing skew
    /// (dense allgather) rather than following per-destination load.
    #[must_use]
    fn skew_free(self) -> bool {
        matches!(self, Self::AllGatherReduceScatter)
    }
}

/// Gate skew of a routed layer: bottleneck-GPU token load over the mean
/// load (`1.0` for perfectly balanced routing or degenerate inputs).
#[must_use]
pub fn gate_skew(tokens_to_gpu: &[u64]) -> f64 {
    let n = tokens_to_gpu.len() as u64;
    let total: u64 = tokens_to_gpu.iter().sum();
    if n == 0 || total == 0 {
        return 1.0;
    }
    let max = tokens_to_gpu.iter().copied().max().unwrap_or(0);
    max as f64 * n as f64 / total as f64
}

/// Cross-device payload for one phase at one destination, in bytes:
/// `tokens · bytes_per_token · (n-1)/n`, computed in integer arithmetic.
#[must_use]
fn cross_bytes(tokens: u64, bytes_per_token: u64, num_gpus: u64) -> u64 {
    if num_gpus <= 1 {
        return 0;
    }
    let raw = u128::from(tokens) * u128::from(bytes_per_token) * u128::from(num_gpus - 1)
        / u128::from(num_gpus);
    u64::try_from(raw).unwrap_or(u64::MAX)
}

/// One collective phase's duration at a single destination GPU.
#[must_use]
fn phase_time(
    topo: &Topology,
    backend: All2AllBackend,
    recv_tokens: u64,
    bytes_per_token: u64,
) -> Nanos {
    let bytes = cross_bytes(recv_tokens, bytes_per_token, u64::from(topo.num_gpus));
    let setup = (topo.peer_link.setup_latency as f64 * backend.setup_factor()).ceil() as Nanos;
    let wire =
        ((bytes as f64 / (topo.peer_link.bandwidth * backend.efficiency())) * 1e9).ceil() as Nanos;
    setup + wire
}

/// Per-layer all2all cost (dispatch + combine) for one MoE layer.
///
/// `tokens_to_gpu[g]` is the number of token→expert assignments routed
/// to experts owned by GPU `g` this layer; `bytes_per_token` is the
/// hidden-activation payload per assignment. Fills `per_gpu` (indexed by
/// GPU, truncated/zero-extended to the topology size) with each GPU's
/// dispatch+combine busy time and returns the layer critical path — the
/// maximum over GPUs. Single-GPU topologies and empty layers cost zero.
#[must_use]
pub fn all2all_layer_time(
    topo: &Topology,
    backend: All2AllBackend,
    tokens_to_gpu: &[u64],
    bytes_per_token: u64,
    per_gpu: &mut [Nanos],
) -> Nanos {
    per_gpu.iter_mut().for_each(|t| *t = 0);
    let n = topo.num_gpus as usize;
    let total: u64 = tokens_to_gpu.iter().take(n).sum();
    if n <= 1 || total == 0 {
        return 0;
    }
    let mut critical = 0;
    for g in 0..n {
        let recv = if backend.skew_free() {
            total
        } else {
            tokens_to_gpu.get(g).copied().unwrap_or(0)
        };
        // Dispatch and combine are symmetric: same payload, reversed
        // direction, each on the device's own peer port.
        let busy = 2 * phase_time(topo, backend, recv, bytes_per_token);
        if let Some(slot) = per_gpu.get_mut(g) {
            *slot = busy;
        }
        critical = critical.max(busy);
    }
    critical
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(n: u32) -> Topology {
        Topology {
            num_gpus: n,
            ..Topology::paper_testbed()
        }
    }

    #[test]
    fn single_gpu_costs_nothing() {
        let mut per_gpu = [0; 1];
        for backend in All2AllBackend::ALL {
            assert_eq!(
                all2all_layer_time(&topo(1), backend, &[1000], 8192, &mut per_gpu),
                0
            );
        }
    }

    #[test]
    fn empty_layer_costs_nothing() {
        let mut per_gpu = [0; 4];
        assert_eq!(
            all2all_layer_time(
                &topo(4),
                All2AllBackend::LowLatency,
                &[0, 0, 0, 0],
                8192,
                &mut per_gpu
            ),
            0
        );
        assert!(per_gpu.iter().all(|&t| t == 0));
    }

    #[test]
    fn skew_stretches_routed_backends_but_not_allgather() {
        let mut per_gpu = [0; 4];
        let balanced = [256u64, 256, 256, 256];
        let skewed = [1024u64, 0, 0, 0];
        for backend in [All2AllBackend::LowLatency, All2AllBackend::HighThroughput] {
            let flat = all2all_layer_time(&topo(4), backend, &balanced, 8192, &mut per_gpu);
            let hot = all2all_layer_time(&topo(4), backend, &skewed, 8192, &mut per_gpu);
            assert!(hot > flat, "{backend:?}: skewed {hot} <= balanced {flat}");
        }
        let backend = All2AllBackend::AllGatherReduceScatter;
        let flat = all2all_layer_time(&topo(4), backend, &balanced, 8192, &mut per_gpu);
        let hot = all2all_layer_time(&topo(4), backend, &skewed, 8192, &mut per_gpu);
        assert_eq!(flat, hot, "allgather must be skew-free");
    }

    #[test]
    fn low_latency_wins_small_payloads_high_throughput_wins_large() {
        let mut per_gpu = [0; 4];
        let small = [4u64, 4, 4, 4];
        let ll_small = all2all_layer_time(
            &topo(4),
            All2AllBackend::LowLatency,
            &small,
            8192,
            &mut per_gpu,
        );
        let ht_small = all2all_layer_time(
            &topo(4),
            All2AllBackend::HighThroughput,
            &small,
            8192,
            &mut per_gpu,
        );
        assert!(ll_small < ht_small, "{ll_small} vs {ht_small}");

        let large = [65_536u64; 4];
        let ll_large = all2all_layer_time(
            &topo(4),
            All2AllBackend::LowLatency,
            &large,
            8192,
            &mut per_gpu,
        );
        let ht_large = all2all_layer_time(
            &topo(4),
            All2AllBackend::HighThroughput,
            &large,
            8192,
            &mut per_gpu,
        );
        assert!(ht_large < ll_large, "{ht_large} vs {ll_large}");
    }

    #[test]
    fn critical_path_is_the_per_gpu_max() {
        let mut per_gpu = [0; 4];
        let tokens = [100u64, 700, 300, 50];
        let t = all2all_layer_time(
            &topo(4),
            All2AllBackend::HighThroughput,
            &tokens,
            8192,
            &mut per_gpu,
        );
        assert_eq!(t, per_gpu.iter().copied().max().unwrap_or(0));
        assert_eq!(t, per_gpu[1]);
    }

    #[test]
    fn gate_skew_reports_bottleneck_over_mean() {
        assert_eq!(gate_skew(&[]), 1.0);
        assert_eq!(gate_skew(&[0, 0]), 1.0);
        assert!((gate_skew(&[10, 10, 10, 10]) - 1.0).abs() < 1e-12);
        assert!((gate_skew(&[40, 0, 0, 0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cost_is_deterministic_across_runs() {
        let tokens = [123u64, 456, 789, 12];
        let mut a = [0; 4];
        let mut b = [0; 4];
        for backend in All2AllBackend::ALL {
            let x = all2all_layer_time(&topo(4), backend, &tokens, 10_240, &mut a);
            let y = all2all_layer_time(&topo(4), backend, &tokens, 10_240, &mut b);
            assert_eq!(x, y);
            assert_eq!(a, b);
        }
    }
}
