//! Property-based tests for the transfer engine: conservation, ordering
//! and timing invariants under arbitrary schedules.

#![cfg(test)]

use crate::link::Link;
use crate::topology::{GpuId, Topology};
use crate::transfer::{RetryPolicy, TransferEngine};
use fmoe_faults::FaultSchedule;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Prefetch { gpu: u8, bytes: u32 },
    OnDemand { gpu: u8, bytes: u32 },
    Advance { delta: u32 },
    Cancel { gpu: u8, tag_back: u8 },
    Promote { gpu: u8, tag_back: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0u8..3), (1u32..64_000_000)).prop_map(|(gpu, bytes)| Op::Prefetch { gpu, bytes }),
        ((0u8..3), (1u32..64_000_000)).prop_map(|(gpu, bytes)| Op::OnDemand { gpu, bytes }),
        (1u32..10_000_000).prop_map(|delta| Op::Advance { delta }),
        ((0u8..3), (0u8..8)).prop_map(|(gpu, tag_back)| Op::Cancel { gpu, tag_back }),
        ((0u8..3), (0u8..8)).prop_map(|(gpu, tag_back)| Op::Promote { gpu, tag_back }),
    ]
}

/// Random but well-formed fault schedules: `synthetic` is the generator
/// the chaos bench uses, so these tests cover exactly the schedules that
/// run in anger. Intensity 0 yields the inert schedule.
fn schedule_strategy() -> impl Strategy<Value = FaultSchedule> {
    ((0u64..1_000_000), (0u32..101)).prop_map(|(seed, pct)| {
        FaultSchedule::synthetic(seed, f64::from(pct) / 100.0, 60 * crate::clock::SECOND, 3)
    })
}

fn topo() -> Topology {
    Topology::builder()
        .num_gpus(3)
        .gpu_memory_bytes(8 << 30)
        .host_link(Link::pcie4_x16())
        .peer_link(Link::nvlink())
        .host_memory_bytes(64 << 30)
        .build()
        .expect("valid test topology")
}

proptest! {
    /// Every submitted prefetch is eventually either completed exactly
    /// once or cancelled exactly once — nothing is lost or duplicated.
    #[test]
    fn jobs_are_conserved(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut engine = TransferEngine::new(&topo());
        let mut now = 0u64;
        let mut next_tag = 0u64;
        let mut submitted = 0u64;
        let mut completed = 0u64;
        let mut live_tags: Vec<(u8, u64)> = Vec::new();

        for op in ops {
            match op {
                Op::Prefetch { gpu, bytes } => {
                    engine.submit_prefetch(GpuId(u32::from(gpu)), next_tag, u64::from(bytes), now);
                    live_tags.push((gpu, next_tag));
                    next_tag += 1;
                    submitted += 1;
                }
                Op::OnDemand { gpu, bytes } => {
                    let done = engine.on_demand_load(GpuId(u32::from(gpu)), u64::from(bytes), now);
                    prop_assert!(done > now);
                }
                Op::Advance { delta } => {
                    now += u64::from(delta);
                    engine.advance_to(now);
                }
                Op::Cancel { gpu, tag_back } => {
                    if let Some(&(g, tag)) =
                        live_tags.iter().filter(|(g, _)| *g == gpu).rev().nth(usize::from(tag_back))
                    {
                        let _ = engine.cancel_prefetch(GpuId(u32::from(g)), tag, now);
                    }
                }
                Op::Promote { gpu, tag_back } => {
                    if let Some(&(g, tag)) =
                        live_tags.iter().filter(|(g, _)| *g == gpu).rev().nth(usize::from(tag_back))
                    {
                        let _ = engine.promote_to_front(GpuId(u32::from(g)), tag, now);
                    }
                }
            }
            for c in engine.drain_completions() {
                prop_assert!(c.completed_at <= now.max(c.completed_at));
                completed += 1;
            }
        }
        // Drain everything left.
        now += 60_000_000_000;
        engine.advance_to(now);
        completed += engine.drain_completions().len() as u64;
        let cancelled = engine.stats().cancelled_jobs;
        prop_assert_eq!(completed + cancelled, submitted,
            "completed {} + cancelled {} != submitted {}", completed, cancelled, submitted);
    }

    /// Completion timestamps are monotone within a drain, and never in
    /// the future relative to the engine's synced time.
    #[test]
    fn completions_are_ordered(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut engine = TransferEngine::new(&topo());
        let mut now = 0u64;
        let mut next_tag = 0u64;
        for op in ops {
            match op {
                Op::Prefetch { gpu, bytes } => {
                    engine.submit_prefetch(GpuId(u32::from(gpu)), next_tag, u64::from(bytes), now);
                    next_tag += 1;
                }
                Op::OnDemand { gpu, bytes } => {
                    now = engine.on_demand_load(GpuId(u32::from(gpu)), u64::from(bytes), now);
                }
                Op::Advance { delta } => {
                    now += u64::from(delta);
                    engine.advance_to(now);
                }
                _ => {}
            }
            let completions = engine.drain_completions();
            for w in completions.windows(2) {
                prop_assert!(w[0].completed_at <= w[1].completed_at);
            }
        }
    }

    /// An isolated transfer's completion time equals the analytic
    /// link formula, regardless of when we sample progress.
    #[test]
    fn isolated_transfer_timing_is_exact(
        bytes in 1u64..1_000_000_000,
        step_count in 1usize..20,
    ) {
        let mut engine = TransferEngine::new(&topo());
        engine.submit_prefetch(GpuId(0), 7, bytes, 0);
        let expected = Link::pcie4_x16().transfer_time(bytes);
        let step = (expected / step_count as u64).max(1);
        let mut t = 0;
        while t < expected {
            t += step;
            engine.advance_to(t);
        }
        engine.advance_to(expected + 1_000_000);
        let done = engine.drain_completions();
        prop_assert_eq!(done.len(), 1);
        // Allow rounding drift proportional to the number of partial
        // advances.
        let drift = done[0].completed_at.abs_diff(expected);
        prop_assert!(drift <= 2 * step_count as u64 + 2, "drift {} ns", drift);
    }

    /// On-demand loads always take exactly setup + wire time, no matter
    /// what background traffic exists.
    #[test]
    fn on_demand_duration_is_deterministic(
        background in prop::collection::vec((0u8..3, 1u32..32_000_000), 0..10),
        bytes in 1u64..500_000_000,
        at in 0u64..1_000_000_000,
    ) {
        let mut engine = TransferEngine::new(&topo());
        for (i, &(gpu, b)) in background.iter().enumerate() {
            engine.submit_prefetch(GpuId(u32::from(gpu)), i as u64, u64::from(b), 0);
        }
        let done = engine.on_demand_load(GpuId(1), bytes, at);
        prop_assert_eq!(done - at, Link::pcie4_x16().transfer_time(bytes));
    }

    /// Conservation survives the failure model: under an arbitrary fault
    /// schedule, every submitted prefetch resolves exactly once — as a
    /// completion, a cancellation, or a permanent failure. Retries never
    /// lose a job or double-count one.
    #[test]
    fn jobs_are_conserved_under_faults(
        ops in prop::collection::vec(op_strategy(), 1..120),
        schedule in schedule_strategy(),
    ) {
        let mut engine = TransferEngine::new(&topo());
        engine.set_fault_schedule(schedule);
        let mut now = 0u64;
        let mut next_tag = 0u64;
        let mut submitted = 0u64;
        let mut completed = 0u64;
        let mut failed = 0u64;
        let mut live_tags: Vec<(u8, u64)> = Vec::new();

        for op in ops {
            match op {
                Op::Prefetch { gpu, bytes } => {
                    engine.submit_prefetch(GpuId(u32::from(gpu)), next_tag, u64::from(bytes), now);
                    live_tags.push((gpu, next_tag));
                    next_tag += 1;
                    submitted += 1;
                }
                Op::OnDemand { gpu, bytes } => {
                    let done = engine.on_demand_load(GpuId(u32::from(gpu)), u64::from(bytes), now);
                    prop_assert!(done > now);
                }
                Op::Advance { delta } => {
                    now += u64::from(delta);
                    engine.advance_to(now);
                }
                Op::Cancel { gpu, tag_back } => {
                    if let Some(&(g, tag)) =
                        live_tags.iter().filter(|(g, _)| *g == gpu).rev().nth(usize::from(tag_back))
                    {
                        let _ = engine.cancel_prefetch(GpuId(u32::from(g)), tag, now);
                    }
                }
                Op::Promote { gpu, tag_back } => {
                    if let Some(&(g, tag)) =
                        live_tags.iter().filter(|(g, _)| *g == gpu).rev().nth(usize::from(tag_back))
                    {
                        let _ = engine.promote_to_front(GpuId(u32::from(g)), tag, now);
                    }
                }
            }
            completed += engine.drain_completions().len() as u64;
            failed += engine.drain_failures().len() as u64;
        }
        // Drain everything left — long enough to outlast every fault
        // window, retry backoff, and crippled-link transfer.
        now += 600 * crate::clock::SECOND;
        engine.advance_to(now);
        completed += engine.drain_completions().len() as u64;
        failed += engine.drain_failures().len() as u64;
        let cancelled = engine.stats().cancelled_jobs;
        prop_assert_eq!(completed + cancelled + failed, submitted,
            "completed {} + cancelled {} + failed {} != submitted {}",
            completed, cancelled, failed, submitted);
    }

    /// Completion timestamps stay monotone within each drain and never
    /// run ahead of the engine's synced time, faults or not.
    #[test]
    fn completions_stay_ordered_under_faults(
        ops in prop::collection::vec(op_strategy(), 1..80),
        schedule in schedule_strategy(),
    ) {
        let mut engine = TransferEngine::new(&topo());
        engine.set_fault_schedule(schedule);
        let mut now = 0u64;
        let mut next_tag = 0u64;
        for op in ops {
            match op {
                Op::Prefetch { gpu, bytes } => {
                    engine.submit_prefetch(GpuId(u32::from(gpu)), next_tag, u64::from(bytes), now);
                    next_tag += 1;
                }
                Op::OnDemand { gpu, bytes } => {
                    now = engine.on_demand_load(GpuId(u32::from(gpu)), u64::from(bytes), now);
                }
                Op::Advance { delta } => {
                    now += u64::from(delta);
                    engine.advance_to(now);
                }
                _ => {}
            }
            let completions = engine.drain_completions();
            for w in completions.windows(2) {
                prop_assert!(w[0].completed_at <= w[1].completed_at);
            }
            for c in &completions {
                prop_assert!(c.completed_at <= now.max(c.completed_at));
            }
            for f in engine.drain_failures() {
                prop_assert!(f.failed_at <= now, "failure reported from the future");
            }
        }
    }

    /// TransferStats totals reconcile exactly with the per-job events the
    /// engine hands out: drained completions match `prefetch_jobs` and
    /// `prefetch_bytes`, drained failures match `failed_jobs`, and every
    /// failed job burned through the full retry budget.
    #[test]
    fn stats_reconcile_with_drained_events(
        ops in prop::collection::vec(op_strategy(), 1..100),
        schedule in schedule_strategy(),
    ) {
        let retry = RetryPolicy::default();
        let mut engine = TransferEngine::new(&topo());
        engine.set_fault_schedule(schedule);
        engine.set_retry_policy(retry);
        let mut now = 0u64;
        let mut next_tag = 0u64;
        let mut drained_jobs = 0u64;
        let mut drained_bytes = 0u64;
        let mut drained_failures = 0u64;

        for op in ops {
            match op {
                Op::Prefetch { gpu, bytes } => {
                    engine.submit_prefetch(GpuId(u32::from(gpu)), next_tag, u64::from(bytes), now);
                    next_tag += 1;
                }
                Op::OnDemand { gpu, bytes } => {
                    now = engine.on_demand_load(GpuId(u32::from(gpu)), u64::from(bytes), now);
                }
                Op::Advance { delta } => {
                    now += u64::from(delta);
                    engine.advance_to(now);
                }
                _ => {}
            }
            for c in engine.drain_completions() {
                drained_jobs += 1;
                drained_bytes += c.bytes;
            }
            for f in engine.drain_failures() {
                drained_failures += 1;
                prop_assert_eq!(f.attempts, retry.max_retries + 1,
                    "a permanent failure must have used every attempt");
            }
        }
        now += 600 * crate::clock::SECOND;
        engine.advance_to(now);
        for c in engine.drain_completions() {
            drained_jobs += 1;
            drained_bytes += c.bytes;
        }
        drained_failures += engine.drain_failures().len() as u64;

        let stats = engine.stats();
        prop_assert_eq!(stats.prefetch_jobs, drained_jobs);
        prop_assert_eq!(stats.prefetch_bytes, drained_bytes);
        prop_assert_eq!(stats.failed_jobs, drained_failures);
        prop_assert!(stats.faults_injected >= stats.retries,
            "every retry was provoked by an injected fault");
        if stats.retries > 0 {
            prop_assert!(stats.backoff_ns > 0, "retries imply backoff time");
        }
    }

    /// Installing an inert schedule is byte-identical to installing none:
    /// same completions, same stats, for any operation sequence.
    #[test]
    fn inert_schedule_is_transparent(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut plain = TransferEngine::new(&topo());
        let mut inert = TransferEngine::new(&topo());
        inert.set_fault_schedule(FaultSchedule::none());
        let mut now = 0u64;
        let mut next_tag = 0u64;
        for op in ops {
            match op {
                Op::Prefetch { gpu, bytes } => {
                    plain.submit_prefetch(GpuId(u32::from(gpu)), next_tag, u64::from(bytes), now);
                    inert.submit_prefetch(GpuId(u32::from(gpu)), next_tag, u64::from(bytes), now);
                    next_tag += 1;
                }
                Op::OnDemand { gpu, bytes } => {
                    let a = plain.on_demand_load(GpuId(u32::from(gpu)), u64::from(bytes), now);
                    let b = inert.on_demand_load(GpuId(u32::from(gpu)), u64::from(bytes), now);
                    prop_assert_eq!(a, b);
                }
                Op::Advance { delta } => {
                    now += u64::from(delta);
                    plain.advance_to(now);
                    inert.advance_to(now);
                }
                Op::Cancel { gpu, tag_back } => {
                    let tag = u64::from(tag_back);
                    let a = plain.cancel_prefetch(GpuId(u32::from(gpu)), tag, now);
                    let b = inert.cancel_prefetch(GpuId(u32::from(gpu)), tag, now);
                    prop_assert_eq!(a, b);
                }
                Op::Promote { gpu, tag_back } => {
                    let tag = u64::from(tag_back);
                    let a = plain.promote_to_front(GpuId(u32::from(gpu)), tag, now);
                    let b = inert.promote_to_front(GpuId(u32::from(gpu)), tag, now);
                    prop_assert_eq!(a, b);
                }
            }
            let ca = plain.drain_completions();
            let cb = inert.drain_completions();
            prop_assert_eq!(ca.len(), cb.len());
            for (x, y) in ca.iter().zip(&cb) {
                prop_assert_eq!(x.tag, y.tag);
                prop_assert_eq!(x.completed_at, y.completed_at);
                prop_assert_eq!(x.bytes, y.bytes);
            }
        }
        prop_assert_eq!(plain.stats(), inert.stats());
    }
}
