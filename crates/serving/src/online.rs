//! Trace-driven online serving (paper §6.3, Figure 10).
//!
//! Requests arrive on a trace's schedule and are served by one engine
//! under a [`Scheduler`] discipline — one-at-a-time FCFS or continuous
//! batching — behind the single entry point [`serve`]. The reported
//! *request latency* is end-to-end: queueing (waiting for earlier
//! requests) plus serving time — the quantity whose CDF the paper plots.
//! Caches and policy state stay warm across requests, and for fMoE the
//! Expert Map Store starts empty and fills online, exactly as in the
//! paper's setup.
//!
//! [`serve`] is the sole entry point; the scheduling discipline and SLO
//! policy ride in [`ServeOptions`].

use crate::engine::{ServeError, ServingEngine};
use crate::metrics::RequestMetrics;
use crate::predictor::ExpertPredictor;
use fmoe_memsim::Nanos;
use fmoe_trace::{Marker, Phase, NO_GPU, NO_LAYER, NO_SLOT};
use fmoe_workload::TraceEvent;
use serde::Serialize;

/// What the SLO-aware scheduler does with a request whose projected
/// queueing delay already violates its latency budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SloAction {
    /// Reject the request outright (load shedding): it is never served
    /// and is reported in [`OnlineReport::shed`].
    Shed,
    /// Serve it anyway, but in degraded mode: on-demand loads move
    /// half-precision payloads to cut the remaining latency.
    Degrade,
}

/// SLO admission policy for [`serve`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SloPolicy {
    /// Maximum tolerable queueing delay, in nanoseconds. A request still
    /// waiting past this budget when its turn comes triggers `action`.
    pub max_queueing_ns: Nanos,
    /// What to do with violating requests.
    pub action: SloAction,
}

impl SloPolicy {
    /// Sheds requests whose queueing delay exceeds `max_queueing_ns`.
    #[must_use]
    pub fn shed(max_queueing_ns: Nanos) -> Self {
        Self {
            max_queueing_ns,
            action: SloAction::Shed,
        }
    }

    /// Serves violating requests in degraded mode instead of shedding.
    #[must_use]
    pub fn degrade(max_queueing_ns: Nanos) -> Self {
        Self {
            max_queueing_ns,
            action: SloAction::Degrade,
        }
    }
}

/// Scheduling discipline for [`serve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Scheduler {
    /// One request at a time, in arrival order. Results come back in
    /// trace order.
    Fcfs,
    /// Continuous batching: up to `max_slots` requests share each
    /// iteration, new arrivals joining at iteration boundaries
    /// (prefilling alongside others' decodes) and finished requests
    /// leaving immediately. Results come back in completion order.
    /// Requires unique request ids within the trace (generated traces
    /// comply); `max_slots` is clamped to at least 1.
    Continuous {
        /// Maximum number of requests sharing an iteration.
        max_slots: usize,
    },
}

/// Options for [`serve`]: scheduling discipline plus an optional SLO
/// admission policy.
///
/// `Default` is plain FCFS with no SLO — exactly the paper's Figure 10
/// setup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ServeOptions {
    /// Scheduling discipline.
    pub scheduler: Scheduler,
    /// Optional SLO admission policy. Under `Continuous` scheduling only
    /// [`SloAction::Shed`] is supported (see [`serve`] errors).
    pub slo: Option<SloPolicy>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self::fcfs()
    }
}

impl ServeOptions {
    /// One-at-a-time FCFS, no SLO.
    #[must_use]
    pub fn fcfs() -> Self {
        Self {
            scheduler: Scheduler::Fcfs,
            slo: None,
        }
    }

    /// Continuous batching with `max_slots` concurrent requests, no SLO.
    #[must_use]
    pub fn continuous(max_slots: usize) -> Self {
        Self {
            scheduler: Scheduler::Continuous { max_slots },
            slo: None,
        }
    }

    /// Adds an SLO admission policy.
    #[must_use]
    pub fn with_slo(mut self, slo: SloPolicy) -> Self {
        self.slo = Some(slo);
        self
    }
}

/// A request rejected by the SLO policy.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ShedRequest {
    /// The request id.
    pub request_id: u64,
    /// Arrival time from the trace.
    pub arrival_ns: Nanos,
    /// Queueing delay it had already accumulated when shed.
    pub queued_ns: Nanos,
}

/// Outcome of a trace replay: served results plus the requests the SLO
/// policy shed. `results.len() + shed.len()` always equals the trace
/// length.
#[derive(Debug, Clone, Default, Serialize)]
pub struct OnlineReport {
    /// Served requests — in trace (arrival) order under
    /// [`Scheduler::Fcfs`], in completion order under
    /// [`Scheduler::Continuous`].
    pub results: Vec<OnlineResult>,
    /// Requests rejected by the SLO policy, in trace order.
    pub shed: Vec<ShedRequest>,
    /// How many of `results` were served in degraded mode.
    pub degraded_serves: u64,
}

impl OnlineReport {
    /// Goodput: fraction of trace requests that were served (any mode).
    #[must_use]
    pub fn goodput(&self) -> f64 {
        let total = self.results.len() + self.shed.len();
        if total == 0 {
            0.0
        } else {
            self.results.len() as f64 / total as f64
        }
    }
}

/// Outcome for one trace request.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct OnlineResult {
    /// The request id.
    pub request_id: u64,
    /// Arrival time from the trace.
    pub arrival_ns: Nanos,
    /// When serving began (>= arrival under FCFS).
    pub start_ns: Nanos,
    /// When the last token was emitted.
    pub finish_ns: Nanos,
    /// Serving metrics (excludes queueing).
    pub metrics: RequestMetrics,
}

impl OnlineResult {
    /// End-to-end request latency: queueing + serving, in nanoseconds.
    #[must_use]
    pub fn request_latency_ns(&self) -> Nanos {
        self.finish_ns - self.arrival_ns
    }

    /// Queueing delay before serving started.
    #[must_use]
    pub fn queueing_ns(&self) -> Nanos {
        self.start_ns - self.arrival_ns
    }
}

/// Outcome of dispatching one trace event FCFS (see [`serve_event_fcfs`]).
#[derive(Debug, Clone)]
pub enum FcfsOutcome {
    /// The request was served.
    Served(OnlineResult),
    /// The SLO policy rejected the request.
    Shed(ShedRequest),
}

/// Serves one trace event FCFS on `engine`, applying the optional SLO
/// policy when the request's turn comes.
///
/// This is the exact per-event step of [`serve`] under
/// [`Scheduler::Fcfs`], exposed so multi-engine schedulers (the
/// `fmoe-cluster` crate) can drive independent per-replica FIFO queues
/// with byte-identical semantics. Events must be fed in arrival order.
pub fn serve_event_fcfs(
    engine: &mut ServingEngine,
    event: &TraceEvent,
    predictor: &mut dyn ExpertPredictor,
    slo: Option<SloPolicy>,
) -> FcfsOutcome {
    // FCFS: the engine serves the request when both it and the request
    // are ready.
    engine.idle_until(event.arrival_ns);
    let queued = engine.now().saturating_sub(event.arrival_ns);
    let mut degrade = false;
    if let Some(policy) = slo {
        if queued > policy.max_queueing_ns {
            match policy.action {
                SloAction::Shed => {
                    let trace_sink = engine.trace_sink();
                    trace_sink.instant(
                        engine.now(),
                        Marker::Shed,
                        event.prompt.id,
                        NO_LAYER,
                        NO_SLOT,
                        NO_GPU,
                        queued,
                    );
                    trace_sink.count("online.shed", 1);
                    return FcfsOutcome::Shed(ShedRequest {
                        request_id: event.prompt.id,
                        arrival_ns: event.arrival_ns,
                        queued_ns: queued,
                    });
                }
                SloAction::Degrade => degrade = true,
            }
        }
    }
    let start = engine.now();
    // Queueing happened over `[arrival, start]`: record it retroactively
    // as a span ending now, so the queue wait shows up on the request's
    // own track in the exported timeline.
    if queued > 0 {
        engine.trace_sink().span(
            start,
            Phase::Queue,
            event.prompt.id,
            NO_LAYER,
            NO_GPU,
            queued,
            0,
        );
    }
    if degrade {
        let trace_sink = engine.trace_sink();
        trace_sink.instant(
            start,
            Marker::DegradedServe,
            event.prompt.id,
            NO_LAYER,
            NO_SLOT,
            NO_GPU,
            queued,
        );
        trace_sink.count("online.degraded_serves", 1);
    }
    let metrics = if degrade {
        engine.serve_request_degraded(event.prompt, predictor)
    } else {
        engine.serve_request(event.prompt, predictor)
    };
    let finish = engine.now();
    engine
        .trace_sink()
        .observe("online.request_latency_ns", finish - event.arrival_ns);
    FcfsOutcome::Served(OnlineResult {
        request_id: event.prompt.id,
        arrival_ns: event.arrival_ns,
        start_ns: start,
        finish_ns: finish,
        metrics,
    })
}

/// Replays a trace through an engine under `options` — the single online
/// serving entry point.
///
/// Events must be sorted by arrival time (as produced by
/// `fmoe_workload::AzureTraceSpec::generate`). With
/// [`Scheduler::Fcfs`] requests are served one at a time in arrival
/// order; with [`Scheduler::Continuous`] up to `max_slots` requests share
/// each iteration. An optional [`SloPolicy`] sheds (or, under FCFS,
/// degrades) requests whose queueing delay blows the budget when their
/// turn comes.
///
/// # Errors
///
/// * [`ServeError::UnsupportedOptions`] — `Continuous` scheduling
///   combined with [`SloAction::Degrade`]: the engine's degraded mode
///   applies engine-wide during an iteration, so per-request degradation
///   inside a shared batch would silently mis-model; the combination is
///   rejected instead.
/// * [`ServeError::UnknownRequest`] — the engine reported a finished
///   request that was never admitted (an engine bookkeeping invariant;
///   surfaced as a typed error rather than a panic).
pub fn serve(
    engine: &mut ServingEngine,
    trace: &[TraceEvent],
    predictor: &mut dyn ExpertPredictor,
    options: &ServeOptions,
) -> Result<OnlineReport, ServeError> {
    match options.scheduler {
        Scheduler::Fcfs => Ok(serve_fcfs(engine, trace, predictor, options.slo)),
        Scheduler::Continuous { max_slots } => {
            if matches!(
                options.slo,
                Some(SloPolicy {
                    action: SloAction::Degrade,
                    ..
                })
            ) {
                return Err(ServeError::UnsupportedOptions {
                    reason: "continuous batching cannot degrade individual requests \
                             (engine degraded mode is engine-wide); use SloAction::Shed",
                });
            }
            serve_continuous(engine, trace, predictor, max_slots, options.slo)
        }
    }
}

/// FCFS replay: [`serve_event_fcfs`] over the trace, in order.
fn serve_fcfs(
    engine: &mut ServingEngine,
    trace: &[TraceEvent],
    predictor: &mut dyn ExpertPredictor,
    slo: Option<SloPolicy>,
) -> OnlineReport {
    let mut results = Vec::with_capacity(trace.len());
    let mut shed = Vec::new();
    let mut degraded_serves = 0u64;
    for event in trace {
        match serve_event_fcfs(engine, event, predictor, slo) {
            FcfsOutcome::Served(result) => {
                if result.metrics.served_degraded {
                    degraded_serves += 1;
                }
                results.push(result);
            }
            FcfsOutcome::Shed(request) => shed.push(request),
        }
    }
    OnlineReport {
        results,
        shed,
        degraded_serves,
    }
}

/// Continuous-batching replay: admit while slots are free, step the
/// shared batch, collect finishes. An SLO policy (Shed only) rejects
/// requests whose queueing delay has blown the budget by the time a slot
/// frees up for them.
fn serve_continuous(
    engine: &mut ServingEngine,
    trace: &[TraceEvent],
    predictor: &mut dyn ExpertPredictor,
    max_slots: usize,
    slo: Option<SloPolicy>,
) -> Result<OnlineReport, ServeError> {
    let max_slots = max_slots.max(1);
    let mut results = Vec::with_capacity(trace.len());
    let mut shed = Vec::new();
    let mut next_arrival = 0usize;
    // request id -> (arrival_ns, admission time).
    let mut admissions: std::collections::BTreeMap<u64, (Nanos, Nanos)> =
        std::collections::BTreeMap::new();
    while next_arrival < trace.len() || engine.active_requests() > 0 {
        // Admit everything that has arrived while slots are free.
        while next_arrival < trace.len()
            && engine.active_requests() < max_slots
            && trace[next_arrival].arrival_ns <= engine.now()
        {
            let event = &trace[next_arrival];
            let queued = engine.now().saturating_sub(event.arrival_ns);
            if let Some(policy) = slo {
                if queued > policy.max_queueing_ns {
                    // Only Shed reaches here; Degrade was rejected up
                    // front in `serve`.
                    let trace_sink = engine.trace_sink();
                    trace_sink.instant(
                        engine.now(),
                        Marker::Shed,
                        event.prompt.id,
                        NO_LAYER,
                        NO_SLOT,
                        NO_GPU,
                        queued,
                    );
                    trace_sink.count("online.shed", 1);
                    shed.push(ShedRequest {
                        request_id: event.prompt.id,
                        arrival_ns: event.arrival_ns,
                        queued_ns: queued,
                    });
                    next_arrival += 1;
                    continue;
                }
            }
            let _slot = engine.admit(event.prompt);
            let admitted = engine.now();
            if queued > 0 {
                engine.trace_sink().span(
                    admitted,
                    Phase::Queue,
                    event.prompt.id,
                    NO_LAYER,
                    NO_GPU,
                    queued,
                    0,
                );
            }
            admissions.insert(event.prompt.id, (event.arrival_ns, admitted));
            next_arrival += 1;
        }
        if engine.active_requests() == 0 {
            if next_arrival >= trace.len() {
                break;
            }
            // Idle: jump to the next arrival.
            let arrival = trace[next_arrival].arrival_ns;
            engine.idle_until(arrival);
            continue;
        }
        for metrics in engine.step(predictor) {
            let (arrival_ns, start_ns) =
                admissions
                    .remove(&metrics.request_id)
                    .ok_or(ServeError::UnknownRequest {
                        request_id: metrics.request_id,
                    })?;
            engine
                .trace_sink()
                .observe("online.request_latency_ns", engine.now() - arrival_ns);
            results.push(OnlineResult {
                request_id: metrics.request_id,
                arrival_ns,
                start_ns,
                finish_ns: engine.now(),
                metrics,
            });
        }
    }
    Ok(OnlineReport {
        results,
        shed,
        degraded_serves: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::predictor::NoPrefetch;
    use fmoe_cache::LruPolicy;
    use fmoe_memsim::Topology;
    use fmoe_model::{presets, GateParams, GateSimulator, GpuSpec};
    use fmoe_workload::{AzureTraceSpec, DatasetSpec};

    fn engine() -> ServingEngine {
        let cfg = presets::tiny_test_model();
        let gate = GateSimulator::new(cfg.clone(), GateParams::for_model(&cfg));
        let config = EngineConfig {
            cache_budget_bytes: cfg.expert_bytes() * 8,
            preload_all: false,
            max_decode_iterations: Some(4),
            context_collection_ns: 1000,
            framework_overhead_per_layer_ns: 10_000,
            ..EngineConfig::paper_default()
        };
        ServingEngine::new(
            gate,
            GpuSpec::rtx_3090(),
            Topology::single_gpu(8 << 30),
            Box::new(LruPolicy::new()),
            config,
        )
    }

    fn trace(n: u64) -> Vec<TraceEvent> {
        let mut spec = AzureTraceSpec::paper_online_serving(DatasetSpec::tiny_test());
        spec.num_requests = n;
        spec.generate()
    }

    fn serve_fcfs_results(e: &mut ServingEngine, t: &[TraceEvent]) -> Vec<OnlineResult> {
        serve(e, t, &mut NoPrefetch, &ServeOptions::fcfs())
            .expect("fcfs serving is infallible")
            .results
    }

    #[test]
    fn fcfs_never_starts_before_arrival() {
        let mut e = engine();
        let t = trace(8);
        let results = serve_fcfs_results(&mut e, &t);
        assert_eq!(results.len(), 8);
        for r in &results {
            assert!(r.start_ns >= r.arrival_ns);
            assert!(r.finish_ns > r.start_ns);
            assert_eq!(
                r.request_latency_ns(),
                r.queueing_ns() + (r.finish_ns - r.start_ns)
            );
        }
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut e = engine();
        // Two requests arriving at the same instant: the second must wait
        // for the first.
        let mut t = trace(2);
        t[1].arrival_ns = t[0].arrival_ns;
        let results = serve_fcfs_results(&mut e, &t);
        assert_eq!(results[0].queueing_ns(), 0);
        assert!(results[1].queueing_ns() > 0);
        assert_eq!(results[1].start_ns, results[0].finish_ns);
    }

    #[test]
    fn served_in_trace_order() {
        let mut e = engine();
        let t = trace(6);
        let results = serve_fcfs_results(&mut e, &t);
        for w in results.windows(2) {
            assert!(w[0].finish_ns <= w[1].start_ns);
        }
    }

    #[test]
    fn empty_trace_yields_no_results() {
        let mut e = engine();
        assert!(serve_fcfs_results(&mut e, &[]).is_empty());
        let mut e2 = engine();
        let report = serve(&mut e2, &[], &mut NoPrefetch, &ServeOptions::continuous(4))
            .expect("empty trace serves");
        assert!(report.results.is_empty());
        assert!(report.shed.is_empty());
    }

    #[test]
    fn continuous_batching_serves_every_request_once() {
        let mut e = engine();
        let t = trace(10);
        let report = serve(&mut e, &t, &mut NoPrefetch, &ServeOptions::continuous(3))
            .expect("continuous serving succeeds");
        let results = report.results;
        assert_eq!(results.len(), 10);
        let mut ids: Vec<u64> = results.iter().map(|r| r.request_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10, "each request finishes exactly once");
        for r in &results {
            assert!(r.start_ns >= r.arrival_ns);
            assert!(r.finish_ns > r.start_ns);
        }
        assert_eq!(e.active_requests(), 0);
    }

    #[test]
    fn continuous_batching_overlaps_requests() {
        // Two requests arriving together with 2 slots must overlap: the
        // second finishes earlier than it would under FCFS.
        let mut t = trace(2);
        t[1].arrival_ns = t[0].arrival_ns;

        let mut fcfs_engine = engine();
        let fcfs = serve_fcfs_results(&mut fcfs_engine, &t);
        let mut cb_engine = engine();
        let cb = serve(
            &mut cb_engine,
            &t,
            &mut NoPrefetch,
            &ServeOptions::continuous(2),
        )
        .expect("continuous serving succeeds")
        .results;

        let fcfs_last = fcfs.iter().map(|r| r.finish_ns).max().unwrap();
        let cb_last = cb.iter().map(|r| r.finish_ns).max().unwrap();
        assert!(
            cb_last < fcfs_last,
            "continuous batching last-finish {cb_last} should beat FCFS {fcfs_last}"
        );
        // And nobody starts before arriving.
        for r in &cb {
            assert!(r.start_ns >= r.arrival_ns);
        }
    }

    #[test]
    fn continuous_batching_respects_slot_limit() {
        let mut t = trace(6);
        for e in &mut t {
            e.arrival_ns = 0;
        }
        let mut e = engine();
        // With a single slot, continuous batching degenerates to FCFS
        // semantics: total completion matches the sequential scheduler.
        let cb = serve(&mut e, &t, &mut NoPrefetch, &ServeOptions::continuous(1))
            .expect("continuous serving succeeds")
            .results;
        assert_eq!(cb.len(), 6);
        let mut finishes: Vec<_> = cb.iter().map(|r| r.finish_ns).collect();
        finishes.sort_unstable();
        finishes.dedup();
        assert_eq!(finishes.len(), 6, "one at a time, distinct finishes");
    }

    #[test]
    fn slo_none_matches_plain_fcfs() {
        let t = trace(6);
        let mut e1 = engine();
        let plain = serve_fcfs_results(&mut e1, &t);
        let mut e2 = engine();
        let report = serve(&mut e2, &t, &mut NoPrefetch, &ServeOptions::fcfs())
            .expect("fcfs serving is infallible");
        assert!(report.shed.is_empty());
        assert_eq!(report.degraded_serves, 0);
        assert_eq!(plain.len(), report.results.len());
        for (a, b) in plain.iter().zip(&report.results) {
            assert_eq!(a.request_id, b.request_id);
            assert_eq!(a.finish_ns, b.finish_ns);
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn slo_shed_drops_late_requests_and_accounts_for_all() {
        // All requests arrive at t=0: everyone after the first queues
        // behind it, so a zero queueing budget sheds the rest.
        let mut t = trace(5);
        for ev in &mut t {
            ev.arrival_ns = 0;
        }
        let mut e = engine();
        let report = serve(
            &mut e,
            &t,
            &mut NoPrefetch,
            &ServeOptions::fcfs().with_slo(SloPolicy::shed(0)),
        )
        .expect("fcfs serving is infallible");
        assert_eq!(report.results.len() + report.shed.len(), 5);
        assert_eq!(report.results.len(), 1, "only the head avoids queueing");
        assert_eq!(report.shed.len(), 4);
        for s in &report.shed {
            assert!(s.queued_ns > 0);
        }
        assert!((report.goodput() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn slo_degrade_serves_everyone_flagged() {
        let mut t = trace(4);
        for ev in &mut t {
            ev.arrival_ns = 0;
        }
        let mut e = engine();
        let report = serve(
            &mut e,
            &t,
            &mut NoPrefetch,
            &ServeOptions::fcfs().with_slo(SloPolicy::degrade(0)),
        )
        .expect("fcfs serving is infallible");
        assert_eq!(report.results.len(), 4, "degrade mode sheds nothing");
        assert!(report.shed.is_empty());
        assert_eq!(report.degraded_serves, 3, "head request is within SLO");
        let flagged = report
            .results
            .iter()
            .filter(|r| r.metrics.served_degraded)
            .count();
        assert_eq!(flagged as u64, report.degraded_serves);
        assert!((report.goodput() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn generous_slo_sheds_nothing() {
        let t = trace(6);
        let mut e = engine();
        let report = serve(
            &mut e,
            &t,
            &mut NoPrefetch,
            &ServeOptions::fcfs().with_slo(SloPolicy::shed(u64::MAX / 2)),
        )
        .expect("fcfs serving is infallible");
        assert_eq!(report.results.len(), 6);
        assert!(report.shed.is_empty());
    }

    #[test]
    fn continuous_slo_shed_accounts_for_all() {
        // Everyone arrives at t=0 with a single slot and zero queueing
        // budget: the head request is admitted immediately, everyone
        // queued behind it is shed when a slot finally frees.
        let mut t = trace(5);
        for ev in &mut t {
            ev.arrival_ns = 0;
        }
        let mut e = engine();
        let report = serve(
            &mut e,
            &t,
            &mut NoPrefetch,
            &ServeOptions::continuous(1).with_slo(SloPolicy::shed(0)),
        )
        .expect("continuous serving succeeds");
        assert_eq!(report.results.len() + report.shed.len(), 5);
        assert_eq!(report.results.len(), 1, "only the head avoids queueing");
        for s in &report.shed {
            assert!(s.queued_ns > 0);
        }
        assert_eq!(e.active_requests(), 0);
    }

    #[test]
    fn continuous_generous_slo_matches_no_slo() {
        let t = trace(6);
        let mut e1 = engine();
        let plain = serve(&mut e1, &t, &mut NoPrefetch, &ServeOptions::continuous(3))
            .expect("continuous serving succeeds");
        let mut e2 = engine();
        let slo = serve(
            &mut e2,
            &t,
            &mut NoPrefetch,
            &ServeOptions::continuous(3).with_slo(SloPolicy::shed(u64::MAX / 2)),
        )
        .expect("continuous serving succeeds");
        assert!(slo.shed.is_empty());
        assert_eq!(format!("{plain:?}"), format!("{slo:?}"));
    }

    #[test]
    fn continuous_degrade_is_a_typed_error() {
        let t = trace(2);
        let mut e = engine();
        let err = serve(
            &mut e,
            &t,
            &mut NoPrefetch,
            &ServeOptions::continuous(2).with_slo(SloPolicy::degrade(0)),
        )
        .expect_err("continuous + degrade must be rejected");
        assert!(matches!(err, ServeError::UnsupportedOptions { .. }));
        assert!(err.to_string().contains("unsupported serve options"));
    }

    #[test]
    fn serve_options_spellings_are_equivalent() {
        // The spellings the removed `serve_trace*` wrappers used to
        // expand to must keep producing identical reports through the
        // unified `serve` entry point.
        let t = trace(6);

        // `ServeOptions::fcfs()` is the default options value.
        let mut e1 = engine();
        let default_opts = serve(&mut e1, &t, &mut NoPrefetch, &ServeOptions::default())
            .expect("fcfs serving is infallible");
        let mut e2 = engine();
        let fcfs = serve(&mut e2, &t, &mut NoPrefetch, &ServeOptions::fcfs())
            .expect("fcfs serving is infallible");
        assert_eq!(format!("{default_opts:?}"), format!("{fcfs:?}"));

        // Structurally-built options match the fluent constructor.
        let mut e3 = engine();
        let structural = serve(
            &mut e3,
            &t,
            &mut NoPrefetch,
            &ServeOptions {
                scheduler: Scheduler::Fcfs,
                slo: Some(SloPolicy::shed(0)),
            },
        )
        .expect("fcfs serving is infallible");
        let mut e4 = engine();
        let fluent = serve(
            &mut e4,
            &t,
            &mut NoPrefetch,
            &ServeOptions::fcfs().with_slo(SloPolicy::shed(0)),
        )
        .expect("fcfs serving is infallible");
        assert_eq!(format!("{structural:?}"), format!("{fluent:?}"));

        // `max_slots` clamps to at least one slot: zero and one behave
        // identically.
        let mut e5 = engine();
        let zero_slots = serve(&mut e5, &t, &mut NoPrefetch, &ServeOptions::continuous(0))
            .expect("continuous serving succeeds");
        let mut e6 = engine();
        let one_slot = serve(&mut e6, &t, &mut NoPrefetch, &ServeOptions::continuous(1))
            .expect("continuous serving succeeds");
        assert_eq!(format!("{zero_slots:?}"), format!("{one_slot:?}"));
    }

    #[test]
    fn trace_sink_does_not_perturb_serving_and_captures_phases() {
        let t = trace(4);
        let mut plain = engine();
        let base = serve_fcfs_results(&mut plain, &t);
        let mut traced = engine();
        traced.set_trace_sink(fmoe_trace::TraceSink::recording(1 << 16));
        let got = serve_fcfs_results(&mut traced, &t);
        assert_eq!(base.len(), got.len());
        for (a, b) in base.iter().zip(&got) {
            assert_eq!(a.request_id, b.request_id);
            assert_eq!(a.start_ns, b.start_ns);
            assert_eq!(a.finish_ns, b.finish_ns);
            assert_eq!(a.metrics, b.metrics);
        }
        let records = traced.trace_sink().take_records();
        assert!(!records.is_empty(), "tracing captured the run");
        let totals = fmoe_trace::phase_totals(&records);
        assert!(totals.contains_key("iteration"));
        assert!(totals.contains_key("gate"));
        assert!(totals.contains_key("compute"));
        assert!(totals.contains_key("context_collect"));
        let snap = traced.trace_sink().metrics_snapshot();
        assert!(snap.counter("engine.iterations") > 0);
        assert_eq!(snap.counter("engine.requests_finished"), 4);
        assert_eq!(
            snap.histogram("online.request_latency_ns")
                .map(|h| h.count()),
            Some(4)
        );
    }

    #[test]
    fn admit_and_step_directly() {
        let mut e = engine();
        assert_eq!(e.active_requests(), 0);
        assert!(e.step(&mut NoPrefetch).is_empty());
        let t = trace(2);
        let s0 = e.admit(t[0].prompt);
        let s1 = e.admit(t[1].prompt);
        assert_ne!(s0, s1);
        assert_eq!(e.active_requests(), 2);
        let mut guard = 0;
        while e.active_requests() > 0 {
            let _ = e.step(&mut NoPrefetch);
            guard += 1;
            assert!(guard < 100, "requests must terminate");
        }
        // Freed slots are reused.
        let s2 = e.admit(t[0].prompt);
        assert!(s2 == s0 || s2 == s1);
    }
}
