//! Trace-driven online serving (paper §6.3, Figure 10).
//!
//! Requests arrive on a trace's schedule and are served FCFS by one
//! engine. The reported *request latency* is end-to-end: queueing (waiting
//! for earlier requests) plus serving time — the quantity whose CDF the
//! paper plots. Caches and policy state stay warm across requests, and for
//! fMoE the Expert Map Store starts empty and fills online, exactly as in
//! the paper's setup.

use crate::engine::ServingEngine;
use crate::metrics::RequestMetrics;
use crate::predictor::ExpertPredictor;
use fmoe_memsim::Nanos;
use fmoe_workload::TraceEvent;
use serde::Serialize;

/// Outcome for one trace request.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct OnlineResult {
    /// The request id.
    pub request_id: u64,
    /// Arrival time from the trace.
    pub arrival_ns: Nanos,
    /// When serving began (>= arrival under FCFS).
    pub start_ns: Nanos,
    /// When the last token was emitted.
    pub finish_ns: Nanos,
    /// Serving metrics (excludes queueing).
    pub metrics: RequestMetrics,
}

impl OnlineResult {
    /// End-to-end request latency: queueing + serving, in nanoseconds.
    #[must_use]
    pub fn request_latency_ns(&self) -> Nanos {
        self.finish_ns - self.arrival_ns
    }

    /// Queueing delay before serving started.
    #[must_use]
    pub fn queueing_ns(&self) -> Nanos {
        self.start_ns - self.arrival_ns
    }
}

/// Replays a trace through an engine with FCFS scheduling.
///
/// Events must be sorted by arrival time (as produced by
/// `fmoe_workload::AzureTraceSpec::generate`).
pub fn serve_trace(
    engine: &mut ServingEngine,
    trace: &[TraceEvent],
    predictor: &mut dyn ExpertPredictor,
) -> Vec<OnlineResult> {
    let mut results = Vec::with_capacity(trace.len());
    for event in trace {
        // FCFS: the engine serves the request when both it and the
        // request are ready.
        engine.idle_until(event.arrival_ns);
        let start = engine.now();
        let metrics = engine.serve_request(event.prompt, predictor);
        let finish = engine.now();
        results.push(OnlineResult {
            request_id: event.prompt.id,
            arrival_ns: event.arrival_ns,
            start_ns: start,
            finish_ns: finish,
            metrics,
        });
    }
    results
}

/// Replays a trace with **continuous batching**: up to `max_slots`
/// requests share each iteration, new arrivals joining at iteration
/// boundaries (prefilling alongside others' decodes) and finished
/// requests leaving immediately. Compare with [`serve_trace`]'s
/// one-at-a-time FCFS to see what continuous batching buys under bursts.
///
/// Requires unique request ids within the trace (generated traces comply).
/// Results are returned in completion order.
pub fn serve_trace_continuous(
    engine: &mut ServingEngine,
    trace: &[TraceEvent],
    predictor: &mut dyn ExpertPredictor,
    max_slots: usize,
) -> Vec<OnlineResult> {
    let max_slots = max_slots.max(1);
    let mut results = Vec::with_capacity(trace.len());
    let mut next_arrival = 0usize;
    // request id -> (arrival_ns, admission time).
    let mut admissions: std::collections::HashMap<u64, (Nanos, Nanos)> =
        std::collections::HashMap::new();
    while next_arrival < trace.len() || engine.active_requests() > 0 {
        // Admit everything that has arrived while slots are free.
        while next_arrival < trace.len()
            && engine.active_requests() < max_slots
            && trace[next_arrival].arrival_ns <= engine.now()
        {
            let event = &trace[next_arrival];
            let _slot = engine.admit(event.prompt);
            admissions.insert(event.prompt.id, (event.arrival_ns, engine.now()));
            next_arrival += 1;
        }
        if engine.active_requests() == 0 {
            // Idle: jump to the next arrival.
            let arrival = trace[next_arrival].arrival_ns;
            engine.idle_until(arrival);
            continue;
        }
        for metrics in engine.step(predictor) {
            let (arrival_ns, start_ns) = admissions
                .remove(&metrics.request_id)
                .expect("finished request was admitted");
            results.push(OnlineResult {
                request_id: metrics.request_id,
                arrival_ns,
                start_ns,
                finish_ns: engine.now(),
                metrics,
            });
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::predictor::NoPrefetch;
    use fmoe_cache::LruPolicy;
    use fmoe_memsim::Topology;
    use fmoe_model::{presets, GateParams, GateSimulator, GpuSpec};
    use fmoe_workload::{AzureTraceSpec, DatasetSpec};

    fn engine() -> ServingEngine {
        let cfg = presets::tiny_test_model();
        let gate = GateSimulator::new(cfg.clone(), GateParams::for_model(&cfg));
        let config = EngineConfig {
            cache_budget_bytes: cfg.expert_bytes() * 8,
            preload_all: false,
            max_decode_iterations: Some(4),
            context_collection_ns: 1000,
            framework_overhead_per_layer_ns: 10_000,
            ..EngineConfig::paper_default()
        };
        ServingEngine::new(
            gate,
            GpuSpec::rtx_3090(),
            Topology::single_gpu(8 << 30),
            Box::new(LruPolicy::new()),
            config,
        )
    }

    fn trace(n: u64) -> Vec<TraceEvent> {
        let mut spec = AzureTraceSpec::paper_online_serving(DatasetSpec::tiny_test());
        spec.num_requests = n;
        spec.generate()
    }

    #[test]
    fn fcfs_never_starts_before_arrival() {
        let mut e = engine();
        let t = trace(8);
        let results = serve_trace(&mut e, &t, &mut NoPrefetch);
        assert_eq!(results.len(), 8);
        for r in &results {
            assert!(r.start_ns >= r.arrival_ns);
            assert!(r.finish_ns > r.start_ns);
            assert_eq!(
                r.request_latency_ns(),
                r.queueing_ns() + (r.finish_ns - r.start_ns)
            );
        }
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut e = engine();
        // Two requests arriving at the same instant: the second must wait
        // for the first.
        let mut t = trace(2);
        t[1].arrival_ns = t[0].arrival_ns;
        let results = serve_trace(&mut e, &t, &mut NoPrefetch);
        assert_eq!(results[0].queueing_ns(), 0);
        assert!(results[1].queueing_ns() > 0);
        assert_eq!(results[1].start_ns, results[0].finish_ns);
    }

    #[test]
    fn served_in_trace_order() {
        let mut e = engine();
        let t = trace(6);
        let results = serve_trace(&mut e, &t, &mut NoPrefetch);
        for w in results.windows(2) {
            assert!(w[0].finish_ns <= w[1].start_ns);
        }
    }

    #[test]
    fn empty_trace_yields_no_results() {
        let mut e = engine();
        assert!(serve_trace(&mut e, &[], &mut NoPrefetch).is_empty());
        let mut e2 = engine();
        assert!(serve_trace_continuous(&mut e2, &[], &mut NoPrefetch, 4).is_empty());
    }

    #[test]
    fn continuous_batching_serves_every_request_once() {
        let mut e = engine();
        let t = trace(10);
        let results = serve_trace_continuous(&mut e, &t, &mut NoPrefetch, 3);
        assert_eq!(results.len(), 10);
        let mut ids: Vec<u64> = results.iter().map(|r| r.request_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10, "each request finishes exactly once");
        for r in &results {
            assert!(r.start_ns >= r.arrival_ns);
            assert!(r.finish_ns > r.start_ns);
        }
        assert_eq!(e.active_requests(), 0);
    }

    #[test]
    fn continuous_batching_overlaps_requests() {
        // Two requests arriving together with 2 slots must overlap: the
        // second finishes earlier than it would under FCFS.
        let mut t = trace(2);
        t[1].arrival_ns = t[0].arrival_ns;

        let mut fcfs_engine = engine();
        let fcfs = serve_trace(&mut fcfs_engine, &t, &mut NoPrefetch);
        let mut cb_engine = engine();
        let cb = serve_trace_continuous(&mut cb_engine, &t, &mut NoPrefetch, 2);

        let fcfs_last = fcfs.iter().map(|r| r.finish_ns).max().unwrap();
        let cb_last = cb.iter().map(|r| r.finish_ns).max().unwrap();
        assert!(
            cb_last < fcfs_last,
            "continuous batching last-finish {cb_last} should beat FCFS {fcfs_last}"
        );
        // And nobody starts before arriving.
        for r in &cb {
            assert!(r.start_ns >= r.arrival_ns);
        }
    }

    #[test]
    fn continuous_batching_respects_slot_limit() {
        let mut t = trace(6);
        for e in &mut t {
            e.arrival_ns = 0;
        }
        let mut e = engine();
        // With a single slot, continuous batching degenerates to FCFS
        // semantics: total completion matches the sequential scheduler.
        let cb = serve_trace_continuous(&mut e, &t, &mut NoPrefetch, 1);
        assert_eq!(cb.len(), 6);
        let mut finishes: Vec<_> = cb.iter().map(|r| r.finish_ns).collect();
        finishes.sort_unstable();
        finishes.dedup();
        assert_eq!(finishes.len(), 6, "one at a time, distinct finishes");
    }

    #[test]
    fn admit_and_step_directly() {
        let mut e = engine();
        assert_eq!(e.active_requests(), 0);
        assert!(e.step(&mut NoPrefetch).is_empty());
        let t = trace(2);
        let s0 = e.admit(t[0].prompt);
        let s1 = e.admit(t[1].prompt);
        assert_ne!(s0, s1);
        assert_eq!(e.active_requests(), 2);
        let mut guard = 0;
        while e.active_requests() > 0 {
            let _ = e.step(&mut NoPrefetch);
            guard += 1;
            assert!(guard < 100, "requests must terminate");
        }
        // Freed slots are reused.
        let s2 = e.admit(t[0].prompt);
        assert!(s2 == s0 || s2 == s1);
    }
}
