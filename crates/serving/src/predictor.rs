//! The policy interface: what offloading systems observe and decide.
//!
//! A predictor is driven by the engine through three callbacks per
//! iteration:
//!
//! 1. [`ExpertPredictor::begin_iteration`] — before layer 0 executes,
//!    with the iteration's semantic embedding. This is where fMoE's
//!    *semantic* map search guides prefetching for the first `d` layers
//!    (paper §4.2), and where history-less baselines fall back to
//!    popularity rules.
//! 2. [`ExpertPredictor::observe_gate`] — after each layer's gate emits
//!    its probability distribution. This is where *trajectory*-based
//!    search predicts layer `l + d`, and where speculative baselines
//!    reuse the current distribution for the next layer.
//! 3. [`ExpertPredictor::end_iteration`] — after the iteration, with the
//!    realized expert map, for store/matrix updates.
//!
//! Plans returned from callbacks are submitted to the transfer engine by
//! the serving engine; the predictor never touches hardware state
//! directly, so every policy pays identical costs for identical decisions.

use fmoe_model::gate::TokenSpan;
use fmoe_model::{ExpertId, RequestRouting};
use serde::Serialize;

/// A request by the policy to prefetch one expert, or (when `advisory`)
/// a pure belief update for the cache's eviction priorities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchPlan {
    /// Which expert to stage into GPU memory.
    pub expert: ExpertId,
    /// The policy's belief that this expert will be activated — used for
    /// issue ordering and pushed into probability-aware eviction policies.
    pub probability: f64,
    /// `true` = do not transfer anything; only update the eviction
    /// policy's probability belief (fMoE's §4.5 `PRI^evict = 1/(p·freq)`
    /// needs `p` for *cached* experts too, including ones the searched
    /// map considers unlikely).
    pub advisory: bool,
}

impl PrefetchPlan {
    /// A plan that stages `expert` with belief `probability`.
    #[must_use]
    pub fn fetch(expert: ExpertId, probability: f64) -> Self {
        Self {
            expert,
            probability,
            advisory: false,
        }
    }

    /// A belief-only update for eviction prioritization.
    #[must_use]
    pub fn advise(expert: ExpertId, probability: f64) -> Self {
        Self {
            expert,
            probability,
            advisory: true,
        }
    }
}

/// How a predictor's decision latency interacts with the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PredictorTiming {
    /// Time to produce a prediction + issue prefetches, per callback.
    pub latency_ns: u64,
    /// `true` when prediction blocks the forward pass (MoE-Infinity,
    /// Mixtral-Offloading); `false` when it runs on a side thread and only
    /// delays *prefetch issuance* (fMoE's pub/sub matcher, ProMoE).
    pub synchronous: bool,
    /// `true` when the policy also *waits for its prefetches to land*
    /// before compute proceeds — Mixtral-Offloading's synchronous
    /// speculative loading. This buys a near-speculation-accuracy hit
    /// rate at the price of serialized transfers (the paper's Fig. 9:
    /// best baseline hit rate, second-worst latency).
    pub blocking_prefetch: bool,
    /// Asynchronous per-iteration store/matrix update cost (never on the
    /// critical path; reported in the Fig. 15 breakdown).
    pub update_ns: u64,
}

impl PredictorTiming {
    /// A free predictor (no prediction machinery at all).
    #[must_use]
    pub fn free() -> Self {
        Self {
            latency_ns: 0,
            synchronous: false,
            blocking_prefetch: false,
            update_ns: 0,
        }
    }
}

/// Everything a policy may observe about one (batch element, iteration).
#[derive(Debug, Clone)]
pub struct IterationContext {
    /// Batch slot of this element.
    pub element: usize,
    /// The request's dataset-unique id.
    pub request_id: u64,
    /// Iteration number within the request; `0` is the prefill.
    pub iteration: u64,
    /// `true` for the prefill iteration.
    pub is_prefill: bool,
    /// Token positions this iteration processes.
    pub span: TokenSpan,
    /// Semantic embedding of the iteration (the model's embedding-layer
    /// output) — the signal fMoE's semantic search consumes.
    pub embedding: Vec<f64>,
    /// Ground-truth routing identity. **Reference predictors only**
    /// (Oracle); honest policies must not read this — real systems cannot
    /// observe it.
    pub routing: RequestRouting,
}

/// An offloading policy.
pub trait ExpertPredictor: Send {
    /// Display name for reports (e.g. `"fMoE"`, `"MoE-Infinity"`).
    fn name(&self) -> String;

    /// Latency model of the policy's decision machinery.
    fn timing(&self) -> PredictorTiming;

    /// Called once per (element, iteration) before layer 0. Returns
    /// prefetch plans for the initial layers.
    fn begin_iteration(&mut self, ctx: &IterationContext) -> Vec<PrefetchPlan>;

    /// Called after layer `layer`'s gate emits `distribution` (and the
    /// engine resolves its experts). Returns plans for upcoming layers.
    fn observe_gate(
        &mut self,
        ctx: &IterationContext,
        layer: u32,
        distribution: &[f64],
    ) -> Vec<PrefetchPlan>;

    /// Called after the iteration completes with the realized expert map
    /// (`realized_map[l]` is layer `l`'s gate distribution).
    fn end_iteration(&mut self, ctx: &IterationContext, realized_map: &[Vec<f64>]);

    /// Clears accumulated history (between experiments).
    fn reset(&mut self) {}

    /// `true` for expert-agnostic layer-wise offloading (DeepSpeed-
    /// Inference): reaching a layer loads *all* of its non-resident
    /// experts, not just the activated ones. Hit/miss accounting still
    /// covers only activated experts.
    fn loads_entire_layer(&self) -> bool {
        false
    }

    /// Cosine affinity in `[-1, 1]` between `embedding` and the policy's
    /// accumulated history, or `None` when the policy keeps no semantic
    /// history (or has none yet). Cluster-level routers use this to send
    /// a request to the replica whose predictor has served semantically
    /// similar prompts — fMoE's Expert Map Store makes the signal
    /// meaningful; history-less baselines keep the default `None` and
    /// routers fall back to load-based placement.
    fn semantic_affinity(&self, _embedding: &[f64]) -> Option<f64> {
        None
    }

    /// Serializes the policy's transferable warm state — for fMoE the
    /// Expert Map Store — or `None` when the policy keeps no state worth
    /// copying to a restarted peer. The byte length doubles as the
    /// transfer payload size when a cluster seeds a recovering replica
    /// from a donor (donor-warmed restart), so implementations should
    /// return a faithful wire encoding, not an in-memory dump.
    fn warm_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Replaces the policy's accumulated state with a donor's
    /// [`ExpertPredictor::warm_state`] snapshot. Returns `true` when the
    /// snapshot was understood and adopted; the default rejects all
    /// snapshots (history-less policies have nothing to restore into).
    fn restore_warm_state(&mut self, _snapshot: &[u8]) -> bool {
        false
    }
}

/// A trivial predictor that never prefetches: pure on-demand loading.
/// This is the expert-agnostic DeepSpeed-Inference behaviour and a useful
/// floor in tests.
#[derive(Debug, Default)]
pub struct NoPrefetch;

impl ExpertPredictor for NoPrefetch {
    fn name(&self) -> String {
        "NoPrefetch".into()
    }

    fn timing(&self) -> PredictorTiming {
        PredictorTiming::free()
    }

    fn begin_iteration(&mut self, _ctx: &IterationContext) -> Vec<PrefetchPlan> {
        Vec::new()
    }

    fn observe_gate(
        &mut self,
        _ctx: &IterationContext,
        _layer: u32,
        _distribution: &[f64],
    ) -> Vec<PrefetchPlan> {
        Vec::new()
    }

    fn end_iteration(&mut self, _ctx: &IterationContext, _realized_map: &[Vec<f64>]) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prefetch_returns_empty_plans() {
        let mut p = NoPrefetch;
        let ctx = IterationContext {
            element: 0,
            request_id: 1,
            iteration: 0,
            is_prefill: true,
            span: TokenSpan::prefill(8),
            embedding: vec![0.0; 4],
            routing: RequestRouting {
                cluster: 0,
                request_seed: 0,
            },
        };
        assert!(p.begin_iteration(&ctx).is_empty());
        assert!(p.observe_gate(&ctx, 0, &[0.5, 0.5]).is_empty());
        assert_eq!(p.timing(), PredictorTiming::free());
        assert_eq!(p.name(), "NoPrefetch");
    }
}
