//! Property-based tests for the serving engine: metric and accounting
//! invariants under arbitrary workloads and configurations.

#![cfg(test)]

use crate::engine::{EngineConfig, ServingEngine};
use crate::predictor::NoPrefetch;
use fmoe_cache::LruPolicy;
use fmoe_memsim::Topology;
use fmoe_model::{presets, GateParams, GateSimulator, GpuSpec, RequestRouting};
use fmoe_workload::Prompt;
use proptest::prelude::*;

fn engine(slots: u64, gpus: u32, max_decode: u64) -> ServingEngine {
    let cfg = presets::tiny_test_model();
    let gate = GateSimulator::new(cfg.clone(), GateParams::for_model(&cfg));
    let mut topo = Topology::paper_testbed();
    topo.num_gpus = gpus;
    let config = EngineConfig {
        cache_budget_bytes: cfg.expert_bytes() * slots * u64::from(gpus),
        preload_all: false,
        max_decode_iterations: Some(max_decode),
        context_collection_ns: 1000,
        framework_overhead_per_layer_ns: 10_000,
        ..EngineConfig::paper_default()
    };
    ServingEngine::new(
        gate,
        GpuSpec::rtx_3090(),
        topo,
        Box::new(LruPolicy::new()),
        config,
    )
}

fn prompt() -> impl Strategy<Value = Prompt> {
    (0u64..1000, 0u64..32, any::<u64>(), 1u64..128, 1u64..24).prop_map(
        |(id, cluster, seed, prompt_tokens, output_tokens)| Prompt {
            id,
            routing: RequestRouting {
                cluster,
                request_seed: seed,
            },
            prompt_tokens,
            output_tokens,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Metric identities hold for any request on any configuration.
    #[test]
    fn metrics_are_internally_consistent(
        p in prompt(),
        slots in 1u64..8,
        gpus in 1u32..4,
        max_decode in 1u64..12,
    ) {
        let mut e = engine(slots, gpus, max_decode);
        let m = e.serve_request(p, &mut NoPrefetch);
        prop_assert_eq!(m.request_id, p.id);
        prop_assert!(m.ttft_ns > 0);
        prop_assert_eq!(m.total_ns, m.ttft_ns + m.decode_ns);
        prop_assert!(m.decode_iterations <= max_decode);
        prop_assert!(m.decode_iterations < p.iterations());
        // Every iteration accesses at least top_k experts per layer.
        let iterations = 1 + m.decode_iterations;
        let min_accesses = iterations * 4 * 2; // L=4, K=2
        let max_accesses = iterations * 4 * 4; // at most J per layer
        let accesses = m.expert_hits + m.expert_misses;
        prop_assert!(accesses >= min_accesses, "{} < {}", accesses, min_accesses);
        prop_assert!(accesses <= max_accesses, "{} > {}", accesses, max_accesses);
        prop_assert!((0.0..=1.0).contains(&m.hit_rate()));
    }

    /// Virtual time strictly advances across requests, and serving the
    /// same prompt twice on a fresh engine is bit-for-bit reproducible.
    #[test]
    fn engine_is_deterministic(
        p in prompt(),
        slots in 1u64..8,
    ) {
        let mut e1 = engine(slots, 2, 8);
        let mut e2 = engine(slots, 2, 8);
        let m1 = e1.serve_request(p, &mut NoPrefetch);
        let m2 = e2.serve_request(p, &mut NoPrefetch);
        prop_assert_eq!(m1, m2);
        prop_assert_eq!(e1.now(), e2.now());
        let before = e1.now();
        let _ = e1.serve_request(p, &mut NoPrefetch);
        prop_assert!(e1.now() > before);
    }

    /// Batched serving preserves per-request identity and the batch's
    /// lockstep timing invariants.
    #[test]
    fn batch_invariants(
        prompts in prop::collection::vec(prompt(), 1..4),
        slots in 2u64..8,
    ) {
        let mut e = engine(slots, 2, 6);
        let ms = e.serve_batch(&prompts, &mut NoPrefetch);
        prop_assert_eq!(ms.len(), prompts.len());
        for (m, p) in ms.iter().zip(&prompts) {
            prop_assert_eq!(m.request_id, p.id);
            prop_assert!(m.total_ns > 0);
        }
        // Lockstep: all elements share the prefill, so TTFT is equal.
        let ttft0 = ms[0].ttft_ns;
        prop_assert!(ms.iter().all(|m| m.ttft_ns == ttft0));
    }

    /// Cache accounting and request accounting agree on total accesses.
    #[test]
    fn cache_stats_match_request_stats(p in prompt()) {
        let mut e = engine(4, 2, 6);
        let m = e.serve_request(p, &mut NoPrefetch);
        let cs = e.cache_stats();
        prop_assert_eq!(cs.hits, m.expert_hits);
        prop_assert_eq!(cs.misses, m.expert_misses);
    }

    /// Continuous batching conserves requests and respects slot limits
    /// under arbitrary admit/step interleavings.
    #[test]
    fn continuous_batching_conserves_requests(
        prompts in prop::collection::vec(prompt(), 1..8),
        step_bursts in prop::collection::vec(1usize..4, 1..12),
    ) {
        let mut e = engine(6, 2, 4);
        let mut admitted = 0usize;
        let mut finished = 0usize;
        let mut pending = prompts.clone();
        // Ensure unique ids (the scheduler contract).
        for (i, p) in pending.iter_mut().enumerate() {
            p.id = i as u64;
        }
        let mut bursts = step_bursts.into_iter();
        while admitted < prompts.len() || e.active_requests() > 0 {
            // Admit up to 3 at a time.
            while admitted < prompts.len() && e.active_requests() < 3 {
                let _ = e.admit(pending[admitted]);
                admitted += 1;
            }
            let steps = bursts.next().unwrap_or(1);
            for _ in 0..steps {
                finished += e.step(&mut NoPrefetch).len();
                prop_assert!(e.active_requests() <= 3);
            }
        }
        prop_assert_eq!(finished, prompts.len());
        prop_assert_eq!(e.active_requests(), 0);
    }

    /// The breakdown's critical-path components never exceed the total
    /// iteration time.
    #[test]
    fn breakdown_components_fit_iteration_total(p in prompt()) {
        let mut e = engine(4, 2, 6);
        let _ = e.serve_request(p, &mut NoPrefetch);
        let b = e.take_breakdown();
        prop_assert!(b.iterations > 0);
        let sync = b.compute_ns
            + b.on_demand_wait_ns
            + b.context_collection_ns
            + b.blocking_prefetch_ns;
        prop_assert!(sync <= b.iteration_total_ns,
            "sync {} > total {}", sync, b.iteration_total_ns);
    }
}
