//! The serving engine: a discrete-event simulation of MoE inference with
//! expert offloading.
//!
//! One engine instance owns the simulated hardware (expert cache, PCIe
//! transfer engine, virtual clock) and serves requests through a policy
//! implementing [`ExpertPredictor`]. Per iteration it executes the
//! paper's Step ①-⑤ loop (§3.2):
//!
//! 1. **Context collection** — semantic embedding + trajectory snapshot
//!    (synchronous, charged to the critical path).
//! 2. **Prediction** — `begin_iteration` before layer 0, `observe_gate`
//!    after each gate. Synchronous policies block compute; asynchronous
//!    policies only delay when their prefetches are *issued*.
//! 3. **Prefetching** — plans stream to the per-GPU PCIe links and
//!    overlap compute.
//! 4. **Expert serving** — activated experts found resident are hits;
//!    misses block on on-demand loads that pause prefetch traffic.
//! 5. **Map update** — `end_iteration` with the realized expert map
//!    (asynchronous).
//!
//! Experts execute in parallel across their home GPUs (expert
//! parallelism); attention/gate/shared-expert compute is modeled with the
//! roofline cost model.

use crate::metrics::{Breakdown, PerGpuBreakdown, RequestMetrics};
use crate::placement::PlacementPolicy;
use crate::predictor::{ExpertPredictor, IterationContext, PrefetchPlan};
use crate::timeline::{Timeline, TimelineEvent};
use fmoe_cache::{EvictionPolicy, ExpertCache, InsertOutcome, ShardedExpertCache};
use fmoe_memsim::{
    all2all_layer_time, FaultSchedule, GpuId, Nanos, RetryPolicy, Topology, TransferEngine,
    TransferError, VirtualClock,
};
use fmoe_model::gate::TokenSpan;
use fmoe_model::{CostModel, DenseIdMap, DenseIdSet, ExpertId, GateSimulator, GpuSpec};
use fmoe_trace::{Marker, Phase, TraceSink, NO_GPU, NO_LAYER, NO_REQUEST, NO_SLOT, NO_VALUE};
use fmoe_workload::Prompt;
use std::sync::Arc;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Total expert-cache budget across all GPUs, in bytes.
    pub cache_budget_bytes: u64,
    /// Load every expert into GPU memory up front (the No-offload
    /// reference). Requires a budget that actually fits the model.
    pub preload_all: bool,
    /// Truncate decoding after this many iterations (experiment speed
    /// cap); `None` serves the full answer.
    pub max_decode_iterations: Option<u64>,
    /// Synchronous per-iteration context-collection cost (paper Fig. 15).
    pub context_collection_ns: Nanos,
    /// Host-side framework overhead per transformer layer (kernel launch,
    /// Python dispatch in the HF Transformers / MoE-Infinity substrate the
    /// paper builds on — the paper notes all systems' latency "is
    /// inherently impacted by MoE-Infinity's implementation", §6.2).
    pub framework_overhead_per_layer_ns: Nanos,
    /// Expert-parallel placement scheme (the paper's §5 round-robin by
    /// default; `LayerContiguous` exists for the placement ablation).
    pub placement: fmoe_cache::Placement,
    /// KV-cache-aware budgeting (off by default): when set, the expert
    /// cache's effective budget each iteration is `cache_budget_bytes`
    /// minus the live KV-cache bytes of the active batch — experts yield
    /// GPU memory to growing contexts and reclaim it as requests retire.
    pub kv_aware_budget: bool,
    /// Mixed-precision extension (Hobbit-style, off by default): prefetch
    /// plans whose probability falls below this threshold are staged at
    /// half precision — half the transfer time and half the cache bytes —
    /// and accesses they serve count as `degraded_hits`. On-demand loads
    /// are always full precision.
    pub low_precision_threshold: Option<f64>,
    /// Deadline for blocking on-demand loads (off by default): when set,
    /// an on-demand load projected to finish later than `now + deadline`
    /// (e.g. because link faults degraded the wire) falls back to a
    /// half-precision payload instead of blocking indefinitely. Degraded
    /// loads count as `degraded_loads` in [`RequestMetrics`].
    pub on_demand_deadline_ns: Option<Nanos>,
    /// Which index representation the hot-path tables use (differential
    /// testing only; DESIGN.md §16). Output must be byte-identical
    /// either way — the dense-differential suite pins that.
    pub index_mode: IndexMode,
    /// Expert parallelism inside the replica (off by default): when set
    /// on a multi-GPU topology, each MoE layer pays a gate-skew-aware
    /// all2all on the peer links, and missing experts evicted to a peer
    /// device can be fetched peer-to-peer instead of from host
    /// (DESIGN.md §17). `None` (or a single-GPU topology) is
    /// byte-identical to the pre-EP engine.
    pub expert_parallel: Option<ExpertParallelConfig>,
}

/// Which representation the engine's hot-path index tables use.
///
/// `Dense` is the production representation (flat tables keyed by dense
/// expert index); `Reference` retains the `BTreeMap`-based reference
/// implementation for differential testing (DESIGN.md §16). One enum
/// replaces the former per-table boolean toggles
/// (`reference_residency_index`, `with_reference_elements`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum IndexMode {
    /// Flat dense-index tables — the production hot path.
    #[default]
    Dense,
    /// Retained `BTreeMap` reference tables (differential testing).
    Reference,
}

/// Expert-parallelism knobs for a multi-GPU replica (DESIGN.md §17).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExpertParallelConfig {
    /// All2all kernel family used for per-layer token routing.
    pub backend: fmoe_memsim::All2AllBackend,
    /// Serve misses from a peer device's spill pool over the peer link
    /// when possible, instead of always reloading from host.
    pub peer_fetch: bool,
    /// Number of experts the peer spill pool can hold (spare aggregate
    /// device memory outside the cache budget). Oldest spills drop
    /// first when full.
    pub peer_pool_slots: usize,
}

impl Default for ExpertParallelConfig {
    fn default() -> Self {
        Self {
            backend: fmoe_memsim::All2AllBackend::default(),
            peer_fetch: true,
            peer_pool_slots: 16,
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl EngineConfig {
    /// Defaults matching the paper's offline setup: 48 GB of expert cache
    /// across the testbed and full answers.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            cache_budget_bytes: 48 * (1u64 << 30),
            preload_all: false,
            max_decode_iterations: None,
            context_collection_ns: 1_200_000,           // 1.2 ms
            framework_overhead_per_layer_ns: 3_000_000, // 3 ms/layer host dispatch
            placement: fmoe_cache::Placement::RoundRobin,
            kv_aware_budget: false,
            low_precision_threshold: None,
            on_demand_deadline_ns: None,
            index_mode: IndexMode::Dense,
            expert_parallel: None,
        }
    }

    /// Sets the cache budget in GiB.
    #[must_use]
    pub fn with_cache_gb(mut self, gb: u64) -> Self {
        self.cache_budget_bytes = gb * (1u64 << 30);
        self
    }

    /// Caps decode length.
    #[must_use]
    pub fn with_max_decode(mut self, iters: u64) -> Self {
        self.max_decode_iterations = Some(iters);
        self
    }

    /// Sets the on-demand load deadline.
    #[must_use]
    pub fn with_on_demand_deadline(mut self, deadline_ns: Nanos) -> Self {
        self.on_demand_deadline_ns = Some(deadline_ns);
        self
    }
}

/// Typed error for the fallible serving entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// `try_serve_batch` was handed an empty prompt slice.
    EmptyBatch,
    /// A lockstep batch was requested while a continuous batch is active.
    BatchActive,
    /// The transfer substrate rejected a load.
    Transfer(TransferError),
    /// Online-scheduler bookkeeping lost track of a request — an engine
    /// invariant violation surfaced as an error instead of a panic.
    UnknownRequest {
        /// The request the scheduler could not account for.
        request_id: u64,
    },
    /// The requested `ServeOptions` combination is not supported (e.g.
    /// continuous batching with per-request degradation).
    UnsupportedOptions {
        /// Why the combination is rejected.
        reason: &'static str,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyBatch => write!(f, "batch must contain at least one prompt"),
            Self::BatchActive => write!(
                f,
                "lockstep batch cannot run while a continuous batch is active"
            ),
            Self::Transfer(e) => write!(f, "transfer failed: {e}"),
            Self::UnknownRequest { request_id } => {
                write!(f, "request {request_id} finished without being admitted")
            }
            Self::UnsupportedOptions { reason } => {
                write!(f, "unsupported serve options: {reason}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Transfer(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransferError> for ServeError {
    fn from(e: TransferError) -> Self {
        Self::Transfer(e)
    }
}

/// Per-request bookkeeping during a batch run.
#[derive(Debug)]
struct Element {
    prompt: Prompt,
    /// Stable batch-slot id: the key predictors use for per-request
    /// state. Slots are reused only after their occupant finishes.
    slot: usize,
    iteration: u64,
    /// Tokens processed so far (context length).
    position: u64,
    /// Total iterations this element will run (after the decode cap).
    total_iterations: u64,
    done: bool,
    start_ns: Nanos,
    ttft_ns: Option<Nanos>,
    finished_ns: Nanos,
    decode_iterations: u64,
    hits: u64,
    misses: u64,
    degraded_hits: u64,
    /// On-demand loads that fell back to reduced precision for this
    /// element (deadline misses or SLO-degraded serving).
    degraded_loads: u64,
    /// `true` when the request runs in SLO-degraded mode.
    degraded: bool,
    /// Realized per-layer distributions of the current iteration.
    realized_map: Vec<Vec<f64>>,
    /// Semantic embedding of the current iteration.
    embedding: Vec<f64>,
    /// Activated expert slots per layer of the current iteration.
    activated: Vec<Vec<u32>>,
}

/// Reusable per-iteration working memory. `run_iteration` is the
/// engine's hot loop; these collections used to be constructed with
/// `Vec::new()`/`BTreeSet::new()` on every call (and every layer). They
/// now live on the engine, are taken with `std::mem::take` for the
/// duration of an iteration, and are restored afterwards — `Vec::clear`
/// and the dense tables' `clear` keep the backing allocation, so
/// steady-state iterations allocate nothing for this bookkeeping.
///
/// The expert-keyed members are flat dense-index tables
/// ([`DenseIdSet`]/[`DenseIdMap`], DESIGN.md §16) rather than
/// `BTreeSet`/`BTreeMap`: lookups become array loads, and ascending
/// dense-index iteration equals `ExpertId`'s `Ord`, so everything the
/// old ordered collections guaranteed about iteration order is
/// preserved byte-for-byte.
#[derive(Debug, Default)]
struct IterationScratch {
    /// Iteration-start prediction plans (semantic window).
    begin_plans: Vec<PrefetchPlan>,
    /// Per-layer gate-observation plans.
    layer_plans: Vec<PrefetchPlan>,
    /// Union of activated experts for the current layer (dense bitset).
    union: DenseIdSet,
    /// Pre-load residency per needed expert (keyed access only).
    residency: DenseIdMap<bool>,
    /// In-flight transfers the layer must wait for.
    waited_inflight: Vec<ExpertId>,
    /// Experts needing blocking on-demand loads.
    missing: Vec<ExpertId>,
    /// Per-GPU link availability during on-demand serving; `None` means
    /// the link has not been touched this layer (the old `BTreeMap`'s
    /// "absent").
    per_gpu_now: Vec<Option<Nanos>>,
    /// Experts whose on-demand load moved a reduced payload.
    loaded: DenseIdMap<u64>,
    /// Stale prefetch jobs collected for cancellation.
    stale: Vec<(u64, ExpertId)>,
    /// Stage pins whose target layer has passed.
    passed: Vec<ExpertId>,
    /// Per-element iteration contexts, computed once per iteration
    /// (`None` for finished elements). The context is constant for the
    /// whole iteration, so this replaces an embedding clone per
    /// predictor call (one per element per *layer*) with one per
    /// element per iteration.
    contexts: Vec<Option<IterationContext>>,
    /// Per-GPU expert-FFN time accumulator for
    /// [`ServingEngine::expert_compute_time`].
    compute_per_gpu: Vec<Nanos>,
    /// Per-owner-GPU routed token-assignment counts for the EP all2all
    /// (zeroed each layer; unused when EP is off).
    tokens_to_gpu: Vec<u64>,
    /// Per-GPU all2all busy-time accumulator for one layer.
    a2a_per_gpu: Vec<Nanos>,
}

impl IterationScratch {
    /// Sizes the fixed-capacity tables for the model/topology. A no-op
    /// after the first call (capacities never change for one engine),
    /// so the steady state allocates nothing here.
    fn ensure_model(&mut self, num_experts: usize, num_gpus: usize) {
        if self.union.capacity() != num_experts {
            self.union = DenseIdSet::with_capacity(num_experts);
            self.residency = DenseIdMap::with_capacity(num_experts);
            self.loaded = DenseIdMap::with_capacity(num_experts);
        }
        if self.per_gpu_now.len() != num_gpus {
            self.per_gpu_now = vec![None; num_gpus];
            self.compute_per_gpu = vec![0; num_gpus];
            self.tokens_to_gpu = vec![0; num_gpus];
            self.a2a_per_gpu = vec![0; num_gpus];
        }
    }
}

/// Runtime state for expert parallelism: the configuration plus the
/// peer spill pool — experts evicted from their owner GPU that still
/// live in a peer device's spare memory, FIFO-bounded, servable over
/// the peer link. Tiny (≤ `peer_pool_slots` entries), so membership is
/// a dense bitset and order a plain vector.
struct EpState {
    config: ExpertParallelConfig,
    /// Membership: dense expert indices currently spilled to a peer.
    members: DenseIdSet,
    /// Spill order, oldest first.
    fifo: Vec<usize>,
}

impl EpState {
    fn new(config: ExpertParallelConfig, num_experts: usize) -> Self {
        Self {
            config,
            members: DenseIdSet::with_capacity(num_experts),
            fifo: Vec::new(),
        }
    }

    /// Records an eviction into the spill pool, dropping the oldest
    /// spill when full. No-op when peer fetching is off or the pool has
    /// no capacity.
    fn spill(&mut self, dense: usize) {
        if !self.config.peer_fetch || self.config.peer_pool_slots == 0 {
            return;
        }
        if self.members.contains(dense) {
            return;
        }
        self.members.insert(dense);
        self.fifo.push(dense);
        if self.fifo.len() > self.config.peer_pool_slots {
            let oldest = self.fifo.remove(0);
            self.members.remove(oldest);
        }
    }

    /// Claims `dense` from the pool (a peer fetch consumes the copy).
    fn take(&mut self, dense: usize) -> bool {
        if !self.members.remove(dense) {
            return false;
        }
        self.fifo.retain(|&d| d != dense);
        true
    }

    fn clear(&mut self) {
        self.members.clear();
        self.fifo.clear();
    }
}

impl Element {
    fn span(&self) -> TokenSpan {
        if self.iteration == 0 {
            TokenSpan::prefill(self.prompt.prompt_tokens)
        } else {
            TokenSpan::single(self.position)
        }
    }

    fn context(&self) -> IterationContext {
        IterationContext {
            element: self.slot,
            request_id: self.prompt.id,
            iteration: self.iteration,
            is_prefill: self.iteration == 0,
            span: self.span(),
            embedding: self.embedding.clone(),
            routing: self.prompt.routing,
        }
    }
}

/// The serving engine. See the module docs.
///
/// ```
/// use fmoe_cache::LruPolicy;
/// use fmoe_memsim::Topology;
/// use fmoe_model::{presets, GateSimulator, GpuSpec};
/// use fmoe_serving::{predictor::NoPrefetch, EngineConfig, ServingEngine};
/// use fmoe_workload::DatasetSpec;
///
/// let model = presets::tiny_test_model();
/// let mut engine = ServingEngine::new(
///     GateSimulator::with_defaults(model.clone()),
///     GpuSpec::rtx_3090(),
///     Topology::single_gpu(8 << 30),
///     Box::new(LruPolicy::new()),
///     EngineConfig {
///         cache_budget_bytes: model.expert_bytes() * 8,
///         max_decode_iterations: Some(4),
///         ..EngineConfig::paper_default()
///     },
/// );
/// let metrics = engine.serve_request(DatasetSpec::tiny_test().prompt(0), &mut NoPrefetch);
/// assert!(metrics.ttft_ns > 0);
/// assert!(metrics.expert_hits + metrics.expert_misses > 0);
/// ```
pub struct ServingEngine {
    gate: GateSimulator,
    cost: CostModel,
    topology: Topology,
    cache: ExpertCache,
    transfer: TransferEngine,
    clock: VirtualClock,
    /// Experts with a transfer in flight, as a dense bitset over their
    /// transfer tags (tag == dense expert index, so the id is
    /// recoverable from the tag alone). Ascending iteration equals
    /// ascending tag order — what the old `BTreeMap<u64, ExpertId>`
    /// iterated in.
    in_flight: DenseIdSet,
    /// Requests currently in the continuous batch (see [`Self::admit`]).
    active: Vec<Element>,
    /// Reusable slot ids freed by finished continuous-batch requests.
    free_slots: Vec<usize>,
    /// Next fresh slot id for the continuous batch.
    next_slot: usize,
    /// Optional execution-timeline recorder.
    timeline: Timeline,
    /// Prefetched experts staged for a layer that has not executed yet:
    /// pinned so eviction cannot undo a deliberate prefetch before use
    /// (all real offloading runtimes protect staged weights this way).
    /// Dense bitset by expert index; ascending iteration equals the old
    /// `BTreeSet<ExpertId>` order.
    staged: DenseIdSet,
    breakdown: Breakdown,
    config: EngineConfig,
    /// Installed fault schedule (`None` when the failure model is off);
    /// mirrors the transfer engine's copy so the iteration loop can apply
    /// memory-pressure windows to the cache budget.
    faults: Option<FaultSchedule>,
    /// `true` while serving a request in SLO-degraded mode: on-demand
    /// loads move half-precision payloads to cut the stall.
    degraded_mode: bool,
    /// Reusable per-iteration working memory (see [`IterationScratch`]).
    scratch: IterationScratch,
    /// Structured-event trace sink (disabled by default — every emission
    /// is then a single branch). Clones of this handle are shared with
    /// the transfer engine and expert cache so all three interleave into
    /// one causally-ordered virtual-time timeline.
    trace: TraceSink,
    /// Optional shared host-tier cache ([`ShardedExpertCache`]) this
    /// engine mirrors its expert accesses into. Purely observational:
    /// residency decisions and the sim timeline never read it, so with
    /// `None` (the default) engine output is byte-identical to a build
    /// without the field.
    host_cache: Option<Arc<ShardedExpertCache>>,
    /// Expert-parallel runtime state; `None` when EP is off or the
    /// topology has a single GPU — that path is byte-identical to the
    /// pre-EP engine.
    ep: Option<EpState>,
    /// Per-GPU compute/all2all/transfer attribution over the engine's
    /// lifetime (pure bookkeeping; never read by the sim path).
    per_gpu: PerGpuBreakdown,
}

/// Fluent constructor for [`ServingEngine`]: gathers the model, device,
/// eviction policy, and every post-construction knob so a fully
/// configured engine is buildable in one expression. The `fmoe-cluster`
/// crate constructs replicas exclusively through this builder; the
/// individual setters on [`ServingEngine`] remain for runtime retuning.
pub struct EngineBuilder {
    gate: GateSimulator,
    gpu: GpuSpec,
    topology: Topology,
    policy: Box<dyn EvictionPolicy>,
    config: EngineConfig,
    trace_sink: Option<TraceSink>,
    fault_schedule: Option<FaultSchedule>,
    retry_policy: Option<RetryPolicy>,
    timeline: bool,
    host_cache: Option<Arc<ShardedExpertCache>>,
    assignment: Option<Vec<u32>>,
}

impl EngineBuilder {
    /// Starts a builder with the paper-default [`EngineConfig`] and an
    /// LRU eviction policy.
    #[must_use]
    pub fn new(gate: GateSimulator, gpu: GpuSpec, topology: Topology) -> Self {
        Self {
            gate,
            gpu,
            topology,
            policy: Box::new(fmoe_cache::LruPolicy::new()),
            config: EngineConfig::paper_default(),
            trace_sink: None,
            fault_schedule: None,
            retry_policy: None,
            timeline: false,
            host_cache: None,
            assignment: None,
        }
    }

    /// Selects the hot-path index representation (default:
    /// [`IndexMode::Dense`]; `Reference` exists for differential
    /// testing, DESIGN.md §16).
    #[must_use]
    pub fn index_mode(mut self, mode: IndexMode) -> Self {
        self.config.index_mode = mode;
        self
    }

    /// Enables expert parallelism inside the replica (DESIGN.md §17).
    /// Meaningful only on multi-GPU topologies; single-GPU engines
    /// ignore it and stay byte-identical to the pre-EP path.
    #[must_use]
    pub fn expert_parallel(mut self, ep: ExpertParallelConfig) -> Self {
        self.config.expert_parallel = Some(ep);
        self
    }

    /// Computes and installs an expert owner table from a
    /// [`PlacementPolicy`] evaluated against this builder's model and
    /// topology. Overrides the structural
    /// [`fmoe_cache::Placement`] for `home_gpu` and everything
    /// downstream of it (caching, transfers, all2all routing).
    #[must_use]
    pub fn placement_policy(mut self, policy: &dyn PlacementPolicy) -> Self {
        self.assignment = Some(policy.assign(self.gate.config(), self.topology.num_gpus));
        self
    }

    /// Replaces the eviction policy from the [`fmoe_cache::PolicyKind`]
    /// catalog (convenience over [`Self::policy`]).
    #[must_use]
    pub fn policy_kind(self, kind: fmoe_cache::PolicyKind) -> Self {
        self.policy(kind.build())
    }

    /// Attaches a shared host-tier cache the engine mirrors accesses
    /// into (default: none). See [`ServingEngine::set_shared_host_cache`].
    #[must_use]
    pub fn shared_host_cache(mut self, host: Arc<ShardedExpertCache>) -> Self {
        self.host_cache = Some(host);
        self
    }

    /// Replaces the eviction policy (default: LRU).
    #[must_use]
    pub fn policy(mut self, policy: Box<dyn EvictionPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the whole engine configuration.
    #[must_use]
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the total expert-cache budget in bytes.
    #[must_use]
    pub fn cache_budget(mut self, total_bytes: u64) -> Self {
        self.config.cache_budget_bytes = total_bytes;
        self
    }

    /// Caps decode length per request.
    #[must_use]
    pub fn max_decode(mut self, iterations: u64) -> Self {
        self.config.max_decode_iterations = Some(iterations);
        self
    }

    /// Sets the deadline for blocking on-demand loads.
    #[must_use]
    pub fn on_demand_deadline(mut self, deadline_ns: Nanos) -> Self {
        self.config.on_demand_deadline_ns = Some(deadline_ns);
        self
    }

    /// Installs a structured-event trace sink (default: disabled).
    #[must_use]
    pub fn trace_sink(mut self, sink: TraceSink) -> Self {
        self.trace_sink = Some(sink);
        self
    }

    /// Installs a fault schedule (default: no failure model).
    #[must_use]
    pub fn fault_schedule(mut self, schedule: FaultSchedule) -> Self {
        self.fault_schedule = Some(schedule);
        self
    }

    /// Sets the transfer retry/backoff policy for transient faults.
    #[must_use]
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry_policy = Some(retry);
        self
    }

    /// Enables execution-timeline recording (default: off).
    #[must_use]
    pub fn timeline(mut self, enabled: bool) -> Self {
        self.timeline = enabled;
        self
    }

    /// Builds the engine, delegating to [`ServingEngine::new`] and the
    /// existing setters so builder-built and hand-assembled engines are
    /// indistinguishable.
    #[must_use]
    pub fn build(self) -> ServingEngine {
        let mut engine =
            ServingEngine::new(self.gate, self.gpu, self.topology, self.policy, self.config);
        if let Some(sink) = self.trace_sink {
            engine.set_trace_sink(sink);
        }
        if let Some(schedule) = self.fault_schedule {
            engine.set_fault_schedule(schedule);
        }
        if let Some(retry) = self.retry_policy {
            engine.set_retry_policy(retry);
        }
        if self.timeline {
            engine.set_timeline_enabled(true);
        }
        if let Some(host) = self.host_cache {
            engine.set_shared_host_cache(host);
        }
        if let Some(owners) = self.assignment {
            engine.set_expert_assignment(owners);
        }
        engine
    }
}

impl ServingEngine {
    /// Starts an [`EngineBuilder`] for one model on one topology.
    #[must_use]
    pub fn builder(gate: GateSimulator, gpu: GpuSpec, topology: Topology) -> EngineBuilder {
        EngineBuilder::new(gate, gpu, topology)
    }

    /// Builds an engine for one model on one topology.
    #[must_use]
    pub fn new(
        gate: GateSimulator,
        gpu: GpuSpec,
        topology: Topology,
        policy: Box<dyn EvictionPolicy>,
        config: EngineConfig,
    ) -> Self {
        let model = gate.config().clone();
        let num_experts = model.num_layers as usize * model.experts_per_layer as usize;
        let mut cache =
            ExpertCache::new(&model, config.cache_budget_bytes, topology.num_gpus, policy)
                .with_placement(config.placement);
        if config.index_mode == IndexMode::Reference {
            cache = cache.with_reference_index();
        }
        let transfer = TransferEngine::new(&topology);
        let cost = CostModel::new(model, gpu);
        let ep = config
            .expert_parallel
            .filter(|_| topology.num_gpus > 1)
            .map(|c| EpState::new(c, num_experts));
        let mut engine = Self {
            gate,
            cost,
            topology,
            cache,
            transfer,
            clock: VirtualClock::new(),
            in_flight: DenseIdSet::with_capacity(num_experts),
            active: Vec::new(),
            free_slots: Vec::new(),
            next_slot: 0,
            timeline: Timeline::default(),
            staged: DenseIdSet::with_capacity(num_experts),
            breakdown: Breakdown::default(),
            config,
            faults: None,
            degraded_mode: false,
            scratch: IterationScratch::default(),
            trace: TraceSink::disabled(),
            host_cache: None,
            ep,
            per_gpu: PerGpuBreakdown::default(),
        };
        engine
            .per_gpu
            .ensure_gpus(engine.topology.num_gpus as usize);
        if engine.config.preload_all {
            engine.preload_all_experts();
        }
        engine
    }

    /// Inserts every routed expert into the cache at time zero (the
    /// No-offload reference). Experts that do not fit are skipped.
    fn preload_all_experts(&mut self) {
        let experts: Vec<ExpertId> = self.gate.config().all_experts().collect();
        for e in experts {
            let _ = self.cache.insert(e, 0);
        }
    }

    /// The model being served.
    #[must_use]
    pub fn model(&self) -> &fmoe_model::ModelConfig {
        self.gate.config()
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> Nanos {
        self.clock.now()
    }

    /// Advances the engine's idle time to `target` (used by the online
    /// scheduler between arrivals). No-op if `target` is in the past.
    pub fn idle_until(&mut self, target: Nanos) {
        if target > self.clock.now() {
            self.clock.advance_to(target);
            self.absorb_completions();
        }
    }

    /// Cache statistics so far.
    #[must_use]
    pub fn cache_stats(&self) -> fmoe_cache::CacheStats {
        self.cache.stats()
    }

    /// Transfer statistics so far.
    #[must_use]
    pub fn transfer_stats(&self) -> fmoe_memsim::TransferStats {
        self.transfer.stats()
    }

    /// Takes the accumulated per-operation breakdown, resetting it.
    pub fn take_breakdown(&mut self) -> Breakdown {
        std::mem::take(&mut self.breakdown)
    }

    /// Per-GPU compute/all2all/transfer attribution accumulated over
    /// the engine's lifetime (DESIGN.md §17).
    #[must_use]
    pub fn per_gpu_breakdown(&self) -> &PerGpuBreakdown {
        &self.per_gpu
    }

    /// Installs an explicit expert owner table (dense expert index →
    /// GPU), normally produced by a [`PlacementPolicy`] via
    /// [`EngineBuilder::placement_policy`]. Affects `home_gpu` and
    /// everything downstream; intended before any request is served.
    pub fn set_expert_assignment(&mut self, owners: Vec<u32>) {
        self.cache.set_assignment(owners);
    }

    /// Enables or disables execution-timeline recording.
    pub fn set_timeline_enabled(&mut self, enabled: bool) {
        self.timeline.set_enabled(enabled);
    }

    /// Installs a trace sink. Clones of the handle are forwarded to the
    /// transfer engine and expert cache so engine spans, wire activity,
    /// and cache churn land in one shared timeline. Pass
    /// [`TraceSink::disabled`] to turn tracing back off.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.transfer.set_trace_sink(sink.clone());
        self.cache.set_trace_sink(sink.clone());
        self.trace = sink;
    }

    /// The engine's trace sink (disabled unless one was installed).
    #[must_use]
    pub fn trace_sink(&self) -> &TraceSink {
        &self.trace
    }

    /// Attaches a shared host-tier cache: every expert access this
    /// engine records is mirrored into it (`record_access`, plus an
    /// insert on miss, modelling the host tier faulting the expert in).
    /// Observational only — GPU-side residency, eviction, and timing
    /// never consult the host cache, so attaching one does not perturb
    /// the deterministic sim path.
    pub fn set_shared_host_cache(&mut self, host: Arc<ShardedExpertCache>) {
        self.host_cache = Some(host);
    }

    /// The attached shared host-tier cache, if any.
    #[must_use]
    pub fn shared_host_cache(&self) -> Option<&Arc<ShardedExpertCache>> {
        self.host_cache.as_ref()
    }

    /// Takes the recorded timeline entries.
    pub fn take_timeline(&mut self) -> Vec<crate::timeline::TimelineEntry> {
        self.timeline.take()
    }

    /// Retunes the expert-cache budget at runtime (SwapMoE-style tunable
    /// memory). Evictions happen immediately; in-flight prefetches are
    /// unaffected (they may be rejected at completion if the shrunken
    /// budget cannot host them).
    pub fn set_cache_budget(&mut self, total_bytes: u64) -> usize {
        self.config.cache_budget_bytes = total_bytes;
        self.cache.set_total_budget(total_bytes).len()
    }

    /// Current expert-cache budget in bytes.
    #[must_use]
    pub fn cache_budget(&self) -> u64 {
        self.config.cache_budget_bytes
    }

    /// Installs a fault schedule: link degradations and transient
    /// failures apply to the transfer engine, memory-pressure windows
    /// squeeze the expert-cache budget at iteration boundaries. An inert
    /// schedule is equivalent to not calling this at all.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        self.transfer.set_fault_schedule(schedule);
        self.faults = self.transfer.fault_schedule().cloned();
    }

    /// The installed fault schedule, if any.
    #[must_use]
    pub fn fault_schedule(&self) -> Option<&FaultSchedule> {
        self.faults.as_ref()
    }

    /// Retunes the transfer engine's retry/backoff policy for transient
    /// faults.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.transfer.set_retry_policy(retry);
    }

    /// Experts currently resident in the cache, in stable (sorted) order.
    /// A cluster uses this as the donor set when warm-seeding a
    /// restarted replica.
    #[must_use]
    pub fn resident_experts(&self) -> Vec<ExpertId> {
        self.cache.resident_experts().collect()
    }

    /// Restarts the engine at virtual instant `at` after a replica
    /// crash: the cache empties, staged/in-flight transfer state is
    /// dropped (the fabric died with the process — a fresh
    /// [`TransferEngine`] is built, inheriting the installed trace sink,
    /// fault schedule, and retry policy), and the clock is *replaced*
    /// rather than rewound, since the eager simulation may have run past
    /// the crash instant serving work the crash invalidated.
    ///
    /// Returns the pre-crash [`fmoe_cache::CacheStats`] snapshot:
    /// `ExpertCache::clear` resets counters, so lifetime accounting must
    /// carry the snapshot externally (see `fmoe_cache::CacheStats::merged`).
    pub fn restart_at(&mut self, at: Nanos) -> fmoe_cache::CacheStats {
        let pre_crash = self.cache.stats();
        self.cache.clear(true);
        self.staged.clear();
        self.in_flight.clear();
        self.active.clear();
        self.free_slots.clear();
        self.next_slot = 0;
        self.degraded_mode = false;
        if let Some(ep) = self.ep.as_mut() {
            // Spilled peer copies died with the replica's device memory.
            ep.clear();
        }
        let retry = self.transfer.retry_policy();
        let mut transfer = TransferEngine::new(&self.topology);
        transfer.set_trace_sink(self.trace.clone());
        if let Some(faults) = &self.faults {
            transfer.set_fault_schedule(faults.clone());
        }
        transfer.set_retry_policy(retry);
        self.transfer = transfer;
        self.clock = VirtualClock::new();
        self.clock.advance_to(at);
        pre_crash
    }

    /// Seeds the (just-restarted) engine's cache with `experts`, paying
    /// the bulk transfer cost of the payload — `experts.len() ×` expert
    /// size, plus `extra_bytes` of side state (e.g. a donor's Expert Map
    /// Store snapshot) charged to GPU 0's link — through the memsim
    /// links starting at `now`. Per-GPU payloads move in parallel (one
    /// link each); the returned instant is when the *last* link
    /// finishes, and the engine idles forward to it, so the replica
    /// accepts no work during warmup.
    pub fn warm_seed(&mut self, experts: &[ExpertId], extra_bytes: u64, now: Nanos) -> Nanos {
        let num_gpus = self.topology.num_gpus.max(1) as usize;
        let mut per_gpu_bytes = vec![0u64; num_gpus];
        per_gpu_bytes[0] += extra_bytes;
        for &e in experts {
            let gpu = self.cache.home_gpu(e) as usize % num_gpus;
            per_gpu_bytes[gpu] += self.cache.expert_bytes();
        }
        let mut done = now;
        for (gpu, &bytes) in per_gpu_bytes.iter().enumerate() {
            if bytes > 0 {
                done = done.max(self.transfer.warmup_load(GpuId(gpu as u32), bytes, now));
            }
        }
        for &e in experts {
            let _ = self.cache.insert_warm(e, done);
        }
        self.idle_until(done);
        done
    }

    /// Admits a request into the engine's **continuous batch**: it joins
    /// the running batch at the next [`Self::step`] boundary, prefilling
    /// while earlier requests keep decoding — the scheduling modern
    /// serving systems use instead of static batches. Returns the
    /// request's stable slot id.
    ///
    /// TTFT is measured from admission; queueing before admission is the
    /// scheduler's concern (see `online::serve` with
    /// [`crate::online::ServeOptions::continuous`]).
    pub fn admit(&mut self, prompt: Prompt) -> usize {
        let slot = self.free_slots.pop().unwrap_or_else(|| {
            let s = self.next_slot;
            self.next_slot += 1;
            s
        });
        let total = match self.config.max_decode_iterations {
            Some(cap) => prompt.iterations().min(1 + cap),
            None => prompt.iterations(),
        };
        self.active.push(Element {
            prompt,
            slot,
            iteration: 0,
            position: 0,
            total_iterations: total,
            done: false,
            start_ns: self.clock.now(),
            ttft_ns: None,
            finished_ns: self.clock.now(),
            decode_iterations: 0,
            hits: 0,
            misses: 0,
            degraded_hits: 0,
            degraded_loads: 0,
            degraded: self.degraded_mode,
            realized_map: Vec::new(),
            embedding: Vec::new(),
            activated: Vec::new(),
        });
        slot
    }

    /// Runs **one** lockstep iteration over the continuous batch and
    /// returns the metrics of every request that finished during it.
    /// A no-op returning an empty vec when the batch is empty.
    pub fn step(&mut self, predictor: &mut dyn ExpertPredictor) -> Vec<RequestMetrics> {
        if self.active.is_empty() {
            return Vec::new();
        }
        let mut elements = std::mem::take(&mut self.active);
        self.run_iteration(&mut elements, predictor);
        let mut finished = Vec::new();
        for e in elements {
            if e.done {
                self.free_slots.push(e.slot);
                let ttft = e.ttft_ns.unwrap_or(e.finished_ns - e.start_ns);
                let total = e.finished_ns - e.start_ns;
                finished.push(RequestMetrics {
                    request_id: e.prompt.id,
                    ttft_ns: ttft,
                    decode_ns: total - ttft,
                    decode_iterations: e.decode_iterations,
                    total_ns: total,
                    expert_hits: e.hits,
                    expert_misses: e.misses,
                    degraded_hits: e.degraded_hits,
                    degraded_loads: e.degraded_loads,
                    served_degraded: e.degraded,
                });
            } else {
                self.active.push(e);
            }
        }
        finished
    }

    /// Requests currently in the continuous batch.
    #[must_use]
    pub fn active_requests(&self) -> usize {
        self.active.len()
    }

    /// Serves one request (batch size 1).
    ///
    /// # Panics
    ///
    /// Inherits [`Self::serve_batch`]'s panic on engine errors (e.g. a
    /// continuous batch still active); use [`Self::try_serve_batch`]
    /// where panicking is unacceptable.
    pub fn serve_request(
        &mut self,
        prompt: Prompt,
        predictor: &mut dyn ExpertPredictor,
    ) -> RequestMetrics {
        self.serve_batch(&[prompt], predictor).remove(0)
    }

    /// Serves one request in **degraded mode**: on-demand loads move
    /// half-precision payloads, trading output quality for latency. The
    /// SLO-aware online scheduler uses this for requests whose queueing
    /// delay already blew their budget (see `online::SloPolicy`).
    ///
    /// # Panics
    ///
    /// Inherits [`Self::serve_batch`]'s panic on engine errors; use
    /// [`Self::try_serve_batch`] where panicking is unacceptable.
    pub fn serve_request_degraded(
        &mut self,
        prompt: Prompt,
        predictor: &mut dyn ExpertPredictor,
    ) -> RequestMetrics {
        self.degraded_mode = true;
        let metrics = self.serve_request(prompt, predictor);
        self.degraded_mode = false;
        metrics
    }

    /// Serves a batch of requests in lockstep, returning per-request
    /// metrics in input order.
    ///
    /// # Panics
    ///
    /// Panics if `prompts` is empty. See [`Self::try_serve_batch`] for
    /// the non-panicking variant.
    pub fn serve_batch(
        &mut self,
        prompts: &[Prompt],
        predictor: &mut dyn ExpertPredictor,
    ) -> Vec<RequestMetrics> {
        assert!(
            !prompts.is_empty(),
            "batch must contain at least one prompt"
        );
        match self.try_serve_batch(prompts, predictor) {
            Ok(metrics) => metrics,
            Err(e) => panic!("serve_batch failed: {e}"),
        }
    }

    /// Serves a batch of requests in lockstep, returning per-request
    /// metrics in input order.
    ///
    /// # Errors
    ///
    /// [`ServeError::EmptyBatch`] for an empty slice;
    /// [`ServeError::BatchActive`] while a continuous batch is running.
    pub fn try_serve_batch(
        &mut self,
        prompts: &[Prompt],
        predictor: &mut dyn ExpertPredictor,
    ) -> Result<Vec<RequestMetrics>, ServeError> {
        if prompts.is_empty() {
            return Err(ServeError::EmptyBatch);
        }
        if !self.active.is_empty() {
            return Err(ServeError::BatchActive);
        }
        let start = self.clock.now();
        let mut elements: Vec<Element> = prompts
            .iter()
            .enumerate()
            .map(|(slot, &prompt)| {
                let total = match self.config.max_decode_iterations {
                    Some(cap) => prompt.iterations().min(1 + cap),
                    None => prompt.iterations(),
                };
                Element {
                    prompt,
                    slot,
                    iteration: 0,
                    position: 0,
                    total_iterations: total,
                    done: false,
                    start_ns: start,
                    ttft_ns: None,
                    finished_ns: start,
                    decode_iterations: 0,
                    hits: 0,
                    misses: 0,
                    degraded_hits: 0,
                    degraded_loads: 0,
                    degraded: self.degraded_mode,
                    realized_map: Vec::new(),
                    embedding: Vec::new(),
                    activated: Vec::new(),
                }
            })
            .collect();

        while elements.iter().any(|e| !e.done) {
            self.run_iteration(&mut elements, predictor);
        }

        Ok(elements
            .into_iter()
            .map(|e| {
                let ttft = e.ttft_ns.unwrap_or(e.finished_ns - e.start_ns);
                let total = e.finished_ns - e.start_ns;
                RequestMetrics {
                    request_id: e.prompt.id,
                    ttft_ns: ttft,
                    decode_ns: total - ttft,
                    decode_iterations: e.decode_iterations,
                    total_ns: total,
                    expert_hits: e.hits,
                    expert_misses: e.misses,
                    degraded_hits: e.degraded_hits,
                    degraded_loads: e.degraded_loads,
                    served_degraded: e.degraded,
                }
            })
            .collect())
    }

    /// Runs one lockstep iteration over all live elements.
    fn run_iteration(&mut self, elements: &mut [Element], predictor: &mut dyn ExpertPredictor) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let iter_start = self.clock.now();
        self.breakdown.iterations += 1;
        self.trace
            .begin(iter_start, Phase::Iteration, NO_REQUEST, NO_LAYER);
        self.trace.count("engine.iterations", 1);
        self.timeline.record(
            iter_start,
            TimelineEvent::IterationStart {
                iteration: elements
                    .iter()
                    .filter(|e| !e.done)
                    .map(|e| e.iteration)
                    .min()
                    .unwrap_or(0),
            },
        );
        let timing = predictor.timing();
        self.breakdown.matching_synchronous = timing.synchronous;
        let num_layers = self.gate.config().num_layers;
        let j = self.gate.config().experts_per_layer;
        // EP knobs, snapshotted once (Copy) so the per-layer blocks
        // below don't hold a borrow of `self.ep` across clock advances.
        let ep_cfg = self.ep.as_ref().map(|s| s.config);
        let a2a_bytes_per_token =
            u64::from(self.gate.config().hidden_dim) * fmoe_model::BYTES_PER_PARAM_FP16;
        scratch.ensure_model(
            num_layers as usize * j as usize,
            self.topology.num_gpus as usize,
        );

        // Step 1: context collection (synchronous).
        for el in elements.iter_mut() {
            if el.done {
                continue;
            }
            el.embedding = self
                .gate
                .semantic_embedding(el.prompt.routing, el.iteration);
            el.realized_map.clear();
            el.activated.clear();
        }
        // One context per element for the whole iteration: every field
        // is constant until step 5's bookkeeping, so predictors at each
        // layer see exactly what per-call construction produced.
        scratch.contexts.clear();
        scratch
            .contexts
            .extend(elements.iter().map(|el| (!el.done).then(|| el.context())));
        self.clock.advance(self.config.context_collection_ns);
        self.breakdown.context_collection_ns += self.config.context_collection_ns;
        self.trace.span(
            self.clock.now(),
            Phase::ContextCollect,
            NO_REQUEST,
            NO_LAYER,
            NO_GPU,
            self.config.context_collection_ns,
            0,
        );

        // Stale-prefetch pruning: jobs still queued from the previous
        // iteration target a phase that has passed — drop them so the
        // links start the iteration clean. Stage pins from the previous
        // iteration are released likewise.
        self.prune_stale_prefetches(None, &mut scratch.stale);
        self.cache.unpin_all();
        self.cache.notify_iteration_boundary();
        self.staged.clear();

        // KV-aware budgeting and memory-pressure faults both squeeze the
        // expert cache; the effective budget is recomputed every iteration
        // so pressure windows release their squeeze when they close.
        let pressure = self
            .faults
            .as_ref()
            .map_or(1.0, |f| f.budget_factor(self.clock.now()));
        if self.config.kv_aware_budget || self.faults.is_some() {
            let mut effective = self.config.cache_budget_bytes;
            if pressure < 1.0 {
                effective = (effective as f64 * pressure) as u64;
            }
            if self.config.kv_aware_budget {
                let kv_per_token = self.gate.config().kv_bytes_per_token();
                let live_kv: u64 = elements
                    .iter()
                    .filter(|e| !e.done)
                    .map(|e| (e.position + e.span().count) * kv_per_token)
                    .sum();
                effective = effective.saturating_sub(live_kv);
            }
            if pressure < 1.0 {
                self.timeline.record(
                    self.clock.now(),
                    TimelineEvent::BudgetPressure {
                        effective_bytes: effective,
                    },
                );
                self.trace.instant(
                    self.clock.now(),
                    Marker::BudgetPressure,
                    NO_REQUEST,
                    NO_LAYER,
                    NO_SLOT,
                    NO_GPU,
                    effective,
                );
                self.trace.count("engine.budget_pressure_iterations", 1);
            }
            let _ = self.cache.set_total_budget(effective);
        }

        // Step 2a: iteration-start prediction (semantic search window).
        scratch.begin_plans.clear();
        {
            let IterationScratch {
                begin_plans,
                contexts,
                ..
            } = &mut scratch;
            for ctx in contexts.iter().flatten() {
                begin_plans.extend(predictor.begin_iteration(ctx));
            }
        }
        if !scratch.begin_plans.is_empty() {
            self.apply_predictor_timing(&timing);
            let issue_at = self.prefetch_issue_time(&timing);
            let _ = self.issue_prefetches(&scratch.begin_plans, issue_at);
        }

        let batch_tokens: u64 = elements
            .iter()
            .filter(|e| !e.done)
            .map(|e| e.span().count)
            .sum();
        let context_len = elements
            .iter()
            .filter(|e| !e.done)
            .map(|e| e.position + e.span().count)
            .max()
            .unwrap_or(1);

        for layer in 0..num_layers {
            // Drop queued prefetches whose target layer has already
            // executed this iteration — they can no longer help.
            if layer > 0 {
                self.prune_stale_prefetches(Some(layer), &mut scratch.stale);
            }
            self.timeline
                .record(self.clock.now(), TimelineEvent::LayerStart { layer });
            // Attention + gate + always-on shared experts + host dispatch.
            let compute = self.cost.attention_time(batch_tokens, context_len)
                + self.cost.gate_time(batch_tokens)
                + self.cost.shared_expert_time(batch_tokens)
                + self.config.framework_overhead_per_layer_ns;
            self.clock.advance(compute);
            self.breakdown.compute_ns += compute;
            self.trace.span(
                self.clock.now(),
                Phase::Gate,
                NO_REQUEST,
                layer,
                NO_GPU,
                compute,
                0,
            );

            // Gate ground truth per element; union of activated experts.
            scratch.union.clear();
            scratch.layer_plans.clear();
            {
                let IterationScratch {
                    union,
                    layer_plans,
                    contexts,
                    ..
                } = &mut scratch;
                for (el, ctx) in elements.iter_mut().zip(contexts.iter()) {
                    let Some(ctx) = ctx else {
                        continue; // finished element
                    };
                    let span = el.span();
                    let dist = self.gate.iteration_distribution(
                        el.prompt.routing,
                        el.iteration,
                        layer,
                        span,
                    );
                    let activated =
                        self.gate
                            .activated_slots(el.prompt.routing, el.iteration, layer, span);
                    for &slot in &activated {
                        union.insert(layer as usize * j as usize + slot as usize);
                    }
                    el.realized_map.push(dist.clone());
                    el.activated.push(activated);
                    layer_plans.extend(predictor.observe_gate(ctx, layer, &dist));
                }
            }
            if !scratch.layer_plans.is_empty() {
                self.apply_predictor_timing(&timing);
                let issue_at = self.prefetch_issue_time(&timing);
                let _ = self.issue_prefetches(&scratch.layer_plans, issue_at);
            }

            // EP all2all dispatch: each token's hidden activation moves
            // to the owner GPUs of its activated experts over the peer
            // fabric, bottlenecked by the most-loaded owner (gate skew).
            // The symmetric combine is charged after expert compute.
            let mut a2a_combine_ns = 0;
            if let Some(ep_cfg) = ep_cfg {
                scratch.tokens_to_gpu.iter_mut().for_each(|t| *t = 0);
                for el in elements.iter() {
                    if el.done {
                        continue;
                    }
                    let tokens = el.span().count;
                    for &slot in &el.activated[layer as usize] {
                        let gpu = self.cache.home_gpu(ExpertId::new(layer, slot)) as usize;
                        if let Some(t) = scratch.tokens_to_gpu.get_mut(gpu) {
                            *t += tokens;
                        }
                    }
                }
                let total = all2all_layer_time(
                    &self.topology,
                    ep_cfg.backend,
                    &scratch.tokens_to_gpu,
                    a2a_bytes_per_token,
                    &mut scratch.a2a_per_gpu,
                );
                if total > 0 {
                    let dispatch = total / 2;
                    a2a_combine_ns = total - dispatch;
                    self.clock.advance(dispatch);
                    self.breakdown.all2all_ns += dispatch;
                    self.trace.span(
                        self.clock.now(),
                        Phase::All2All,
                        NO_REQUEST,
                        layer,
                        NO_GPU,
                        dispatch,
                        0,
                    );
                    for (g, &busy) in scratch.a2a_per_gpu.iter().enumerate() {
                        if let Some(t) = self.per_gpu.all2all_ns.get_mut(g) {
                            *t += busy;
                        }
                    }
                }
            }

            // Absorb prefetches that have landed by now.
            self.absorb_completions();

            // Classify each needed expert: resident, in flight (a prefetch
            // is mid-transfer — wait for the remainder rather than cancel
            // and reload), or missing (full on-demand load).
            let now = self.clock.now();
            scratch.residency.clear();
            scratch.waited_inflight.clear();
            scratch.missing.clear();
            {
                let IterationScratch {
                    union,
                    residency,
                    waited_inflight,
                    missing,
                    ..
                } = &mut scratch;
                for d in union.iter() {
                    let e = ExpertId::from_dense_index(d, j);
                    let resident = self.cache.contains(e);
                    if resident {
                        residency.insert(d, true);
                    } else if self.in_flight.contains(d) {
                        // For blocking policies (Mixtral-Offloading) the wait
                        // is the design — the speculated expert counts as a
                        // hit; for async policies a late prefetch is a miss.
                        residency.insert(d, timing.blocking_prefetch);
                        waited_inflight.push(e);
                    } else {
                        residency.insert(d, false);
                        missing.push(e);
                    }
                }
            }
            let missing = &mut scratch.missing;
            // Expert-agnostic layer streaming (DeepSpeed-Inference): the
            // policy cannot tell which experts are needed or resident, so
            // any miss streams the layer's *entire* expert blob from host
            // memory — resident experts included.
            if predictor.loads_entire_layer() && !missing.is_empty() {
                missing.clear();
                for slot in 0..j {
                    missing.push(ExpertId::new(layer, slot));
                }
            }
            let residency = &scratch.residency;
            let waited_inflight = &scratch.waited_inflight;
            let missing = &scratch.missing;
            for el in elements.iter_mut() {
                if el.done {
                    continue;
                }
                for &slot in &el.activated[layer as usize] {
                    let e = ExpertId::new(layer, slot);
                    // Stats + policy bookkeeping recorded once per
                    // (element, expert) access, against pre-load residency.
                    if residency.get(e.dense_index(j)).copied().unwrap_or(false) {
                        el.hits += 1;
                        self.trace.count("engine.expert_hits", 1);
                        if self.cache.is_degraded(e) {
                            el.degraded_hits += 1;
                        }
                    } else {
                        el.misses += 1;
                        self.trace.count("engine.expert_misses", 1);
                    }
                    self.cache.record_access(e, now);
                    if let Some(host) = &self.host_cache {
                        if !host.record_access(e, now) {
                            let _ = host.insert(e, now);
                        }
                    }
                }
            }

            // Pin resident activated experts before loading the rest, so
            // insertions cannot evict what this layer is about to run.
            for e in scratch.union.iter_experts(j) {
                self.cache.pin(e);
            }

            // Step 4: wait for needed in-flight transfers and issue
            // blocking on-demand loads, chained per GPU link, parallel
            // across GPUs. Prefetch queues pause during on-demand loads.
            if !waited_inflight.is_empty() || !missing.is_empty() {
                let start = self.clock.now();
                let bytes = self.cache.expert_bytes();
                self.trace
                    .begin(start, Phase::OnDemandWait, NO_REQUEST, layer);
                // Per-GPU start times: on-demand loads on a link begin
                // after the needed in-flight jobs on that link complete.
                scratch.per_gpu_now.fill(None);
                let per_gpu_now = &mut scratch.per_gpu_now;
                let mut inflight_done = start;
                // Promote every needed transfer first; estimating completion
                // before all promotions are in would go stale as soon as a
                // second job jumps the same link's queue.
                for &e in waited_inflight {
                    let gpu = self.cache.home_gpu(e);
                    let tag = e.dense_index(j) as u64;
                    self.timeline
                        .record(start, TimelineEvent::InFlightWait { expert: e });
                    self.trace.instant(
                        start,
                        Marker::InFlightWait,
                        NO_REQUEST,
                        e.layer,
                        e.slot,
                        gpu,
                        NO_VALUE,
                    );
                    self.trace.count("engine.inflight_waits", 1);
                    // The forward pass needs this transfer now: jump it
                    // ahead of background prefetch traffic on its link.
                    self.transfer.promote_to_front(GpuId(gpu), tag, start);
                }
                for &e in waited_inflight {
                    let gpu = self.cache.home_gpu(e);
                    let tag = e.dense_index(j) as u64;
                    if let Some(done) = self.transfer.completion_time_of(GpuId(gpu), tag) {
                        let entry = per_gpu_now[gpu as usize].get_or_insert(start);
                        *entry = (*entry).max(done);
                        inflight_done = inflight_done.max(done);
                    }
                }
                // On-demand payload sizes: full precision normally, half
                // precision when the request runs SLO-degraded or when a
                // deadline miss forces the fallback. `loaded` records what
                // actually moved so the cache insert matches the wire.
                scratch.loaded.clear();
                let loaded = &mut scratch.loaded;
                for &e in missing {
                    let d = e.dense_index(j);
                    let gpu = self.cache.home_gpu(e);
                    let gpu_now = per_gpu_now[gpu as usize].unwrap_or(start);
                    let t0 = gpu_now.max(start);
                    let want = if self.degraded_mode { bytes / 2 } else { bytes };
                    // Peer-to-peer tier: a copy spilled to a peer device
                    // serves the miss over the fast peer link instead of
                    // re-reading host memory (and without pausing the
                    // host-side prefetch queues).
                    if let Some(ep) = self.ep.as_mut() {
                        if ep.config.peer_fetch && ep.take(d) {
                            let done = t0 + self.topology.peer_link.transfer_time(want);
                            self.timeline
                                .record(t0, TimelineEvent::PeerFetch { expert: e });
                            self.trace.instant(
                                t0,
                                Marker::PeerFetch,
                                NO_REQUEST,
                                e.layer,
                                e.slot,
                                gpu,
                                want,
                            );
                            self.trace.count("engine.peer_fetches", 1);
                            self.breakdown.peer_fetches += 1;
                            self.breakdown.peer_fetch_ns += done - t0;
                            if let Some(t) = self.per_gpu.transfer_ns.get_mut(gpu as usize) {
                                *t += done - t0;
                            }
                            if want < bytes && !loaded.contains(d) {
                                loaded.insert(d, want);
                                self.timeline
                                    .record(t0, TimelineEvent::OnDemandDegraded { expert: e });
                            }
                            per_gpu_now[gpu as usize] = Some(done);
                            continue;
                        }
                    }
                    self.timeline
                        .record(t0, TimelineEvent::OnDemandLoad { expert: e });
                    self.trace.instant(
                        t0,
                        Marker::OnDemandLoad,
                        NO_REQUEST,
                        e.layer,
                        e.slot,
                        gpu,
                        want,
                    );
                    self.trace.count("engine.on_demand_loads", 1);
                    let done = match self.config.on_demand_deadline_ns {
                        Some(deadline) => {
                            match self.transfer.on_demand_load_with_deadline(
                                GpuId(gpu),
                                want,
                                t0,
                                t0.saturating_add(deadline),
                                want / 2,
                            ) {
                                Ok(outcome) => {
                                    if outcome.degraded {
                                        loaded.insert(d, outcome.bytes_loaded);
                                    }
                                    outcome.completed_at
                                }
                                // `home_gpu` only yields GPUs in the
                                // topology; if that ever breaks, degrade to
                                // the plain path rather than panic.
                                Err(_) => self.transfer.on_demand_load(GpuId(gpu), want, t0),
                            }
                        }
                        None => self.transfer.on_demand_load(GpuId(gpu), want, t0),
                    };
                    if want < bytes && !loaded.contains(d) {
                        loaded.insert(d, want);
                    }
                    if loaded.contains(d) {
                        self.timeline
                            .record(t0, TimelineEvent::OnDemandDegraded { expert: e });
                    }
                    if let Some(t) = self.per_gpu.transfer_ns.get_mut(gpu as usize) {
                        *t += done.saturating_sub(t0);
                    }
                    per_gpu_now[gpu as usize] = Some(done);
                }
                let done = per_gpu_now
                    .iter()
                    .flatten()
                    .copied()
                    .max()
                    .unwrap_or(start)
                    .max(start);
                // Breakdown: the in-flight portion of the stall is the
                // policy's synchronous-prefetch cost when it blocks by
                // design; everything else is on-demand waiting.
                let inflight_stall = inflight_done.saturating_sub(start);
                if timing.blocking_prefetch {
                    self.breakdown.blocking_prefetch_ns += inflight_stall;
                    self.breakdown.on_demand_wait_ns += (done - start) - inflight_stall;
                } else {
                    self.breakdown.on_demand_wait_ns += done - start;
                }
                self.clock.advance_to(done);
                self.trace.end(done, Phase::OnDemandWait, NO_REQUEST, layer);
                // Fold arrived prefetches (including the waited ones) in.
                self.absorb_completions();
                let now = self.clock.now();
                for &e in waited_inflight {
                    self.cache.pin(e);
                }
                for &e in missing {
                    let outcome = match loaded.get(e.dense_index(j)) {
                        Some(&sz) => self.cache.insert_sized(e, sz, now),
                        None => self.cache.insert(e, now),
                    };
                    match outcome {
                        InsertOutcome::Inserted { evicted } => {
                            // Under EP, evicted experts linger in spare
                            // peer-device memory for a while — the
                            // peer-fetch tier's spill pool.
                            if let Some(ep) = self.ep.as_mut() {
                                for v in &evicted {
                                    ep.spill(v.dense_index(j));
                                }
                            }
                            self.cache.pin(e);
                        }
                        InsertOutcome::AlreadyResident => {
                            self.cache.pin(e);
                        }
                        InsertOutcome::Rejected => {
                            // Budget cannot hold this layer's working set:
                            // the expert streams through a staging buffer
                            // and is not resident afterward.
                        }
                    }
                }
                // Attribute degraded loads to the elements that activated
                // those experts (mirrors the hit/miss accounting above).
                if !loaded.is_empty() {
                    for el in elements.iter_mut() {
                        if el.done {
                            continue;
                        }
                        for &slot in &el.activated[layer as usize] {
                            if loaded.contains(ExpertId::new(layer, slot).dense_index(j)) {
                                el.degraded_loads += 1;
                            }
                        }
                    }
                }
            }

            // Expert FFN compute: per-GPU serial, cross-GPU parallel.
            let expert_compute = self.expert_compute_time(
                &scratch.union,
                batch_tokens,
                &mut scratch.compute_per_gpu,
            );
            self.clock.advance(expert_compute);
            self.breakdown.compute_ns += expert_compute;
            for (g, &c) in scratch.compute_per_gpu.iter().enumerate() {
                if let Some(t) = self.per_gpu.compute_ns.get_mut(g) {
                    *t += c;
                }
            }
            self.trace.span(
                self.clock.now(),
                Phase::Compute,
                NO_REQUEST,
                layer,
                NO_GPU,
                expert_compute,
                0,
            );
            // EP all2all combine: expert outputs return to each token's
            // source GPU — the mirror of the dispatch charged above.
            if a2a_combine_ns > 0 {
                self.clock.advance(a2a_combine_ns);
                self.breakdown.all2all_ns += a2a_combine_ns;
                self.trace.span(
                    self.clock.now(),
                    Phase::All2All,
                    NO_REQUEST,
                    layer,
                    NO_GPU,
                    a2a_combine_ns,
                    0,
                );
            }
            // Release this layer's pins; staged experts for *future*
            // layers stay protected until their layer executes.
            for d in scratch.union.iter() {
                self.cache.unpin(ExpertId::from_dense_index(d, j));
                self.staged.remove(d);
            }
            scratch.passed.clear();
            scratch
                .passed
                .extend(self.staged.iter_experts(j).filter(|e| e.layer <= layer));
            for &e in &scratch.passed {
                self.cache.unpin(e);
                self.staged.remove(e.dense_index(j));
            }
            self.cache.notify_layer_done(layer);
        }

        // LM head / embedding.
        let head = self.cost.embedding_time(batch_tokens);
        self.clock.advance(head);
        self.breakdown.compute_ns += head;

        // Step 5: map update (asynchronous). The contexts built in step 1
        // are still current — nothing below mutated their inputs.
        for (el, ctx) in elements.iter_mut().zip(scratch.contexts.iter()) {
            let Some(ctx) = ctx else {
                continue; // finished element
            };
            predictor.end_iteration(ctx, &el.realized_map);
            self.breakdown.update_async_ns += timing.update_ns;

            // Advance element bookkeeping.
            if el.iteration == 0 {
                el.position = el.prompt.prompt_tokens;
                el.ttft_ns = Some(self.clock.now() - el.start_ns);
            } else {
                el.position += 1;
                el.decode_iterations += 1;
            }
            el.iteration += 1;
            if el.iteration >= el.total_iterations {
                el.done = true;
                el.finished_ns = self.clock.now();
                let total = el.finished_ns - el.start_ns;
                self.trace.instant(
                    el.finished_ns,
                    Marker::RequestFinished,
                    el.prompt.id,
                    NO_LAYER,
                    NO_SLOT,
                    NO_GPU,
                    total,
                );
                self.trace.count("engine.requests_finished", 1);
                self.trace.observe("engine.request_total_ns", total);
                if let Some(ttft) = el.ttft_ns {
                    self.trace.observe("engine.request_ttft_ns", ttft);
                }
            }
        }

        self.breakdown.iteration_total_ns += self.clock.now() - iter_start;
        self.timeline
            .record(self.clock.now(), TimelineEvent::IterationEnd);
        self.trace
            .end(self.clock.now(), Phase::Iteration, NO_REQUEST, NO_LAYER);
        // Hand the working memory back for the next iteration; the
        // backing allocations survive the round-trip.
        self.scratch = scratch;
    }

    /// Expert FFN time for a layer: experts grouped by home GPU run
    /// serially per GPU and in parallel across GPUs. `per_gpu` is the
    /// caller's scratch (one slot per GPU, zeroed here); the max over the
    /// full zero-initialized slice equals the max over touched GPUs
    /// because per-GPU sums are non-negative and `union` is non-empty.
    fn expert_compute_time(
        &self,
        union: &DenseIdSet,
        batch_tokens: u64,
        per_gpu: &mut [Nanos],
    ) -> Nanos {
        if union.is_empty() {
            return 0;
        }
        let j = self.gate.config().experts_per_layer;
        let k = u64::from(self.gate.config().top_k);
        let tokens_per_expert = ((batch_tokens * k) as f64 / union.len() as f64)
            .ceil()
            .max(1.0) as u64;
        per_gpu.fill(0);
        for e in union.iter_experts(j) {
            let gpu = self.cache.home_gpu(e) as usize;
            if let Some(slot) = per_gpu.get_mut(gpu) {
                *slot += self.cost.expert_time(tokens_per_expert);
            }
        }
        per_gpu.iter().copied().max().unwrap_or(0)
    }

    /// Charges synchronous predictor latency to the critical path; always
    /// records it in the breakdown.
    fn apply_predictor_timing(&mut self, timing: &crate::predictor::PredictorTiming) {
        if timing.latency_ns == 0 {
            return;
        }
        self.breakdown.matching_ns += timing.latency_ns;
        if timing.synchronous {
            self.clock.advance(timing.latency_ns);
            // Synchronous policies stall compute for the match: a real
            // interval on the critical path. Asynchronous matching runs
            // off-path and only shows up via the PrefetchIssued markers.
            self.trace.span(
                self.clock.now(),
                Phase::PrefetchIssue,
                NO_REQUEST,
                NO_LAYER,
                NO_GPU,
                timing.latency_ns,
                0,
            );
        }
    }

    /// When prefetch issuance happens: immediately for synchronous
    /// policies (the stall already paid), after the matching latency for
    /// asynchronous ones.
    fn prefetch_issue_time(&self, timing: &crate::predictor::PredictorTiming) -> Nanos {
        if timing.synchronous {
            self.clock.now()
        } else {
            self.clock.now() + timing.latency_ns
        }
    }

    /// Submits prefetch plans to the transfer engine. Returns the GPUs
    /// whose links received new jobs.
    fn issue_prefetches(&mut self, plans: &[PrefetchPlan], at: Nanos) -> Vec<GpuId> {
        let j = self.gate.config().experts_per_layer;
        let full_bytes = self.cache.expert_bytes();
        let mut touched = Vec::new();
        for plan in plans {
            self.cache.update_probability(plan.expert, plan.probability);
            if plan.advisory || self.cache.contains(plan.expert) {
                continue;
            }
            let tag = plan.expert.dense_index(j) as u64;
            if self.in_flight.contains(tag as usize) {
                continue;
            }
            // Mixed-precision extension: dubious experts load quantized.
            let bytes = match self.config.low_precision_threshold {
                Some(threshold) if plan.probability < threshold => full_bytes / 2,
                _ => full_bytes,
            };
            if bytes > self.cache.per_gpu_budget() {
                continue; // can never be cached
            }
            let gpu = GpuId(self.cache.home_gpu(plan.expert));
            self.transfer.submit_prefetch(gpu, tag, bytes, at);
            self.timeline.record(
                at,
                TimelineEvent::PrefetchIssued {
                    expert: plan.expert,
                },
            );
            // Recorded at `now`, not at the (possibly future) issue time:
            // the recorder's timeline is monotone and a future stamp would
            // drag later events forward. The scheduled issue time rides in
            // `value` instead.
            self.trace.instant(
                self.clock.now(),
                Marker::PrefetchIssued,
                NO_REQUEST,
                plan.expert.layer,
                plan.expert.slot,
                gpu.0,
                at,
            );
            self.trace.count("engine.prefetches_issued", 1);
            self.in_flight.insert(tag as usize);
            if !touched.contains(&gpu) {
                touched.push(gpu);
            }
        }
        touched
    }

    /// Cancels queued prefetch jobs that can no longer be useful: with
    /// `before_layer = Some(l)`, jobs targeting layers `< l` of the
    /// current iteration; with `None`, every queued job (iteration
    /// boundary — a new iteration routes differently).
    fn prune_stale_prefetches(
        &mut self,
        before_layer: Option<u32>,
        stale: &mut Vec<(u64, ExpertId)>,
    ) {
        self.absorb_completions();
        let j = self.gate.config().experts_per_layer;
        let now = self.clock.now();
        stale.clear();
        stale.extend(
            self.in_flight
                .iter()
                .map(|d| (d as u64, ExpertId::from_dense_index(d, j)))
                .filter(|(_, e)| before_layer.is_none_or(|l| e.layer < l)),
        );
        for &(tag, expert) in stale.iter() {
            let gpu = GpuId(self.cache.home_gpu(expert));
            if self.transfer.cancel_prefetch(gpu, tag, now) {
                self.in_flight.remove(tag as usize);
            }
        }
        self.absorb_completions();
    }

    /// Folds completed prefetch transfers into the cache, stage-pinning
    /// them until their target layer executes.
    fn absorb_completions(&mut self) {
        self.transfer.advance_to(self.clock.now());
        let j = self.gate.config().experts_per_layer;
        for c in self.transfer.drain_completions() {
            // Tags *are* dense expert indices, so membership alone
            // reconstructs the expert — no tag→expert map needed.
            if !self.in_flight.remove(c.tag as usize) {
                continue;
            }
            let expert = ExpertId::from_dense_index(c.tag as usize, j);
            self.breakdown.prefetch_async_ns += self.topology.host_link.wire_time(c.bytes);
            self.timeline
                .record(c.completed_at, TimelineEvent::PrefetchArrived { expert });
            self.trace.instant(
                c.completed_at,
                Marker::PrefetchArrived,
                NO_REQUEST,
                expert.layer,
                expert.slot,
                c.gpu.0,
                c.bytes,
            );
            self.trace.count("engine.prefetch_arrivals", 1);
            let outcome = self.cache.insert_sized(expert, c.bytes, c.completed_at);
            if let InsertOutcome::Inserted { evicted } = &outcome {
                if let Some(ep) = self.ep.as_mut() {
                    // Evicted experts land in the peer spill pool (EP's
                    // peer-fetch tier); no-op when EP is off.
                    for v in evicted {
                        ep.spill(v.dense_index(j));
                    }
                }
            }
            if matches!(
                outcome,
                InsertOutcome::Inserted { .. } | InsertOutcome::AlreadyResident
            ) && self.cache.pin(expert)
            {
                self.staged.insert(c.tag as usize);
            }
        }
        // Transfers that exhausted their retries are lost: release the
        // in-flight slot so the expert can be re-requested (as a fresh
        // prefetch or an on-demand load) instead of being waited on.
        for f in self.transfer.drain_failures() {
            if self.in_flight.remove(f.tag as usize) {
                let expert = ExpertId::from_dense_index(f.tag as usize, j);
                self.timeline
                    .record(f.failed_at, TimelineEvent::PrefetchFailed { expert });
                self.trace.instant(
                    f.failed_at,
                    Marker::PrefetchFailed,
                    NO_REQUEST,
                    expert.layer,
                    expert.slot,
                    f.gpu.0,
                    u64::from(f.attempts),
                );
                self.trace.count("engine.prefetch_failures", 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::NoPrefetch;
    use fmoe_cache::LruPolicy;
    use fmoe_model::{presets, GateParams};
    use fmoe_workload::DatasetSpec;

    fn tiny_engine(cache_slots_total: u64, preload: bool) -> ServingEngine {
        let cfg = presets::tiny_test_model();
        let gate = GateSimulator::new(cfg.clone(), GateParams::for_model(&cfg));
        let topology = Topology::single_gpu(8 << 30);
        let budget = cfg.expert_bytes() * cache_slots_total;
        let config = EngineConfig {
            cache_budget_bytes: budget,
            preload_all: preload,
            max_decode_iterations: Some(8),
            context_collection_ns: 1000,
            framework_overhead_per_layer_ns: 10_000,
            ..EngineConfig::paper_default()
        };
        ServingEngine::new(
            gate,
            GpuSpec::rtx_3090(),
            topology,
            Box::new(LruPolicy::new()),
            config,
        )
    }

    fn prompt(id: u64) -> Prompt {
        DatasetSpec::tiny_test().prompt(id)
    }

    #[test]
    fn serves_a_request_and_reports_metrics() {
        let mut e = tiny_engine(8, false);
        let m = e.serve_request(prompt(0), &mut NoPrefetch);
        assert!(m.ttft_ns > 0);
        assert!(m.total_ns >= m.ttft_ns);
        assert_eq!(m.total_ns - m.ttft_ns, m.decode_ns);
        assert!(m.expert_hits + m.expert_misses > 0);
        // Every iteration touches at least top_k experts per layer.
        let min_accesses = (1 + m.decode_iterations) * 4 /*layers*/ * 2 /*top_k*/;
        assert!(m.expert_hits + m.expert_misses >= min_accesses);
    }

    #[test]
    fn preloaded_cache_never_misses() {
        // Budget covers all 16 experts of the tiny model.
        let mut e = tiny_engine(16, true);
        let m = e.serve_request(prompt(1), &mut NoPrefetch);
        assert_eq!(m.expert_misses, 0);
        assert!(m.expert_hits > 0);
    }

    #[test]
    fn cold_cache_misses_then_warms_up() {
        let mut e = tiny_engine(16, false);
        let first = e.serve_request(prompt(2), &mut NoPrefetch);
        assert!(first.expert_misses > 0);
        // Second identical request: the cache now holds everything it
        // touched (capacity fits the whole model).
        let second = e.serve_request(prompt(2), &mut NoPrefetch);
        assert!(second.hit_rate() > first.hit_rate());
    }

    #[test]
    fn smaller_cache_is_slower() {
        let mut large = tiny_engine(16, false);
        let mut small = tiny_engine(2, false);
        let p = prompt(3);
        // Warm both with one pass, then measure.
        let _ = large.serve_request(p, &mut NoPrefetch);
        let _ = small.serve_request(p, &mut NoPrefetch);
        let ml = large.serve_request(p, &mut NoPrefetch);
        let ms = small.serve_request(p, &mut NoPrefetch);
        assert!(ms.total_ns >= ml.total_ns);
        assert!(ms.hit_rate() <= ml.hit_rate());
    }

    #[test]
    fn decode_cap_limits_iterations() {
        let mut e = tiny_engine(8, false);
        let m = e.serve_request(prompt(4), &mut NoPrefetch);
        assert!(m.decode_iterations <= 8);
    }

    #[test]
    fn clock_advances_monotonically_across_requests() {
        let mut e = tiny_engine(8, false);
        let t0 = e.now();
        let _ = e.serve_request(prompt(5), &mut NoPrefetch);
        let t1 = e.now();
        assert!(t1 > t0);
        let _ = e.serve_request(prompt(6), &mut NoPrefetch);
        assert!(e.now() > t1);
    }

    #[test]
    fn batch_returns_metrics_per_request() {
        let mut e = tiny_engine(8, false);
        let ps = [prompt(7), prompt(8), prompt(9)];
        let ms = e.serve_batch(&ps, &mut NoPrefetch);
        assert_eq!(ms.len(), 3);
        for (m, p) in ms.iter().zip(&ps) {
            assert_eq!(m.request_id, p.id);
            assert!(m.total_ns > 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one prompt")]
    fn empty_batch_panics() {
        let mut e = tiny_engine(8, false);
        let _ = e.serve_batch(&[], &mut NoPrefetch);
    }

    #[test]
    fn breakdown_accumulates() {
        let mut e = tiny_engine(8, false);
        let _ = e.serve_request(prompt(10), &mut NoPrefetch);
        let b = e.take_breakdown();
        assert!(b.iterations > 0);
        assert!(b.compute_ns > 0);
        assert!(b.context_collection_ns > 0);
        assert!(b.on_demand_wait_ns > 0, "cold cache must wait on loads");
        // take_breakdown resets.
        let b2 = e.take_breakdown();
        assert_eq!(b2.iterations, 0);
    }

    #[test]
    fn timeline_records_a_consistent_execution_trace() {
        use crate::timeline::TimelineEvent;
        let mut e = tiny_engine(8, false);
        e.set_timeline_enabled(true);
        let _ = e.serve_request(prompt(12), &mut NoPrefetch);
        let entries = e.take_timeline();
        assert!(!entries.is_empty());
        // Timestamps are monotone.
        for w in entries.windows(2) {
            assert!(w[0].at_ns <= w[1].at_ns);
        }
        // Iteration starts and ends pair up; layers appear in order
        // within each iteration; a cold cache shows on-demand loads.
        let starts = entries
            .iter()
            .filter(|x| matches!(x.event, TimelineEvent::IterationStart { .. }))
            .count();
        let ends = entries
            .iter()
            .filter(|x| matches!(x.event, TimelineEvent::IterationEnd))
            .count();
        assert_eq!(starts, ends);
        assert!(entries
            .iter()
            .any(|x| matches!(x.event, TimelineEvent::OnDemandLoad { .. })));
        // Disabled again: nothing accrues.
        e.set_timeline_enabled(false);
        let _ = e.serve_request(prompt(13), &mut NoPrefetch);
        assert!(e.take_timeline().is_empty());
    }

    #[test]
    fn idle_until_advances_clock() {
        let mut e = tiny_engine(8, false);
        e.idle_until(1_000_000);
        assert_eq!(e.now(), 1_000_000);
        // Idle into the past is a no-op.
        e.idle_until(10);
        assert_eq!(e.now(), 1_000_000);
    }

    #[test]
    fn ttft_reflects_prefill_and_decode_cost_accrues() {
        let mut e = tiny_engine(8, false);
        let m = e.serve_request(prompt(11), &mut NoPrefetch);
        if m.decode_iterations > 0 {
            assert!(m.decode_ns > 0);
            assert!(m.tpot_ns() > 0.0);
        }
    }

    #[test]
    fn try_serve_batch_reports_typed_errors() {
        let mut e = tiny_engine(8, false);
        assert_eq!(
            e.try_serve_batch(&[], &mut NoPrefetch),
            Err(ServeError::EmptyBatch)
        );
        e.admit(prompt(20));
        assert_eq!(
            e.try_serve_batch(&[prompt(21)], &mut NoPrefetch),
            Err(ServeError::BatchActive)
        );
    }

    #[test]
    fn inert_fault_schedule_changes_nothing() {
        let mut plain = tiny_engine(8, false);
        let mut faulted = tiny_engine(8, false);
        faulted.set_fault_schedule(FaultSchedule::none());
        assert!(faulted.fault_schedule().is_none(), "inert normalizes away");
        let a = plain.serve_request(prompt(30), &mut NoPrefetch);
        let b = faulted.serve_request(prompt(30), &mut NoPrefetch);
        assert_eq!(a, b);
    }

    #[test]
    fn degraded_request_moves_half_payloads_and_is_flagged() {
        let mut e = tiny_engine(8, false);
        let m = e.serve_request_degraded(prompt(31), &mut NoPrefetch);
        assert!(m.served_degraded);
        assert!(
            m.degraded_loads > 0,
            "cold cache on-demand loads all run degraded"
        );
        // Degraded mode is scoped to the one request.
        let m2 = e.serve_request(prompt(32), &mut NoPrefetch);
        assert!(!m2.served_degraded);
        // A degraded request stalls less on the wire than a full-precision
        // cold start of the same prompt.
        let mut full = tiny_engine(8, false);
        let mf = full.serve_request(prompt(31), &mut NoPrefetch);
        assert!(m.total_ns < mf.total_ns);
    }

    #[test]
    fn deadline_fallback_bounds_stalls_under_link_faults() {
        // A link degraded to 2% of nominal bandwidth for the whole run.
        let schedule = FaultSchedule::builder(7)
            .degrade_link(None, 0, u64::MAX, 0.02)
            .build();

        let mut no_deadline = tiny_engine(8, false);
        no_deadline.set_fault_schedule(schedule.clone());
        let slow = no_deadline.serve_request(prompt(33), &mut NoPrefetch);
        assert_eq!(slow.degraded_loads, 0);

        let mut with_deadline = tiny_engine(8, false);
        with_deadline.set_fault_schedule(schedule);
        // Tighter than any transfer on the crippled link can manage.
        with_deadline.config.on_demand_deadline_ns = Some(1_000);
        with_deadline.set_timeline_enabled(true);
        let bounded = with_deadline.serve_request(prompt(33), &mut NoPrefetch);
        assert!(
            bounded.degraded_loads > 0,
            "the crippled link cannot meet the deadline at full precision"
        );
        assert!(bounded.total_ns < slow.total_ns);
        assert!(with_deadline
            .take_timeline()
            .iter()
            .any(|x| matches!(x.event, TimelineEvent::OnDemandDegraded { .. })));
    }

    #[test]
    fn memory_pressure_window_squeezes_and_releases_budget() {
        let schedule = FaultSchedule::builder(9)
            .memory_pressure(0, 10 * fmoe_memsim::clock::SECOND, 0.3)
            .build();
        let mut e = tiny_engine(8, false);
        e.set_fault_schedule(schedule);
        e.set_timeline_enabled(true);
        let m = e.serve_request(prompt(34), &mut NoPrefetch);
        assert!(m.total_ns > 0, "pressure degrades but never wedges");
        let entries = e.take_timeline();
        let squeezed: Vec<u64> = entries
            .iter()
            .filter_map(|x| match x.event {
                TimelineEvent::BudgetPressure { effective_bytes } => Some(effective_bytes),
                _ => None,
            })
            .collect();
        assert!(!squeezed.is_empty(), "pressure window must be recorded");
        for b in squeezed {
            assert!(b < e.cache_budget());
        }
    }

    /// Prefetches every expert of the next layer — enough background
    /// traffic for transient-failure tests.
    struct NextLayerPrefetch;

    impl crate::predictor::ExpertPredictor for NextLayerPrefetch {
        fn name(&self) -> String {
            "NextLayerPrefetch".into()
        }

        fn timing(&self) -> crate::predictor::PredictorTiming {
            crate::predictor::PredictorTiming::free()
        }

        fn begin_iteration(&mut self, _ctx: &IterationContext) -> Vec<PrefetchPlan> {
            Vec::new()
        }

        fn observe_gate(
            &mut self,
            _ctx: &IterationContext,
            layer: u32,
            distribution: &[f64],
        ) -> Vec<PrefetchPlan> {
            let next = layer + 1;
            if next >= 4 {
                return Vec::new(); // tiny_test_model has 4 layers
            }
            (0..distribution.len() as u32)
                .map(|slot| PrefetchPlan::fetch(ExpertId::new(next, slot), 0.9))
                .collect()
        }

        fn end_iteration(&mut self, _ctx: &IterationContext, _realized_map: &[Vec<f64>]) {}
    }

    #[test]
    fn failed_prefetches_never_wedge_the_engine() {
        // Every transfer attempt fails: all prefetches exhaust their
        // retries and die; serving falls back to on-demand loads, which
        // themselves retry — the run must still terminate.
        let schedule = FaultSchedule::builder(11)
            .transient_failure_rate(1.0)
            .build();
        let mut e = tiny_engine(8, false);
        e.set_fault_schedule(schedule.clone());
        // No retries: the first fault kills the job. (With retries, stale
        // pruning at the next layer usually cancels a job before it can
        // exhaust its attempts — prefetches only live for about a layer.)
        e.set_retry_policy(RetryPolicy {
            max_retries: 0,
            base_backoff_ns: 1_000,
            max_backoff_ns: 1_000,
        });
        e.set_timeline_enabled(true);
        let m = e.serve_request(prompt(35), &mut NextLayerPrefetch);
        assert!(m.total_ns > 0);
        let stats = e.transfer_stats();
        assert!(stats.failed_jobs > 0, "prefetches must die under rate 1.0");
        assert!(stats.faults_injected > 0);
        assert!(e
            .take_timeline()
            .iter()
            .any(|x| matches!(x.event, TimelineEvent::PrefetchFailed { .. })));

        // With the default policy the same storm shows up as retries and
        // backoff time instead of permanent failures.
        let mut patient = tiny_engine(8, false);
        patient.set_fault_schedule(schedule);
        let m2 = patient.serve_request(prompt(35), &mut NextLayerPrefetch);
        assert!(m2.total_ns > 0);
        let stats2 = patient.transfer_stats();
        assert!(stats2.retries > 0);
        assert!(stats2.backoff_ns > 0);
    }

    #[test]
    fn moderate_faults_only_slow_serving_down() {
        let horizon = 60 * fmoe_memsim::clock::SECOND;
        let mut clean = tiny_engine(8, false);
        let base = clean.serve_request(prompt(36), &mut NextLayerPrefetch);

        let mut faulty = tiny_engine(8, false);
        faulty.set_fault_schedule(FaultSchedule::synthetic(3, 0.5, horizon, 1));
        let hit = faulty.serve_request(prompt(36), &mut NextLayerPrefetch);
        assert!(hit.total_ns >= base.total_ns, "faults cannot speed you up");
        assert_eq!(
            base.expert_hits + base.expert_misses,
            hit.expert_hits + hit.expert_misses,
            "faults change timing, not the token/expert schedule"
        );
    }
}
