//! Expert-placement policies for expert parallelism (EP).
//!
//! With EP a replica's N GPUs each *own* a subset of experts; the owner
//! table decides which GPU serves (and caches) each expert, and — via
//! the gate — how many tokens each GPU receives in the per-layer
//! all2all. A [`PlacementPolicy`] maps a model shape to an owner table
//! (`owners[dense_expert_index] = gpu`), which the engine installs into
//! the cache so `home_gpu` and every downstream GPU attribution follow
//! it.
//!
//! Three policies cover the sweep in fig17:
//!
//! * [`RoundRobinPlacement`] — the paper's §5 static choice; exactly
//!   [`Topology::round_robin_gpu`](fmoe_memsim::Topology::round_robin_gpu)
//!   as a trait impl.
//! * [`LoadBalancedPlacement`] — greedy global balance over historical
//!   activation frequencies, capped so ownership stays a near-even
//!   partition.
//! * [`FmoeMapPlacement`] — fMoE-map-aware: balances *within each
//!   layer* using predicted activation probabilities, so no single
//!   layer's hot experts pile onto one GPU and bottleneck that layer's
//!   all2all.

use fmoe_model::ModelConfig;

/// A policy that assigns every expert a home GPU.
pub trait PlacementPolicy {
    /// Stable kebab-case name for CSV columns and CLI flags.
    fn name(&self) -> &'static str;

    /// Owner table for `model` on `num_gpus` devices:
    /// `owners[dense_expert_index] = gpu`, with every entry
    /// `< num_gpus`. Must be deterministic. A `num_gpus` of zero yields
    /// an empty table.
    fn assign(&self, model: &ModelConfig, num_gpus: u32) -> Vec<u32>;
}

/// Static round-robin over the dense expert index — the paper's §5
/// placement, and the trait-side twin of `Topology::round_robin_gpu`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinPlacement;

impl PlacementPolicy for RoundRobinPlacement {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn assign(&self, model: &ModelConfig, num_gpus: u32) -> Vec<u32> {
        if num_gpus == 0 {
            return Vec::new();
        }
        let total = model.num_layers as usize * model.experts_per_layer as usize;
        (0..total).map(|d| (d % num_gpus as usize) as u32).collect()
    }
}

/// Greedy weighted assignment: experts in descending-frequency order
/// (ties broken by dense index) each go to the least-loaded GPU, with a
/// per-GPU ownership cap of `ceil(total / num_gpus)` so the partition
/// stays memory-balanced even under extreme skew.
fn greedy_balance(order: &[usize], freq: &[f64], num_gpus: usize, cap: usize) -> Vec<(usize, u32)> {
    let mut load = vec![0.0f64; num_gpus];
    let mut owned = vec![0usize; num_gpus];
    let mut out = Vec::with_capacity(order.len());
    for &dense in order {
        let mut best = 0usize;
        for g in 1..num_gpus {
            let best_full = owned[best] >= cap;
            let g_full = owned[g] >= cap;
            if best_full && !g_full {
                best = g;
                continue;
            }
            if !best_full && g_full {
                continue;
            }
            if load[g] < load[best] {
                best = g;
            }
        }
        let f = freq.get(dense).copied().unwrap_or(1.0);
        load[best] += f;
        owned[best] += 1;
        out.push((dense, best as u32));
    }
    out
}

/// Descending-frequency order over `0..total`, ties broken by dense
/// index ascending (deterministic).
fn frequency_order(total: usize, freq: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..total).collect();
    order.sort_by(|&a, &b| {
        let fa = freq.get(a).copied().unwrap_or(1.0);
        let fb = freq.get(b).copied().unwrap_or(1.0);
        fb.total_cmp(&fa).then(a.cmp(&b))
    });
    order
}

/// Load-balanced placement by historical activation frequency: a global
/// greedy bin-pack of per-expert load, capped to keep ownership a
/// near-even partition. With uniform frequencies it degenerates to a
/// balanced spread (max/min owned-expert gap ≤ 1).
#[derive(Debug, Clone, Default)]
pub struct LoadBalancedPlacement {
    /// Per-expert activation frequency, indexed by dense expert index.
    /// Missing entries (or an empty vector) count as uniform `1.0`.
    pub frequencies: Vec<f64>,
}

impl LoadBalancedPlacement {
    /// Uniform-frequency variant (pure ownership balancing).
    #[must_use]
    pub fn uniform() -> Self {
        Self::default()
    }

    /// Builds from historical activation counts, dense-indexed.
    #[must_use]
    pub fn from_counts(counts: &[u64]) -> Self {
        Self {
            frequencies: counts.iter().map(|&c| c as f64).collect(),
        }
    }
}

impl PlacementPolicy for LoadBalancedPlacement {
    fn name(&self) -> &'static str {
        "load-balanced"
    }

    fn assign(&self, model: &ModelConfig, num_gpus: u32) -> Vec<u32> {
        if num_gpus == 0 {
            return Vec::new();
        }
        let n = num_gpus as usize;
        let total = model.num_layers as usize * model.experts_per_layer as usize;
        let cap = total.div_ceil(n);
        let order = frequency_order(total, &self.frequencies);
        let mut owners = vec![0u32; total];
        for (dense, gpu) in greedy_balance(&order, &self.frequencies, n, cap) {
            owners[dense] = gpu;
        }
        owners
    }
}

/// fMoE-map-aware placement: balances predicted activation probability
/// *within each layer* (per-layer greedy with a per-layer cap), so each
/// layer's hot experts are spread across GPUs and no single layer's
/// all2all serializes on one device. Global balancing can colocate one
/// layer's whole hot set; this cannot.
#[derive(Debug, Clone, Default)]
pub struct FmoeMapPlacement {
    /// Predicted per-expert activation probability, indexed by dense
    /// expert index (e.g. averaged over an fMoE expert-map store).
    /// Missing entries count as uniform `1.0`.
    pub probabilities: Vec<f64>,
}

impl FmoeMapPlacement {
    /// Builds from dense-indexed predicted probabilities.
    #[must_use]
    pub fn from_probabilities(probabilities: Vec<f64>) -> Self {
        Self { probabilities }
    }
}

impl PlacementPolicy for FmoeMapPlacement {
    fn name(&self) -> &'static str {
        "fmoe-map"
    }

    fn assign(&self, model: &ModelConfig, num_gpus: u32) -> Vec<u32> {
        if num_gpus == 0 {
            return Vec::new();
        }
        let n = num_gpus as usize;
        let per_layer = model.experts_per_layer as usize;
        let total = model.num_layers as usize * per_layer;
        let cap = per_layer.div_ceil(n).max(1);
        let mut owners = vec![0u32; total];
        for layer in 0..model.num_layers as usize {
            let base = layer * per_layer;
            let mut order: Vec<usize> = (base..base + per_layer).collect();
            order.sort_by(|&a, &b| {
                let fa = self.probabilities.get(a).copied().unwrap_or(1.0);
                let fb = self.probabilities.get(b).copied().unwrap_or(1.0);
                fb.total_cmp(&fa).then(a.cmp(&b))
            });
            for (dense, gpu) in greedy_balance(&order, &self.probabilities, n, cap) {
                owners[dense] = gpu;
            }
        }
        owners
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmoe_memsim::Topology;
    use fmoe_model::presets;

    fn model() -> ModelConfig {
        presets::tiny_test_model()
    }

    fn policies(freq: Vec<f64>) -> Vec<Box<dyn PlacementPolicy>> {
        vec![
            Box::new(RoundRobinPlacement),
            Box::new(LoadBalancedPlacement {
                frequencies: freq.clone(),
            }),
            Box::new(FmoeMapPlacement {
                probabilities: freq,
            }),
        ]
    }

    fn skewed_frequencies(total: usize) -> Vec<f64> {
        (0..total).map(|d| 1.0 + ((d * 7) % 13) as f64).collect()
    }

    #[test]
    fn assignment_is_deterministic_across_double_runs() {
        let m = model();
        let total = m.num_layers as usize * m.experts_per_layer as usize;
        for policy in policies(skewed_frequencies(total)) {
            let a = policy.assign(&m, 4);
            let b = policy.assign(&m, 4);
            assert_eq!(a, b, "{} not deterministic", policy.name());
        }
    }

    #[test]
    fn ownership_is_a_partition_of_the_expert_set() {
        let m = model();
        let total = m.num_layers as usize * m.experts_per_layer as usize;
        for gpus in [1u32, 2, 3, 4] {
            for policy in policies(skewed_frequencies(total)) {
                let owners = policy.assign(&m, gpus);
                // Every expert has exactly one owner, and every owner is
                // a real GPU: the per-GPU owned sets are disjoint and
                // their union is the whole expert set.
                assert_eq!(owners.len(), total, "{}", policy.name());
                assert!(
                    owners.iter().all(|&g| g < gpus),
                    "{} assigned an out-of-range GPU",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn load_balanced_spread_is_at_most_one_on_uniform_frequencies() {
        let m = model();
        for gpus in [2u32, 3, 4, 5] {
            let owners = LoadBalancedPlacement::uniform().assign(&m, gpus);
            let mut owned = vec![0usize; gpus as usize];
            for &g in &owners {
                owned[g as usize] += 1;
            }
            let max = owned.iter().copied().max().unwrap_or(0);
            let min = owned.iter().copied().min().unwrap_or(0);
            assert!(
                max - min <= 1,
                "uniform load-balanced spread {max}-{min} > 1 at {gpus} GPUs"
            );
        }
    }

    #[test]
    fn round_robin_matches_topology_round_robin_gpu() {
        let m = model();
        let topo = Topology::builder()
            .num_gpus(4)
            .build()
            .expect("valid topology");
        let owners = RoundRobinPlacement.assign(&m, topo.num_gpus);
        for (dense, &gpu) in owners.iter().enumerate() {
            assert_eq!(gpu, topo.round_robin_gpu(dense).0);
        }
    }

    #[test]
    fn fmoe_map_balances_every_layer() {
        let m = model();
        let total = m.num_layers as usize * m.experts_per_layer as usize;
        let owners = FmoeMapPlacement::from_probabilities(skewed_frequencies(total)).assign(&m, 2);
        let per_layer = m.experts_per_layer as usize;
        for layer in 0..m.num_layers as usize {
            let slice = &owners[layer * per_layer..(layer + 1) * per_layer];
            let g0 = slice.iter().filter(|&&g| g == 0).count();
            let g1 = slice.len() - g0;
            assert!(
                g0.abs_diff(g1) <= 1,
                "layer {layer} ownership {g0}/{g1} unbalanced"
            );
        }
    }

    #[test]
    fn load_balanced_puts_heavy_experts_on_distinct_gpus() {
        let m = model();
        let total = m.num_layers as usize * m.experts_per_layer as usize;
        let mut freq = vec![1.0f64; total];
        freq[0] = 1000.0;
        freq[1] = 900.0;
        let owners = LoadBalancedPlacement { frequencies: freq }.assign(&m, 2);
        assert_ne!(owners[0], owners[1], "two hottest experts colocated");
    }
}
