//! Execution timeline recording — the observability surface a real
//! serving runtime exposes for debugging offloading behaviour.
//!
//! When enabled on the engine, every scheduling-relevant event is recorded
//! with its virtual timestamp: iteration and layer boundaries, prefetch
//! issue/arrival, on-demand loads, in-flight waits, evictions-by-budget.
//! The recording is strictly ordered by time within a request, making it
//! suitable both for human inspection (`fmoe_sim timeline`) and for
//! assertions in tests.

use fmoe_memsim::Nanos;
use fmoe_model::ExpertId;
use serde::Serialize;

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TimelineEvent {
    /// An iteration began (value: iteration index of the oldest live
    /// request).
    IterationStart {
        /// Iteration index.
        iteration: u64,
    },
    /// A layer's gate fired.
    LayerStart {
        /// The layer.
        layer: u32,
    },
    /// A prefetch was submitted to a link.
    PrefetchIssued {
        /// Target expert.
        expert: ExpertId,
    },
    /// A prefetch finished and the expert became resident.
    PrefetchArrived {
        /// The expert.
        expert: ExpertId,
    },
    /// The forward pass blocked on an on-demand load.
    OnDemandLoad {
        /// The missed expert.
        expert: ExpertId,
    },
    /// The forward pass waited for an in-flight prefetch to finish.
    InFlightWait {
        /// The expert being waited for.
        expert: ExpertId,
    },
    /// An on-demand load missed its deadline (or ran in degraded mode)
    /// and fell back to a reduced-precision payload.
    OnDemandDegraded {
        /// The expert loaded at reduced precision.
        expert: ExpertId,
    },
    /// A prefetch transfer failed permanently after exhausting retries
    /// (transient link faults); the expert stays non-resident.
    PrefetchFailed {
        /// The expert whose transfer was lost.
        expert: ExpertId,
    },
    /// A miss was served from a peer device's spill pool over the peer
    /// link (expert parallelism; only emitted by multi-GPU EP runs).
    PeerFetch {
        /// The expert fetched peer-to-peer.
        expert: ExpertId,
    },
    /// A memory-pressure fault shrank the effective expert-cache budget
    /// for this iteration.
    BudgetPressure {
        /// The effective budget in bytes after the squeeze.
        effective_bytes: u64,
    },
    /// An iteration completed.
    IterationEnd,
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TimelineEntry {
    /// Virtual time of the event.
    pub at_ns: Nanos,
    /// What happened.
    pub event: TimelineEvent,
}

/// Append-only recorder; disabled recorders cost one branch per event.
#[derive(Debug, Default)]
pub struct Timeline {
    enabled: bool,
    entries: Vec<TimelineEntry>,
}

impl Timeline {
    /// Enables or disables recording (disabling keeps entries).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether events are currently recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op when disabled).
    pub fn record(&mut self, at_ns: Nanos, event: TimelineEvent) {
        if self.enabled {
            self.entries.push(TimelineEntry { at_ns, event });
        }
    }

    /// Takes all recorded entries.
    pub fn take(&mut self) -> Vec<TimelineEntry> {
        std::mem::take(&mut self.entries)
    }

    /// Number of recorded entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Renders entries as human-readable lines (`+12.345 ms  event`), with
/// times relative to the first entry.
#[must_use]
pub fn render(entries: &[TimelineEntry]) -> String {
    use std::fmt::Write as _;
    let base = entries.first().map_or(0, |e| e.at_ns);
    let mut out = String::new();
    for e in entries {
        let ms = (e.at_ns - base) as f64 / 1e6;
        let desc = match e.event {
            TimelineEvent::IterationStart { iteration } => {
                format!("iteration {iteration} start")
            }
            TimelineEvent::LayerStart { layer } => format!("  layer {layer}"),
            TimelineEvent::PrefetchIssued { expert } => {
                format!("    prefetch issued   {expert}")
            }
            TimelineEvent::PrefetchArrived { expert } => {
                format!("    prefetch arrived  {expert}")
            }
            TimelineEvent::OnDemandLoad { expert } => {
                format!("    ON-DEMAND load    {expert}")
            }
            TimelineEvent::InFlightWait { expert } => {
                format!("    wait in-flight    {expert}")
            }
            TimelineEvent::OnDemandDegraded { expert } => {
                format!("    DEGRADED load     {expert}")
            }
            TimelineEvent::PrefetchFailed { expert } => {
                format!("    prefetch FAILED   {expert}")
            }
            TimelineEvent::PeerFetch { expert } => {
                format!("    peer fetch        {expert}")
            }
            TimelineEvent::BudgetPressure { effective_bytes } => {
                format!("  budget pressure -> {effective_bytes} B")
            }
            TimelineEvent::IterationEnd => "iteration end".to_string(),
        };
        let _ = writeln!(out, "+{ms:>10.3} ms  {desc}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut t = Timeline::default();
        t.record(5, TimelineEvent::IterationEnd);
        assert!(t.is_empty());
        t.set_enabled(true);
        t.record(6, TimelineEvent::IterationEnd);
        assert_eq!(t.len(), 1);
        t.set_enabled(false);
        t.record(7, TimelineEvent::IterationEnd);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn take_drains() {
        let mut t = Timeline::default();
        t.set_enabled(true);
        t.record(1, TimelineEvent::IterationStart { iteration: 0 });
        t.record(2, TimelineEvent::IterationEnd);
        let taken = t.take();
        assert_eq!(taken.len(), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn render_is_relative_and_ordered() {
        let entries = vec![
            TimelineEntry {
                at_ns: 1_000_000,
                event: TimelineEvent::IterationStart { iteration: 3 },
            },
            TimelineEntry {
                at_ns: 3_500_000,
                event: TimelineEvent::OnDemandLoad {
                    expert: ExpertId::new(2, 1),
                },
            },
        ];
        let text = render(&entries);
        assert!(text.contains("+     0.000 ms  iteration 3 start"));
        assert!(text.contains("+     2.500 ms"));
        assert!(text.contains("E[2,1]"));
    }
}
