//! Serving metrics: TTFT, TPOT, hit rates, and the per-operation latency
//! breakdown of the paper's Figure 15.

use fmoe_stats::Summary;
use serde::Serialize;

/// Metrics for one served request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RequestMetrics {
    /// Request id.
    pub request_id: u64,
    /// Time-To-First-Token: start of serving to end of the prefill
    /// iteration, in nanoseconds (§2.1).
    pub ttft_ns: u64,
    /// Total time spent in decode iterations.
    pub decode_ns: u64,
    /// Number of decode iterations executed.
    pub decode_iterations: u64,
    /// End-to-end serving time (TTFT + decode), excluding queueing.
    pub total_ns: u64,
    /// Expert-cache hits across all iterations/layers.
    pub expert_hits: u64,
    /// Expert-cache misses (on-demand loads).
    pub expert_misses: u64,
    /// Hits served by a reduced-precision resident expert (the
    /// mixed-precision extension's quality proxy; 0 when the feature is
    /// off).
    pub degraded_hits: u64,
    /// On-demand loads that fell back to reduced precision — because the
    /// load missed its deadline under link faults, or because the request
    /// was served in SLO-degraded mode. 0 when the failure model is off.
    pub degraded_loads: u64,
    /// `true` when the whole request was served in degraded mode (SLO
    /// pressure made the scheduler trade quality for latency).
    pub served_degraded: bool,
}

impl RequestMetrics {
    /// Time-Per-Output-Token over the decode stage, in nanoseconds.
    /// Zero when the request had no decode iterations.
    #[must_use]
    pub fn tpot_ns(&self) -> f64 {
        if self.decode_iterations == 0 {
            0.0
        } else {
            self.decode_ns as f64 / self.decode_iterations as f64
        }
    }

    /// Expert hit rate over the whole request.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.expert_hits + self.expert_misses;
        if total == 0 {
            0.0
        } else {
            self.expert_hits as f64 / total as f64
        }
    }
}

/// Aggregated metrics over a set of requests (one experiment cell).
#[derive(Debug, Clone, Serialize)]
pub struct AggregateMetrics {
    /// Number of requests aggregated.
    pub requests: usize,
    /// Mean TTFT in milliseconds.
    pub mean_ttft_ms: f64,
    /// Mean TPOT in milliseconds (over requests with decode iterations).
    pub mean_tpot_ms: f64,
    /// Pooled expert hit rate (total hits / total accesses).
    pub hit_rate: f64,
    /// Mean end-to-end latency in milliseconds.
    pub mean_total_ms: f64,
    /// P95 end-to-end latency in milliseconds.
    pub p95_total_ms: f64,
    /// Fraction of expert accesses served at reduced precision (0 when
    /// the mixed-precision extension is off).
    pub degraded_fraction: f64,
}

impl AggregateMetrics {
    /// Aggregates request metrics. Returns a zeroed struct for an empty
    /// slice.
    #[must_use]
    pub fn from_requests(requests: &[RequestMetrics]) -> Self {
        if requests.is_empty() {
            return Self {
                requests: 0,
                mean_ttft_ms: 0.0,
                mean_tpot_ms: 0.0,
                hit_rate: 0.0,
                mean_total_ms: 0.0,
                p95_total_ms: 0.0,
                degraded_fraction: 0.0,
            };
        }
        let mut ttft = Summary::new();
        let mut tpot = Summary::new();
        let mut total = Summary::new();
        let mut hits = 0u64;
        let mut accesses = 0u64;
        let mut degraded = 0u64;
        let mut totals: Vec<f64> = Vec::with_capacity(requests.len());
        for r in requests {
            degraded += r.degraded_hits;
            ttft.record(r.ttft_ns as f64 / 1e6);
            if r.decode_iterations > 0 {
                tpot.record(r.tpot_ns() / 1e6);
            }
            total.record(r.total_ns as f64 / 1e6);
            totals.push(r.total_ns as f64 / 1e6);
            hits += r.expert_hits;
            accesses += r.expert_hits + r.expert_misses;
        }
        let cdf = fmoe_stats::EmpiricalCdf::new(totals);
        Self {
            requests: requests.len(),
            mean_ttft_ms: ttft.mean(),
            mean_tpot_ms: tpot.mean(),
            hit_rate: if accesses == 0 {
                0.0
            } else {
                hits as f64 / accesses as f64
            },
            mean_total_ms: total.mean(),
            p95_total_ms: cdf.quantile(0.95).unwrap_or(0.0),
            degraded_fraction: if accesses == 0 {
                0.0
            } else {
                degraded as f64 / accesses as f64
            },
        }
    }
}

/// Cumulative per-operation time, averaged per iteration on report — the
/// paper's Figure 15 breakdown.
///
/// Synchronous entries extend the critical path; asynchronous entries
/// overlap compute and are reported for completeness (the paper shows them
/// hatched).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct Breakdown {
    /// Iterations accumulated.
    pub iterations: u64,
    /// Synchronous: per-iteration context collection (embedding/trajectory
    /// snapshots).
    pub context_collection_ns: u64,
    /// Map matching / prediction. Synchronous for sync policies; otherwise
    /// asynchronous.
    pub matching_ns: u64,
    /// `true` when `matching_ns` sat on the critical path.
    pub matching_synchronous: bool,
    /// Synchronous: waiting for on-demand expert loads.
    pub on_demand_wait_ns: u64,
    /// Synchronous: stalls waiting for blocking prefetches (policies with
    /// `blocking_prefetch`, e.g. Mixtral-Offloading).
    pub blocking_prefetch_ns: u64,
    /// Synchronous: attention + gate + expert + head compute.
    pub compute_ns: u64,
    /// Asynchronous: prefetch wire time overlapped with compute.
    pub prefetch_async_ns: u64,
    /// Asynchronous: store/matrix update time.
    pub update_async_ns: u64,
    /// Synchronous: expert-parallel all2all token routing on the peer
    /// fabric (zero unless EP is enabled on a multi-GPU topology).
    pub all2all_ns: u64,
    /// Synchronous: misses served from a peer device's spill pool over
    /// the peer link (zero unless EP peer fetching is enabled).
    pub peer_fetch_ns: u64,
    /// Number of peer-to-peer miss fetches.
    pub peer_fetches: u64,
    /// Total critical-path iteration time.
    pub iteration_total_ns: u64,
}

/// Per-GPU critical-path attribution across an engine's lifetime:
/// expert-FFN compute, EP all2all busy time, and weight-transfer stall
/// per device. Vectors are indexed by GPU and sized lazily from the
/// topology. Feeds the cluster's per-GPU `ClusterReport` breakdowns
/// (DESIGN.md §17).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct PerGpuBreakdown {
    /// Expert FFN busy time per GPU.
    pub compute_ns: Vec<u64>,
    /// All2all (dispatch + combine) busy time per GPU.
    pub all2all_ns: Vec<u64>,
    /// On-demand weight-transfer stall attributed per GPU (host or
    /// peer link).
    pub transfer_ns: Vec<u64>,
}

impl PerGpuBreakdown {
    /// Sizes all vectors for `num_gpus` devices (no-op once sized).
    pub fn ensure_gpus(&mut self, num_gpus: usize) {
        if self.compute_ns.len() != num_gpus {
            self.compute_ns = vec![0; num_gpus];
            self.all2all_ns = vec![0; num_gpus];
            self.transfer_ns = vec![0; num_gpus];
        }
    }

    /// Number of GPUs tracked.
    #[must_use]
    pub fn num_gpus(&self) -> usize {
        self.compute_ns.len()
    }
}

impl Breakdown {
    /// Mean per-iteration value of a counter, in milliseconds.
    #[must_use]
    pub fn per_iteration_ms(&self, counter_ns: u64) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            counter_ns as f64 / self.iterations as f64 / 1e6
        }
    }

    /// Synchronous (critical-path) overhead per iteration, in
    /// milliseconds, excluding compute and on-demand waits — the quantity
    /// the paper bounds at "less than 30 ms (5% of the iteration)" (§6.7).
    #[must_use]
    pub fn sync_overhead_per_iteration_ms(&self) -> f64 {
        let mut ns = self.context_collection_ns;
        if self.matching_synchronous {
            ns += self.matching_ns;
        }
        self.per_iteration_ms(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rm(id: u64, ttft: u64, decode: u64, iters: u64, hits: u64, misses: u64) -> RequestMetrics {
        RequestMetrics {
            request_id: id,
            ttft_ns: ttft,
            decode_ns: decode,
            decode_iterations: iters,
            total_ns: ttft + decode,
            expert_hits: hits,
            expert_misses: misses,
            degraded_hits: 0,
            degraded_loads: 0,
            served_degraded: false,
        }
    }

    #[test]
    fn tpot_and_hit_rate() {
        let r = rm(1, 1_000_000, 10_000_000, 10, 30, 10);
        assert!((r.tpot_ns() - 1_000_000.0).abs() < 1e-9);
        assert!((r.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_decode_iterations_tpot_is_zero() {
        let r = rm(1, 5, 0, 0, 0, 0);
        assert_eq!(r.tpot_ns(), 0.0);
        assert_eq!(r.hit_rate(), 0.0);
    }

    #[test]
    fn aggregate_pools_hits() {
        let rs = vec![
            rm(1, 2_000_000, 8_000_000, 8, 8, 2),
            rm(2, 4_000_000, 0, 0, 0, 10),
        ];
        let a = AggregateMetrics::from_requests(&rs);
        assert_eq!(a.requests, 2);
        assert!((a.mean_ttft_ms - 3.0).abs() < 1e-9);
        // Pooled: 8 hits of 20 accesses.
        assert!((a.hit_rate - 0.4).abs() < 1e-12);
        // TPOT mean only over requests with decode iterations.
        assert!((a.mean_tpot_ms - 1.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_of_empty_is_zeroed() {
        let a = AggregateMetrics::from_requests(&[]);
        assert_eq!(a.requests, 0);
        assert_eq!(a.hit_rate, 0.0);
    }

    #[test]
    fn breakdown_reports_sync_overhead() {
        let b = Breakdown {
            iterations: 10,
            context_collection_ns: 10_000_000,
            matching_ns: 20_000_000,
            matching_synchronous: false,
            ..Default::default()
        };
        // Async matching excluded: only 1 ms of context collection.
        assert!((b.sync_overhead_per_iteration_ms() - 1.0).abs() < 1e-9);
        let b_sync = Breakdown {
            matching_synchronous: true,
            ..b
        };
        assert!((b_sync.sync_overhead_per_iteration_ms() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_handles_zero_iterations() {
        let b = Breakdown::default();
        assert_eq!(b.per_iteration_ms(1_000_000), 0.0);
        assert_eq!(b.sync_overhead_per_iteration_ms(), 0.0);
    }
}
