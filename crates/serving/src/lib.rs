//! MoE serving-engine simulator.
//!
//! This crate is the shared harness every offloading policy runs on —
//! mirroring the paper's methodology, which ported all baselines onto one
//! codebase (MoE-Infinity's) "for a fair comparison" (§6.1). It owns:
//!
//! * [`predictor`] — the [`predictor::ExpertPredictor`] trait that
//!   policies (fMoE and all baselines) implement, plus the context types
//!   they observe. Policies see only what real systems see: semantic
//!   embeddings and gate outputs as they are produced.
//! * [`engine`] — the prefill/decode iteration loop: per layer, attention →
//!   gate → expert hit/miss resolution (with blocking on-demand loads) →
//!   expert compute, with background prefetch traffic overlapping compute
//!   on the simulated PCIe links.
//! * [`metrics`] — TTFT, TPOT, hit rates, and the per-operation latency
//!   breakdown of the paper's Figure 15.
//! * [`online`] — the trace-driven FCFS scheduler for the online-serving
//!   experiments (Figure 10).
//! * [`placement`] — expert-placement policies for expert parallelism:
//!   which GPU owns each expert inside a multi-GPU replica (Figure 17).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod metrics;
pub mod online;
pub mod placement;
pub mod predictor;
pub mod timeline;

pub use engine::{
    EngineBuilder, EngineConfig, ExpertParallelConfig, IndexMode, ServeError, ServingEngine,
};
pub use metrics::{AggregateMetrics, Breakdown, PerGpuBreakdown, RequestMetrics};
pub use online::{
    serve, serve_event_fcfs, FcfsOutcome, OnlineReport, OnlineResult, Scheduler, ServeOptions,
    ShedRequest, SloAction, SloPolicy,
};
pub use placement::{
    FmoeMapPlacement, LoadBalancedPlacement, PlacementPolicy, RoundRobinPlacement,
};
pub use predictor::{ExpertPredictor, IterationContext, NoPrefetch, PredictorTiming, PrefetchPlan};
pub use timeline::{Timeline, TimelineEntry, TimelineEvent};

#[cfg(test)]
mod proptests;
