//! MoE model substrate for the fMoE reproduction.
//!
//! The paper serves real checkpoints (Mixtral-8×7B, Qwen1.5-MoE-A2.7B,
//! Phi-3.5-MoE) through HuggingFace Transformers. Offloading policies never
//! look at weight *values*, though — they consume the gate networks'
//! probability distributions and pay compute/transfer *time*. This crate
//! provides exactly those two surfaces:
//!
//! * [`config`] / [`presets`] — architectural descriptions of the three
//!   evaluated models (paper Table 1): layer count `L`, experts per layer
//!   `J`, activated experts `K`, hidden sizes, and per-expert weight bytes.
//! * [`expert`] — strongly-typed expert/layer identifiers.
//! * [`dense`] — flat bitset/array containers keyed by dense expert
//!   index, the allocation-free hot-path replacement for `BTreeMap`
//!   (DESIGN.md §16).
//! * [`gate`] — a synthetic router that reproduces the statistical
//!   structure the paper measures on real routers (peaked per-iteration
//!   distributions, balanced long-run routing, semantic-cluster-conditioned
//!   trajectories, decaying inter-layer correlation). See `DESIGN.md` §3.
//! * [`compute`] — an analytical roofline cost model for attention and
//!   expert FFN execution, used by the serving engine to advance virtual
//!   time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compute;
pub mod config;
pub mod dense;
pub mod expert;
pub mod gate;
pub mod presets;

pub use compute::{CostModel, GpuSpec};
pub use config::{ModelConfig, BYTES_PER_PARAM_FP16};
pub use dense::{DenseIdMap, DenseIdSet};
pub use expert::{ExpertId, LayerId};
pub use gate::{GateParams, GateSimulator, RequestRouting};

#[cfg(test)]
mod proptests;
