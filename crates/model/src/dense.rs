//! Flat, dense-index containers keyed by [`ExpertId::dense_index`].
//!
//! The hot loops of the serving engine touch small-integer expert ids
//! (`0..L·J`, a few hundred at most) every simulated iteration. Keying
//! those paths on `BTreeMap<ExpertId, _>` pays pointer-chasing and node
//! allocation for what is structurally an array lookup. [`DenseIdSet`]
//! and [`DenseIdMap`] are the flat replacements: a `u64` bitset for
//! membership and a presence-bitset + values `Vec` for association,
//! both sized once (`L·J` slots) and reused across iterations so the
//! steady state allocates nothing.
//!
//! **Iteration-order contract.** `ExpertId` derives `Ord` with
//! `(layer, slot)` lexicographic order, which is exactly ascending
//! `dense_index` order (`layer · J + slot`). Both containers iterate in
//! ascending dense-index order, so replacing a `BTreeSet<ExpertId>` /
//! `BTreeMap<ExpertId, _>` with them preserves iteration order — the
//! property the byte-identical golden-trace suite pins (DESIGN.md §16).
//!
//! Out-of-range indices are handled without panicking: `insert` reports
//! rejection, `contains`/`get` answer "absent". Every simulated model is
//! fixed-size, so a rejection only ever signals a cross-model id mix-up
//! — which the engine treats the same way the map-based code treated an
//! id that simply was not present.

use crate::expert::ExpertId;

const WORD_BITS: usize = 64;

/// A fixed-capacity bitset over dense expert indices `0..capacity`.
///
/// ```
/// use fmoe_model::dense::DenseIdSet;
///
/// let mut set = DenseIdSet::with_capacity(10);
/// assert!(set.insert(3));
/// assert!(!set.insert(3), "already present");
/// assert!(set.insert(7));
/// assert!(set.contains(3));
/// assert_eq!(set.iter().collect::<Vec<_>>(), vec![3, 7]);
/// assert!(set.remove(3));
/// assert!(!set.remove(3), "already absent");
/// assert_eq!(set.len(), 1);
/// assert!(!set.insert(10), "out of range is rejected, not inserted");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DenseIdSet {
    words: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl DenseIdSet {
    /// An empty set over indices `0..capacity`.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(WORD_BITS)],
            capacity,
            len: 0,
        }
    }

    /// Number of indices this set can hold (`0..capacity`).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of present indices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no index is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `index` is present. Out-of-range indices are absent.
    #[must_use]
    pub fn contains(&self, index: usize) -> bool {
        index < self.capacity && self.words[index / WORD_BITS] & (1u64 << (index % WORD_BITS)) != 0
    }

    /// Inserts `index`; returns whether the set changed. Out-of-range
    /// indices are rejected (returns `false`, set unchanged).
    pub fn insert(&mut self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        let (word, bit) = (index / WORD_BITS, 1u64 << (index % WORD_BITS));
        if self.words[word] & bit != 0 {
            return false;
        }
        self.words[word] |= bit;
        self.len += 1;
        true
    }

    /// Removes `index`; returns whether it was present.
    pub fn remove(&mut self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        let (word, bit) = (index / WORD_BITS, 1u64 << (index % WORD_BITS));
        if self.words[word] & bit == 0 {
            return false;
        }
        self.words[word] &= !bit;
        self.len -= 1;
        true
    }

    /// Clears every index without releasing storage.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Present indices in ascending order — the same order a
    /// `BTreeSet<ExpertId>` would yield (see module docs).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            let base = w * WORD_BITS;
            BitIter { bits }.map(move |b| base + b)
        })
    }

    /// Present indices as [`ExpertId`]s, ascending — `(layer, slot)`
    /// lexicographic, matching `ExpertId`'s `Ord`.
    pub fn iter_experts(&self, experts_per_layer: u32) -> impl Iterator<Item = ExpertId> + '_ {
        self.iter()
            .map(move |i| ExpertId::from_dense_index(i, experts_per_layer))
    }
}

/// Iterates the set bits of one word, ascending.
struct BitIter {
    bits: u64,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.bits == 0 {
            return None;
        }
        let b = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(b)
    }
}

/// A fixed-capacity map from dense expert indices to `T`: a presence
/// bitset plus a values `Vec`, iterated in ascending index order.
///
/// `T: Default` only because absent slots need a placeholder value; the
/// placeholder is never observable through the map's API.
///
/// ```
/// use fmoe_model::dense::DenseIdMap;
///
/// let mut map: DenseIdMap<u64> = DenseIdMap::with_capacity(8);
/// assert_eq!(map.insert(2, 20), None);
/// assert_eq!(map.insert(2, 21), Some(20), "replaced");
/// map.insert(5, 50);
/// assert_eq!(map.get(2), Some(&21));
/// assert_eq!(map.get(3), None);
/// assert_eq!(map.iter().collect::<Vec<_>>(), vec![(2, &21), (5, &50)]);
/// assert_eq!(map.remove(5), Some(50));
/// assert_eq!(map.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DenseIdMap<T> {
    present: DenseIdSet,
    values: Vec<T>,
}

impl<T: Default> DenseIdMap<T> {
    /// An empty map over indices `0..capacity`.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let mut values = Vec::with_capacity(capacity);
        values.resize_with(capacity, T::default);
        Self {
            present: DenseIdSet::with_capacity(capacity),
            values,
        }
    }

    /// Number of indices this map can hold (`0..capacity`).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.present.capacity()
    }

    /// Number of present entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.present.len()
    }

    /// Whether no entry is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.present.is_empty()
    }

    /// Whether `index` has an entry. Out-of-range indices are absent.
    #[must_use]
    pub fn contains(&self, index: usize) -> bool {
        self.present.contains(index)
    }

    /// The value at `index`, if present.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&T> {
        self.present.contains(index).then(|| &self.values[index])
    }

    /// Mutable access to the value at `index`, if present.
    pub fn get_mut(&mut self, index: usize) -> Option<&mut T> {
        self.present
            .contains(index)
            .then(|| &mut self.values[index])
    }

    /// Inserts `value` at `index`, returning the replaced value if one
    /// was present. Out-of-range indices are rejected (`None`, map
    /// unchanged — indistinguishable from a fresh insert, so callers
    /// that must distinguish should bound-check first).
    pub fn insert(&mut self, index: usize, value: T) -> Option<T> {
        if index >= self.capacity() {
            return None;
        }
        if self.present.insert(index) {
            self.values[index] = value;
            None
        } else {
            Some(std::mem::replace(&mut self.values[index], value))
        }
    }

    /// Removes the entry at `index`, returning its value if present.
    pub fn remove(&mut self, index: usize) -> Option<T> {
        self.present
            .remove(index)
            .then(|| std::mem::take(&mut self.values[index]))
    }

    /// Clears every entry without releasing storage.
    pub fn clear(&mut self) {
        self.values.iter_mut().for_each(|v| *v = T::default());
        self.present.clear();
    }

    /// Entries in ascending index order — the same order a
    /// `BTreeMap<ExpertId, T>` would yield (see module docs).
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> + '_ {
        self.present.iter().map(move |i| (i, &self.values[i]))
    }

    /// Present indices in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = usize> + '_ {
        self.present.iter()
    }

    /// Present values in ascending index order.
    pub fn values(&self) -> impl Iterator<Item = &T> + '_ {
        self.present.iter().map(move |i| &self.values[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    #[test]
    fn set_matches_btreeset_under_mixed_ops() {
        let mut dense = DenseIdSet::with_capacity(100);
        let mut reference: BTreeSet<usize> = BTreeSet::new();
        // Deterministic splitmix64 op stream.
        let mut state = 0x5eedu64;
        for _ in 0..10_000 {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            let idx = (z % 100) as usize;
            if z & 0x100 == 0 {
                assert_eq!(dense.insert(idx), reference.insert(idx));
            } else {
                assert_eq!(dense.remove(idx), reference.remove(&idx));
            }
            assert_eq!(dense.len(), reference.len());
        }
        assert_eq!(
            dense.iter().collect::<Vec<_>>(),
            reference.iter().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn map_matches_btreemap_under_mixed_ops() {
        let mut dense: DenseIdMap<u64> = DenseIdMap::with_capacity(64);
        let mut reference: BTreeMap<usize, u64> = BTreeMap::new();
        let mut state = 0xfeedu64;
        for step in 0..10_000u64 {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            let idx = (z % 64) as usize;
            if z & 0x100 == 0 {
                assert_eq!(dense.insert(idx, step), reference.insert(idx, step));
            } else {
                assert_eq!(dense.remove(idx), reference.remove(&idx));
            }
            assert_eq!(dense.get(idx), reference.get(&idx));
            assert_eq!(dense.len(), reference.len());
        }
        assert_eq!(
            dense.iter().map(|(k, v)| (k, *v)).collect::<Vec<_>>(),
            reference.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn set_iteration_order_matches_expert_id_ord() {
        // The load-bearing property: ascending dense index == ExpertId Ord.
        let j = 7u32;
        let mut dense = DenseIdSet::with_capacity(5 * j as usize);
        let mut reference: BTreeSet<ExpertId> = BTreeSet::new();
        for d in [33, 2, 18, 7, 34, 0, 20, 6] {
            dense.insert(d);
            reference.insert(ExpertId::from_dense_index(d, j));
        }
        assert_eq!(
            dense.iter_experts(j).collect::<Vec<_>>(),
            reference.iter().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn out_of_range_is_rejected_not_panicking() {
        let mut set = DenseIdSet::with_capacity(4);
        assert!(!set.insert(4));
        assert!(!set.contains(4));
        assert!(!set.remove(4));
        let mut map: DenseIdMap<u32> = DenseIdMap::with_capacity(4);
        assert_eq!(map.insert(9, 1), None);
        assert_eq!(map.get(9), None);
        assert_eq!(map.remove(9), None);
        assert_eq!(map.len(), 0);
    }

    #[test]
    fn clear_retains_capacity_and_resets_state() {
        let mut map: DenseIdMap<u64> = DenseIdMap::with_capacity(16);
        for i in 0..16 {
            map.insert(i, i as u64 * 3);
        }
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.capacity(), 16);
        assert_eq!(map.iter().count(), 0);
        map.insert(3, 9);
        assert_eq!(map.get(3), Some(&9));
    }

    #[test]
    fn zero_capacity_containers_are_inert() {
        let mut set = DenseIdSet::with_capacity(0);
        assert!(!set.insert(0));
        assert!(set.is_empty());
        let mut map: DenseIdMap<u8> = DenseIdMap::with_capacity(0);
        assert_eq!(map.insert(0, 1), None);
        assert!(map.is_empty());
    }
}
