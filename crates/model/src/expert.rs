//! Strongly-typed identifiers for MoE layers and experts.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of an MoE layer within a model (`0..L`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LayerId(pub u32);

impl LayerId {
    /// The layer index as a `usize` for slice indexing.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Identifies one expert: `(layer, slot within the layer)`.
///
/// Expert `j` at layer `l` is `E_{l,j}` in the paper's notation. Only
/// *routed* (offloadable) experts get identifiers; always-on shared experts
/// (e.g. Qwen1.5-MoE's four shared experts) are accounted for in the cost
/// model but are never offloading candidates, matching the paper's
/// footnote 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ExpertId {
    /// The MoE layer this expert belongs to.
    pub layer: u32,
    /// The expert slot within the layer (`0..J`).
    pub slot: u32,
}

impl ExpertId {
    /// Creates an expert identifier.
    #[must_use]
    pub fn new(layer: u32, slot: u32) -> Self {
        Self { layer, slot }
    }

    /// The layer as a [`LayerId`].
    #[must_use]
    pub fn layer_id(self) -> LayerId {
        LayerId(self.layer)
    }

    /// Flattens the identifier to a dense index given the per-layer expert
    /// count `J` — the natural key for `L·J`-sized tables.
    #[must_use]
    pub fn dense_index(self, experts_per_layer: u32) -> usize {
        self.layer as usize * experts_per_layer as usize + self.slot as usize
    }

    /// Inverse of [`Self::dense_index`].
    #[must_use]
    pub fn from_dense_index(index: usize, experts_per_layer: u32) -> Self {
        let j = experts_per_layer as usize;
        Self::new((index / j) as u32, (index % j) as u32)
    }
}

impl fmt::Display for ExpertId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E[{},{}]", self.layer, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_index_round_trips() {
        let j = 8;
        for layer in 0..4 {
            for slot in 0..j {
                let e = ExpertId::new(layer, slot);
                let d = e.dense_index(j);
                assert_eq!(ExpertId::from_dense_index(d, j), e);
            }
        }
    }

    #[test]
    fn dense_index_is_row_major() {
        assert_eq!(ExpertId::new(0, 0).dense_index(8), 0);
        assert_eq!(ExpertId::new(0, 7).dense_index(8), 7);
        assert_eq!(ExpertId::new(1, 0).dense_index(8), 8);
        assert_eq!(ExpertId::new(2, 3).dense_index(8), 19);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ExpertId::new(3, 5).to_string(), "E[3,5]");
        assert_eq!(LayerId(7).to_string(), "L7");
    }

    #[test]
    fn ordering_is_layer_major() {
        let a = ExpertId::new(1, 7);
        let b = ExpertId::new(2, 0);
        assert!(a < b);
    }
}
