//! Architectural configuration of an MoE model.

use crate::expert::ExpertId;
use serde::{Deserialize, Serialize};

/// Bytes per parameter for fp16/bf16 weights, the precision the paper
/// serves at.
pub const BYTES_PER_PARAM_FP16: u64 = 2;

/// Architectural description of a decoder-only MoE LLM.
///
/// Mirrors the quantities in the paper's Table 1 plus the dimensions the
/// cost model needs. All byte figures assume fp16 weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable model name (e.g. `"Mixtral-8x7B"`).
    pub name: String,
    /// Number of MoE (transformer) layers, `L`.
    pub num_layers: u32,
    /// Routed (offloadable) experts per layer, `J`.
    pub experts_per_layer: u32,
    /// Experts activated per token per layer, `K` (top-K routing).
    pub top_k: u32,
    /// Always-on shared experts per layer (not offloadable; e.g. 4 for
    /// Qwen1.5-MoE). These participate in compute cost but never in
    /// cache/offload decisions, per the paper's footnote 3.
    pub shared_experts_per_layer: u32,
    /// Hidden (model) dimension `h`; also the semantic-embedding width.
    pub hidden_dim: u32,
    /// Expert FFN intermediate dimension.
    pub expert_ffn_dim: u32,
    /// Intermediate dimension of a shared expert (0 when none).
    pub shared_expert_ffn_dim: u32,
    /// Number of attention heads (for documentation; the cost model works
    /// from `hidden_dim`).
    pub num_attention_heads: u32,
    /// Grouped-query KV heads.
    pub num_kv_heads: u32,
    /// Vocabulary size (embedding + LM head parameter accounting).
    pub vocab_size: u32,
}

impl ModelConfig {
    /// Parameters in one routed expert: three projection matrices
    /// (`gate`, `up`, `down`) of shape `hidden × ffn`.
    #[must_use]
    pub fn params_per_expert(&self) -> u64 {
        3 * u64::from(self.hidden_dim) * u64::from(self.expert_ffn_dim)
    }

    /// Weight bytes of one routed expert at fp16.
    #[must_use]
    pub fn expert_bytes(&self) -> u64 {
        self.params_per_expert() * BYTES_PER_PARAM_FP16
    }

    /// Total routed experts in the model, `L·J`.
    #[must_use]
    pub fn total_experts(&self) -> u64 {
        u64::from(self.num_layers) * u64::from(self.experts_per_layer)
    }

    /// Bytes of all routed expert weights.
    #[must_use]
    pub fn total_expert_bytes(&self) -> u64 {
        self.total_experts() * self.expert_bytes()
    }

    /// Parameters of the attention stack in one layer (QKV + output
    /// projections, grouped-query aware).
    #[must_use]
    pub fn attention_params_per_layer(&self) -> u64 {
        let h = u64::from(self.hidden_dim);
        let head_dim = h / u64::from(self.num_attention_heads.max(1));
        let kv_dim = head_dim * u64::from(self.num_kv_heads);
        // Q and O are h×h; K and V are h×kv_dim.
        2 * h * h + 2 * h * kv_dim
    }

    /// Parameters of shared (always-on) experts in one layer.
    #[must_use]
    pub fn shared_expert_params_per_layer(&self) -> u64 {
        3 * u64::from(self.hidden_dim)
            * u64::from(self.shared_expert_ffn_dim)
            * u64::from(self.shared_experts_per_layer)
    }

    /// Dense (non-offloadable) parameters: embeddings, LM head, attention,
    /// shared experts, router weights.
    #[must_use]
    pub fn dense_params(&self) -> u64 {
        let h = u64::from(self.hidden_dim);
        let embed = 2 * u64::from(self.vocab_size) * h; // embedding + LM head
        let per_layer = self.attention_params_per_layer()
            + self.shared_expert_params_per_layer()
            + h * u64::from(self.experts_per_layer); // router
        embed + u64::from(self.num_layers) * per_layer
    }

    /// Total parameters (dense + all routed experts).
    #[must_use]
    pub fn total_params(&self) -> u64 {
        self.dense_params() + self.total_experts() * self.params_per_expert()
    }

    /// Parameters active for one token: dense per-token path + `K` routed
    /// experts per layer.
    #[must_use]
    pub fn active_params(&self) -> u64 {
        self.dense_params()
            + u64::from(self.num_layers) * u64::from(self.top_k) * self.params_per_expert()
    }

    /// KV-cache bytes one token occupies across all layers at fp16:
    /// keys + values for every grouped-query head.
    #[must_use]
    pub fn kv_bytes_per_token(&self) -> u64 {
        let head_dim = u64::from(self.hidden_dim / self.num_attention_heads.max(1));
        2 * u64::from(self.num_layers)
            * u64::from(self.num_kv_heads)
            * head_dim
            * BYTES_PER_PARAM_FP16
    }

    /// Iterator over every routed expert identifier in the model, layer-major.
    pub fn all_experts(&self) -> impl Iterator<Item = ExpertId> + '_ {
        let j = self.experts_per_layer;
        (0..self.num_layers).flat_map(move |l| (0..j).map(move |s| ExpertId::new(l, s)))
    }

    /// Validates internal consistency. Returns a description of the first
    /// violated invariant, if any.
    ///
    /// # Errors
    ///
    /// Returns `Err` when `K > J`, any dimension is zero, or the head
    /// configuration is inconsistent.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_layers == 0 {
            return Err("num_layers must be positive".into());
        }
        if self.experts_per_layer == 0 {
            return Err("experts_per_layer must be positive".into());
        }
        if self.top_k == 0 || self.top_k > self.experts_per_layer {
            return Err(format!(
                "top_k must be in [1, {}], got {}",
                self.experts_per_layer, self.top_k
            ));
        }
        if self.hidden_dim == 0 || self.expert_ffn_dim == 0 {
            return Err("hidden_dim and expert_ffn_dim must be positive".into());
        }
        if self.num_attention_heads == 0
            || self.num_kv_heads == 0
            || !self.num_attention_heads.is_multiple_of(self.num_kv_heads)
            || !self.hidden_dim.is_multiple_of(self.num_attention_heads)
        {
            return Err("inconsistent attention head configuration".into());
        }
        if self.shared_experts_per_layer > 0 && self.shared_expert_ffn_dim == 0 {
            return Err("shared experts declared but shared_expert_ffn_dim is zero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn expert_bytes_matches_hand_computation() {
        let m = presets::mixtral_8x7b();
        // 3 * 4096 * 14336 params * 2 bytes = 352,321,536 bytes ~= 352 MB.
        assert_eq!(m.params_per_expert(), 3 * 4096 * 14336);
        assert_eq!(m.expert_bytes(), 3 * 4096 * 14336 * 2);
    }

    #[test]
    fn all_experts_enumerates_l_times_j() {
        let m = presets::tiny_test_model();
        let experts: Vec<_> = m.all_experts().collect();
        assert_eq!(experts.len() as u64, m.total_experts());
        assert_eq!(experts[0], ExpertId::new(0, 0));
        assert_eq!(
            *experts.last().unwrap(),
            ExpertId::new(m.num_layers - 1, m.experts_per_layer - 1)
        );
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut m = presets::tiny_test_model();
        assert!(m.validate().is_ok());
        m.top_k = m.experts_per_layer + 1;
        assert!(m.validate().is_err());
        let mut m2 = presets::tiny_test_model();
        m2.num_layers = 0;
        assert!(m2.validate().is_err());
        let mut m3 = presets::tiny_test_model();
        m3.num_kv_heads = 3; // does not divide num_attention_heads = 4
        assert!(m3.validate().is_err());
    }

    #[test]
    fn kv_bytes_per_token_matches_hand_computation() {
        let m = presets::mixtral_8x7b();
        // 2 (K+V) x 32 layers x 8 kv heads x 128 head dim x 2 bytes.
        assert_eq!(m.kv_bytes_per_token(), 2 * 32 * 8 * 128 * 2);
    }

    #[test]
    fn active_less_than_total_params() {
        for m in [
            presets::mixtral_8x7b(),
            presets::qwen15_moe_a27b(),
            presets::phi35_moe(),
        ] {
            assert!(m.active_params() < m.total_params());
        }
    }
}
