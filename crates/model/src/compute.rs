//! Analytical roofline cost model for MoE inference compute.
//!
//! The serving engine advances virtual time with these costs. Each
//! operation is modeled as `max(flops / peak_flops, bytes / memory_bw)` —
//! the standard roofline — which naturally reproduces the paper's §2.1
//! observation that prefill is compute-bound (many tokens amortize the
//! weight traffic) while decode is memory-bound (one token per step, every
//! touched weight read from HBM).

use crate::config::{ModelConfig, BYTES_PER_PARAM_FP16};
use serde::{Deserialize, Serialize};

/// Nanoseconds of virtual time; matches `fmoe-memsim`'s clock unit.
pub type Nanos = u64;

/// Compute/bandwidth description of one GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, for reports.
    pub name: String,
    /// Sustained fp16 tensor throughput in FLOP/s (already derated from
    /// peak for real-kernel efficiency).
    pub fp16_flops: f64,
    /// Sustained HBM bandwidth in bytes/s.
    pub hbm_bandwidth: f64,
    /// Device memory in bytes.
    pub memory_bytes: u64,
}

impl GpuSpec {
    /// NVIDIA GeForce RTX 3090 (the paper's testbed GPU): 71 TFLOP/s fp16
    /// tensor peak derated to 50% sustained, 936 GB/s HBM, 24 GB.
    #[must_use]
    pub fn rtx_3090() -> Self {
        Self {
            name: "RTX 3090".into(),
            fp16_flops: 0.5 * 71e12,
            hbm_bandwidth: 936e9,
            memory_bytes: 24 * (1u64 << 30),
        }
    }
}

/// Roofline cost model for one model on one GPU type.
#[derive(Debug, Clone)]
pub struct CostModel {
    config: ModelConfig,
    gpu: GpuSpec,
}

impl CostModel {
    /// Creates a cost model.
    #[must_use]
    pub fn new(config: ModelConfig, gpu: GpuSpec) -> Self {
        Self { config, gpu }
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The GPU specification.
    #[must_use]
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    fn roofline(&self, flops: f64, bytes: f64) -> Nanos {
        let compute_s = flops / self.gpu.fp16_flops;
        let memory_s = bytes / self.gpu.hbm_bandwidth;
        (compute_s.max(memory_s) * 1e9).ceil() as Nanos
    }

    /// Time for the attention stack of one layer processing `tokens` new
    /// tokens against a context of `context_len` positions.
    #[must_use]
    pub fn attention_time(&self, tokens: u64, context_len: u64) -> Nanos {
        let params = self.config.attention_params_per_layer() as f64;
        let h = f64::from(self.config.hidden_dim);
        // Projection GEMMs: 2·params FLOPs per token; score/value matmuls:
        // ~4·h FLOPs per (token, context) pair.
        let flops = 2.0 * params * tokens as f64 + 4.0 * h * tokens as f64 * context_len as f64;
        // Weight traffic once, KV-cache traffic proportional to context.
        let kv_bytes_per_pos = 2.0
            * f64::from(self.config.hidden_dim / self.config.num_attention_heads.max(1))
            * f64::from(self.config.num_kv_heads)
            * BYTES_PER_PARAM_FP16 as f64;
        let bytes = params * BYTES_PER_PARAM_FP16 as f64 + kv_bytes_per_pos * context_len as f64;
        self.roofline(flops, bytes)
    }

    /// Time for one routed expert processing `tokens` tokens.
    #[must_use]
    pub fn expert_time(&self, tokens: u64) -> Nanos {
        let params = self.config.params_per_expert() as f64;
        let flops = 2.0 * params * tokens as f64;
        let bytes = params * BYTES_PER_PARAM_FP16 as f64;
        self.roofline(flops, bytes)
    }

    /// Time for the always-on shared experts of one layer (zero when the
    /// model has none).
    #[must_use]
    pub fn shared_expert_time(&self, tokens: u64) -> Nanos {
        let params = self.config.shared_expert_params_per_layer() as f64;
        if params == 0.0 {
            return 0;
        }
        let flops = 2.0 * params * tokens as f64;
        let bytes = params * BYTES_PER_PARAM_FP16 as f64;
        self.roofline(flops, bytes)
    }

    /// Time for the gate network of one layer (a single `h × J` GEMV per
    /// token plus the top-k) — small but nonzero.
    #[must_use]
    pub fn gate_time(&self, tokens: u64) -> Nanos {
        let params = f64::from(self.config.hidden_dim) * f64::from(self.config.experts_per_layer);
        let flops = 2.0 * params * tokens as f64;
        let bytes = params * BYTES_PER_PARAM_FP16 as f64;
        self.roofline(flops, bytes)
    }

    /// Time for the embedding lookup + final LM head for `tokens` tokens.
    #[must_use]
    pub fn embedding_time(&self, tokens: u64) -> Nanos {
        let h = f64::from(self.config.hidden_dim);
        let vocab = f64::from(self.config.vocab_size);
        // LM head GEMM dominates.
        let flops = 2.0 * h * vocab * tokens as f64;
        let bytes = h * vocab * BYTES_PER_PARAM_FP16 as f64;
        self.roofline(flops, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn model() -> CostModel {
        CostModel::new(presets::mixtral_8x7b(), GpuSpec::rtx_3090())
    }

    #[test]
    fn decode_expert_is_memory_bound() {
        // One token: the expert's weight bytes dominate; time should equal
        // bytes / bandwidth, not flops / flops-rate.
        let m = model();
        let t = m.expert_time(1) as f64 / 1e9;
        let bytes_time = m.config().expert_bytes() as f64 / m.gpu().hbm_bandwidth;
        assert!(
            (t - bytes_time).abs() / bytes_time < 0.01,
            "t={t}, mem={bytes_time}"
        );
    }

    #[test]
    fn prefill_expert_is_compute_bound() {
        // Thousands of tokens: FLOPs dominate.
        let m = model();
        let tokens = 4096;
        let t = m.expert_time(tokens) as f64 / 1e9;
        let flop_time =
            2.0 * m.config().params_per_expert() as f64 * tokens as f64 / m.gpu().fp16_flops;
        assert!((t - flop_time).abs() / flop_time < 0.01);
    }

    #[test]
    fn times_scale_monotonically_with_tokens() {
        let m = model();
        assert!(m.expert_time(1) <= m.expert_time(64));
        assert!(m.attention_time(1, 128) <= m.attention_time(64, 128));
        assert!(m.attention_time(1, 128) <= m.attention_time(1, 4096));
    }

    #[test]
    fn shared_expert_time_zero_without_shared_experts() {
        let m = model(); // Mixtral has no shared experts
        assert_eq!(m.shared_expert_time(16), 0);
        let qwen = CostModel::new(presets::qwen15_moe_a27b(), GpuSpec::rtx_3090());
        assert!(qwen.shared_expert_time(16) > 0);
    }

    #[test]
    fn decode_iteration_latency_is_realistic() {
        // A full decode iteration with all weights resident: L layers of
        // (attention + gate + K experts) + LM head. For Mixtral on a 3090
        // this should land in the tens-of-milliseconds band (the paper's
        // no-offload decode is ~50-100 ms/token on this class of hardware).
        let m = model();
        let cfg = m.config().clone();
        let per_layer =
            m.attention_time(1, 512) + m.gate_time(1) + u64::from(cfg.top_k) * m.expert_time(1);
        let total = u64::from(cfg.num_layers) * per_layer + m.embedding_time(1);
        let ms = total as f64 / 1e6;
        assert!((5.0..200.0).contains(&ms), "decode iteration {ms} ms");
    }

    #[test]
    fn gate_time_is_negligible_vs_expert() {
        let m = model();
        assert!(m.gate_time(1) * 100 < m.expert_time(1));
    }
}
