//! Synthetic gate-network (router) simulator.
//!
//! This is the load-bearing substitution of the reproduction (see
//! `DESIGN.md` §3): we cannot run real Mixtral/Qwen/Phi routers, but every
//! design decision in the paper is justified by four *statistical*
//! properties of those routers, which this simulator reproduces with
//! tunable strength:
//!
//! * **P1 — peaked per-iteration distributions** (paper Fig. 3a/3b): each
//!   `(iteration, layer)` softmax concentrates around a moving "center"
//!   expert via a ring kernel with high amplitude.
//! * **P2 — balanced long-run routing** (Fig. 3b/3c, the load-balancing
//!   loss): the center sweeps the expert ring with a per-cluster stride, so
//!   activation counts aggregated over iterations flatten toward uniform.
//! * **P3 — semantic determinism** (Fig. 8): the center's phase is a
//!   function of the prompt's semantic cluster, and the same cluster also
//!   generates the prompt's embedding, so similar embeddings imply similar
//!   expert trajectories.
//! * **P4 — decaying inter-layer correlation** (Fig. 4): the center moves
//!   slowly across layers (`layer_rate` experts/layer), so a layer's
//!   distribution predicts nearby layers well and distant layers poorly —
//!   exactly the residual-stream speculation behaviour ProMoE and
//!   Mixtral-Offloading rely on.
//!
//! All randomness is *stateless*, hashed from `(seed, request, iteration,
//! layer, expert, token)` coordinates, so any component can replay the
//! router's output for any coordinate without shared mutable state.

use crate::config::ModelConfig;
use fmoe_stats::rng::{gumbel_noise, hash_to_unit, normal_noise};
use serde::{Deserialize, Serialize};

/// Tunable parameters of the synthetic router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateParams {
    /// Peak logit amplitude of the ring kernel (P1 strength).
    pub amplitude: f64,
    /// Width of the ring kernel, in experts.
    pub kernel_width: f64,
    /// Scale of the *iteration-shared* Gumbel noise added to logits: the
    /// component every token of the iteration sees identically (controls
    /// the achievable prediction accuracy — the paper's expert hit rate
    /// ceiling).
    pub iteration_noise: f64,
    /// Scale of the residual *per-token* Gumbel noise. Kept smaller than
    /// the shared component: tokens of one prompt route coherently, so a
    /// prefill's activated union stays well below the full expert set
    /// (real prompts do not touch every expert of every layer).
    pub token_noise: f64,
    /// Center drift per token *position within the iteration's span*, in
    /// experts: consecutive prompt tokens sweep the expert ring slowly,
    /// so longer prompts activate more (but not all) experts.
    pub token_spread: f64,
    /// Scale of a *static* per-(layer, expert) logit bias. Real MoE
    /// models keep mild expert-popularity skew at inference time despite
    /// the load-balancing training loss; this is the signal frequency-
    /// based caching (LFU, MoE-Infinity) exploits.
    pub expert_bias: f64,
    /// Softmax temperature.
    pub temperature: f64,
    /// Center movement per layer, in experts (P4 decay rate).
    pub layer_rate: f64,
    /// Std-dev of the per-(request, iteration) center jitter, in experts.
    pub iteration_jitter: f64,
    /// Magnitude of the constant per-request center offset, in experts.
    pub request_drift: f64,
    /// Dimensionality of the semantic embeddings the simulator emits.
    ///
    /// Real models emit `hidden_dim`-wide embeddings; the simulated
    /// semantic signal is low-rank (cluster direction + request/iteration
    /// noise), so a reduced width preserves the similarity structure while
    /// keeping map search cheap. `ModelConfig::hidden_dim` bounds it.
    pub embedding_dim: u32,
    /// Relative weight of per-request noise in the semantic embedding.
    pub embedding_request_noise: f64,
    /// Relative weight of the iteration-phase direction in the semantic
    /// embedding. Real embedding-layer outputs evolve with the generated
    /// sequence, which is what lets fMoE's semantic search find maps from
    /// the *matching point* of similar requests; this component carries
    /// that signal.
    pub embedding_phase_weight: f64,
    /// Relative weight of per-iteration noise in the semantic embedding.
    pub embedding_iteration_noise: f64,
    /// Maximum number of prefill tokens actually routed; longer prompts are
    /// subsampled uniformly (documented simulator shortcut — the union of
    /// activated experts saturates long before this cap).
    pub prefill_token_cap: u32,
    /// Master seed; distinct seeds give statistically independent routers.
    pub seed: u64,
}

impl GateParams {
    /// Parameters scaled to a model's expert count.
    ///
    /// Width, layer rate and drift scale linearly with `J` so all three
    /// evaluation models exhibit the same *relative* structure, matching
    /// the paper's observation that its findings hold across models.
    #[must_use]
    pub fn for_model(config: &ModelConfig) -> Self {
        let j = f64::from(config.experts_per_layer);
        Self {
            amplitude: 6.0,
            kernel_width: (j / 8.0).max(1.0),
            iteration_noise: 0.85,
            token_noise: 0.5,
            token_spread: 0.03 * (j / 8.0).max(1.0),
            expert_bias: 0.4,
            temperature: 1.0,
            layer_rate: 0.05 * j,
            iteration_jitter: 0.03 * j,
            request_drift: 0.06 * j,
            embedding_dim: 64.min(config.hidden_dim),
            embedding_request_noise: 0.35,
            embedding_phase_weight: 0.55,
            embedding_iteration_noise: 0.12,
            prefill_token_cap: 128,
            seed: 0xF0E1_D2C3_B4A5_9687,
        }
    }

    /// Same parameters with a different master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Routing identity of one request: which semantic cluster generated it and
/// its private drift seed.
///
/// Produced by `fmoe-workload`'s prompt generators; the gate simulator is
/// deliberately ignorant of datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RequestRouting {
    /// Semantic cluster index (topic) of the prompt.
    pub cluster: u64,
    /// Per-request seed: two requests from the same cluster still differ.
    pub request_seed: u64,
}

/// Contiguous span of token positions processed by one iteration.
///
/// Prefill processes `[0, prompt_len)` in a single iteration; decode
/// iteration `i` processes the single position `prompt_len + i - 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenSpan {
    /// First token position in the span.
    pub start: u64,
    /// Number of tokens in the span (>= 1).
    pub count: u64,
}

impl TokenSpan {
    /// A single-token span (decode iterations).
    #[must_use]
    pub fn single(position: u64) -> Self {
        Self {
            start: position,
            count: 1,
        }
    }

    /// A prefill span covering positions `[0, prompt_len)`.
    #[must_use]
    pub fn prefill(prompt_len: u64) -> Self {
        Self {
            start: 0,
            count: prompt_len.max(1),
        }
    }
}

// Domain-separation tags for the hash streams.
const TAG_BASE: u64 = 0x01;
const TAG_STRIDE: u64 = 0x02;
const TAG_DRIFT: u64 = 0x03;
const TAG_JITTER: u64 = 0x04;
const TAG_TOKEN: u64 = 0x05;
const TAG_ITER_NOISE: u64 = 0x0A;
const TAG_EXPERT_BIAS: u64 = 0x0B;
const TAG_EMB_CLUSTER: u64 = 0x06;
const TAG_EMB_REQUEST: u64 = 0x07;
const TAG_EMB_ITER: u64 = 0x08;
const TAG_EMB_PHASE: u64 = 0x09;

/// The synthetic router for one model.
///
/// ```
/// use fmoe_model::{presets, GateSimulator, RequestRouting};
/// use fmoe_model::gate::TokenSpan;
///
/// let gate = GateSimulator::with_defaults(presets::small_test_model());
/// let req = RequestRouting { cluster: 3, request_seed: 42 };
/// let dist = gate.iteration_distribution(req, 0, 2, TokenSpan::single(10));
/// assert_eq!(dist.len(), 8);
/// assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// // Deterministic: the same coordinates always route identically.
/// assert_eq!(dist, gate.iteration_distribution(req, 0, 2, TokenSpan::single(10)));
/// ```
#[derive(Debug, Clone)]
pub struct GateSimulator {
    config: ModelConfig,
    params: GateParams,
}

impl GateSimulator {
    /// Creates a router for `config` with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation — constructing a router for an
    /// inconsistent model is a programming error.
    #[must_use]
    pub fn new(config: ModelConfig, params: GateParams) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid model config: {e}"));
        Self { config, params }
    }

    /// Convenience constructor with [`GateParams::for_model`] defaults.
    ///
    /// # Panics
    ///
    /// Inherits [`Self::new`]'s panic on an invalid `config`.
    #[must_use]
    pub fn with_defaults(config: ModelConfig) -> Self {
        let params = GateParams::for_model(&config);
        Self::new(config, params)
    }

    /// The model this router belongs to.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The router's parameters.
    #[must_use]
    pub fn params(&self) -> &GateParams {
        &self.params
    }

    /// The kernel center (a real-valued position on the expert ring) for a
    /// given coordinate.
    fn center(&self, req: RequestRouting, iteration: u64, layer: u32) -> f64 {
        let j = f64::from(self.config.experts_per_layer);
        let p = &self.params;
        let base = hash_to_unit(&[p.seed, req.cluster, TAG_BASE]) * j;
        // Stride in [0.2, 0.8]·J: fast enough to flatten aggregates (P2),
        // distinct per cluster (P3).
        let stride = (0.2 + 0.6 * hash_to_unit(&[p.seed, req.cluster, TAG_STRIDE])) * j;
        let drift =
            (hash_to_unit(&[p.seed, req.request_seed, TAG_DRIFT]) - 0.5) * 2.0 * p.request_drift;
        let jitter =
            normal_noise(&[p.seed, req.request_seed, iteration, TAG_JITTER]) * p.iteration_jitter;
        base + iteration as f64 * stride + f64::from(layer) * p.layer_rate + drift + jitter
    }

    /// Circular (ring) distance between expert slot `slot` and a
    /// real-valued center position.
    fn ring_distance(&self, slot: u32, center: f64) -> f64 {
        let j = f64::from(self.config.experts_per_layer);
        let c = center.rem_euclid(j);
        let d = (f64::from(slot) - c).abs();
        d.min(j - d)
    }

    /// Raw logits over the `J` routed experts for one token at relative
    /// position `offset` within the iteration's span (0 for decode).
    fn token_logits_at(
        &self,
        req: RequestRouting,
        iteration: u64,
        layer: u32,
        token: u64,
        offset: u64,
    ) -> Vec<f64> {
        let p = &self.params;
        let center = self.center(req, iteration, layer) + p.token_spread * offset as f64;
        let width = p.kernel_width.max(1e-6);
        (0..self.config.experts_per_layer)
            .map(|slot| {
                let d = self.ring_distance(slot, center);
                let kernel = (-(d / width).powi(2)).exp();
                let shared = gumbel_noise(&[
                    p.seed,
                    req.request_seed,
                    iteration,
                    u64::from(layer),
                    u64::from(slot),
                    TAG_ITER_NOISE,
                ]);
                let per_token = gumbel_noise(&[
                    p.seed,
                    req.request_seed,
                    iteration,
                    u64::from(layer),
                    u64::from(slot),
                    token,
                    TAG_TOKEN,
                ]);
                let bias = p.expert_bias
                    * normal_noise(&[p.seed, u64::from(layer), u64::from(slot), TAG_EXPERT_BIAS]);
                p.amplitude * kernel + bias + p.iteration_noise * shared + p.token_noise * per_token
            })
            .collect()
    }

    /// Raw logits over the `J` routed experts for one token (treated as
    /// the span's first position; decode iterations always hit this path).
    #[must_use]
    pub fn token_logits(
        &self,
        req: RequestRouting,
        iteration: u64,
        layer: u32,
        token: u64,
    ) -> Vec<f64> {
        self.token_logits_at(req, iteration, layer, token, 0)
    }

    /// Softmax distribution over experts for one token — the `P_l^{(i)}`
    /// of the paper, at token granularity.
    #[must_use]
    pub fn token_distribution(
        &self,
        req: RequestRouting,
        iteration: u64,
        layer: u32,
        token: u64,
    ) -> Vec<f64> {
        softmax(
            &self.token_logits(req, iteration, layer, token),
            self.params.temperature,
        )
    }

    /// Top-K expert slots for one token, highest probability first.
    #[must_use]
    pub fn token_top_k(
        &self,
        req: RequestRouting,
        iteration: u64,
        layer: u32,
        token: u64,
    ) -> Vec<u32> {
        let logits = self.token_logits(req, iteration, layer, token);
        top_k_indices(&logits, self.config.top_k as usize)
    }

    /// The iteration-level gate distribution: the mean of the per-token
    /// distributions over the span (for decode spans this is just the
    /// single token's distribution).
    ///
    /// This is the row an expert map records for `(iteration, layer)`.
    #[must_use]
    pub fn iteration_distribution(
        &self,
        req: RequestRouting,
        iteration: u64,
        layer: u32,
        span: TokenSpan,
    ) -> Vec<f64> {
        let tokens = self.sample_tokens(span);
        let j = self.config.experts_per_layer as usize;
        let mut acc = vec![0.0; j];
        for &t in &tokens {
            let logits = self.token_logits_at(req, iteration, layer, t, t - span.start);
            let dist = softmax(&logits, self.params.temperature);
            for (a, d) in acc.iter_mut().zip(dist) {
                *a += d;
            }
        }
        let n = tokens.len() as f64;
        for a in &mut acc {
            *a /= n;
        }
        acc
    }

    /// The set of expert slots activated by the span at this layer: the
    /// union of every token's top-K. Sorted ascending.
    #[must_use]
    pub fn activated_slots(
        &self,
        req: RequestRouting,
        iteration: u64,
        layer: u32,
        span: TokenSpan,
    ) -> Vec<u32> {
        let tokens = self.sample_tokens(span);
        let j = self.config.experts_per_layer as usize;
        let mut hit = vec![false; j];
        for &t in &tokens {
            let logits = self.token_logits_at(req, iteration, layer, t, t - span.start);
            for slot in top_k_indices(&logits, self.config.top_k as usize) {
                hit[slot as usize] = true;
            }
        }
        hit.iter()
            .enumerate()
            .filter_map(|(i, &h)| h.then_some(i as u32))
            .collect()
    }

    /// The semantic embedding the model's embedding layer would emit for
    /// this request at this iteration (unit norm).
    ///
    /// Composition: cluster direction + per-request noise + a shared
    /// iteration-phase direction + per-iteration noise, with the weights
    /// from [`GateParams`] — low-rank semantics, as described in
    /// `DESIGN.md` §3. The phase direction is keyed by the iteration index
    /// alone: it models how the embedding-layer output drifts as the
    /// sequence grows, letting semantic search align a new request with
    /// historical iterations at the same point of generation.
    #[must_use]
    pub fn semantic_embedding(&self, req: RequestRouting, iteration: u64) -> Vec<f64> {
        let p = &self.params;
        let dim = p.embedding_dim as usize;
        let mut v: Vec<f64> = (0..dim as u64)
            .map(|k| {
                let cluster = normal_noise(&[p.seed, req.cluster, k, TAG_EMB_CLUSTER]);
                let request = normal_noise(&[p.seed, req.request_seed, k, TAG_EMB_REQUEST]);
                let phase = normal_noise(&[p.seed, iteration, k, TAG_EMB_PHASE]);
                let iter = normal_noise(&[p.seed, req.request_seed, iteration, k, TAG_EMB_ITER]);
                cluster
                    + p.embedding_request_noise * request
                    + p.embedding_phase_weight * phase
                    + p.embedding_iteration_noise * iter
            })
            .collect();
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        v
    }

    /// Uniformly subsamples a span down to the prefill token cap.
    fn sample_tokens(&self, span: TokenSpan) -> Vec<u64> {
        let count = span.count.max(1);
        let cap = u64::from(self.params.prefill_token_cap.max(1));
        if count <= cap {
            (span.start..span.start + count).collect()
        } else {
            let step = count as f64 / cap as f64;
            (0..cap)
                .map(|i| span.start + (i as f64 * step) as u64)
                .collect()
        }
    }
}

/// Numerically-stable softmax with temperature.
fn softmax(logits: &[f64], temperature: f64) -> Vec<f64> {
    let t = temperature.max(1e-9);
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| ((l - max) / t).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Indices of the `k` largest values, ties broken toward lower indices,
/// returned in descending-value order.
fn top_k_indices(values: &[f64], k: usize) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..values.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        values[b as usize]
            .total_cmp(&values[a as usize])
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use fmoe_stats::entropy::shannon_entropy_of_counts;

    fn sim() -> GateSimulator {
        GateSimulator::with_defaults(presets::small_test_model())
    }

    fn req(cluster: u64, seed: u64) -> RequestRouting {
        RequestRouting {
            cluster,
            request_seed: seed,
        }
    }

    #[test]
    fn distributions_are_normalized() {
        let g = sim();
        for iter in 0..5 {
            for layer in 0..g.config().num_layers {
                let d = g.token_distribution(req(1, 7), iter, layer, 0);
                let sum: f64 = d.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9);
                assert!(d.iter().all(|&p| p >= 0.0));
            }
        }
    }

    #[test]
    fn router_is_deterministic() {
        let g1 = sim();
        let g2 = sim();
        let a = g1.token_distribution(req(3, 11), 4, 2, 9);
        let b = g2.token_distribution(req(3, 11), 4, 2, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = presets::small_test_model();
        let g1 = GateSimulator::new(cfg.clone(), GateParams::for_model(&cfg).with_seed(1));
        let g2 = GateSimulator::new(cfg.clone(), GateParams::for_model(&cfg).with_seed(2));
        assert_ne!(
            g1.token_distribution(req(3, 11), 4, 2, 9),
            g2.token_distribution(req(3, 11), 4, 2, 9)
        );
    }

    #[test]
    fn p1_iteration_distributions_are_peaked() {
        // The per-iteration distribution entropy must sit well below the
        // uniform bound.
        let g = sim();
        let j = g.config().experts_per_layer as f64;
        let mut mean_entropy = 0.0;
        let mut n = 0.0;
        for iter in 0..20 {
            let d = g.iteration_distribution(req(2, 5), iter, 3, TokenSpan::single(iter));
            mean_entropy += fmoe_stats::shannon_entropy(&d);
            n += 1.0;
        }
        mean_entropy /= n;
        assert!(
            mean_entropy < 0.75 * j.log2(),
            "fine-grained entropy {mean_entropy} vs uniform {}",
            j.log2()
        );
    }

    #[test]
    fn p2_aggregated_counts_flatten() {
        // Request-level (aggregated) expert activation counts approach
        // uniform: entropy of aggregate >> entropy of single iterations.
        let g = sim();
        let j = g.config().experts_per_layer as usize;
        let mut counts = vec![0.0; j];
        let mut fine_entropies = Vec::new();
        for iter in 0..200 {
            let slots = g.activated_slots(req(4, 9), iter, 2, TokenSpan::single(iter));
            let mut fine = vec![0.0; j];
            for s in slots {
                counts[s as usize] += 1.0;
                fine[s as usize] += 1.0;
            }
            fine_entropies.push(shannon_entropy_of_counts(&fine));
        }
        let coarse = shannon_entropy_of_counts(&counts);
        let fine_mean = fine_entropies.iter().sum::<f64>() / fine_entropies.len() as f64;
        assert!(
            coarse > fine_mean + 0.8,
            "coarse {coarse} should exceed fine {fine_mean}"
        );
        assert!(coarse > 0.9 * (j as f64).log2(), "coarse entropy {coarse}");
    }

    #[test]
    fn p3_same_cluster_routes_similarly() {
        // Two requests from one cluster share trajectories far more than
        // requests from different clusters.
        let g = sim();
        let sim_same = trajectory_cosine(&g, req(1, 100), req(1, 200));
        let sim_diff = trajectory_cosine(&g, req(1, 100), req(2, 300));
        assert!(
            sim_same > sim_diff + 0.15,
            "same-cluster {sim_same} vs cross-cluster {sim_diff}"
        );
    }

    fn trajectory_cosine(g: &GateSimulator, a: RequestRouting, b: RequestRouting) -> f64 {
        let mut va = Vec::new();
        let mut vb = Vec::new();
        for iter in 0..8 {
            for layer in 0..g.config().num_layers {
                va.extend(g.iteration_distribution(a, iter, layer, TokenSpan::single(iter)));
                vb.extend(g.iteration_distribution(b, iter, layer, TokenSpan::single(iter)));
            }
        }
        fmoe_stats::cosine_similarity(&va, &vb)
    }

    #[test]
    fn p4_interlayer_correlation_decays() {
        // Using layer l's distribution to predict layer l+d gets worse as d
        // grows.
        let g = sim();
        let r = req(6, 42);
        let overlap_at = |d: u32| -> f64 {
            let mut total = 0.0;
            let mut n = 0.0;
            for iter in 0..40u64 {
                for l in 0..(g.config().num_layers - d) {
                    let from = g.token_top_k(r, iter, l, iter);
                    let to = g.token_top_k(r, iter, l + d, iter);
                    let inter = from.iter().filter(|s| to.contains(s)).count();
                    total += inter as f64 / to.len() as f64;
                    n += 1.0;
                }
            }
            total / n
        };
        let d1 = overlap_at(1);
        let d4 = overlap_at(4);
        assert!(d1 > d4 + 0.1, "overlap d=1 {d1} vs d=4 {d4}");
        assert!(d1 > 0.5, "adjacent-layer overlap too weak: {d1}");
    }

    #[test]
    fn embeddings_cluster() {
        let g = sim();
        let e1 = g.semantic_embedding(req(1, 10), 0);
        let e2 = g.semantic_embedding(req(1, 20), 3);
        let e2_same_iter = g.semantic_embedding(req(1, 20), 0);
        let e3 = g.semantic_embedding(req(9, 30), 0);
        let same_cluster = fmoe_stats::cosine_similarity(&e1, &e2);
        let same_cluster_same_iter = fmoe_stats::cosine_similarity(&e1, &e2_same_iter);
        let diff = fmoe_stats::cosine_similarity(&e1, &e3);
        assert!(
            same_cluster > 0.55,
            "same-cluster similarity {same_cluster}"
        );
        // Matching generation phase adds signal on top of the cluster.
        assert!(
            same_cluster_same_iter > same_cluster + 0.1,
            "same-iter {same_cluster_same_iter} vs cross-iter {same_cluster}"
        );
        assert!(diff < 0.5, "cross-cluster embedding similarity {diff}");
        // Unit norm.
        let n: f64 = e1.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((n - 1.0).abs() < 1e-9);
    }

    #[test]
    fn activated_slots_covers_top_k_and_is_sorted() {
        let g = sim();
        let r = req(2, 2);
        let slots = g.activated_slots(r, 0, 1, TokenSpan::single(0));
        assert_eq!(slots.len(), g.config().top_k as usize);
        let direct = g.token_top_k(r, 0, 1, 0);
        for s in &direct {
            assert!(slots.contains(s));
        }
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        assert_eq!(slots, sorted);
    }

    #[test]
    fn prefill_span_activates_more_experts_than_decode() {
        let g = sim();
        let r = req(5, 77);
        let prefill = g.activated_slots(r, 0, 3, TokenSpan::prefill(256));
        let decode = g.activated_slots(r, 1, 3, TokenSpan::single(256));
        assert!(prefill.len() > decode.len());
    }

    #[test]
    fn prefill_subsampling_caps_work() {
        let g = sim();
        // Enormous span must not allocate enormous token lists.
        let spans = g.sample_tokens(TokenSpan::prefill(1_000_000));
        assert_eq!(spans.len(), g.params().prefill_token_cap as usize);
        assert!(spans.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn top_k_indices_orders_and_breaks_ties() {
        assert_eq!(top_k_indices(&[0.1, 0.9, 0.5], 2), vec![1, 2]);
        assert_eq!(top_k_indices(&[0.5, 0.5, 0.1], 2), vec![0, 1]);
        assert_eq!(top_k_indices(&[1.0], 5), vec![0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1001.0], 1.0);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[1] > p[0]);
    }
}
