//! Property-based tests for the gate simulator and cost model.

#![cfg(test)]

use crate::compute::{CostModel, GpuSpec};
use crate::config::ModelConfig;
use crate::gate::{GateParams, GateSimulator, RequestRouting, TokenSpan};
use crate::presets;
use proptest::prelude::*;

fn small_gate() -> GateSimulator {
    let cfg = presets::small_test_model();
    GateSimulator::new(cfg.clone(), GateParams::for_model(&cfg))
}

fn routing() -> impl Strategy<Value = RequestRouting> {
    (0u64..64, any::<u64>()).prop_map(|(cluster, request_seed)| RequestRouting {
        cluster,
        request_seed,
    })
}

proptest! {
    #[test]
    fn distributions_are_always_normalized(
        req in routing(),
        iteration in 0u64..1000,
        layer in 0u32..8,
        token in 0u64..4096,
    ) {
        let g = small_gate();
        let d = g.token_distribution(req, iteration, layer, token);
        prop_assert_eq!(d.len(), 8);
        let sum: f64 = d.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(d.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn iteration_distribution_is_normalized_for_any_span(
        req in routing(),
        iteration in 0u64..100,
        layer in 0u32..8,
        start in 0u64..1000,
        count in 1u64..600,
    ) {
        let g = small_gate();
        let d = g.iteration_distribution(req, iteration, layer, TokenSpan { start, count });
        let sum: f64 = d.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn activated_slots_are_sorted_unique_and_cover_top_k(
        req in routing(),
        iteration in 0u64..100,
        layer in 0u32..8,
        prompt_len in 1u64..400,
    ) {
        let g = small_gate();
        let slots = g.activated_slots(req, iteration, layer, TokenSpan::prefill(prompt_len));
        prop_assert!(slots.len() >= g.config().top_k as usize);
        prop_assert!(slots.len() <= g.config().experts_per_layer as usize);
        for w in slots.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert!(slots.iter().all(|&s| s < g.config().experts_per_layer));
    }

    #[test]
    fn router_is_a_pure_function(
        req in routing(),
        iteration in 0u64..100,
        layer in 0u32..8,
        token in 0u64..1024,
    ) {
        let g1 = small_gate();
        let g2 = small_gate();
        prop_assert_eq!(
            g1.token_distribution(req, iteration, layer, token),
            g2.token_distribution(req, iteration, layer, token)
        );
        prop_assert_eq!(
            g1.semantic_embedding(req, iteration),
            g2.semantic_embedding(req, iteration)
        );
    }

    #[test]
    fn embeddings_are_unit_norm(req in routing(), iteration in 0u64..500) {
        let g = small_gate();
        let e = g.semantic_embedding(req, iteration);
        let n: f64 = e.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!((n - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cost_model_is_monotone_in_tokens(
        t1 in 1u64..2000,
        t2 in 1u64..2000,
        ctx in 1u64..4096,
    ) {
        let m = CostModel::new(presets::mixtral_8x7b(), GpuSpec::rtx_3090());
        let (lo, hi) = (t1.min(t2), t1.max(t2));
        prop_assert!(m.expert_time(lo) <= m.expert_time(hi));
        prop_assert!(m.attention_time(lo, ctx) <= m.attention_time(hi, ctx));
        prop_assert!(m.gate_time(lo) <= m.gate_time(hi));
        prop_assert!(m.embedding_time(lo) <= m.embedding_time(hi));
    }

    #[test]
    fn parameter_accounting_is_consistent(
        layers in 1u32..40,
        j in 2u32..32,
        k in 1u32..8,
        hidden_exp in 5u32..9,
        ffn_exp in 5u32..10,
    ) {
        let k = k.min(j);
        let cfg = ModelConfig {
            name: "prop".into(),
            num_layers: layers,
            experts_per_layer: j,
            top_k: k,
            shared_experts_per_layer: 0,
            hidden_dim: 1 << hidden_exp,
            expert_ffn_dim: 1 << ffn_exp,
            shared_expert_ffn_dim: 0,
            num_attention_heads: 4,
            num_kv_heads: 2,
            vocab_size: 1000,
        };
        prop_assert!(cfg.validate().is_ok());
        prop_assert!(cfg.active_params() <= cfg.total_params());
        prop_assert_eq!(cfg.total_experts(), u64::from(layers) * u64::from(j));
        prop_assert_eq!(
            cfg.total_expert_bytes(),
            cfg.total_experts() * cfg.expert_bytes()
        );
        prop_assert_eq!(cfg.all_experts().count() as u64, cfg.total_experts());
        // Dense params + expert params == total.
        prop_assert_eq!(
            cfg.dense_params() + cfg.total_experts() * cfg.params_per_expert(),
            cfg.total_params()
        );
    }
}
