//! Preset configurations for the three MoE models the paper evaluates
//! (Table 1), plus a tiny model for fast tests.

use crate::config::ModelConfig;

/// Mixtral-8×7B: 46.7B total / 12.9B active parameters, 32 layers,
/// 8 experts per layer, top-2 routing (Jiang et al., 2024).
#[must_use]
pub fn mixtral_8x7b() -> ModelConfig {
    ModelConfig {
        name: "Mixtral-8x7B".into(),
        num_layers: 32,
        experts_per_layer: 8,
        top_k: 2,
        shared_experts_per_layer: 0,
        hidden_dim: 4096,
        expert_ffn_dim: 14336,
        shared_expert_ffn_dim: 0,
        num_attention_heads: 32,
        num_kv_heads: 8,
        vocab_size: 32000,
    }
}

/// Qwen1.5-MoE-A2.7B: 14.3B total / 2.7B active parameters, 24 layers,
/// 60 routed experts per layer, top-4 routing, plus always-on shared
/// experts per layer (Yang et al., 2024). The HF checkpoint fuses the
/// shared capacity into one always-on expert of intermediate size 5632
/// (4× a routed expert), which is how we model it.
///
/// Per the paper's footnote 3, the shared experts are not offloadable and
/// are therefore excluded from `experts_per_layer`.
#[must_use]
pub fn qwen15_moe_a27b() -> ModelConfig {
    ModelConfig {
        name: "Qwen1.5-MoE".into(),
        num_layers: 24,
        experts_per_layer: 60,
        top_k: 4,
        shared_experts_per_layer: 1,
        hidden_dim: 2048,
        expert_ffn_dim: 1408,
        shared_expert_ffn_dim: 5632,
        num_attention_heads: 16,
        num_kv_heads: 16,
        vocab_size: 151936,
    }
}

/// Phi-3.5-MoE: 42B total / 6.6B active parameters, 32 layers, 16 experts
/// per layer, top-2 routing (Abdin et al., 2024).
#[must_use]
pub fn phi35_moe() -> ModelConfig {
    ModelConfig {
        name: "Phi-3.5-MoE".into(),
        num_layers: 32,
        experts_per_layer: 16,
        top_k: 2,
        shared_experts_per_layer: 0,
        hidden_dim: 4096,
        expert_ffn_dim: 6400,
        shared_expert_ffn_dim: 0,
        num_attention_heads: 32,
        num_kv_heads: 8,
        vocab_size: 32064,
    }
}

/// DeepSeek-MoE 16B (Dai et al., 2024) — *beyond the paper's Table 1*:
/// the fine-grained-expert architecture the paper cites in §2.2 (83%
/// inactive parameters). 27 MoE layers of 64 small routed experts with
/// top-6 routing plus 2 always-on shared experts (the first transformer
/// layer is dense and carries no offloadable experts).
///
/// Useful for stress-testing policies on many-small-experts regimes
/// beyond Qwen's.
#[must_use]
pub fn deepseek_moe_16b() -> ModelConfig {
    ModelConfig {
        name: "DeepSeek-MoE-16B".into(),
        num_layers: 27,
        experts_per_layer: 64,
        top_k: 6,
        shared_experts_per_layer: 2,
        hidden_dim: 2048,
        expert_ffn_dim: 1408,
        shared_expert_ffn_dim: 1408,
        num_attention_heads: 16,
        num_kv_heads: 16,
        vocab_size: 102400,
    }
}

/// All three evaluation models, in the paper's Table 1 order.
#[must_use]
pub fn evaluation_models() -> Vec<ModelConfig> {
    vec![mixtral_8x7b(), qwen15_moe_a27b(), phi35_moe()]
}

/// A miniature model (4 layers × 4 experts, top-2) for unit tests: same
/// structure as the real presets, a few thousand times smaller.
#[must_use]
pub fn tiny_test_model() -> ModelConfig {
    ModelConfig {
        name: "Tiny-Test-MoE".into(),
        num_layers: 4,
        experts_per_layer: 4,
        top_k: 2,
        shared_experts_per_layer: 0,
        hidden_dim: 64,
        expert_ffn_dim: 128,
        shared_expert_ffn_dim: 0,
        num_attention_heads: 4,
        num_kv_heads: 2,
        vocab_size: 1024,
    }
}

/// A mid-sized model (8 layers × 8 experts) for integration tests that need
/// realistic map shapes without preset-scale costs.
#[must_use]
pub fn small_test_model() -> ModelConfig {
    ModelConfig {
        name: "Small-Test-MoE".into(),
        num_layers: 8,
        experts_per_layer: 8,
        top_k: 2,
        shared_experts_per_layer: 0,
        hidden_dim: 256,
        expert_ffn_dim: 512,
        shared_expert_ffn_dim: 0,
        num_attention_heads: 8,
        num_kv_heads: 4,
        vocab_size: 4096,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1024.0 * 1024.0 * 1024.0;

    #[test]
    fn all_presets_validate() {
        for m in evaluation_models()
            .into_iter()
            .chain([tiny_test_model(), small_test_model()])
        {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
    }

    #[test]
    fn mixtral_matches_table1() {
        let m = mixtral_8x7b();
        assert_eq!(m.num_layers, 32);
        assert_eq!(m.experts_per_layer, 8);
        assert_eq!(m.top_k, 2);
        // Table 1: 46.7B total, 12.9B active. Our accounting should land
        // within 5% (we approximate norms/biases away).
        let total_b = m.total_params() as f64 / 1e9;
        let active_b = m.active_params() as f64 / 1e9;
        assert!((total_b - 46.7).abs() / 46.7 < 0.05, "total {total_b}B");
        assert!((active_b - 12.9).abs() / 12.9 < 0.08, "active {active_b}B");
    }

    #[test]
    fn qwen_matches_table1() {
        let m = qwen15_moe_a27b();
        assert_eq!((m.num_layers, m.experts_per_layer, m.top_k), (24, 60, 4));
        let total_b = m.total_params() as f64 / 1e9;
        assert!((total_b - 14.3).abs() / 14.3 < 0.10, "total {total_b}B");
        // Expert is small: ~17 MB.
        assert!((m.expert_bytes() as f64 / 1e6 - 17.3).abs() < 1.0);
    }

    #[test]
    fn phi_matches_table1() {
        let m = phi35_moe();
        assert_eq!((m.num_layers, m.experts_per_layer, m.top_k), (32, 16, 2));
        let total_b = m.total_params() as f64 / 1e9;
        assert!((total_b - 42.0).abs() / 42.0 < 0.08, "total {total_b}B");
    }

    #[test]
    fn deepseek_matches_published_shape() {
        let m = deepseek_moe_16b();
        m.validate().unwrap();
        let total_b = m.total_params() as f64 / 1e9;
        assert!((total_b - 16.4).abs() / 16.4 < 0.10, "total {total_b}B");
        // §2.2: DeepSeek-MoE has ~83% inactive parameters.
        let inactive = 1.0 - m.active_params() as f64 / m.total_params() as f64;
        assert!((inactive - 0.83).abs() < 0.05, "inactive share {inactive}");
    }

    #[test]
    fn inactive_parameter_fractions_match_section_2_2() {
        // §2.2: Mixtral has 72% inactive and DeepSeek-class sparsity ~83%;
        // check Mixtral's inactive share lands near 72%.
        let m = mixtral_8x7b();
        let inactive = 1.0 - m.active_params() as f64 / m.total_params() as f64;
        assert!((inactive - 0.72).abs() < 0.03, "inactive share {inactive}");
    }

    #[test]
    fn expert_weight_scale_sanity() {
        // Mixtral's full expert set is ~84 GB at fp16 - far beyond one
        // 24 GB GPU, which is the whole premise of offloading.
        let m = mixtral_8x7b();
        let total_gb = m.total_expert_bytes() as f64 / GB;
        assert!(total_gb > 80.0 && total_gb < 90.0, "{total_gb} GB");
    }
}
