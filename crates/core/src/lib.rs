//! # fMoE: fine-grained expert offloading for MoE serving
//!
//! This crate is the paper's primary contribution — the policy layer that
//! tames the latency–memory trade-off in Mixture-of-Experts serving by
//! tracking expert selection behaviour at *iteration* granularity:
//!
//! * [`map`] — the **expert map** data structure (§4.1): the per-iteration
//!   collection of gate probability distributions `{P_1 … P_L}`, richer
//!   than request-level hit counts both in time (per iteration) and in
//!   value (full distributions, not binary selections).
//! * [`store`] — the **Expert Map Store** (§4.4): a capacity-bounded
//!   collection of historical `(semantic embedding, expert map)` pairs
//!   with redundancy-scored deduplication
//!   (`RDY = d/L·sem + (L−d)/L·traj`).
//! * [`matcher`] — the **Expert Map Matcher** (§4.2): *semantic* search
//!   (Eq. 4) for the first `d` layers where no trajectory exists yet, and
//!   incremental *trajectory* search (Eq. 5) for layers `d+1 … L`.
//! * [`selection`] — **similarity-aware expert selection** (§4.3): the
//!   dynamic threshold `δ = clip(1 − score, 0, 1)` that prefetches more
//!   experts when the matched map is dubious and fewer when it is
//!   trustworthy, plus the prefetch priority `PRI = p / (l − l_now)`.
//! * [`predictor`] — [`FmoePredictor`], wiring the above into the
//!   `fmoe-serving` policy interface, with ablation switches for every
//!   design ingredient (trajectory-only, no dynamic threshold, …).
//! * [`pubsub`] — a live (threaded) publisher/subscriber matcher mirroring
//!   the paper's asynchronous architecture (§4.3), demonstrating that the
//!   decision pipeline runs off the critical path.
//!
//! ## Quick start
//!
//! ```
//! use fmoe::{FmoeConfig, FmoePredictor};
//! use fmoe_model::presets;
//!
//! let model = presets::small_test_model();
//! let config = FmoeConfig::for_model(&model);
//! let predictor = FmoePredictor::new(model, config);
//! assert_eq!(predictor.store_len(), 0); // fills as requests are served
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod map;
pub mod matcher;
pub mod persist;
pub mod predictor;
pub mod pubsub;
pub mod selection;
pub mod store;

pub use config::FmoeConfig;
pub use map::ExpertMap;
pub use matcher::{MatchResult, Matcher};
pub use predictor::FmoePredictor;
pub use selection::{prefetch_priority, select_experts};
pub use store::{ExpertMapStore, ReplacementPolicy, StoreStats};

#[cfg(test)]
mod proptests;
