//! Live asynchronous matcher: the publisher/subscriber architecture of
//! paper §4.3, realized with real threads.
//!
//! The discrete-event engine *models* the async matcher's latency; this
//! module *implements* the architecture, demonstrating that matching and
//! prefetch planning run off the inference thread:
//!
//! * The inference side **publishes** context messages — semantic
//!   embeddings at iteration start, per-layer gate distributions, and
//!   end-of-iteration map updates — into a crossbeam channel (the Expert
//!   Map Store acting as message broker).
//! * A **subscriber** thread consumes contexts, searches the shared store
//!   (behind a `parking_lot::RwLock`, mirroring the paper's shared-memory
//!   multithreading), and emits [`PlanMessage`]s carrying prefetch plans.
//!
//! Tests verify the async pipeline produces exactly the plans the
//! synchronous matcher would, so the engine's latency-only model is
//! faithful.

use crate::config::FmoeConfig;
use crate::map::ExpertMap;
use crate::matcher::Matcher;
use crate::selection::select_experts;
use crate::store::ExpertMapStore;
use crossbeam::channel::{unbounded, Receiver, Sender};
use fmoe_model::{ExpertId, ModelConfig};
use fmoe_serving::PrefetchPlan;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Context messages published by the inference side.
#[derive(Debug)]
pub enum ContextMessage {
    /// Iteration start: semantic embedding of request `request`.
    Semantic {
        /// Request identity (for plan correlation).
        request: u64,
        /// The iteration's semantic embedding.
        embedding: Vec<f64>,
    },
    /// Layer `layer`'s realized gate distribution for request `request`.
    Trajectory {
        /// Request identity.
        request: u64,
        /// The layer that just ran its gate.
        layer: u32,
        /// The realized distribution.
        distribution: Vec<f64>,
    },
    /// End of iteration: record the realized map in the store.
    Update {
        /// The iteration's embedding.
        embedding: Vec<f64>,
        /// The realized expert map.
        map: ExpertMap,
    },
    /// Stop the subscriber thread.
    Shutdown,
}

/// A batch of prefetch plans emitted by the matcher thread.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanMessage {
    /// The request the plans belong to.
    pub request: u64,
    /// The layer window start these plans target.
    pub target_layer: u32,
    /// The plans, priority-ordered.
    pub plans: Vec<PrefetchPlan>,
}

/// Handle to the live matcher: publish contexts, receive plans.
#[derive(Debug)]
pub struct AsyncMatcher {
    context_tx: Sender<ContextMessage>,
    plan_rx: Receiver<PlanMessage>,
    store: Arc<RwLock<ExpertMapStore>>,
    worker: Option<JoinHandle<()>>,
}

impl AsyncMatcher {
    /// Spawns the subscriber thread around a shared store.
    #[must_use]
    pub fn spawn(model: &ModelConfig, config: FmoeConfig) -> Self {
        let store = Arc::new(RwLock::new(ExpertMapStore::new(
            config.store_capacity,
            model.num_layers as usize,
            model.experts_per_layer as usize,
            config.prefetch_distance,
        )));
        let (context_tx, context_rx) = unbounded::<ContextMessage>();
        let (plan_tx, plan_rx) = unbounded::<PlanMessage>();
        let worker_store = Arc::clone(&store);
        let model = model.clone();
        let worker = std::thread::spawn(move || {
            subscriber_loop(&context_rx, &plan_tx, &worker_store, &model, &config);
        });
        Self {
            context_tx,
            plan_rx,
            store,
            worker: Some(worker),
        }
    }

    /// Publishes one context message.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the subscriber thread has already shut down.
    pub fn publish(&self, msg: ContextMessage) -> Result<(), &'static str> {
        self.context_tx
            .send(msg)
            .map_err(|_| "matcher thread is gone")
    }

    /// Receives the next plan message, blocking until one arrives or the
    /// worker hangs up.
    #[must_use]
    pub fn recv_plans(&self) -> Option<PlanMessage> {
        self.plan_rx.recv().ok()
    }

    /// Non-blocking drain of all currently available plan messages.
    #[must_use]
    pub fn try_drain_plans(&self) -> Vec<PlanMessage> {
        let mut out = Vec::new();
        while let Ok(m) = self.plan_rx.try_recv() {
            out.push(m);
        }
        out
    }

    /// Shared read access to the store (the paper's shared-memory space).
    #[must_use]
    pub fn store(&self) -> Arc<RwLock<ExpertMapStore>> {
        Arc::clone(&self.store)
    }
}

impl Drop for AsyncMatcher {
    fn drop(&mut self) {
        let _ = self.context_tx.send(ContextMessage::Shutdown);
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

fn subscriber_loop(
    context_rx: &Receiver<ContextMessage>,
    plan_tx: &Sender<PlanMessage>,
    store: &Arc<RwLock<ExpertMapStore>>,
    model: &ModelConfig,
    config: &FmoeConfig,
) {
    // Per-request observed prefixes for trajectory matching.
    let mut prefixes: BTreeMap<u64, Vec<Vec<f64>>> = BTreeMap::new();
    while let Ok(msg) = context_rx.recv() {
        match msg {
            ContextMessage::Semantic { request, embedding } => {
                prefixes.insert(request, Vec::new());
                let store = store.read();
                let Some(m) = Matcher::semantic_match(&store, &embedding) else {
                    continue;
                };
                let d = config.prefetch_distance.min(model.num_layers);
                let entry = store.entry(m.entry_index);
                let mut plans = Vec::new();
                for l in 0..d {
                    for (slot, p) in select_experts(
                        entry.map.layer(l as usize),
                        m.score,
                        config.min_prefetch_per_layer,
                        config.max_prefetch_per_layer,
                    ) {
                        plans.push(PrefetchPlan::fetch(ExpertId::new(l, slot as u32), p));
                    }
                }
                let _ = plan_tx.send(PlanMessage {
                    request,
                    target_layer: 0,
                    plans,
                });
            }
            ContextMessage::Trajectory {
                request,
                layer,
                distribution,
            } => {
                let prefix = prefixes.entry(request).or_default();
                prefix.push(distribution);
                let target = layer + config.prefetch_distance;
                if target >= model.num_layers {
                    continue;
                }
                let store = store.read();
                let Some(m) = Matcher::trajectory_match(&store, prefix) else {
                    continue;
                };
                let entry = store.entry(m.entry_index);
                let plans: Vec<PrefetchPlan> = select_experts(
                    entry.map.layer(target as usize),
                    m.score,
                    config.min_prefetch_per_layer,
                    config.max_prefetch_per_layer,
                )
                .into_iter()
                .map(|(slot, p)| PrefetchPlan::fetch(ExpertId::new(target, slot as u32), p))
                .collect();
                let _ = plan_tx.send(PlanMessage {
                    request,
                    target_layer: target,
                    plans,
                });
            }
            ContextMessage::Update { embedding, map } => {
                store.write().insert(embedding, map);
            }
            ContextMessage::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmoe_model::gate::TokenSpan;
    use fmoe_model::{presets, GateParams, GateSimulator, RequestRouting};

    fn setup() -> (GateSimulator, AsyncMatcher, FmoeConfig) {
        let cfg = presets::small_test_model();
        let gate = GateSimulator::new(cfg.clone(), GateParams::for_model(&cfg));
        let fc = FmoeConfig::for_model(&cfg);
        let matcher = AsyncMatcher::spawn(&cfg, fc.clone());
        (gate, matcher, fc)
    }

    fn record_iteration(
        gate: &GateSimulator,
        matcher: &AsyncMatcher,
        routing: RequestRouting,
        iter: u64,
    ) {
        let span = TokenSpan::single(16 + iter);
        let rows: Vec<Vec<f64>> = (0..gate.config().num_layers)
            .map(|l| gate.iteration_distribution(routing, iter, l, span))
            .collect();
        matcher
            .publish(ContextMessage::Update {
                embedding: gate.semantic_embedding(routing, iter),
                map: ExpertMap::new(rows),
            })
            .unwrap();
    }

    #[test]
    fn async_matcher_round_trip() {
        let (gate, matcher, fc) = setup();
        let hist = RequestRouting {
            cluster: 1,
            request_seed: 10,
        };
        for iter in 0..4 {
            record_iteration(&gate, &matcher, hist, iter);
        }
        // Query with a same-cluster request.
        let query = RequestRouting {
            cluster: 1,
            request_seed: 99,
        };
        matcher
            .publish(ContextMessage::Semantic {
                request: 7,
                embedding: gate.semantic_embedding(query, 0),
            })
            .unwrap();
        let plans = matcher.recv_plans().expect("worker alive");
        assert_eq!(plans.request, 7);
        assert!(!plans.plans.is_empty());
        assert!(plans
            .plans
            .iter()
            .all(|p| p.expert.layer < fc.prefetch_distance));
    }

    #[test]
    fn trajectory_messages_produce_target_layer_plans() {
        let (gate, matcher, fc) = setup();
        let hist = RequestRouting {
            cluster: 2,
            request_seed: 20,
        };
        for iter in 0..4 {
            record_iteration(&gate, &matcher, hist, iter);
        }
        let query = RequestRouting {
            cluster: 2,
            request_seed: 777,
        };
        let dist = gate.iteration_distribution(query, 0, 0, TokenSpan::single(5));
        matcher
            .publish(ContextMessage::Trajectory {
                request: 3,
                layer: 0,
                distribution: dist,
            })
            .unwrap();
        let plans = matcher.recv_plans().expect("worker alive");
        assert_eq!(plans.target_layer, fc.prefetch_distance);
        assert!(plans
            .plans
            .iter()
            .all(|p| p.expert.layer == fc.prefetch_distance));
    }

    #[test]
    fn async_plans_match_synchronous_matcher() {
        let (gate, matcher, fc) = setup();
        let hist = RequestRouting {
            cluster: 3,
            request_seed: 30,
        };
        for iter in 0..4 {
            record_iteration(&gate, &matcher, hist, iter);
        }
        let query_emb = gate.semantic_embedding(
            RequestRouting {
                cluster: 3,
                request_seed: 5,
            },
            0,
        );
        matcher
            .publish(ContextMessage::Semantic {
                request: 1,
                embedding: query_emb.clone(),
            })
            .unwrap();
        let async_plans = matcher.recv_plans().unwrap().plans;

        // Replicate synchronously against the shared store.
        let store = matcher.store();
        let store = store.read();
        let m = Matcher::semantic_match(&store, &query_emb).unwrap();
        let mut sync_plans = Vec::new();
        for l in 0..fc.prefetch_distance {
            for (slot, p) in select_experts(
                store.entry(m.entry_index).map.layer(l as usize),
                m.score,
                fc.min_prefetch_per_layer,
                fc.max_prefetch_per_layer,
            ) {
                sync_plans.push(PrefetchPlan::fetch(ExpertId::new(l, slot as u32), p));
            }
        }
        assert_eq!(async_plans, sync_plans);
    }

    #[test]
    fn updates_are_visible_in_shared_store() {
        let (gate, matcher, _) = setup();
        let routing = RequestRouting {
            cluster: 4,
            request_seed: 40,
        };
        record_iteration(&gate, &matcher, routing, 0);
        // Synchronize: a semantic query guarantees the update was consumed
        // (the channel is FIFO and the worker is single-threaded).
        matcher
            .publish(ContextMessage::Semantic {
                request: 0,
                embedding: gate.semantic_embedding(routing, 0),
            })
            .unwrap();
        let _ = matcher.recv_plans();
        assert_eq!(matcher.store().read().len(), 1);
    }

    #[test]
    fn empty_store_emits_no_plan_content() {
        let (gate, matcher, _) = setup();
        matcher
            .publish(ContextMessage::Semantic {
                request: 9,
                embedding: gate.semantic_embedding(
                    RequestRouting {
                        cluster: 1,
                        request_seed: 1,
                    },
                    0,
                ),
            })
            .unwrap();
        // The worker skips empty-store queries entirely; draining after a
        // short settle must find nothing.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(matcher.try_drain_plans().is_empty());
    }

    #[test]
    fn shutdown_is_clean_on_drop() {
        let (_, matcher, _) = setup();
        drop(matcher); // must not hang or panic
    }
}
