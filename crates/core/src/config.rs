//! fMoE configuration, including the ablation switches of §6.5.

use fmoe_model::ModelConfig;
use serde::{Deserialize, Serialize};

/// Tunables of the fMoE policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FmoeConfig {
    /// Prefetch distance `d`: how many layers ahead prefetch instructions
    /// are issued (§4.2). The paper profiles `d = 3` as optimal (§6.1,
    /// Fig. 13).
    pub prefetch_distance: u32,
    /// Expert Map Store capacity `C`. The paper uses 1K (§6.6, Fig. 14a).
    pub store_capacity: usize,
    /// How many consecutive target layers each observation prefetches
    /// for, starting at `l + d`. The paper's prefetch priority
    /// `PRI = p/(l − l_now)` (§4.5) orders experts across *multiple*
    /// pending target layers; a window of a few layers keeps the PCIe
    /// queues deep enough to hide transfer latency while the per-layer
    /// match refresh corrects stale far-layer selections.
    pub prefetch_window: u32,
    /// Enable semantic map search for the first `d` layers. Disabling
    /// yields the "Map (T)" ablation variant (Fig. 12a).
    pub use_semantic_search: bool,
    /// Enable the similarity-aware dynamic threshold `δ`. Disabling
    /// yields "Map (T+S)", which prefetches a fixed top
    /// [`Self::fixed_prefetch_count`] per layer.
    pub use_dynamic_threshold: bool,
    /// Experts prefetched per layer when the dynamic threshold is off.
    pub fixed_prefetch_count: usize,
    /// Minimum experts selected per layer. The paper's Constraint 8
    /// requires strictly more than `K`, i.e. `K + 1`.
    pub min_prefetch_per_layer: usize,
    /// Hard cap on experts prefetched per layer (defaults to `J`).
    pub max_prefetch_per_layer: usize,
    /// Modeled latency of one matcher invocation, in nanoseconds. Scales
    /// with store capacity and map width; see [`FmoeConfig::for_model`].
    pub matching_latency_ns: u64,
    /// Modeled asynchronous store-update cost per iteration.
    pub update_latency_ns: u64,
    /// Order prefetch plans by the paper's priority `PRI = p/(l − l_now)`
    /// (§4.5). Disabling falls back to FIFO issue order (ablation).
    pub use_priority_ordering: bool,
    /// Run the matcher synchronously on the critical path instead of the
    /// paper's asynchronous pub/sub placement (§4.3) — the ablation that
    /// quantifies what the async architecture buys.
    pub synchronous_matcher: bool,
    /// At-capacity store replacement strategy (ablation; the paper's
    /// design is redundancy-scored deduplication).
    pub store_replacement: crate::store::ReplacementPolicy,
    /// Minimum threshold mass used for *prefill* iterations. A prefill
    /// processes every prompt token in parallel, so a layer's activated
    /// union is wide and the searched row is flat; covering only
    /// `1 − score` of it would strand most of the predicted experts on
    /// the on-demand path. During the single prefill iteration coverage
    /// dominates memory, so δ is floored here.
    pub prefill_coverage_floor: f64,
}

impl FmoeConfig {
    /// Paper-default configuration scaled to a model: `d = 3`, `C = 1K`,
    /// all features on, matcher latency derived from the pairwise-cosine
    /// work a CPU-side matcher would do.
    #[must_use]
    pub fn for_model(model: &ModelConfig) -> Self {
        let store_capacity = 1000;
        Self {
            prefetch_distance: 3,
            store_capacity,
            prefetch_window: 4,
            use_semantic_search: true,
            use_dynamic_threshold: true,
            fixed_prefetch_count: model.top_k as usize + 1,
            min_prefetch_per_layer: model.top_k as usize + 1,
            max_prefetch_per_layer: model.experts_per_layer as usize,
            matching_latency_ns: Self::matcher_latency(model, store_capacity),
            update_latency_ns: 500_000,
            use_priority_ordering: true,
            synchronous_matcher: false,
            store_replacement: crate::store::ReplacementPolicy::Redundancy,
            prefill_coverage_floor: 0.85,
        }
    }

    /// Latency model for one matcher pass: a pairwise cosine of the query
    /// against `capacity` stored vectors of width `L·J` (plus the
    /// embedding width). The constant reflects the paper's Python +
    /// TorchMetrics matcher (tensor conversion, kernel dispatch), not a
    /// tuned SIMD kernel: ~0.5 ms of fixed dispatch plus ~1 f64 FLOP/ns.
    #[must_use]
    pub fn matcher_latency(model: &ModelConfig, capacity: usize) -> u64 {
        let width = (model.num_layers * model.experts_per_layer + 64).max(64) as u64;
        let flops = 2 * capacity as u64 * width;
        500_000 + flops
    }

    /// Sets the prefetch distance.
    #[must_use]
    pub fn with_distance(mut self, d: u32) -> Self {
        self.prefetch_distance = d;
        self
    }

    /// Sets the store capacity, rescaling the matcher latency to match.
    #[must_use]
    pub fn with_capacity(mut self, model: &ModelConfig, capacity: usize) -> Self {
        self.store_capacity = capacity;
        self.matching_latency_ns = Self::matcher_latency(model, capacity);
        self
    }

    /// The "Map (T)" ablation: trajectory search only.
    #[must_use]
    pub fn trajectory_only(mut self) -> Self {
        self.use_semantic_search = false;
        self
    }

    /// The "Map (T+S)" ablation: both searches, fixed selection size.
    #[must_use]
    pub fn without_dynamic_threshold(mut self) -> Self {
        self.use_dynamic_threshold = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmoe_model::presets;

    #[test]
    fn defaults_match_paper() {
        let m = presets::mixtral_8x7b();
        let c = FmoeConfig::for_model(&m);
        assert_eq!(c.prefetch_distance, 3);
        assert_eq!(c.store_capacity, 1000);
        assert!(c.use_semantic_search);
        assert!(c.use_dynamic_threshold);
        // Constraint 8: more than K.
        assert_eq!(c.min_prefetch_per_layer, 3);
        assert_eq!(c.max_prefetch_per_layer, 8);
    }

    #[test]
    fn matcher_latency_scales_with_capacity_and_width() {
        let m = presets::mixtral_8x7b();
        let q = presets::qwen15_moe_a27b();
        let small = FmoeConfig::matcher_latency(&m, 100);
        let big = FmoeConfig::matcher_latency(&m, 10_000);
        assert!(big > small);
        // Qwen has a wider map (24×60 > 32×8): higher latency at equal
        // capacity.
        assert!(FmoeConfig::matcher_latency(&q, 1000) > FmoeConfig::matcher_latency(&m, 1000));
        // And the default should be around a millisecond, matching the
        // paper's "negligible" claim (§6.7).
        let default = FmoeConfig::for_model(&m).matching_latency_ns;
        assert!((200_000..5_000_000).contains(&default), "{default} ns");
    }

    #[test]
    fn ablation_builders() {
        let m = presets::phi35_moe();
        let c = FmoeConfig::for_model(&m)
            .trajectory_only()
            .without_dynamic_threshold();
        assert!(!c.use_semantic_search);
        assert!(!c.use_dynamic_threshold);
        let c2 = FmoeConfig::for_model(&m).with_distance(5);
        assert_eq!(c2.prefetch_distance, 5);
        let c3 = FmoeConfig::for_model(&m).with_capacity(&m, 4000);
        assert_eq!(c3.store_capacity, 4000);
        assert!(c3.matching_latency_ns > FmoeConfig::for_model(&m).matching_latency_ns);
    }
}
