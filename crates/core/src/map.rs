//! The expert map data structure (paper §4.1).
//!
//! An expert map records one inference iteration's gate outputs across all
//! layers: `map_i = {P_1^{(i)}, …, P_L^{(i)}}`, each `P_l` a probability
//! distribution over the layer's `J` experts. Compared to request-level
//! hit counting (MoE-Infinity's Expert Activation Matrix) it is finer in
//! both axes: per-iteration rather than per-request, and full
//! distributions rather than binary activations. The coarse form is
//! recoverable (apply top-K and aggregate), which [`ExpertMap::to_top_k_counts`]
//! implements — the paper's generalization argument.

use serde::{Deserialize, Serialize};

/// One iteration's expert map: `L` rows of `J` probabilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpertMap {
    layers: Vec<Vec<f64>>,
}

impl ExpertMap {
    /// Wraps per-layer distributions into a map.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or rows have inconsistent widths —
    /// maps always span the full model.
    #[must_use]
    pub fn new(layers: Vec<Vec<f64>>) -> Self {
        assert!(!layers.is_empty(), "an expert map needs at least one layer");
        let j = layers[0].len();
        assert!(j > 0, "layers must have at least one expert");
        assert!(
            layers.iter().all(|row| row.len() == j),
            "all layers must have the same expert count"
        );
        Self { layers }
    }

    /// Number of layers `L`.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Experts per layer `J`.
    #[must_use]
    pub fn experts_per_layer(&self) -> usize {
        self.layers[0].len()
    }

    /// The distribution of one layer.
    #[must_use]
    pub fn layer(&self, l: usize) -> &[f64] {
        &self.layers[l]
    }

    /// All layers in order.
    #[must_use]
    pub fn layers(&self) -> &[Vec<f64>] {
        &self.layers
    }

    /// The map flattened row-major to a `L·J` vector — the form the
    /// trajectory search's cosine similarity consumes.
    #[must_use]
    pub fn flatten(&self) -> Vec<f64> {
        self.layers.iter().flatten().copied().collect()
    }

    /// Flattens only layers `[0, prefix_layers)` — a *partial* trajectory
    /// as observed mid-iteration.
    #[must_use]
    pub fn flatten_prefix(&self, prefix_layers: usize) -> Vec<f64> {
        self.layers
            .iter()
            .take(prefix_layers)
            .flatten()
            .copied()
            .collect()
    }

    /// Recovers coarse-grained information: per-layer top-`k` activation
    /// counts, as an `L × J` count matrix. Aggregating these over
    /// iterations reproduces exactly what request-level trackers store.
    #[must_use]
    pub fn to_top_k_counts(&self, k: usize) -> Vec<Vec<u64>> {
        self.layers
            .iter()
            .map(|row| {
                let mut idx: Vec<usize> = (0..row.len()).collect();
                idx.sort_by(|&a, &b| row[b].total_cmp(&row[a]).then(a.cmp(&b)));
                let mut counts = vec![0u64; row.len()];
                for &i in idx.iter().take(k) {
                    counts[i] = 1;
                }
                counts
            })
            .collect()
    }

    /// In-memory footprint of this map in a deployment store, assuming
    /// the paper's fp32 NumPy representation (4 bytes per probability).
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.num_layers() * self.experts_per_layer() * 4
    }

    /// Checks every row is a (tolerantly) normalized distribution.
    #[must_use]
    pub fn is_normalized(&self, tolerance: f64) -> bool {
        self.layers.iter().all(|row| {
            let sum: f64 = row.iter().sum();
            (sum - 1.0).abs() <= tolerance && row.iter().all(|&p| p >= -tolerance)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_map() -> ExpertMap {
        ExpertMap::new(vec![
            vec![0.7, 0.2, 0.1, 0.0],
            vec![0.1, 0.1, 0.4, 0.4],
            vec![0.25, 0.25, 0.25, 0.25],
        ])
    }

    #[test]
    fn dimensions_and_access() {
        let m = simple_map();
        assert_eq!(m.num_layers(), 3);
        assert_eq!(m.experts_per_layer(), 4);
        assert_eq!(m.layer(1), &[0.1, 0.1, 0.4, 0.4]);
    }

    #[test]
    fn flatten_is_row_major() {
        let m = simple_map();
        let f = m.flatten();
        assert_eq!(f.len(), 12);
        assert_eq!(&f[..4], &[0.7, 0.2, 0.1, 0.0]);
        assert_eq!(&f[4..8], &[0.1, 0.1, 0.4, 0.4]);
    }

    #[test]
    fn prefix_flattening() {
        let m = simple_map();
        assert_eq!(m.flatten_prefix(1), vec![0.7, 0.2, 0.1, 0.0]);
        assert_eq!(m.flatten_prefix(0), Vec::<f64>::new());
        assert_eq!(m.flatten_prefix(3), m.flatten());
        // Prefix longer than the map is clamped.
        assert_eq!(m.flatten_prefix(99), m.flatten());
    }

    #[test]
    fn top_k_counts_recover_coarse_grained_form() {
        let m = simple_map();
        let counts = m.to_top_k_counts(2);
        assert_eq!(counts[0], vec![1, 1, 0, 0]);
        assert_eq!(counts[1], vec![0, 0, 1, 1]);
        // Uniform layer: ties break toward lower indices.
        assert_eq!(counts[2], vec![1, 1, 0, 0]);
    }

    #[test]
    fn storage_bytes_matches_fp32_layout() {
        assert_eq!(simple_map().storage_bytes(), 3 * 4 * 4);
    }

    #[test]
    fn normalization_check() {
        assert!(simple_map().is_normalized(1e-9));
        let bad = ExpertMap::new(vec![vec![0.9, 0.3]]);
        assert!(!bad.is_normalized(1e-9));
    }

    #[test]
    #[should_panic(expected = "same expert count")]
    fn ragged_rows_panic() {
        let _ = ExpertMap::new(vec![vec![0.5, 0.5], vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_map_panics() {
        let _ = ExpertMap::new(vec![]);
    }
}
