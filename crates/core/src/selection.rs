//! Similarity-aware expert selection and prefetch prioritization
//! (paper §4.3).
//!
//! Given a searched distribution `P_l` and the match's similarity
//! `score`, fMoE computes a dynamic threshold
//!
//! ```text
//! δ_l = Clip(1 − score, 0, 1)
//! ```
//!
//! and selects the *smallest* set of highest-probability experts whose
//! summed probability reaches `δ_l`, subject to the Constraint-8 floor of
//! more than `K` experts. Intuition: a dubious match (low score) gets a
//! high threshold — prefetch broadly to hedge mispredictions; a confident
//! match gets a low threshold — prefetch narrowly to save memory and
//! bandwidth.
//!
//! Prefetch ordering uses `PRI^prefetch_{l,j} = p_{l,j} / (l − l_now)`:
//! likely experts first, near layers first.

/// A selected expert: `(slot within the layer, searched probability)`.
pub type SelectedExpert = (usize, f64);

/// Selects the experts to prefetch for one layer.
///
/// * `distribution` — the searched map's `P_l`.
/// * `score` — the similarity score of the match, in `[-1, 1]`.
/// * `min_count` — Constraint-8 floor (the paper uses `K + 1`).
/// * `max_count` — hard cap (at most `J`).
///
/// Returns experts in descending probability order.
///
/// ```
/// use fmoe::selection::select_experts;
///
/// let searched = [0.5, 0.3, 0.1, 0.06, 0.04];
/// // Confident match (score 0.9): δ = 0.1 — the floor of 2 suffices.
/// assert_eq!(select_experts(&searched, 0.9, 2, 5).len(), 2);
/// // Dubious match (score 0.1): δ = 0.9 — hedge with three experts
/// // (0.5 + 0.3 + 0.1 reaches the 0.9 threshold).
/// assert_eq!(select_experts(&searched, 0.1, 2, 5).len(), 3);
/// ```
#[must_use]
pub fn select_experts(
    distribution: &[f64],
    score: f64,
    min_count: usize,
    max_count: usize,
) -> Vec<SelectedExpert> {
    if distribution.is_empty() || max_count == 0 {
        return Vec::new();
    }
    let delta = (1.0 - score).clamp(0.0, 1.0);
    let mut ranked: Vec<SelectedExpert> = distribution.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    let max_count = max_count.min(ranked.len());
    let min_count = min_count.min(max_count);
    let mut selected = Vec::new();
    let mut cumulative = 0.0;
    for &(slot, p) in &ranked {
        if selected.len() >= max_count {
            break;
        }
        if cumulative >= delta && selected.len() >= min_count {
            break;
        }
        selected.push((slot, p));
        cumulative += p;
    }
    selected
}

/// Fixed-size selection (the "Map (T+S)" ablation without the dynamic
/// threshold): top `count` experts by probability.
#[must_use]
pub fn select_top_n(distribution: &[f64], count: usize) -> Vec<SelectedExpert> {
    let mut ranked: Vec<SelectedExpert> = distribution.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(count);
    ranked
}

/// fMoE's prefetch priority `PRI = p / (l − l_now)` (§4.5). `l_now` is
/// the layer the forward pass currently occupies; targets at or behind it
/// are given the distance of one layer.
#[must_use]
pub fn prefetch_priority(probability: f64, target_layer: u32, current_layer: i64) -> f64 {
    let distance = (i64::from(target_layer) - current_layer).max(1) as f64;
    probability / distance
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIST: [f64; 8] = [0.30, 0.25, 0.15, 0.10, 0.08, 0.06, 0.04, 0.02];

    #[test]
    fn high_score_selects_the_floor() {
        // score 0.95 → δ = 0.05: the top expert alone covers it, but the
        // Constraint-8 floor (3) applies.
        let sel = select_experts(&DIST, 0.95, 3, 8);
        assert_eq!(sel.len(), 3);
        assert_eq!(sel[0].0, 0);
        assert_eq!(sel[1].0, 1);
        assert_eq!(sel[2].0, 2);
    }

    #[test]
    fn low_score_selects_broadly() {
        // score 0.1 → δ = 0.9: needs the top six experts
        // (0.30+0.25+0.15+0.10+0.08+0.06 = 0.94 ≥ 0.9).
        let sel = select_experts(&DIST, 0.1, 3, 8);
        assert_eq!(sel.len(), 6);
    }

    #[test]
    fn negative_score_clamps_to_full_threshold() {
        // score −0.5 → δ clipped to 1.0: everything until the cap.
        let sel = select_experts(&DIST, -0.5, 3, 8);
        assert_eq!(sel.len(), 8);
    }

    #[test]
    fn selection_is_monotone_in_score() {
        let mut last = usize::MAX;
        for score in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let n = select_experts(&DIST, score, 1, 8).len();
            assert!(n <= last, "selection must shrink as score grows");
            last = n;
        }
    }

    #[test]
    fn max_count_caps_selection() {
        let sel = select_experts(&DIST, 0.0, 3, 4);
        assert_eq!(sel.len(), 4);
    }

    #[test]
    fn results_are_probability_sorted() {
        let sel = select_experts(&DIST, 0.2, 2, 8);
        for w in sel.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert!(select_experts(&[], 0.5, 2, 4).is_empty());
        assert!(select_experts(&DIST, 0.5, 2, 0).is_empty());
        // min > J clamps to J.
        let sel = select_experts(&[0.6, 0.4], 1.0, 10, 10);
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn top_n_selection() {
        let sel = select_top_n(&DIST, 3);
        assert_eq!(sel.iter().map(|s| s.0).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(select_top_n(&DIST, 0).len(), 0);
        assert_eq!(select_top_n(&DIST, 100).len(), 8);
    }

    #[test]
    fn priority_prefers_near_and_likely() {
        // Same probability: nearer layer wins.
        assert!(prefetch_priority(0.5, 4, 3) > prefetch_priority(0.5, 6, 3));
        // Same layer: higher probability wins.
        assert!(prefetch_priority(0.9, 5, 3) > prefetch_priority(0.2, 5, 3));
        // Degenerate distance floors at 1.
        assert_eq!(prefetch_priority(0.8, 2, 5), 0.8);
    }

    #[test]
    fn selection_with_uniform_distribution_hits_floor_then_threshold() {
        let uniform = [0.125; 8];
        // δ = 0.5 needs 4 experts; floor of 3 is subsumed.
        let sel = select_experts(&uniform, 0.5, 3, 8);
        assert_eq!(sel.len(), 4);
    }
}
