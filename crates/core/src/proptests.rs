//! Property-based tests for the expert map, store, matcher and selection
//! invariants.

#![cfg(test)]

use crate::map::ExpertMap;
use crate::matcher::{Matcher, TrajectoryTracker};
use crate::selection::{prefetch_priority, select_experts, select_top_n};
use crate::store::ExpertMapStore;
use proptest::prelude::*;

const L: usize = 4;
const J: usize = 6;

/// A random normalized distribution of width `J`.
fn row() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.001f64..1.0, J).prop_map(|mut v| {
        let s: f64 = v.iter().sum();
        v.iter_mut().for_each(|x| *x /= s);
        v
    })
}

/// A random L×J expert map.
fn map() -> impl Strategy<Value = ExpertMap> {
    prop::collection::vec(row(), L).prop_map(ExpertMap::new)
}

fn embedding() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0f64..1.0, 8)
        .prop_filter("nonzero", |v| v.iter().any(|x| x.abs() > 1e-3))
}

proptest! {
    #[test]
    fn flatten_round_trips_layers(m in map()) {
        let flat = m.flatten();
        prop_assert_eq!(flat.len(), L * J);
        for l in 0..L {
            prop_assert_eq!(&flat[l * J..(l + 1) * J], m.layer(l));
        }
    }

    #[test]
    fn top_k_counts_sum_to_k_per_layer(m in map(), k in 1usize..=J) {
        for row in m.to_top_k_counts(k) {
            prop_assert_eq!(row.iter().sum::<u64>(), k as u64);
        }
    }

    #[test]
    fn store_never_exceeds_capacity(
        entries in prop::collection::vec((embedding(), map()), 1..40),
        capacity in 1usize..12,
    ) {
        let mut store = ExpertMapStore::new(capacity, L, J, 2);
        for (e, m) in entries {
            let idx = store.insert(e, m);
            prop_assert!(idx < capacity);
            prop_assert!(store.len() <= capacity);
        }
    }

    #[test]
    fn store_replacement_prefers_duplicates(
        base in (embedding(), map()),
        other in (embedding(), map()),
    ) {
        // A store holding [base, other] at capacity 2; inserting an exact
        // copy of base must replace base (the most redundant entry), as
        // long as the two entries are not themselves near-identical.
        let mut store = ExpertMapStore::new(2, L, J, 2);
        store.insert(base.0.clone(), base.1.clone());
        store.insert(other.0.clone(), other.1.clone());
        let r_base = store.redundancy(&base.0, &base.1.flatten(), 0);
        let r_other = store.redundancy(&base.0, &base.1.flatten(), 1);
        prop_assume!(r_base > r_other + 1e-9);
        let idx = store.insert(base.0.clone(), base.1.clone());
        prop_assert_eq!(idx, 0);
    }

    #[test]
    fn redundancy_is_bounded(
        a in (embedding(), map()),
        b in (embedding(), map()),
    ) {
        let mut store = ExpertMapStore::new(2, L, J, 2);
        store.insert(b.0.clone(), b.1.clone());
        let r = store.redundancy(&a.0, &a.1.flatten(), 0);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "{}", r);
    }

    #[test]
    fn semantic_match_finds_exact_copy(
        entries in prop::collection::vec((embedding(), map()), 1..10),
        pick in 0usize..10,
    ) {
        let mut store = ExpertMapStore::new(16, L, J, 2);
        for (e, m) in &entries {
            store.insert(e.clone(), m.clone());
        }
        let target = pick % entries.len();
        let m = Matcher::semantic_match(&store, &entries[target].0).unwrap();
        // The exact embedding scores 1.0; the winner must score at least
        // as high (ties possible with colinear embeddings).
        prop_assert!(m.score >= 1.0 - 1e-9);
    }

    #[test]
    fn semantic_fast_path_is_bit_identical_to_reference(
        entries in prop::collection::vec((embedding(), map()), 1..12),
        query in embedding(),
    ) {
        let mut store = ExpertMapStore::new(16, L, J, 2);
        for (e, m) in &entries {
            store.insert(e.clone(), m.clone());
        }
        prop_assert!(store.embedding_slab().is_some());
        let fast = Matcher::semantic_match(&store, &query).unwrap();
        let slow = Matcher::semantic_match_reference(&store, &query).unwrap();
        prop_assert_eq!(fast.entry_index, slow.entry_index);
        prop_assert_eq!(fast.score.to_bits(), slow.score.to_bits());
    }

    #[test]
    fn semantic_top_k_is_bit_identical_to_reference(
        entries in prop::collection::vec((embedding(), map()), 1..12),
        query in embedding(),
        k in 0usize..14,
    ) {
        let mut store = ExpertMapStore::new(16, L, J, 2);
        for (e, m) in &entries {
            store.insert(e.clone(), m.clone());
        }
        let fast = Matcher::semantic_top_k(&store, &query, k);
        let slow = Matcher::semantic_top_k_reference(&store, &query, k);
        prop_assert_eq!(fast.len(), slow.len());
        for (f, r) in fast.iter().zip(&slow) {
            prop_assert_eq!(f.entry_index, r.entry_index);
            prop_assert_eq!(f.score.to_bits(), r.score.to_bits());
        }
    }

    #[test]
    fn tracker_prefix_norms_agree_with_cosine_on_random_prefixes(
        entries in prop::collection::vec((embedding(), map()), 1..8),
        query in map(),
        layers in 1usize..=L,
    ) {
        // The one-shot path recomputes the candidate norm over the common
        // prefix inside `cosine_similarity`; the incremental tracker uses
        // the store's precomputed `prefix_norm2` slab. Both must land on
        // the same entry and score for every partial trajectory length.
        let mut store = ExpertMapStore::new(16, L, J, 2);
        for (e, m) in &entries {
            store.insert(e.clone(), m.clone());
        }
        let mut tracker = TrajectoryTracker::new();
        tracker.reset(&store);
        for l in 0..layers {
            tracker.observe_layer(&store, query.layer(l));
        }
        let prefix: Vec<Vec<f64>> =
            (0..layers).map(|x| query.layer(x).to_vec()).collect();
        let inc = tracker.best(&store).unwrap();
        let os = Matcher::trajectory_match(&store, &prefix).unwrap();
        prop_assert!((inc.score - os.score).abs() < 1e-9);
        // On non-tied scores the winning entry must agree too.
        if store.len() > 1 {
            let mut scores: Vec<f64> = (0..store.len())
                .map(|i| {
                    let flat: Vec<f64> = prefix.iter().flatten().copied().collect();
                    fmoe_stats::cosine_similarity(
                        &flat,
                        &store.entry(i).flat()[..layers * J],
                    )
                })
                .collect();
            scores.sort_by(f64::total_cmp);
            let gap = scores[scores.len() - 1] - scores[scores.len() - 2];
            if gap > 1e-9 {
                prop_assert_eq!(inc.entry_index, os.entry_index);
            }
        }
    }

    #[test]
    fn incremental_tracker_equals_one_shot(
        entries in prop::collection::vec((embedding(), map()), 1..8),
        query in map(),
    ) {
        let mut store = ExpertMapStore::new(16, L, J, 2);
        for (e, m) in &entries {
            store.insert(e.clone(), m.clone());
        }
        let mut tracker = TrajectoryTracker::new();
        tracker.reset(&store);
        for l in 0..L {
            tracker.observe_layer(&store, query.layer(l));
            let inc = tracker.best(&store).unwrap();
            let prefix: Vec<Vec<f64>> = (0..=l).map(|x| query.layer(x).to_vec()).collect();
            let os = Matcher::trajectory_match(&store, &prefix).unwrap();
            prop_assert!((inc.score - os.score).abs() < 1e-9);
        }
    }

    #[test]
    fn selection_respects_constraints(
        dist in row(),
        score in -1.0f64..1.0,
        min_count in 1usize..=J,
        max_count in 1usize..=J,
    ) {
        let sel = select_experts(&dist, score, min_count, max_count);
        // Cap respected.
        prop_assert!(sel.len() <= max_count);
        // Floor respected whenever the cap allows it.
        prop_assert!(sel.len() >= min_count.min(max_count));
        // Coverage: selected probability mass reaches δ unless the cap
        // cut selection short.
        let delta = (1.0 - score).clamp(0.0, 1.0);
        let mass: f64 = sel.iter().map(|s| s.1).sum();
        if sel.len() < max_count {
            prop_assert!(mass >= delta - 1e-9, "mass {} < delta {}", mass, delta);
        }
        // Distinct slots, sorted by probability.
        let mut slots: Vec<usize> = sel.iter().map(|s| s.0).collect();
        slots.sort_unstable();
        slots.dedup();
        prop_assert_eq!(slots.len(), sel.len());
        for w in sel.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn selection_is_greedy_minimal(
        dist in row(),
        score in -1.0f64..1.0,
    ) {
        // Dropping the last selected expert must leave the threshold
        // unsatisfied (otherwise the selection was not minimal), unless
        // the floor forced the size.
        let min_count = 1;
        let sel = select_experts(&dist, score, min_count, J);
        let delta = (1.0 - score).clamp(0.0, 1.0);
        if sel.len() > min_count {
            let mass_without_last: f64 =
                sel[..sel.len() - 1].iter().map(|s| s.1).sum();
            prop_assert!(mass_without_last < delta + 1e-9);
        }
    }

    #[test]
    fn top_n_orders_by_probability(dist in row(), n in 0usize..=J) {
        let sel = select_top_n(&dist, n);
        prop_assert_eq!(sel.len(), n.min(J));
        for w in sel.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn persistence_round_trips_arbitrary_stores(
        entries in prop::collection::vec((embedding(), map()), 0..12),
        capacity in 1usize..16,
    ) {
        let mut store = ExpertMapStore::new(capacity.max(12), L, J, 2);
        for (e, m) in entries {
            store.insert(e, m);
        }
        let mut buf = Vec::new();
        store.save_to(&mut buf).unwrap();
        let loaded = ExpertMapStore::load_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(loaded.len(), store.len());
        for (a, b) in store.entries().zip(loaded.entries()) {
            for (x, y) in a.flat().iter().zip(b.flat()) {
                prop_assert!((x - y).abs() < 1e-6);
            }
        }
        // Any single-byte truncation must fail cleanly, never panic.
        if !buf.is_empty() {
            let truncated = &buf[..buf.len() - 1];
            prop_assert!(ExpertMapStore::load_from(&mut &truncated[..]).is_err());
        }
    }

    #[test]
    fn priority_monotonicity(
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
        layer in 0u32..32,
        current in -1i64..31,
    ) {
        prop_assume!(i64::from(layer) > current);
        // Higher probability at the same target never loses.
        let a = prefetch_priority(p1.max(p2), layer, current);
        let b = prefetch_priority(p1.min(p2), layer, current);
        prop_assert!(a >= b);
        // Nearer target with equal probability never loses.
        let near = prefetch_priority(p1, layer, current);
        let far = prefetch_priority(p1, layer + 5, current);
        prop_assert!(near >= far);
    }
}
