//! The Expert Map Matcher (paper §4.2): semantic and trajectory search.
//!
//! * **Semantic search** (Eq. 4) serves layers `1…d`, where the prefetch
//!   distance means no trajectory has been observed yet: the iteration's
//!   input embedding is cosine-matched against every stored embedding.
//! * **Trajectory search** (Eq. 5) serves layers `d+1…L`: the partial map
//!   observed so far (layers `1…l`) is cosine-matched against the same
//!   prefix of every stored map, and the *matched map's* `P_{l+d}` guides
//!   the target layer.
//!
//! The trajectory matcher is incremental: observing one more layer costs
//! `O(C·J)` (one dot-product row per stored entry) instead of re-scanning
//! the whole prefix, which is what makes per-layer matching affordable —
//! the same reason the paper's implementation stores maps as contiguous
//! ndarrays.

use crate::store::ExpertMapStore;
use fmoe_stats::cosine_similarity;

/// Outcome of a map search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchResult {
    /// Index of the best entry in the store.
    pub entry_index: usize,
    /// Cosine similarity score in `[-1, 1]`.
    pub score: f64,
}

/// Stateless search entry points plus the incremental trajectory state.
#[derive(Debug)]
pub struct Matcher;

impl Matcher {
    /// Semantic search: the stored entry whose embedding best matches
    /// `embedding`. `None` on an empty store.
    #[must_use]
    pub fn semantic_match(store: &ExpertMapStore, embedding: &[f64]) -> Option<MatchResult> {
        let mut best: Option<MatchResult> = None;
        for (i, entry) in store.entries().enumerate() {
            let score = cosine_similarity(embedding, &entry.embedding);
            if best.is_none_or(|b| score > b.score) {
                best = Some(MatchResult {
                    entry_index: i,
                    score,
                });
            }
        }
        best
    }

    /// One-shot trajectory search over an explicit prefix (used by tests
    /// and offline analysis; the engine path uses [`TrajectoryTracker`]).
    #[must_use]
    pub fn trajectory_match(
        store: &ExpertMapStore,
        observed_prefix: &[Vec<f64>],
    ) -> Option<MatchResult> {
        if observed_prefix.is_empty() {
            return None;
        }
        let flat: Vec<f64> = observed_prefix.iter().flatten().copied().collect();
        let layers = observed_prefix.len();
        let mut best: Option<MatchResult> = None;
        for (i, entry) in store.entries().enumerate() {
            let j = entry.map.experts_per_layer();
            let prefix = &entry.flat()[..(layers * j).min(entry.flat().len())];
            let score = cosine_similarity(&flat, prefix);
            if best.is_none_or(|b| score > b.score) {
                best = Some(MatchResult {
                    entry_index: i,
                    score,
                });
            }
        }
        best
    }
}

/// Incremental per-request trajectory search state.
///
/// Reset it at each iteration start, feed it each layer's realized
/// distribution with [`TrajectoryTracker::observe_layer`], and query
/// [`TrajectoryTracker::best`] to get the current best match. The store
/// must not be mutated between `reset` and the last query of an iteration
/// (the engine only mutates it at iteration boundaries).
#[derive(Debug, Default)]
pub struct TrajectoryTracker {
    dots: Vec<f64>,
    query_norm2: f64,
    layers_observed: usize,
}

impl TrajectoryTracker {
    /// A tracker with no observations.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears observations and resizes to the store's current population.
    pub fn reset(&mut self, store: &ExpertMapStore) {
        self.dots.clear();
        self.dots.resize(store.len(), 0.0);
        self.query_norm2 = 0.0;
        self.layers_observed = 0;
    }

    /// Number of layers observed so far this iteration.
    #[must_use]
    pub fn layers_observed(&self) -> usize {
        self.layers_observed
    }

    /// Folds one more layer's distribution into the running dot products.
    ///
    /// # Panics
    ///
    /// Panics if the store's population changed since `reset` — that
    /// would silently corrupt the incremental state.
    pub fn observe_layer(&mut self, store: &ExpertMapStore, distribution: &[f64]) {
        assert_eq!(
            self.dots.len(),
            store.len(),
            "store mutated mid-iteration; call reset() first"
        );
        let l = self.layers_observed;
        for (dot, entry) in self.dots.iter_mut().zip(store.entries()) {
            let j = entry.map.experts_per_layer();
            if (l + 1) * j <= entry.flat().len() {
                let row = &entry.flat()[l * j..(l + 1) * j];
                for (a, b) in distribution.iter().zip(row) {
                    *dot += a * b;
                }
            }
        }
        self.query_norm2 += distribution.iter().map(|p| p * p).sum::<f64>();
        self.layers_observed += 1;
    }

    /// The best-matching entry for the observed prefix, or `None` when
    /// the store is empty or nothing has been observed.
    #[must_use]
    pub fn best(&self, store: &ExpertMapStore) -> Option<MatchResult> {
        if self.layers_observed == 0 || store.is_empty() || self.query_norm2 <= 0.0 {
            return None;
        }
        let qn = self.query_norm2.sqrt();
        let mut best: Option<MatchResult> = None;
        for (i, entry) in store.entries().enumerate() {
            let en2 = entry.prefix_norm2(self.layers_observed);
            let score = if en2 <= 0.0 {
                0.0
            } else {
                (self.dots[i] / (qn * en2.sqrt())).clamp(-1.0, 1.0)
            };
            if best.is_none_or(|b| score > b.score) {
                best = Some(MatchResult {
                    entry_index: i,
                    score,
                });
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::ExpertMap;

    fn peaked(l_count: usize, j: usize, peaks: &[usize]) -> ExpertMap {
        ExpertMap::new(
            (0..l_count)
                .map(|l| {
                    let mut row = vec![0.01; j];
                    row[peaks[l % peaks.len()]] = 1.0 - 0.01 * (j as f64 - 1.0);
                    row
                })
                .collect(),
        )
    }

    fn store_with(entries: Vec<(Vec<f64>, ExpertMap)>) -> ExpertMapStore {
        let l = entries[0].1.num_layers();
        let j = entries[0].1.experts_per_layer();
        let mut s = ExpertMapStore::new(entries.len().max(1), l, j, 1);
        for (e, m) in entries {
            s.insert(e, m);
        }
        s
    }

    #[test]
    fn semantic_match_picks_closest_embedding() {
        let s = store_with(vec![
            (vec![1.0, 0.0], peaked(2, 4, &[0])),
            (vec![0.0, 1.0], peaked(2, 4, &[1])),
        ]);
        let m = Matcher::semantic_match(&s, &[0.1, 0.99]).unwrap();
        assert_eq!(m.entry_index, 1);
        assert!(m.score > 0.95);
    }

    #[test]
    fn semantic_match_on_empty_store_is_none() {
        let s = ExpertMapStore::new(4, 2, 4, 1);
        assert!(Matcher::semantic_match(&s, &[1.0, 0.0]).is_none());
    }

    #[test]
    fn trajectory_match_uses_prefix_only() {
        // Two stored maps agree at layer 0 but diverge at layer 1.
        let a = ExpertMap::new(vec![vec![0.9, 0.1, 0.0, 0.0], vec![0.9, 0.1, 0.0, 0.0]]);
        let b = ExpertMap::new(vec![vec![0.9, 0.1, 0.0, 0.0], vec![0.0, 0.0, 0.1, 0.9]]);
        let s = store_with(vec![(vec![1.0, 0.0], a), (vec![0.0, 1.0], b)]);
        // Observed prefix matching layer-1 divergence of b.
        let observed = vec![vec![0.9, 0.1, 0.0, 0.0], vec![0.0, 0.0, 0.2, 0.8]];
        let m = Matcher::trajectory_match(&s, &observed).unwrap();
        assert_eq!(m.entry_index, 1);
        assert!(m.score > 0.95);
    }

    #[test]
    fn empty_prefix_matches_nothing() {
        let s = store_with(vec![(vec![1.0, 0.0], peaked(2, 4, &[0]))]);
        assert!(Matcher::trajectory_match(&s, &[]).is_none());
    }

    #[test]
    fn incremental_tracker_agrees_with_one_shot_search() {
        let maps: Vec<ExpertMap> = (0..5)
            .map(|i| peaked(4, 4, &[i % 4, (i + 1) % 4]))
            .collect();
        let s = store_with(
            maps.iter()
                .enumerate()
                .map(|(i, m)| (vec![i as f64, 1.0], m.clone()))
                .collect(),
        );
        let query = peaked(4, 4, &[2, 3]);
        let mut tracker = TrajectoryTracker::new();
        tracker.reset(&s);
        for l in 0..4 {
            tracker.observe_layer(&s, query.layer(l));
            let inc = tracker.best(&s).unwrap();
            let prefix: Vec<Vec<f64>> = (0..=l).map(|x| query.layer(x).to_vec()).collect();
            let one_shot = Matcher::trajectory_match(&s, &prefix).unwrap();
            assert_eq!(inc.entry_index, one_shot.entry_index, "layer {l}");
            assert!((inc.score - one_shot.score).abs() < 1e-9, "layer {l}");
        }
    }

    #[test]
    fn tracker_reports_nothing_before_observations() {
        let s = store_with(vec![(vec![1.0, 0.0], peaked(2, 4, &[0]))]);
        let mut t = TrajectoryTracker::new();
        t.reset(&s);
        assert!(t.best(&s).is_none());
        assert_eq!(t.layers_observed(), 0);
    }

    #[test]
    #[should_panic(expected = "store mutated")]
    fn tracker_detects_store_mutation() {
        let mut s = store_with(vec![(vec![1.0, 0.0], peaked(2, 4, &[0]))]);
        let mut t = TrajectoryTracker::new();
        t.reset(&s);
        // Mutating the store between reset and observe must be caught.
        let mut bigger = ExpertMapStore::new(8, 2, 4, 1);
        std::mem::swap(&mut s, &mut bigger);
        s.insert(vec![0.0, 1.0], peaked(2, 4, &[1]));
        s.insert(vec![0.5, 0.5], peaked(2, 4, &[2]));
        s.insert(vec![0.5, -0.5], peaked(2, 4, &[3]));
        t.observe_layer(&s, &[0.25, 0.25, 0.25, 0.25]);
    }

    #[test]
    fn higher_scores_for_true_continuations() {
        // A tracker observing a's prefix should score a above b.
        let a = peaked(6, 4, &[0, 1]);
        let b = peaked(6, 4, &[2, 3]);
        let s = store_with(vec![(vec![1.0, 0.0], a.clone()), (vec![0.0, 1.0], b)]);
        let mut t = TrajectoryTracker::new();
        t.reset(&s);
        for l in 0..3 {
            t.observe_layer(&s, a.layer(l));
        }
        let m = t.best(&s).unwrap();
        assert_eq!(m.entry_index, 0);
        assert!(m.score > 0.99);
    }
}
