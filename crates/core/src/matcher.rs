//! The Expert Map Matcher (paper §4.2): semantic and trajectory search.
//!
//! * **Semantic search** (Eq. 4) serves layers `1…d`, where the prefetch
//!   distance means no trajectory has been observed yet: the iteration's
//!   input embedding is cosine-matched against every stored embedding.
//! * **Trajectory search** (Eq. 5) serves layers `d+1…L`: the partial map
//!   observed so far (layers `1…l`) is cosine-matched against the same
//!   prefix of every stored map, and the *matched map's* `P_{l+d}` guides
//!   the target layer.
//!
//! The trajectory matcher is incremental: observing one more layer costs
//! `O(C·J)` (one dot-product row per stored entry) instead of re-scanning
//! the whole prefix, which is what makes per-layer matching affordable —
//! the same reason the paper's implementation stores maps as contiguous
//! ndarrays.

use crate::store::ExpertMapStore;
use fmoe_stats::{argmax_cosine_slab, cosine_similarity, top_k_cosine_slab};

/// Outcome of a map search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchResult {
    /// Index of the best entry in the store.
    pub entry_index: usize,
    /// Cosine similarity score in `[-1, 1]`.
    pub score: f64,
}

/// Stateless search entry points plus the incremental trajectory state.
#[derive(Debug)]
pub struct Matcher;

impl Matcher {
    /// Semantic search: the stored entry whose embedding best matches
    /// `embedding`. `None` on an empty store.
    ///
    /// Uses the store's contiguous embedding slab (one streamed kernel
    /// with precomputed norms) whenever it is available and the query
    /// covers the slab stride; otherwise it falls back to
    /// [`Matcher::semantic_match_reference`]. Both paths score
    /// bit-identically — locked by a proptest.
    #[must_use]
    pub fn semantic_match(store: &ExpertMapStore, embedding: &[f64]) -> Option<MatchResult> {
        if let Some((slab, norms, stride)) = store.embedding_slab() {
            if let Some((entry_index, score)) = argmax_cosine_slab(embedding, slab, stride, norms) {
                return Some(MatchResult { entry_index, score });
            }
        }
        Self::semantic_match_reference(store, embedding)
    }

    /// The reference semantic search: a per-entry [`cosine_similarity`]
    /// scan over `Vec`-of-`Vec` storage. Kept as the slow path the slab
    /// kernel is verified against (and as the fallback for queries the
    /// slab cannot serve, e.g. ragged embedding dimensions).
    #[must_use]
    pub fn semantic_match_reference(
        store: &ExpertMapStore,
        embedding: &[f64],
    ) -> Option<MatchResult> {
        let mut best: Option<MatchResult> = None;
        for (i, entry) in store.entries().enumerate() {
            let score = cosine_similarity(embedding, &entry.embedding);
            if best.is_none_or(|b| score > b.score) {
                best = Some(MatchResult {
                    entry_index: i,
                    score,
                });
            }
        }
        best
    }

    /// The `k` best semantic matches, ordered by descending score with
    /// ties broken toward the lower entry index. Heap-selected over the
    /// embedding slab in `O(C·log k)`; falls back to
    /// [`Matcher::semantic_top_k_reference`] when the slab is
    /// unavailable.
    #[must_use]
    pub fn semantic_top_k(store: &ExpertMapStore, embedding: &[f64], k: usize) -> Vec<MatchResult> {
        if let Some((slab, norms, stride)) = store.embedding_slab() {
            if embedding.len() >= stride {
                return top_k_cosine_slab(embedding, slab, stride, norms, k)
                    .into_iter()
                    .map(|(entry_index, score)| MatchResult { entry_index, score })
                    .collect();
            }
        }
        Self::semantic_top_k_reference(store, embedding, k)
    }

    /// Reference top-k: score every entry, full sort, truncate.
    #[must_use]
    pub fn semantic_top_k_reference(
        store: &ExpertMapStore,
        embedding: &[f64],
        k: usize,
    ) -> Vec<MatchResult> {
        let mut scored: Vec<MatchResult> = store
            .entries()
            .enumerate()
            .map(|(i, entry)| MatchResult {
                entry_index: i,
                score: cosine_similarity(embedding, &entry.embedding),
            })
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then(a.entry_index.cmp(&b.entry_index))
        });
        scored.truncate(k);
        scored
    }

    /// One-shot trajectory search over an explicit prefix (used by tests
    /// and offline analysis; the engine path uses [`TrajectoryTracker`]).
    ///
    /// Returns `None` for an empty or zero-norm prefix — a zero-norm
    /// observation carries no direction to match on, and this keeps the
    /// one-shot path agreeing with [`TrajectoryTracker::best`], which
    /// also reports `None` in that case (previously this path returned
    /// `Some` with score `0.0` while the tracker returned `None`).
    #[must_use]
    pub fn trajectory_match(
        store: &ExpertMapStore,
        observed_prefix: &[Vec<f64>],
    ) -> Option<MatchResult> {
        if observed_prefix.is_empty() {
            return None;
        }
        let flat: Vec<f64> = observed_prefix.iter().flatten().copied().collect();
        if flat.iter().map(|p| p * p).sum::<f64>() <= 0.0 {
            return None;
        }
        let layers = observed_prefix.len();
        let mut best: Option<MatchResult> = None;
        for (i, entry) in store.entries().enumerate() {
            let j = entry.map.experts_per_layer();
            let prefix = &entry.flat()[..(layers * j).min(entry.flat().len())];
            let score = cosine_similarity(&flat, prefix);
            if best.is_none_or(|b| score > b.score) {
                best = Some(MatchResult {
                    entry_index: i,
                    score,
                });
            }
        }
        best
    }
}

/// Incremental per-request trajectory search state.
///
/// Reset it at each iteration start, feed it each layer's realized
/// distribution with [`TrajectoryTracker::observe_layer`], and query
/// [`TrajectoryTracker::best`] to get the current best match. The store
/// must not be mutated between `reset` and the last query of an iteration
/// (the engine only mutates it at iteration boundaries).
#[derive(Debug, Default)]
pub struct TrajectoryTracker {
    dots: Vec<f64>,
    query_norm2: f64,
    layers_observed: usize,
}

impl TrajectoryTracker {
    /// A tracker with no observations.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears observations and resizes to the store's current population.
    pub fn reset(&mut self, store: &ExpertMapStore) {
        self.dots.clear();
        self.dots.resize(store.len(), 0.0);
        self.query_norm2 = 0.0;
        self.layers_observed = 0;
    }

    /// Number of layers observed so far this iteration.
    #[must_use]
    pub fn layers_observed(&self) -> usize {
        self.layers_observed
    }

    /// Folds one more layer's distribution into the running dot products.
    ///
    /// # Panics
    ///
    /// Panics if the store's population changed since `reset` — that
    /// would silently corrupt the incremental state.
    pub fn observe_layer(&mut self, store: &ExpertMapStore, distribution: &[f64]) {
        assert_eq!(
            self.dots.len(),
            store.len(),
            "store mutated mid-iteration; call reset() first"
        );
        let l = self.layers_observed;
        let j = store.experts_per_layer();
        let ms = store.map_stride();
        // Stream the store's contiguous map slab instead of chasing
        // per-entry `Vec`s; every map has exactly `L·J` elements, so one
        // bound check covers all rows. Accumulation order per dot product
        // is unchanged — scores stay bit-identical to the reference
        // one-shot search.
        if (l + 1) * j <= ms {
            let slab = store.map_slab();
            for (i, dot) in self.dots.iter_mut().enumerate() {
                let row = &slab[i * ms + l * j..i * ms + (l + 1) * j];
                for (a, b) in distribution.iter().zip(row) {
                    *dot += a * b;
                }
            }
        }
        self.query_norm2 += distribution.iter().map(|p| p * p).sum::<f64>();
        self.layers_observed += 1;
    }

    /// The best-matching entry for the observed prefix, or `None` when
    /// the store is empty or nothing has been observed.
    #[must_use]
    pub fn best(&self, store: &ExpertMapStore) -> Option<MatchResult> {
        if self.layers_observed == 0 || store.is_empty() || self.query_norm2 <= 0.0 {
            return None;
        }
        let qn = self.query_norm2.sqrt();
        let ps = store.num_layers() + 1;
        let layers = self.layers_observed.min(store.num_layers());
        let norms = store.prefix_norm2_slab();
        let mut best: Option<MatchResult> = None;
        for (i, &dot) in self.dots.iter().enumerate() {
            let en2 = norms[i * ps + layers];
            let score = if en2 <= 0.0 {
                0.0
            } else {
                (dot / (qn * en2.sqrt())).clamp(-1.0, 1.0)
            };
            if best.is_none_or(|b| score > b.score) {
                best = Some(MatchResult {
                    entry_index: i,
                    score,
                });
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::ExpertMap;

    fn peaked(l_count: usize, j: usize, peaks: &[usize]) -> ExpertMap {
        ExpertMap::new(
            (0..l_count)
                .map(|l| {
                    let mut row = vec![0.01; j];
                    row[peaks[l % peaks.len()]] = 1.0 - 0.01 * (j as f64 - 1.0);
                    row
                })
                .collect(),
        )
    }

    fn store_with(entries: Vec<(Vec<f64>, ExpertMap)>) -> ExpertMapStore {
        let l = entries[0].1.num_layers();
        let j = entries[0].1.experts_per_layer();
        let mut s = ExpertMapStore::new(entries.len().max(1), l, j, 1);
        for (e, m) in entries {
            s.insert(e, m);
        }
        s
    }

    #[test]
    fn semantic_match_picks_closest_embedding() {
        let s = store_with(vec![
            (vec![1.0, 0.0], peaked(2, 4, &[0])),
            (vec![0.0, 1.0], peaked(2, 4, &[1])),
        ]);
        let m = Matcher::semantic_match(&s, &[0.1, 0.99]).unwrap();
        assert_eq!(m.entry_index, 1);
        assert!(m.score > 0.95);
    }

    #[test]
    fn semantic_match_on_empty_store_is_none() {
        let s = ExpertMapStore::new(4, 2, 4, 1);
        assert!(Matcher::semantic_match(&s, &[1.0, 0.0]).is_none());
    }

    #[test]
    fn trajectory_match_uses_prefix_only() {
        // Two stored maps agree at layer 0 but diverge at layer 1.
        let a = ExpertMap::new(vec![vec![0.9, 0.1, 0.0, 0.0], vec![0.9, 0.1, 0.0, 0.0]]);
        let b = ExpertMap::new(vec![vec![0.9, 0.1, 0.0, 0.0], vec![0.0, 0.0, 0.1, 0.9]]);
        let s = store_with(vec![(vec![1.0, 0.0], a), (vec![0.0, 1.0], b)]);
        // Observed prefix matching layer-1 divergence of b.
        let observed = vec![vec![0.9, 0.1, 0.0, 0.0], vec![0.0, 0.0, 0.2, 0.8]];
        let m = Matcher::trajectory_match(&s, &observed).unwrap();
        assert_eq!(m.entry_index, 1);
        assert!(m.score > 0.95);
    }

    #[test]
    fn empty_prefix_matches_nothing() {
        let s = store_with(vec![(vec![1.0, 0.0], peaked(2, 4, &[0]))]);
        assert!(Matcher::trajectory_match(&s, &[]).is_none());
    }

    #[test]
    fn zero_norm_prefix_agrees_between_one_shot_and_tracker() {
        // A zero-norm observed prefix used to make the one-shot search
        // return Some(index 0, score 0.0) while the incremental tracker
        // returned None. Both must report None.
        let s = store_with(vec![
            (vec![1.0, 0.0], peaked(2, 4, &[0])),
            (vec![0.0, 1.0], peaked(2, 4, &[1])),
        ]);
        let zeros = vec![vec![0.0; 4], vec![0.0; 4]];
        assert!(Matcher::trajectory_match(&s, &zeros).is_none());
        let mut t = TrajectoryTracker::new();
        t.reset(&s);
        t.observe_layer(&s, &[0.0; 4]);
        t.observe_layer(&s, &[0.0; 4]);
        assert!(t.best(&s).is_none());
    }

    #[test]
    fn semantic_fast_path_matches_reference() {
        let s = store_with(vec![
            (vec![1.0, 0.0], peaked(2, 4, &[0])),
            (vec![0.0, 1.0], peaked(2, 4, &[1])),
            (vec![0.7, 0.7], peaked(2, 4, &[2])),
        ]);
        assert!(s.embedding_slab().is_some(), "slab path must be active");
        for q in [[0.1, 0.99], [1.0, 0.0], [-0.3, 0.2], [0.0, 0.0]] {
            let fast = Matcher::semantic_match(&s, &q).unwrap();
            let slow = Matcher::semantic_match_reference(&s, &q).unwrap();
            assert_eq!(fast.entry_index, slow.entry_index);
            assert_eq!(fast.score.to_bits(), slow.score.to_bits());
        }
        // Short query: slab cannot serve it; fallback still answers.
        let fast = Matcher::semantic_match(&s, &[1.0]).unwrap();
        let slow = Matcher::semantic_match_reference(&s, &[1.0]).unwrap();
        assert_eq!(fast.entry_index, slow.entry_index);
        assert_eq!(fast.score.to_bits(), slow.score.to_bits());
    }

    #[test]
    fn semantic_top_k_matches_reference_order() {
        let s = store_with(vec![
            (vec![1.0, 0.0], peaked(2, 4, &[0])),
            (vec![0.0, 1.0], peaked(2, 4, &[1])),
            (vec![0.7, 0.7], peaked(2, 4, &[2])),
            (vec![1.0, 0.0], peaked(2, 4, &[3])), // exact tie with entry 0
        ]);
        for k in 0..=5 {
            let fast = Matcher::semantic_top_k(&s, &[1.0, 0.05], k);
            let slow = Matcher::semantic_top_k_reference(&s, &[1.0, 0.05], k);
            assert_eq!(fast.len(), slow.len(), "k={k}");
            for (f, r) in fast.iter().zip(&slow) {
                assert_eq!(f.entry_index, r.entry_index, "k={k}");
                assert_eq!(f.score.to_bits(), r.score.to_bits(), "k={k}");
            }
        }
        // The exact tie keeps the lower index first.
        let top = Matcher::semantic_top_k(&s, &[1.0, 0.0], 2);
        assert_eq!(top[0].entry_index, 0);
        assert_eq!(top[1].entry_index, 3);
    }

    #[test]
    fn incremental_tracker_agrees_with_one_shot_search() {
        let maps: Vec<ExpertMap> = (0..5)
            .map(|i| peaked(4, 4, &[i % 4, (i + 1) % 4]))
            .collect();
        let s = store_with(
            maps.iter()
                .enumerate()
                .map(|(i, m)| (vec![i as f64, 1.0], m.clone()))
                .collect(),
        );
        let query = peaked(4, 4, &[2, 3]);
        let mut tracker = TrajectoryTracker::new();
        tracker.reset(&s);
        for l in 0..4 {
            tracker.observe_layer(&s, query.layer(l));
            let inc = tracker.best(&s).unwrap();
            let prefix: Vec<Vec<f64>> = (0..=l).map(|x| query.layer(x).to_vec()).collect();
            let one_shot = Matcher::trajectory_match(&s, &prefix).unwrap();
            assert_eq!(inc.entry_index, one_shot.entry_index, "layer {l}");
            assert!((inc.score - one_shot.score).abs() < 1e-9, "layer {l}");
        }
    }

    #[test]
    fn tracker_reports_nothing_before_observations() {
        let s = store_with(vec![(vec![1.0, 0.0], peaked(2, 4, &[0]))]);
        let mut t = TrajectoryTracker::new();
        t.reset(&s);
        assert!(t.best(&s).is_none());
        assert_eq!(t.layers_observed(), 0);
    }

    #[test]
    #[should_panic(expected = "store mutated")]
    fn tracker_detects_store_mutation() {
        let mut s = store_with(vec![(vec![1.0, 0.0], peaked(2, 4, &[0]))]);
        let mut t = TrajectoryTracker::new();
        t.reset(&s);
        // Mutating the store between reset and observe must be caught.
        let mut bigger = ExpertMapStore::new(8, 2, 4, 1);
        std::mem::swap(&mut s, &mut bigger);
        s.insert(vec![0.0, 1.0], peaked(2, 4, &[1]));
        s.insert(vec![0.5, 0.5], peaked(2, 4, &[2]));
        s.insert(vec![0.5, -0.5], peaked(2, 4, &[3]));
        t.observe_layer(&s, &[0.25, 0.25, 0.25, 0.25]);
    }

    #[test]
    fn higher_scores_for_true_continuations() {
        // A tracker observing a's prefix should score a above b.
        let a = peaked(6, 4, &[0, 1]);
        let b = peaked(6, 4, &[2, 3]);
        let s = store_with(vec![(vec![1.0, 0.0], a.clone()), (vec![0.0, 1.0], b)]);
        let mut t = TrajectoryTracker::new();
        t.reset(&s);
        for l in 0..3 {
            t.observe_layer(&s, a.layer(l));
        }
        let m = t.best(&s).unwrap();
        assert_eq!(m.entry_index, 0);
        assert!(m.score > 0.99);
    }
}
