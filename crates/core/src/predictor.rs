//! [`FmoePredictor`]: the full fMoE policy behind the `fmoe-serving`
//! predictor interface.
//!
//! Per iteration (paper §3.2 workflow):
//!
//! * `begin_iteration` — **semantic search** over the Expert Map Store
//!   selects the best historical iteration by embedding similarity; its
//!   map's layers `1…d` drive prefetch plans for the window the
//!   trajectory cannot reach yet.
//! * `observe_gate(l)` — the realized distribution extends the
//!   **incremental trajectory search**; the best match's layer `l + d`
//!   drives that target layer's plans.
//! * Both paths size their selections with the **similarity-aware
//!   threshold** `δ = clip(1 − score)` and order plans by
//!   `PRI = p / (l − l_now)`.
//! * `end_iteration` — the realized map and embedding are inserted into
//!   the store (redundancy-deduplicated at capacity).
//!
//! Every ingredient can be ablated through [`FmoeConfig`], reproducing
//! the paper's Fig. 12a variants.

use crate::config::FmoeConfig;
use crate::map::ExpertMap;
use crate::matcher::{Matcher, TrajectoryTracker};
use crate::selection::{prefetch_priority, select_experts, select_top_n, SelectedExpert};
use crate::store::ExpertMapStore;
use fmoe_model::gate::TokenSpan;
use fmoe_model::{ExpertId, GateSimulator, ModelConfig, RequestRouting};
use fmoe_serving::{ExpertPredictor, IndexMode, IterationContext, PredictorTiming, PrefetchPlan};
use std::collections::BTreeMap;

/// A historical request used to pre-populate the store offline (the
/// paper's 70% split).
#[derive(Debug, Clone, Copy)]
pub struct HistoryRequest {
    /// Routing identity of the historical prompt.
    pub routing: RequestRouting,
    /// Prompt length in tokens.
    pub prompt_tokens: u64,
    /// Iterations to record (prefill + decodes).
    pub iterations: u64,
}

#[derive(Debug, Default)]
struct ElementState {
    tracker: TrajectoryTracker,
}

/// Per-element predictor state, in one of two representations.
///
/// Batch element slots are small dense integers (`0..batch width`), so
/// the default is a flat `Vec` indexed by element — grown on first
/// sight of a wider batch, allocation-free at steady state. The
/// `Reference` variant retains the pre-dense `BTreeMap` so the
/// differential suite can pin the two against each other (DESIGN.md
/// §16). Element state is only ever accessed by key — never iterated —
/// so the representations cannot diverge observably.
#[derive(Debug)]
enum ElementTable {
    Dense(Vec<ElementState>),
    Reference(BTreeMap<usize, ElementState>),
}

impl ElementTable {
    /// The element's state, created default-initialized on first use.
    fn state_mut(&mut self, element: usize) -> &mut ElementState {
        match self {
            Self::Dense(v) => {
                if element >= v.len() {
                    v.resize_with(element + 1, ElementState::default);
                }
                &mut v[element]
            }
            Self::Reference(map) => map.entry(element).or_default(),
        }
    }

    fn clear(&mut self) {
        match self {
            Self::Dense(v) => v.clear(),
            Self::Reference(map) => map.clear(),
        }
    }
}

/// The fMoE offloading policy.
#[derive(Debug)]
pub struct FmoePredictor {
    model: ModelConfig,
    config: FmoeConfig,
    store: ExpertMapStore,
    elements: ElementTable,
}

impl FmoePredictor {
    /// Creates the policy with an empty Expert Map Store.
    #[must_use]
    pub fn new(model: ModelConfig, config: FmoeConfig) -> Self {
        let store = ExpertMapStore::new(
            config.store_capacity,
            model.num_layers as usize,
            model.experts_per_layer as usize,
            config.prefetch_distance,
        )
        .with_replacement(config.store_replacement);
        Self {
            model,
            config,
            store,
            elements: ElementTable::Dense(Vec::new()),
        }
    }

    /// Selects the per-element state representation: [`IndexMode::Dense`]
    /// keeps the flat `Vec` hot path, [`IndexMode::Reference`] retains the
    /// pre-dense `BTreeMap` for differential testing (DESIGN.md §16).
    #[must_use]
    pub fn with_index_mode(mut self, mode: IndexMode) -> Self {
        self.elements = match mode {
            IndexMode::Dense => ElementTable::Dense(Vec::new()),
            IndexMode::Reference => ElementTable::Reference(BTreeMap::new()),
        };
        self
    }

    /// Number of maps currently stored.
    #[must_use]
    pub fn store_len(&self) -> usize {
        self.store.len()
    }

    /// Read access to the store (analysis/benches).
    #[must_use]
    pub fn store(&self) -> &ExpertMapStore {
        &self.store
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &FmoeConfig {
        &self.config
    }

    /// Saves the Expert Map Store to a file, so a later serving session
    /// can start warm (see [`crate::persist`]).
    ///
    /// # Errors
    ///
    /// Propagates file I/O errors.
    pub fn save_store_to_path(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        self.store.save_to_path(path)
    }

    /// Replaces the predictor's store with one loaded from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; `InvalidData` when the file's dimensions do
    /// not match this predictor's model.
    pub fn load_store_from_path(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<()> {
        let store = ExpertMapStore::load_from_path(path)?;
        if store.num_layers() != self.model.num_layers as usize
            || store.experts_per_layer() != self.model.experts_per_layer as usize
        {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "stored maps do not match this predictor's model dimensions",
            ));
        }
        self.store = store;
        self.elements.clear();
        Ok(())
    }

    /// Pre-populates the store by replaying historical requests through
    /// the router — the paper's offline setup, where 70% of each dataset's
    /// context data is stored before evaluation (§6.1).
    pub fn populate_from_history(
        &mut self,
        gate: &GateSimulator,
        history: &[HistoryRequest],
        max_iterations_per_request: u64,
    ) {
        let layers = self.model.num_layers;
        for req in history {
            let iters = req.iterations.min(max_iterations_per_request).max(1);
            for iter in 0..iters {
                let span = if iter == 0 {
                    TokenSpan::prefill(req.prompt_tokens)
                } else {
                    TokenSpan::single(req.prompt_tokens + iter - 1)
                };
                let rows: Vec<Vec<f64>> = (0..layers)
                    .map(|l| gate.iteration_distribution(req.routing, iter, l, span))
                    .collect();
                let embedding = gate.semantic_embedding(req.routing, iter);
                self.store.insert(embedding, ExpertMap::new(rows));
            }
        }
    }

    /// Applies the configured selection rule to a searched distribution.
    /// Prefill iterations floor the threshold mass (see
    /// [`FmoeConfig::prefill_coverage_floor`]).
    fn select(&self, distribution: &[f64], score: f64, is_prefill: bool) -> Vec<SelectedExpert> {
        if self.config.use_dynamic_threshold {
            let effective_score = if is_prefill {
                score.min(1.0 - self.config.prefill_coverage_floor)
            } else {
                score
            };
            select_experts(
                distribution,
                effective_score,
                self.config.min_prefetch_per_layer,
                self.config.max_prefetch_per_layer,
            )
        } else {
            select_top_n(distribution, self.config.fixed_prefetch_count)
        }
    }

    /// Builds priority-ordered plans for a set of `(layer, selection)`
    /// targets.
    fn plans_for(
        &self,
        targets: &[(u32, Vec<SelectedExpert>)],
        current_layer: i64,
    ) -> Vec<PrefetchPlan> {
        let mut scored: Vec<(f64, PrefetchPlan)> = Vec::new();
        for (layer, selection) in targets {
            for &(slot, p) in selection {
                let plan = PrefetchPlan::fetch(ExpertId::new(*layer, slot as u32), p);
                scored.push((prefetch_priority(p, *layer, current_layer), plan));
            }
        }
        if self.config.use_priority_ordering {
            scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        }
        scored.into_iter().map(|(_, plan)| plan).collect()
    }
}

impl ExpertPredictor for FmoePredictor {
    fn name(&self) -> String {
        if self.config.use_semantic_search && self.config.use_dynamic_threshold {
            "fMoE".into()
        } else if self.config.use_semantic_search {
            "fMoE (T+S)".into()
        } else {
            "fMoE (T)".into()
        }
    }

    fn timing(&self) -> PredictorTiming {
        PredictorTiming {
            latency_ns: self.config.matching_latency_ns,
            synchronous: self.config.synchronous_matcher,
            blocking_prefetch: false,
            update_ns: self.config.update_latency_ns,
        }
    }

    fn begin_iteration(&mut self, ctx: &IterationContext) -> Vec<PrefetchPlan> {
        let state = self.elements.state_mut(ctx.element);
        state.tracker.reset(&self.store);

        if !self.config.use_semantic_search || self.store.is_empty() {
            return Vec::new();
        }
        let Some(m) = Matcher::semantic_match(&self.store, &ctx.embedding) else {
            return Vec::new();
        };
        let d = self.config.prefetch_distance.min(self.model.num_layers);
        let entry = self.store.entry(m.entry_index);
        let targets: Vec<(u32, Vec<SelectedExpert>)> = (0..d)
            .map(|l| {
                (
                    l,
                    self.select(entry.map.layer(l as usize), m.score, ctx.is_prefill),
                )
            })
            .collect();
        self.plans_for(&targets, -1)
    }

    fn observe_gate(
        &mut self,
        ctx: &IterationContext,
        layer: u32,
        distribution: &[f64],
    ) -> Vec<PrefetchPlan> {
        let state = self.elements.state_mut(ctx.element);
        state.tracker.observe_layer(&self.store, distribution);

        let target = layer + self.config.prefetch_distance;
        if target >= self.model.num_layers || self.store.is_empty() {
            return Vec::new();
        }
        let Some(m) = state.tracker.best(&self.store) else {
            return Vec::new();
        };
        let entry = self.store.entry(m.entry_index);
        let window_end = (target + self.config.prefetch_window).min(self.model.num_layers);
        let neutral = 1.0 / f64::from(self.model.experts_per_layer);
        let confidence = m.score.clamp(0.0, 1.0);
        let mut targets: Vec<(u32, Vec<SelectedExpert>)> = Vec::new();
        let mut advisories: Vec<PrefetchPlan> = Vec::new();
        for t in target..window_end {
            let searched = entry.map.layer(t as usize).to_vec();
            let selection = self.select(&searched, m.score, ctx.is_prefill);
            // §4.5: the searched map's probabilities also drive eviction
            // priority for *cached* experts — advise the non-selected
            // slots so unlikely residents become eviction candidates.
            // The forecast is confidence-weighted: a dubious match must
            // not confidently punish residents, so the advised value is
            // pulled toward the neutral prior as the score drops.
            for (slot, &p) in searched.iter().enumerate() {
                if !selection.iter().any(|&(s, _)| s == slot) {
                    let advised = confidence * p + (1.0 - confidence) * neutral;
                    advisories.push(PrefetchPlan::advise(ExpertId::new(t, slot as u32), advised));
                }
            }
            targets.push((t, selection));
        }
        let mut plans = self.plans_for(&targets, i64::from(layer));
        plans.extend(advisories);
        plans
    }

    fn end_iteration(&mut self, ctx: &IterationContext, realized_map: &[Vec<f64>]) {
        if realized_map.len() == self.model.num_layers as usize {
            self.store
                .insert(ctx.embedding.clone(), ExpertMap::new(realized_map.to_vec()));
        }
    }

    fn reset(&mut self) {
        self.store.clear();
        self.elements.clear();
    }

    fn semantic_affinity(&self, embedding: &[f64]) -> Option<f64> {
        // Mean cosine score of the store's best AFFINITY_TOP_K matches —
        // through the same `top_k_cosine_slab` fast path the matcher
        // uses, so the signal costs one slab scan. A single best match
        // would be noisy (one lucky map dominates); averaging a few asks
        // "has this replica seen a *population* of similar prompts".
        const AFFINITY_TOP_K: usize = 4;
        let matches = Matcher::semantic_top_k(&self.store, embedding, AFFINITY_TOP_K);
        if matches.is_empty() {
            return None;
        }
        let sum: f64 = matches.iter().map(|m| m.score).sum();
        Some(sum / matches.len() as f64)
    }

    fn warm_state(&self) -> Option<Vec<u8>> {
        // The wire encoding used for on-disk persistence doubles as the
        // donor-warmed restart payload; its byte length is the transfer
        // cost a recovering replica pays to copy this store.
        if self.store.is_empty() {
            return None;
        }
        let mut buf = Vec::new();
        self.store.save_to(&mut buf).ok()?;
        Some(buf)
    }

    fn restore_warm_state(&mut self, snapshot: &[u8]) -> bool {
        let mut r = snapshot;
        match ExpertMapStore::load_from(&mut r) {
            Ok(store)
                if store.num_layers() == self.model.num_layers as usize
                    && store.experts_per_layer() == self.model.experts_per_layer as usize =>
            {
                self.store = store;
                self.elements.clear();
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmoe_model::{presets, GateParams};

    fn gate() -> GateSimulator {
        let cfg = presets::small_test_model();
        GateSimulator::new(cfg.clone(), GateParams::for_model(&cfg))
    }

    fn predictor() -> FmoePredictor {
        let cfg = presets::small_test_model();
        FmoePredictor::new(cfg.clone(), FmoeConfig::for_model(&cfg))
    }

    fn history(cluster: u64, n: u64) -> Vec<HistoryRequest> {
        (0..n)
            .map(|i| HistoryRequest {
                routing: RequestRouting {
                    cluster,
                    request_seed: 1000 + i,
                },
                prompt_tokens: 16,
                iterations: 6,
            })
            .collect()
    }

    fn ctx_for(g: &GateSimulator, routing: RequestRouting, iteration: u64) -> IterationContext {
        IterationContext {
            element: 0,
            request_id: 7,
            iteration,
            is_prefill: iteration == 0,
            span: TokenSpan::single(16 + iteration),
            embedding: g.semantic_embedding(routing, iteration),
            routing,
        }
    }

    #[test]
    fn empty_store_produces_no_plans() {
        let g = gate();
        let mut p = predictor();
        let routing = RequestRouting {
            cluster: 1,
            request_seed: 7,
        };
        let ctx = ctx_for(&g, routing, 0);
        assert!(p.begin_iteration(&ctx).is_empty());
        let dist = g.iteration_distribution(routing, 0, 0, ctx.span);
        assert!(p.observe_gate(&ctx, 0, &dist).is_empty());
    }

    #[test]
    fn populate_fills_store_and_respects_capacity() {
        let g = gate();
        let mut p = predictor();
        p.populate_from_history(&g, &history(1, 10), 4);
        assert_eq!(p.store_len(), 40);
        let cap = p.config().store_capacity;
        p.populate_from_history(&g, &history(2, 2000), 1);
        assert!(p.store_len() <= cap);
    }

    #[test]
    fn semantic_window_covers_first_d_layers() {
        let g = gate();
        let mut p = predictor();
        p.populate_from_history(&g, &history(3, 8), 4);
        let routing = RequestRouting {
            cluster: 3,
            request_seed: 999_999,
        };
        let plans = p.begin_iteration(&ctx_for(&g, routing, 0));
        assert!(!plans.is_empty());
        let d = p.config().prefetch_distance;
        assert!(plans.iter().all(|plan| plan.expert.layer < d));
        // Constraint 8 floor: at least K+1 per covered layer.
        let layer0 = plans.iter().filter(|pl| pl.expert.layer == 0).count();
        assert!(layer0 >= p.config().min_prefetch_per_layer);
    }

    #[test]
    fn trajectory_plans_target_layer_plus_d() {
        let g = gate();
        let mut p = predictor();
        p.populate_from_history(&g, &history(4, 8), 4);
        let routing = RequestRouting {
            cluster: 4,
            request_seed: 555_555,
        };
        let ctx = ctx_for(&g, routing, 1);
        let _ = p.begin_iteration(&ctx);
        let dist = g.iteration_distribution(routing, 1, 0, ctx.span);
        let plans = p.observe_gate(&ctx, 0, &dist);
        let d = p.config().prefetch_distance;
        let w = p.config().prefetch_window;
        assert!(!plans.is_empty());
        // Fetch plans cover the window [d, d+w); advisories may also
        // appear for the same layers.
        assert!(plans
            .iter()
            .all(|plan| plan.expert.layer >= d && plan.expert.layer < d + w));
        assert!(plans
            .iter()
            .any(|plan| !plan.advisory && plan.expert.layer == d));
    }

    #[test]
    fn no_plans_beyond_last_layer() {
        let g = gate();
        let mut p = predictor();
        p.populate_from_history(&g, &history(5, 4), 2);
        let routing = RequestRouting {
            cluster: 5,
            request_seed: 1,
        };
        let ctx = ctx_for(&g, routing, 0);
        let _ = p.begin_iteration(&ctx);
        let last = g.config().num_layers - 1;
        for l in 0..=last {
            let dist = g.iteration_distribution(routing, 0, l, ctx.span);
            let plans = p.observe_gate(&ctx, l, &dist);
            if l + p.config().prefetch_distance >= g.config().num_layers {
                assert!(plans.is_empty(), "layer {l} should have no target");
            }
        }
    }

    /// Coverage of the true activations by the predictor's plans, at a
    /// *fixed* prefetch budget (dynamic threshold off), restricted to the
    /// layers the given phase covers.
    fn plan_coverage(
        g: &GateSimulator,
        store_cluster: u64,
        query_cluster: u64,
        semantic_window_only: bool,
    ) -> f64 {
        let cfg = presets::small_test_model();
        let fc = FmoeConfig::for_model(&cfg).without_dynamic_threshold();
        let d = fc.prefetch_distance;
        let mut p = FmoePredictor::new(cfg, fc);
        p.populate_from_history(g, &history(store_cluster, 12), 8);
        let routing = RequestRouting {
            cluster: query_cluster,
            request_seed: 31337,
        };
        let mut hits = 0usize;
        let mut total = 0usize;
        for iter in 0..6u64 {
            let ctx = ctx_for(g, routing, iter);
            let mut planned: Vec<Vec<u32>> = vec![Vec::new(); g.config().num_layers as usize];
            for plan in p.begin_iteration(&ctx) {
                planned[plan.expert.layer as usize].push(plan.expert.slot);
            }
            for l in 0..g.config().num_layers {
                let dist = g.iteration_distribution(routing, iter, l, ctx.span);
                for plan in p.observe_gate(&ctx, l, &dist) {
                    planned[plan.expert.layer as usize].push(plan.expert.slot);
                }
            }
            for l in 0..g.config().num_layers {
                if semantic_window_only && l >= d {
                    continue;
                }
                let activated = g.activated_slots(routing, iter, l, ctx.span);
                for slot in activated {
                    total += 1;
                    if planned[l as usize].contains(&slot) {
                        hits += 1;
                    }
                }
            }
        }
        hits as f64 / total.max(1) as f64
    }

    #[test]
    fn same_cluster_semantic_window_beats_cross_cluster() {
        // The semantic search claim (§4.2): for the first d layers — where
        // no trajectory exists — history from the same semantic population
        // predicts activations far better than history from an unrelated
        // one, at an equal prefetch budget.
        let g = gate();
        let same = plan_coverage(&g, 6, 6, true);
        let cross = plan_coverage(&g, 7, 6, true);
        assert!(
            same > cross + 0.15,
            "same-cluster window coverage {same} vs cross-cluster {cross}"
        );
        assert!(same > 0.55, "same-cluster window coverage too weak: {same}");
    }

    #[test]
    fn full_request_coverage_is_strong_with_matching_history() {
        let g = gate();
        let same = plan_coverage(&g, 6, 6, false);
        assert!(same > 0.6, "full-request coverage too weak: {same}");
    }

    #[test]
    fn warm_state_round_trips_through_a_cold_peer() {
        let g = gate();
        let mut donor = predictor();
        donor.populate_from_history(&g, &history(6, 10), 6);
        assert!(donor.store_len() > 0);
        let snapshot = donor.warm_state().expect("populated store snapshots");

        let mut restarted = predictor();
        assert!(
            restarted.warm_state().is_none(),
            "empty store has no warm state"
        );
        assert!(restarted.restore_warm_state(&snapshot));
        assert_eq!(restarted.store_len(), donor.store_len());
        // The restored store carries the donor's semantic history: the
        // affinity signal agrees between donor and restarted peer up to
        // the wire encoding's quantization.
        let routing = RequestRouting {
            cluster: 6,
            request_seed: 4242,
        };
        let emb = g.semantic_embedding(routing, 0);
        let donor_affinity = donor.semantic_affinity(&emb).expect("donor has history");
        let restored_affinity = restarted
            .semantic_affinity(&emb)
            .expect("restored peer has history");
        assert!(
            (donor_affinity - restored_affinity).abs() < 1e-6,
            "affinity drifted through snapshot: {donor_affinity} vs {restored_affinity}"
        );
    }

    #[test]
    fn restore_warm_state_rejects_garbage_and_keeps_state() {
        let g = gate();
        let mut p = predictor();
        p.populate_from_history(&g, &history(6, 4), 6);
        let before = p.store_len();
        assert!(!p.restore_warm_state(b"not a store snapshot"));
        assert_eq!(p.store_len(), before);
    }

    #[test]
    fn end_iteration_grows_store() {
        let g = gate();
        let mut p = predictor();
        let routing = RequestRouting {
            cluster: 8,
            request_seed: 2,
        };
        let ctx = ctx_for(&g, routing, 0);
        let rows: Vec<Vec<f64>> = (0..g.config().num_layers)
            .map(|l| g.iteration_distribution(routing, 0, l, ctx.span))
            .collect();
        p.end_iteration(&ctx, &rows);
        assert_eq!(p.store_len(), 1);
        // Incomplete maps (mid-iteration abort) are ignored.
        p.end_iteration(&ctx, &rows[..2]);
        assert_eq!(p.store_len(), 1);
    }

    #[test]
    fn reset_empties_everything() {
        let g = gate();
        let mut p = predictor();
        p.populate_from_history(&g, &history(9, 3), 2);
        assert!(p.store_len() > 0);
        p.reset();
        assert_eq!(p.store_len(), 0);
    }

    #[test]
    fn timing_is_asynchronous() {
        let p = predictor();
        let t = p.timing();
        assert!(!t.synchronous);
        assert!(t.latency_ns > 0);
    }

    #[test]
    fn ablation_names() {
        let cfg = presets::small_test_model();
        let full = FmoePredictor::new(cfg.clone(), FmoeConfig::for_model(&cfg));
        assert_eq!(full.name(), "fMoE");
        let ts = FmoePredictor::new(
            cfg.clone(),
            FmoeConfig::for_model(&cfg).without_dynamic_threshold(),
        );
        assert_eq!(ts.name(), "fMoE (T+S)");
        let t = FmoePredictor::new(cfg.clone(), FmoeConfig::for_model(&cfg).trajectory_only());
        assert_eq!(t.name(), "fMoE (T)");
    }
}
