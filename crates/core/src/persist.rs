//! Expert Map Store persistence.
//!
//! The paper's offline mode (§6.1) pre-populates the store from historical
//! serving before evaluation — which presumes the store survives between
//! serving sessions. This module gives it a durable form: a small,
//! versioned, little-endian binary format holding each entry's semantic
//! embedding and expert map at fp32 (the same precision the paper's NumPy
//! implementation stores, and the layout `ExpertMap::storage_bytes`
//! accounts for).
//!
//! Layout:
//!
//! ```text
//! magic    b"FMOE"                      4 bytes
//! version  u32                          4
//! capacity u64, layers u32, experts u32, prefetch_distance u32
//! entries  u64
//! per entry:
//!   embedding_len u32, embedding [f32] ...
//!   map [f32; layers*experts]
//! ```
//!
//! All multi-byte values are little-endian. Loading validates the magic,
//! version and dimensions and fails with `InvalidData` on any mismatch —
//! a truncated or corrupted store must never load partially.
//!
//! ```
//! use fmoe::map::ExpertMap;
//! use fmoe::store::ExpertMapStore;
//!
//! let mut store = ExpertMapStore::new(16, 2, 2, 1);
//! store.insert(vec![1.0, 0.0], ExpertMap::new(vec![vec![0.9, 0.1], vec![0.2, 0.8]]));
//! let mut bytes = Vec::new();
//! store.save_to(&mut bytes).unwrap();
//! let loaded = ExpertMapStore::load_from(&mut bytes.as_slice()).unwrap();
//! assert_eq!(loaded.len(), 1);
//! ```

use crate::map::ExpertMap;
use crate::store::ExpertMapStore;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"FMOE";
const VERSION: u32 = 1;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_f32(w: &mut impl Write, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl ExpertMapStore {
    /// Serializes the store to a writer in the versioned binary format.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from the writer.
    pub fn save_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        write_u32(w, VERSION)?;
        write_u64(w, self.capacity() as u64)?;
        write_u32(w, self.num_layers() as u32)?;
        write_u32(w, self.experts_per_layer() as u32)?;
        write_u32(w, self.prefetch_distance())?;
        write_u64(w, self.len() as u64)?;
        for entry in self.entries() {
            write_u32(w, entry.embedding.len() as u32)?;
            for &x in &entry.embedding {
                write_f32(w, x as f32)?;
            }
            for &p in entry.flat() {
                write_f32(w, p as f32)?;
            }
        }
        Ok(())
    }

    /// Deserializes a store previously written by [`Self::save_to`].
    ///
    /// # Errors
    ///
    /// `InvalidData` on a bad magic/version, inconsistent dimensions, or a
    /// truncated stream; other I/O errors are propagated.
    pub fn load_from(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(invalid("not an Expert Map Store file (bad magic)"));
        }
        let version = read_u32(r)?;
        if version != VERSION {
            return Err(invalid(format!("unsupported store version {version}")));
        }
        let capacity = read_u64(r)? as usize;
        let layers = read_u32(r)? as usize;
        let experts = read_u32(r)? as usize;
        let distance = read_u32(r)?;
        if capacity == 0 || layers == 0 || experts == 0 {
            return Err(invalid("zero dimension in store header"));
        }
        let count = read_u64(r)? as usize;
        if count > capacity {
            return Err(invalid(format!(
                "store claims {count} entries but capacity is {capacity}"
            )));
        }
        let mut store = ExpertMapStore::new(capacity, layers, experts, distance);
        for _ in 0..count {
            let emb_len = read_u32(r)? as usize;
            if emb_len > 1 << 20 {
                return Err(invalid("implausible embedding length"));
            }
            let mut embedding = Vec::with_capacity(emb_len);
            for _ in 0..emb_len {
                embedding.push(f64::from(read_f32(r)?));
            }
            let mut rows = Vec::with_capacity(layers);
            for _ in 0..layers {
                let mut row = Vec::with_capacity(experts);
                for _ in 0..experts {
                    row.push(f64::from(read_f32(r)?));
                }
                rows.push(row);
            }
            store.insert(embedding, ExpertMap::new(rows));
        }
        Ok(store)
    }

    /// Saves the store to a file path.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn save_to_path(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut file = io::BufWriter::new(std::fs::File::create(path)?);
        self.save_to(&mut file)
    }

    /// Loads a store from a file path.
    ///
    /// # Errors
    ///
    /// Propagates open/read errors; `InvalidData` on format problems.
    pub fn load_from_path(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut file = io::BufReader::new(std::fs::File::open(path)?);
        Self::load_from(&mut file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::ExpertMap;

    fn sample_store(entries: usize) -> ExpertMapStore {
        let mut s = ExpertMapStore::new(64, 3, 4, 2);
        for i in 0..entries {
            let emb = vec![i as f64 * 0.5, 1.0 - i as f64 * 0.1, 0.25];
            let rows: Vec<Vec<f64>> = (0..3)
                .map(|l| {
                    let mut row = vec![0.1; 4];
                    row[(i + l) % 4] = 0.7;
                    row
                })
                .collect();
            s.insert(emb, ExpertMap::new(rows));
        }
        s
    }

    #[test]
    fn round_trip_preserves_entries() {
        let store = sample_store(5);
        let mut buf = Vec::new();
        store.save_to(&mut buf).unwrap();
        let loaded = ExpertMapStore::load_from(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), store.len());
        assert_eq!(loaded.capacity(), store.capacity());
        for (a, b) in store.entries().zip(loaded.entries()) {
            // fp32 quantization on disk: compare at f32 precision.
            for (x, y) in a.embedding.iter().zip(&b.embedding) {
                assert!((x - y).abs() < 1e-6, "{x} vs {y}");
            }
            for (x, y) in a.flat().iter().zip(b.flat()) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn empty_store_round_trips() {
        let store = ExpertMapStore::new(8, 2, 2, 1);
        let mut buf = Vec::new();
        store.save_to(&mut buf).unwrap();
        let loaded = ExpertMapStore::load_from(&mut buf.as_slice()).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(loaded.capacity(), 8);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        sample_store(2).save_to(&mut buf).unwrap();
        buf[0] = b'X';
        let err = ExpertMapStore::load_from(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = Vec::new();
        sample_store(2).save_to(&mut buf).unwrap();
        buf[4] = 99;
        let err = ExpertMapStore::load_from(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let mut buf = Vec::new();
        sample_store(3).save_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 7);
        assert!(ExpertMapStore::load_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let store = sample_store(4);
        let dir = std::env::temp_dir().join("fmoe_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.fmoe");
        store.save_to_path(&path).unwrap();
        let loaded = ExpertMapStore::load_from_path(&path).unwrap();
        assert_eq!(loaded.len(), 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn loaded_store_searches_like_the_original() {
        use crate::matcher::Matcher;
        let store = sample_store(6);
        let mut buf = Vec::new();
        store.save_to(&mut buf).unwrap();
        let loaded = ExpertMapStore::load_from(&mut buf.as_slice()).unwrap();
        let query = vec![0.5, 0.9, 0.25];
        let a = Matcher::semantic_match(&store, &query).unwrap();
        let b = Matcher::semantic_match(&loaded, &query).unwrap();
        assert_eq!(a.entry_index, b.entry_index);
        assert!((a.score - b.score).abs() < 1e-6);
    }
}
