//! The Expert Map Store (paper §4.4).
//!
//! A capacity-bounded collection of historical iterations, each stored as
//! a `(semantic embedding, expert map)` pair. When full, an incoming
//! iteration *replaces* its most redundant stored peer, where redundancy
//! unifies the two search similarities with the paper's weighting:
//!
//! ```text
//! RDY_{x,y} = d/L · score_sem(x,y)  +  (L−d)/L · score_traj(x,y)
//! ```
//!
//! — the semantic score guides `d` of the `L` layers and the trajectory
//! score the remaining `L−d`, so each contributes in proportion. Dropping
//! the *most similar* stored entry preserves diversity, maximizing the
//! chance any future prompt finds a useful map (the paper frames this as
//! minimum sphere covering of the activation space).

use crate::map::ExpertMap;
use fmoe_stats::cosine_similarity;
use fmoe_stats::SplitMix64;
use serde::Serialize;

/// How the store chooses which entry an incoming iteration replaces once
/// the capacity is reached.
///
/// The paper's design is [`ReplacementPolicy::Redundancy`]; the other two
/// exist for the ablation benches (`DESIGN.md` §6) that quantify what the
/// redundancy-scored deduplication buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, serde::Deserialize)]
pub enum ReplacementPolicy {
    /// Replace the most redundant entry (max `RDY`) — the paper's §4.4
    /// deduplication, which preserves diversity.
    Redundancy,
    /// Replace the oldest entry, ignoring content.
    Fifo,
    /// Replace a pseudo-random entry (seeded, deterministic).
    Random,
}

/// One stored iteration.
#[derive(Debug, Clone)]
pub struct MapEntry {
    /// Monotone insertion id (diagnostics).
    pub id: u64,
    /// The iteration's semantic embedding.
    pub embedding: Vec<f64>,
    /// The iteration's expert map.
    pub map: ExpertMap,
    /// Cached row-major flattening of `map`.
    flat: Vec<f64>,
    /// `prefix_norm2[l]` = squared L2 norm of the first `l` layers of
    /// `flat` — lets the trajectory matcher compute prefix cosines
    /// incrementally.
    prefix_norm2: Vec<f64>,
}

impl MapEntry {
    fn new(id: u64, embedding: Vec<f64>, map: ExpertMap) -> Self {
        let flat = map.flatten();
        let j = map.experts_per_layer();
        let mut prefix_norm2 = Vec::with_capacity(map.num_layers() + 1);
        prefix_norm2.push(0.0);
        let mut acc = 0.0;
        for l in 0..map.num_layers() {
            for &p in &flat[l * j..(l + 1) * j] {
                acc += p * p;
            }
            prefix_norm2.push(acc);
        }
        Self {
            id,
            embedding,
            map,
            flat,
            prefix_norm2,
        }
    }

    /// The flattened map.
    #[must_use]
    pub fn flat(&self) -> &[f64] {
        &self.flat
    }

    /// Squared norm of the first `layers` layers of the flattened map.
    #[must_use]
    pub fn prefix_norm2(&self, layers: usize) -> f64 {
        self.prefix_norm2[layers.min(self.prefix_norm2.len() - 1)]
    }
}

/// Store bookkeeping counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StoreStats {
    /// Entries appended while below capacity.
    pub appended: u64,
    /// Entries that replaced a redundant peer at capacity.
    pub replaced: u64,
}

/// The Expert Map Store. See the module docs.
///
/// ```
/// use fmoe::map::ExpertMap;
/// use fmoe::matcher::Matcher;
/// use fmoe::store::ExpertMapStore;
///
/// let mut store = ExpertMapStore::new(100, 2, 4, 1);
/// store.insert(
///     vec![1.0, 0.0],
///     ExpertMap::new(vec![vec![0.7, 0.1, 0.1, 0.1], vec![0.1, 0.7, 0.1, 0.1]]),
/// );
/// let m = Matcher::semantic_match(&store, &[0.9, 0.1]).unwrap();
/// assert_eq!(m.entry_index, 0);
/// assert!(m.score > 0.95);
/// ```
#[derive(Debug)]
pub struct ExpertMapStore {
    capacity: usize,
    num_layers: usize,
    experts_per_layer: usize,
    prefetch_distance: u32,
    replacement: ReplacementPolicy,
    rng_state: u64,
    entries: Vec<MapEntry>,
    next_id: u64,
    stats: StoreStats,
    /// Structure-of-arrays mirror of `entries` for the matcher fast path:
    /// row `i` of each slab is entry `i`'s data, kept in sync by
    /// [`ExpertMapStore::insert`] and [`ExpertMapStore::clear`].
    ///
    /// Row-major flattened maps, stride `L·J`.
    map_slab: Vec<f64>,
    /// Cumulative per-layer squared prefix norms, stride `L + 1`.
    prefix_norm2_slab: Vec<f64>,
    /// Embeddings, stride `emb_stride` — only maintained while every
    /// stored embedding shares one dimension (`emb_uniform`).
    emb_slab: Vec<f64>,
    /// Squared embedding norms (left-to-right accumulation, matching
    /// `cosine_similarity`'s order bit-for-bit).
    emb_norm2: Vec<f64>,
    /// Embedding dimension fixed by the first insert; 0 before it.
    emb_stride: usize,
    /// Cleared the first time an embedding with a different dimension
    /// arrives; the semantic matcher then falls back to the reference
    /// per-entry path.
    emb_uniform: bool,
}

impl ExpertMapStore {
    /// Creates an empty store.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or the model dimensions are zero.
    #[must_use]
    pub fn new(
        capacity: usize,
        num_layers: usize,
        experts_per_layer: usize,
        prefetch_distance: u32,
    ) -> Self {
        assert!(capacity > 0, "store capacity must be positive");
        assert!(
            num_layers > 0 && experts_per_layer > 0,
            "model dims must be positive"
        );
        Self {
            capacity,
            num_layers,
            experts_per_layer,
            prefetch_distance,
            replacement: ReplacementPolicy::Redundancy,
            rng_state: 0x5EED_CAFE,
            entries: Vec::new(),
            next_id: 0,
            stats: StoreStats::default(),
            map_slab: Vec::new(),
            prefix_norm2_slab: Vec::new(),
            emb_slab: Vec::new(),
            emb_norm2: Vec::new(),
            emb_stride: 0,
            emb_uniform: true,
        }
    }

    /// Switches the at-capacity replacement strategy (ablations only; the
    /// paper's design is redundancy-scored deduplication).
    #[must_use]
    pub fn with_replacement(mut self, policy: ReplacementPolicy) -> Self {
        self.replacement = policy;
        self
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the store holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity `C`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of layers `L` each stored map spans.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Experts per layer `J` of each stored map.
    #[must_use]
    pub fn experts_per_layer(&self) -> usize {
        self.experts_per_layer
    }

    /// The prefetch distance the redundancy weighting uses.
    #[must_use]
    pub fn prefetch_distance(&self) -> u32 {
        self.prefetch_distance
    }

    /// Read access to a stored entry.
    #[must_use]
    pub fn entry(&self, index: usize) -> &MapEntry {
        &self.entries[index]
    }

    /// Iterates over stored entries.
    pub fn entries(&self) -> impl Iterator<Item = &MapEntry> {
        self.entries.iter()
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// The paper's unified redundancy score between a candidate
    /// `(embedding, map)` and stored entry `y`.
    #[must_use]
    pub fn redundancy(&self, embedding: &[f64], flat_map: &[f64], y: usize) -> f64 {
        let entry = &self.entries[y];
        let sem = cosine_similarity(embedding, &entry.embedding);
        let traj = cosine_similarity(flat_map, &entry.flat);
        let d = f64::from(self.prefetch_distance).min(self.num_layers as f64);
        let l = self.num_layers as f64;
        (d / l) * sem + ((l - d) / l) * traj
    }

    /// Inserts an iteration. Below capacity it is appended; at capacity
    /// it replaces the stored entry with the highest redundancy score
    /// (the most similar, hence least diversity-preserving, peer).
    ///
    /// Returns the index the entry now occupies.
    ///
    /// # Panics
    ///
    /// Panics if the map's dimensions do not match the store's model.
    pub fn insert(&mut self, embedding: Vec<f64>, map: ExpertMap) -> usize {
        assert_eq!(map.num_layers(), self.num_layers, "layer count mismatch");
        assert_eq!(
            map.experts_per_layer(),
            self.experts_per_layer,
            "expert count mismatch"
        );
        let id = self.next_id;
        self.next_id += 1;
        if self.entries.len() < self.capacity {
            self.entries.push(MapEntry::new(id, embedding, map));
            self.stats.appended += 1;
            let index = self.entries.len() - 1;
            self.sync_slabs_at(index);
            return index;
        }
        let victim = match self.replacement {
            ReplacementPolicy::Redundancy => {
                // Deduplicate: replace the most redundant stored entry.
                // `new` asserts `capacity > 0`, so the store is non-empty
                // here; the 0 fallback is unreachable.
                let flat = map.flatten();
                (0..self.entries.len())
                    .max_by(|&a, &b| {
                        self.redundancy(&embedding, &flat, a)
                            .total_cmp(&self.redundancy(&embedding, &flat, b))
                    })
                    .unwrap_or(0)
            }
            ReplacementPolicy::Fifo => (0..self.entries.len())
                .min_by_key(|&i| self.entries[i].id)
                .unwrap_or(0),
            ReplacementPolicy::Random => {
                self.rng_state = SplitMix64::mix(self.rng_state.wrapping_add(id));
                (self.rng_state % self.entries.len() as u64) as usize
            }
        };
        self.entries[victim] = MapEntry::new(id, embedding, map);
        self.stats.replaced += 1;
        self.sync_slabs_at(victim);
        victim
    }

    /// Mirrors `entries[index]` into the structure-of-arrays slabs, either
    /// appending a fresh row or overwriting a replaced victim's row.
    fn sync_slabs_at(&mut self, index: usize) {
        let ms = self.map_stride();
        let ps = self.num_layers + 1;
        let entry = &self.entries[index];
        if index * ms == self.map_slab.len() {
            self.map_slab.extend_from_slice(&entry.flat);
            self.prefix_norm2_slab
                .extend_from_slice(&entry.prefix_norm2);
        } else {
            self.map_slab[index * ms..(index + 1) * ms].copy_from_slice(&entry.flat);
            self.prefix_norm2_slab[index * ps..(index + 1) * ps]
                .copy_from_slice(&entry.prefix_norm2);
        }

        if !self.emb_uniform {
            return;
        }
        let emb = &self.entries[index].embedding;
        if self.emb_stride == 0 {
            self.emb_stride = emb.len();
        }
        if emb.len() != self.emb_stride || self.emb_stride == 0 {
            self.emb_uniform = false;
            self.emb_slab.clear();
            self.emb_norm2.clear();
            return;
        }
        let es = self.emb_stride;
        let norm2: f64 = emb.iter().map(|x| x * x).sum();
        if index * es == self.emb_slab.len() {
            self.emb_slab.extend_from_slice(emb);
            self.emb_norm2.push(norm2);
        } else {
            self.emb_slab[index * es..(index + 1) * es].copy_from_slice(emb);
            self.emb_norm2[index] = norm2;
        }
    }

    /// Row-major slab of every stored flattened map; row `i` (stride
    /// [`ExpertMapStore::map_stride`]) is entry `i`'s
    /// [`MapEntry::flat`]. The matcher's trajectory fast path streams
    /// this instead of chasing per-entry `Vec`s.
    #[must_use]
    pub fn map_slab(&self) -> &[f64] {
        &self.map_slab
    }

    /// Stride of [`ExpertMapStore::map_slab`] rows: `L·J` elements.
    #[must_use]
    pub fn map_stride(&self) -> usize {
        self.num_layers * self.experts_per_layer
    }

    /// Slab of cumulative squared prefix norms, stride `L + 1`; element
    /// `i·(L+1) + l` is entry `i`'s [`MapEntry::prefix_norm2`] at `l`.
    #[must_use]
    pub fn prefix_norm2_slab(&self) -> &[f64] {
        &self.prefix_norm2_slab
    }

    /// The semantic fast path's view: `(embeddings, squared norms,
    /// stride)` — or `None` while the store is empty or after embeddings
    /// of differing dimensions were inserted (the caller then uses the
    /// per-entry reference path).
    #[must_use]
    pub fn embedding_slab(&self) -> Option<(&[f64], &[f64], usize)> {
        if self.emb_uniform && !self.entries.is_empty() {
            Some((&self.emb_slab, &self.emb_norm2, self.emb_stride))
        } else {
            None
        }
    }

    /// Deployment memory footprint in bytes, assuming the paper's fp32
    /// NumPy representation: `L·J` probabilities plus the embedding per
    /// entry, 4 bytes each.
    #[must_use]
    pub fn memory_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| (e.map.storage_bytes() + e.embedding.len() * 4) as u64)
            .sum()
    }

    /// Footprint a *full* store of this configuration would occupy — the
    /// quantity the paper's Figure 16 plots against capacity.
    #[must_use]
    pub fn memory_bytes_at_capacity(&self, embedding_dim: usize) -> u64 {
        let per_entry = (self.num_layers * self.experts_per_layer + embedding_dim) * 4;
        (self.capacity * per_entry) as u64
    }

    /// Clears all entries (between experiments).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.stats = StoreStats::default();
        self.map_slab.clear();
        self.prefix_norm2_slab.clear();
        self.emb_slab.clear();
        self.emb_norm2.clear();
        self.emb_stride = 0;
        self.emb_uniform = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_peaked_at(l_count: usize, j: usize, peak: usize) -> ExpertMap {
        ExpertMap::new(
            (0..l_count)
                .map(|_| {
                    let mut row = vec![0.02; j];
                    row[peak] = 1.0 - 0.02 * (j as f64 - 1.0);
                    row
                })
                .collect(),
        )
    }

    fn emb(dir: f64) -> Vec<f64> {
        vec![dir.cos(), dir.sin(), 0.3, -0.1]
    }

    #[test]
    fn appends_below_capacity() {
        let mut s = ExpertMapStore::new(4, 2, 4, 1);
        for i in 0..3 {
            let idx = s.insert(emb(i as f64), map_peaked_at(2, 4, i));
            assert_eq!(idx, i);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.stats().appended, 3);
        assert_eq!(s.stats().replaced, 0);
    }

    #[test]
    fn at_capacity_replaces_most_redundant() {
        let mut s = ExpertMapStore::new(2, 2, 4, 1);
        s.insert(emb(0.0), map_peaked_at(2, 4, 0));
        s.insert(emb(1.5), map_peaked_at(2, 4, 2));
        // New entry nearly identical to the first: it must replace index
        // 0, not the diverse index 1.
        let idx = s.insert(emb(0.05), map_peaked_at(2, 4, 0));
        assert_eq!(idx, 0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.stats().replaced, 1);
        // The diverse entry survived.
        assert!(s.entry(1).map.layer(0)[2] > 0.5);
    }

    #[test]
    fn redundancy_weights_follow_distance() {
        let mut s = ExpertMapStore::new(4, 4, 4, 1);
        s.insert(emb(0.0), map_peaked_at(4, 4, 0));
        let same_map = map_peaked_at(4, 4, 0).flatten();
        let anti_emb: Vec<f64> = emb(0.0).iter().map(|x| -x).collect();
        // d=1, L=4: RDY = 0.25·sem + 0.75·traj. With sem = −1, traj = 1:
        // RDY = 0.5.
        let rdy = s.redundancy(&anti_emb, &same_map, 0);
        assert!((rdy - 0.5).abs() < 1e-9, "rdy {rdy}");
    }

    #[test]
    fn ids_keep_increasing_across_replacement() {
        let mut s = ExpertMapStore::new(1, 2, 4, 1);
        s.insert(emb(0.0), map_peaked_at(2, 4, 0));
        s.insert(emb(0.1), map_peaked_at(2, 4, 1));
        assert_eq!(s.len(), 1);
        assert_eq!(s.entry(0).id, 1);
    }

    #[test]
    fn prefix_norms_are_cumulative() {
        let mut s = ExpertMapStore::new(2, 2, 4, 1);
        s.insert(
            emb(0.0),
            ExpertMap::new(vec![vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 1.0, 0.0, 0.0]]),
        );
        let e = s.entry(0);
        assert_eq!(e.prefix_norm2(0), 0.0);
        assert!((e.prefix_norm2(1) - 1.0).abs() < 1e-12);
        assert!((e.prefix_norm2(2) - 2.0).abs() < 1e-12);
        // Clamped beyond L.
        assert!((e.prefix_norm2(99) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn memory_accounting() {
        let mut s = ExpertMapStore::new(10, 2, 4, 1);
        assert_eq!(s.memory_bytes(), 0);
        s.insert(emb(0.0), map_peaked_at(2, 4, 0));
        // 2·4 probabilities + 4 embedding dims, 4 bytes each.
        assert_eq!(s.memory_bytes(), (8 + 4) * 4);
        assert_eq!(s.memory_bytes_at_capacity(4), 10 * (8 + 4) * 4);
    }

    #[test]
    fn clear_resets() {
        let mut s = ExpertMapStore::new(2, 2, 4, 1);
        s.insert(emb(0.0), map_peaked_at(2, 4, 0));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.stats(), StoreStats::default());
        assert!(s.map_slab().is_empty());
        assert!(s.prefix_norm2_slab().is_empty());
        assert!(s.embedding_slab().is_none());
        // The slabs rebuild after a clear, including the embedding stride.
        s.insert(vec![1.0, 2.0], map_peaked_at(2, 4, 1));
        let (eslab, _, stride) = s.embedding_slab().unwrap();
        assert_eq!(stride, 2);
        assert_eq!(eslab, &[1.0, 2.0]);
    }

    fn assert_slabs_mirror_entries(s: &ExpertMapStore) {
        let ms = s.map_stride();
        let ps = s.num_layers() + 1;
        assert_eq!(s.map_slab().len(), s.len() * ms);
        assert_eq!(s.prefix_norm2_slab().len(), s.len() * ps);
        for (i, e) in s.entries().enumerate() {
            assert_eq!(&s.map_slab()[i * ms..(i + 1) * ms], e.flat());
            for l in 0..=s.num_layers() {
                assert_eq!(
                    s.prefix_norm2_slab()[i * ps + l].to_bits(),
                    e.prefix_norm2(l).to_bits()
                );
            }
        }
        if let Some((eslab, enorm, stride)) = s.embedding_slab() {
            assert_eq!(enorm.len(), s.len());
            for (i, e) in s.entries().enumerate() {
                assert_eq!(&eslab[i * stride..(i + 1) * stride], &e.embedding[..]);
                let want: f64 = e.embedding.iter().map(|x| x * x).sum();
                assert_eq!(enorm[i].to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn slabs_track_appends_and_replacements() {
        let mut s = ExpertMapStore::new(3, 2, 4, 1);
        for i in 0..3 {
            s.insert(emb(i as f64), map_peaked_at(2, 4, i));
            assert_slabs_mirror_entries(&s);
        }
        assert!(s.embedding_slab().is_some());
        // Replacements overwrite the victim's slab rows in place.
        for i in 0..4 {
            s.insert(
                emb(0.2 * f64::from(i)),
                map_peaked_at(2, 4, (i as usize) % 4),
            );
            assert_slabs_mirror_entries(&s);
        }
    }

    #[test]
    fn ragged_embeddings_disable_the_embedding_slab_only() {
        let mut s = ExpertMapStore::new(4, 2, 4, 1);
        s.insert(vec![1.0, 0.0], map_peaked_at(2, 4, 0));
        assert!(s.embedding_slab().is_some());
        s.insert(vec![1.0, 0.0, 0.5], map_peaked_at(2, 4, 1));
        assert!(s.embedding_slab().is_none());
        // Map slabs are unaffected: map dimensions are store-enforced.
        assert_slabs_mirror_entries(&s);
        s.insert(vec![0.5], map_peaked_at(2, 4, 2));
        assert!(s.embedding_slab().is_none());
        assert_slabs_mirror_entries(&s);
    }

    #[test]
    fn random_replacement_advances_rng_state() {
        // Fill to capacity, then insert repeatedly: the seeded RNG state
        // must advance between inserts, so consecutive at-capacity
        // inserts can pick different victims.
        let mut s = ExpertMapStore::new(4, 2, 4, 1).with_replacement(ReplacementPolicy::Random);
        for i in 0..4 {
            s.insert(emb(i as f64), map_peaked_at(2, 4, i));
        }
        let mut victims = Vec::new();
        for i in 0..8 {
            victims.push(s.insert(emb(0.3 * f64::from(i)), map_peaked_at(2, 4, 0)));
        }
        assert_eq!(s.stats().replaced, 8);
        let distinct: std::collections::BTreeSet<usize> = victims.iter().copied().collect();
        assert!(
            distinct.len() >= 2,
            "a frozen rng_state would evict one index forever: {victims:?}"
        );
    }

    #[test]
    fn full_store_memory_matches_at_capacity_projection() {
        let mut s = ExpertMapStore::new(3, 2, 4, 1);
        for i in 0..3 {
            s.insert(emb(i as f64), map_peaked_at(2, 4, i));
        }
        assert_eq!(s.len(), s.capacity());
        // Embeddings from `emb()` are 4-dimensional.
        assert_eq!(s.memory_bytes(), s.memory_bytes_at_capacity(4));
    }

    #[test]
    #[should_panic(expected = "layer count mismatch")]
    fn dimension_mismatch_panics() {
        let mut s = ExpertMapStore::new(2, 3, 4, 1);
        s.insert(emb(0.0), map_peaked_at(2, 4, 0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ExpertMapStore::new(0, 2, 4, 1);
    }
}
