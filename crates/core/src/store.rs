//! The Expert Map Store (paper §4.4).
//!
//! A capacity-bounded collection of historical iterations, each stored as
//! a `(semantic embedding, expert map)` pair. When full, an incoming
//! iteration *replaces* its most redundant stored peer, where redundancy
//! unifies the two search similarities with the paper's weighting:
//!
//! ```text
//! RDY_{x,y} = d/L · score_sem(x,y)  +  (L−d)/L · score_traj(x,y)
//! ```
//!
//! — the semantic score guides `d` of the `L` layers and the trajectory
//! score the remaining `L−d`, so each contributes in proportion. Dropping
//! the *most similar* stored entry preserves diversity, maximizing the
//! chance any future prompt finds a useful map (the paper frames this as
//! minimum sphere covering of the activation space).

use crate::map::ExpertMap;
use fmoe_stats::cosine_similarity;
use fmoe_stats::SplitMix64;
use serde::Serialize;

/// How the store chooses which entry an incoming iteration replaces once
/// the capacity is reached.
///
/// The paper's design is [`ReplacementPolicy::Redundancy`]; the other two
/// exist for the ablation benches (`DESIGN.md` §6) that quantify what the
/// redundancy-scored deduplication buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, serde::Deserialize)]
pub enum ReplacementPolicy {
    /// Replace the most redundant entry (max `RDY`) — the paper's §4.4
    /// deduplication, which preserves diversity.
    Redundancy,
    /// Replace the oldest entry, ignoring content.
    Fifo,
    /// Replace a pseudo-random entry (seeded, deterministic).
    Random,
}

/// One stored iteration.
#[derive(Debug, Clone)]
pub struct MapEntry {
    /// Monotone insertion id (diagnostics).
    pub id: u64,
    /// The iteration's semantic embedding.
    pub embedding: Vec<f64>,
    /// The iteration's expert map.
    pub map: ExpertMap,
    /// Cached row-major flattening of `map`.
    flat: Vec<f64>,
    /// `prefix_norm2[l]` = squared L2 norm of the first `l` layers of
    /// `flat` — lets the trajectory matcher compute prefix cosines
    /// incrementally.
    prefix_norm2: Vec<f64>,
}

impl MapEntry {
    fn new(id: u64, embedding: Vec<f64>, map: ExpertMap) -> Self {
        let flat = map.flatten();
        let j = map.experts_per_layer();
        let mut prefix_norm2 = Vec::with_capacity(map.num_layers() + 1);
        prefix_norm2.push(0.0);
        let mut acc = 0.0;
        for l in 0..map.num_layers() {
            for &p in &flat[l * j..(l + 1) * j] {
                acc += p * p;
            }
            prefix_norm2.push(acc);
        }
        Self {
            id,
            embedding,
            map,
            flat,
            prefix_norm2,
        }
    }

    /// The flattened map.
    #[must_use]
    pub fn flat(&self) -> &[f64] {
        &self.flat
    }

    /// Squared norm of the first `layers` layers of the flattened map.
    #[must_use]
    pub fn prefix_norm2(&self, layers: usize) -> f64 {
        self.prefix_norm2[layers.min(self.prefix_norm2.len() - 1)]
    }
}

/// Store bookkeeping counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StoreStats {
    /// Entries appended while below capacity.
    pub appended: u64,
    /// Entries that replaced a redundant peer at capacity.
    pub replaced: u64,
}

/// The Expert Map Store. See the module docs.
///
/// ```
/// use fmoe::map::ExpertMap;
/// use fmoe::matcher::Matcher;
/// use fmoe::store::ExpertMapStore;
///
/// let mut store = ExpertMapStore::new(100, 2, 4, 1);
/// store.insert(
///     vec![1.0, 0.0],
///     ExpertMap::new(vec![vec![0.7, 0.1, 0.1, 0.1], vec![0.1, 0.7, 0.1, 0.1]]),
/// );
/// let m = Matcher::semantic_match(&store, &[0.9, 0.1]).unwrap();
/// assert_eq!(m.entry_index, 0);
/// assert!(m.score > 0.95);
/// ```
#[derive(Debug)]
pub struct ExpertMapStore {
    capacity: usize,
    num_layers: usize,
    experts_per_layer: usize,
    prefetch_distance: u32,
    replacement: ReplacementPolicy,
    rng_state: u64,
    entries: Vec<MapEntry>,
    next_id: u64,
    stats: StoreStats,
}

impl ExpertMapStore {
    /// Creates an empty store.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or the model dimensions are zero.
    #[must_use]
    pub fn new(
        capacity: usize,
        num_layers: usize,
        experts_per_layer: usize,
        prefetch_distance: u32,
    ) -> Self {
        assert!(capacity > 0, "store capacity must be positive");
        assert!(
            num_layers > 0 && experts_per_layer > 0,
            "model dims must be positive"
        );
        Self {
            capacity,
            num_layers,
            experts_per_layer,
            prefetch_distance,
            replacement: ReplacementPolicy::Redundancy,
            rng_state: 0x5EED_CAFE,
            entries: Vec::new(),
            next_id: 0,
            stats: StoreStats::default(),
        }
    }

    /// Switches the at-capacity replacement strategy (ablations only; the
    /// paper's design is redundancy-scored deduplication).
    #[must_use]
    pub fn with_replacement(mut self, policy: ReplacementPolicy) -> Self {
        self.replacement = policy;
        self
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the store holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity `C`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of layers `L` each stored map spans.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Experts per layer `J` of each stored map.
    #[must_use]
    pub fn experts_per_layer(&self) -> usize {
        self.experts_per_layer
    }

    /// The prefetch distance the redundancy weighting uses.
    #[must_use]
    pub fn prefetch_distance(&self) -> u32 {
        self.prefetch_distance
    }

    /// Read access to a stored entry.
    #[must_use]
    pub fn entry(&self, index: usize) -> &MapEntry {
        &self.entries[index]
    }

    /// Iterates over stored entries.
    pub fn entries(&self) -> impl Iterator<Item = &MapEntry> {
        self.entries.iter()
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// The paper's unified redundancy score between a candidate
    /// `(embedding, map)` and stored entry `y`.
    #[must_use]
    pub fn redundancy(&self, embedding: &[f64], flat_map: &[f64], y: usize) -> f64 {
        let entry = &self.entries[y];
        let sem = cosine_similarity(embedding, &entry.embedding);
        let traj = cosine_similarity(flat_map, &entry.flat);
        let d = f64::from(self.prefetch_distance).min(self.num_layers as f64);
        let l = self.num_layers as f64;
        (d / l) * sem + ((l - d) / l) * traj
    }

    /// Inserts an iteration. Below capacity it is appended; at capacity
    /// it replaces the stored entry with the highest redundancy score
    /// (the most similar, hence least diversity-preserving, peer).
    ///
    /// Returns the index the entry now occupies.
    ///
    /// # Panics
    ///
    /// Panics if the map's dimensions do not match the store's model.
    pub fn insert(&mut self, embedding: Vec<f64>, map: ExpertMap) -> usize {
        assert_eq!(map.num_layers(), self.num_layers, "layer count mismatch");
        assert_eq!(
            map.experts_per_layer(),
            self.experts_per_layer,
            "expert count mismatch"
        );
        let id = self.next_id;
        self.next_id += 1;
        if self.entries.len() < self.capacity {
            self.entries.push(MapEntry::new(id, embedding, map));
            self.stats.appended += 1;
            return self.entries.len() - 1;
        }
        let victim = match self.replacement {
            ReplacementPolicy::Redundancy => {
                // Deduplicate: replace the most redundant stored entry.
                // `new` asserts `capacity > 0`, so the store is non-empty
                // here; the 0 fallback is unreachable.
                let flat = map.flatten();
                (0..self.entries.len())
                    .max_by(|&a, &b| {
                        self.redundancy(&embedding, &flat, a)
                            .total_cmp(&self.redundancy(&embedding, &flat, b))
                    })
                    .unwrap_or(0)
            }
            ReplacementPolicy::Fifo => (0..self.entries.len())
                .min_by_key(|&i| self.entries[i].id)
                .unwrap_or(0),
            ReplacementPolicy::Random => {
                self.rng_state = SplitMix64::mix(self.rng_state.wrapping_add(id));
                (self.rng_state % self.entries.len() as u64) as usize
            }
        };
        self.entries[victim] = MapEntry::new(id, embedding, map);
        self.stats.replaced += 1;
        victim
    }

    /// Deployment memory footprint in bytes, assuming the paper's fp32
    /// NumPy representation: `L·J` probabilities plus the embedding per
    /// entry, 4 bytes each.
    #[must_use]
    pub fn memory_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| (e.map.storage_bytes() + e.embedding.len() * 4) as u64)
            .sum()
    }

    /// Footprint a *full* store of this configuration would occupy — the
    /// quantity the paper's Figure 16 plots against capacity.
    #[must_use]
    pub fn memory_bytes_at_capacity(&self, embedding_dim: usize) -> u64 {
        let per_entry = (self.num_layers * self.experts_per_layer + embedding_dim) * 4;
        (self.capacity * per_entry) as u64
    }

    /// Clears all entries (between experiments).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.stats = StoreStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_peaked_at(l_count: usize, j: usize, peak: usize) -> ExpertMap {
        ExpertMap::new(
            (0..l_count)
                .map(|_| {
                    let mut row = vec![0.02; j];
                    row[peak] = 1.0 - 0.02 * (j as f64 - 1.0);
                    row
                })
                .collect(),
        )
    }

    fn emb(dir: f64) -> Vec<f64> {
        vec![dir.cos(), dir.sin(), 0.3, -0.1]
    }

    #[test]
    fn appends_below_capacity() {
        let mut s = ExpertMapStore::new(4, 2, 4, 1);
        for i in 0..3 {
            let idx = s.insert(emb(i as f64), map_peaked_at(2, 4, i));
            assert_eq!(idx, i);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.stats().appended, 3);
        assert_eq!(s.stats().replaced, 0);
    }

    #[test]
    fn at_capacity_replaces_most_redundant() {
        let mut s = ExpertMapStore::new(2, 2, 4, 1);
        s.insert(emb(0.0), map_peaked_at(2, 4, 0));
        s.insert(emb(1.5), map_peaked_at(2, 4, 2));
        // New entry nearly identical to the first: it must replace index
        // 0, not the diverse index 1.
        let idx = s.insert(emb(0.05), map_peaked_at(2, 4, 0));
        assert_eq!(idx, 0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.stats().replaced, 1);
        // The diverse entry survived.
        assert!(s.entry(1).map.layer(0)[2] > 0.5);
    }

    #[test]
    fn redundancy_weights_follow_distance() {
        let mut s = ExpertMapStore::new(4, 4, 4, 1);
        s.insert(emb(0.0), map_peaked_at(4, 4, 0));
        let same_map = map_peaked_at(4, 4, 0).flatten();
        let anti_emb: Vec<f64> = emb(0.0).iter().map(|x| -x).collect();
        // d=1, L=4: RDY = 0.25·sem + 0.75·traj. With sem = −1, traj = 1:
        // RDY = 0.5.
        let rdy = s.redundancy(&anti_emb, &same_map, 0);
        assert!((rdy - 0.5).abs() < 1e-9, "rdy {rdy}");
    }

    #[test]
    fn ids_keep_increasing_across_replacement() {
        let mut s = ExpertMapStore::new(1, 2, 4, 1);
        s.insert(emb(0.0), map_peaked_at(2, 4, 0));
        s.insert(emb(0.1), map_peaked_at(2, 4, 1));
        assert_eq!(s.len(), 1);
        assert_eq!(s.entry(0).id, 1);
    }

    #[test]
    fn prefix_norms_are_cumulative() {
        let mut s = ExpertMapStore::new(2, 2, 4, 1);
        s.insert(
            emb(0.0),
            ExpertMap::new(vec![vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 1.0, 0.0, 0.0]]),
        );
        let e = s.entry(0);
        assert_eq!(e.prefix_norm2(0), 0.0);
        assert!((e.prefix_norm2(1) - 1.0).abs() < 1e-12);
        assert!((e.prefix_norm2(2) - 2.0).abs() < 1e-12);
        // Clamped beyond L.
        assert!((e.prefix_norm2(99) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn memory_accounting() {
        let mut s = ExpertMapStore::new(10, 2, 4, 1);
        assert_eq!(s.memory_bytes(), 0);
        s.insert(emb(0.0), map_peaked_at(2, 4, 0));
        // 2·4 probabilities + 4 embedding dims, 4 bytes each.
        assert_eq!(s.memory_bytes(), (8 + 4) * 4);
        assert_eq!(s.memory_bytes_at_capacity(4), 10 * (8 + 4) * 4);
    }

    #[test]
    fn clear_resets() {
        let mut s = ExpertMapStore::new(2, 2, 4, 1);
        s.insert(emb(0.0), map_peaked_at(2, 4, 0));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.stats(), StoreStats::default());
    }

    #[test]
    #[should_panic(expected = "layer count mismatch")]
    fn dimension_mismatch_panics() {
        let mut s = ExpertMapStore::new(2, 3, 4, 1);
        s.insert(emb(0.0), map_peaked_at(2, 4, 0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = ExpertMapStore::new(0, 2, 4, 1);
    }
}
