//! Workspace discovery: find the root, enumerate `src/` trees.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Finds the workspace root by walking up from `start` until a
/// `Cargo.toml` containing a `[workspace]` table is found.
///
/// # Errors
///
/// Returns an [`io::Error`] when no workspace root exists above `start`.
pub fn find_workspace_root(start: &Path) -> io::Result<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest)?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                "no workspace Cargo.toml found above the current directory",
            ));
        }
    }
}

/// Enumerates every `.rs` file under the workspace's `src/` trees:
/// `crates/*/src/**` plus the root package's `src/**`. Paths are
/// returned repo-relative with `/` separators, sorted, so diagnostics
/// are stable across platforms and filesystems.
///
/// # Errors
///
/// Returns an [`io::Error`] when a directory cannot be read.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), &mut files)?;
        }
    }
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();
    Ok(files)
}

/// Recursively collects `.rs` files under `dir` (no-op when absent).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// One workspace crate's sources, for the cross-crate analysis stage.
#[derive(Debug, Clone)]
pub struct CrateSources {
    /// Directory name under `crates/` (empty string for the root
    /// package).
    pub dir: String,
    /// Package name from `Cargo.toml` (`fmoe-cache`, …).
    pub package: String,
    /// The crate's extern ident (`fmoe_cache`): package name with `-`
    /// mapped to `_`.
    pub ident: String,
    /// Every `.rs` file under the crate's `src/`, sorted.
    pub files: Vec<PathBuf>,
}

/// Enumerates every workspace crate (members under `crates/` plus the
/// root package) with its package name and source files.
///
/// # Errors
///
/// Returns an [`io::Error`] when a directory or manifest cannot be read.
pub fn workspace_crates(root: &Path) -> io::Result<Vec<CrateSources>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect();
        members.sort();
        for member in members {
            let dir = member
                .file_name()
                .map(|n| n.to_string_lossy().to_string())
                .unwrap_or_default();
            if let Some(c) = crate_sources(&member, &dir)? {
                out.push(c);
            }
        }
    }
    if root.join("Cargo.toml").is_file() {
        if let Some(c) = crate_sources(root, "")? {
            out.push(c);
        }
    }
    Ok(out)
}

/// Reads one crate directory into a [`CrateSources`] (None when the
/// manifest has no package name or there is no `src/`).
fn crate_sources(dir: &Path, dir_name: &str) -> io::Result<Option<CrateSources>> {
    let manifest = fs::read_to_string(dir.join("Cargo.toml"))?;
    let Some(package) = package_name(&manifest) else {
        return Ok(None);
    };
    let mut files = Vec::new();
    collect_rs(&dir.join("src"), &mut files)?;
    if files.is_empty() {
        return Ok(None);
    }
    files.sort();
    let ident = package.replace('-', "_");
    Ok(Some(CrateSources {
        dir: dir_name.to_string(),
        package,
        ident,
        files,
    }))
}

/// Extracts the `[package]` name: the first `name = "…"` line (target
/// tables like `[[bin]]` always come later in this workspace's
/// manifests).
fn package_name(manifest: &str) -> Option<String> {
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let v = rest.trim().trim_matches('"');
                if !v.is_empty() {
                    return Some(v.to_string());
                }
            }
        }
    }
    None
}

/// Renders a path repo-relative with `/` separators for diagnostics.
#[must_use]
pub fn relative_display(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace() {
        let cwd = std::env::current_dir().expect("cwd");
        let root = find_workspace_root(&cwd).expect("workspace root");
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates").is_dir());
    }

    #[test]
    fn enumerates_sources_including_this_file() {
        let cwd = std::env::current_dir().expect("cwd");
        let root = find_workspace_root(&cwd).expect("workspace root");
        let files = workspace_sources(&root).expect("sources");
        assert!(files
            .iter()
            .any(|f| relative_display(&root, f) == "crates/lint/src/walk.rs"));
        // tests/ and benches/ trees are not part of the src walk.
        assert!(files
            .iter()
            .all(|f| !relative_display(&root, f).contains("/tests/")));
    }

    #[test]
    fn workspace_crates_finds_members_and_root() {
        let cwd = std::env::current_dir().expect("cwd");
        let root = find_workspace_root(&cwd).expect("workspace root");
        let crates = workspace_crates(&root).expect("crates");
        let lint = crates
            .iter()
            .find(|c| c.dir == "lint")
            .expect("lint crate present");
        assert_eq!(lint.package, "fmoe-lint");
        assert_eq!(lint.ident, "fmoe_lint");
        assert!(lint.files.iter().any(|f| f.ends_with("src/walk.rs")));
        assert!(crates.iter().any(|c| c.dir.is_empty()), "root package");
    }

    #[test]
    fn package_name_takes_the_package_table_entry() {
        let manifest = "[package]\nname = \"fmoe-x\"\n[[bin]]\nname = \"other\"\n";
        assert_eq!(package_name(manifest).as_deref(), Some("fmoe-x"));
    }

    #[test]
    fn relative_display_uses_forward_slashes() {
        let root = Path::new("/a/b");
        let p = Path::new("/a/b/crates/x/src/lib.rs");
        assert_eq!(relative_display(root, p), "crates/x/src/lib.rs");
    }
}
