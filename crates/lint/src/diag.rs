//! Diagnostics: what a rule reports and how it is rendered.

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; fails the run only under `--deny-all`.
    Warning,
    /// Contract violation; always fails the run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Warning => write!(f, "warning"),
            Self::Error => write!(f, "error"),
        }
    }
}

/// One finding, anchored to a source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule code (`FM001` … `FM007`, or `FM000` for allowlist hygiene).
    pub code: &'static str,
    /// Finding severity before any `--deny-all` promotion.
    pub severity: Severity,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation with the expected fix.
    pub message: String,
    /// The full text of the offending source line (used both for display
    /// and for allowlist `contains` matching).
    pub line_text: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}:{}: {} [{}] {}",
            self.path, self.line, self.col, self.code, self.severity, self.message
        )?;
        let trimmed = self.line_text.trim_end();
        if !trimmed.is_empty() {
            writeln!(f, "    | {}", trimmed.trim_start())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_path_span_code_and_line() {
        let d = Diagnostic {
            code: "FM004",
            severity: Severity::Error,
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 7,
            message: "`unwrap()` in library code".into(),
            line_text: "    x.unwrap();".into(),
        };
        let s = d.to_string();
        assert!(s.contains("crates/x/src/lib.rs:3:7: FM004 [error]"));
        assert!(s.contains("| x.unwrap();"));
    }

    #[test]
    fn severity_orders_warning_below_error() {
        assert!(Severity::Warning < Severity::Error);
    }
}
