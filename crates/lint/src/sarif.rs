//! Machine-readable report formats: SARIF 2.1.0 and a flat JSON shape.
//!
//! Both emitters are hand-written (the vendored serde is a no-op shim)
//! and fully deterministic: diagnostics arrive pre-sorted from
//! [`crate::LintReport`], the rule catalog is emitted in code order,
//! and no timestamps or absolute paths appear anywhere — two runs over
//! the same tree are byte-identical, which CI asserts cross-process.

use crate::diag::{Diagnostic, Severity};
use crate::LintReport;

/// The static rule catalog embedded in SARIF output.
const RULE_CATALOG: &[(&str, &str)] = &[
    (
        "FM000",
        "lint.toml allowlist hygiene (malformed entries, empty justifications, stale suppressions)",
    ),
    (
        "FM001",
        "unordered HashMap/HashSet in simulation-path crates",
    ),
    (
        "FM002",
        "wall-clock time sources outside fmoe-bench binaries",
    ),
    (
        "FM003",
        "unseeded randomness (thread_rng, rand::random, from_entropy)",
    ),
    ("FM004", "unwrap/expect/panic!-family calls in library code"),
    ("FM005", "exact float ==/!= comparisons"),
    (
        "FM006",
        "lossy `as` casts on byte-size / virtual-time quantities",
    ),
    ("FM007", "shared-state hazards in thread-spawning modules"),
    (
        "FM008",
        "simulation-path crate root missing #![forbid(unsafe_code)]",
    ),
    (
        "FM010",
        "public sim-path API transitively reaches a panic site",
    ),
    (
        "FM011",
        "sim-path code transitively reaches a wall clock or unseeded RNG",
    ),
    (
        "FM012",
        "dyn dispatch where no implementor is contract-clean",
    ),
];

/// Escapes a string for inclusion in a JSON document.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The SARIF `level` for a diagnostic, after `--deny-all` promotion.
fn level(d: &Diagnostic, deny_all: bool) -> &'static str {
    if deny_all || d.severity == Severity::Error {
        "error"
    } else {
        "warning"
    }
}

/// Renders the report as a SARIF 2.1.0 document.
#[must_use]
pub fn to_sarif(report: &LintReport, deny_all: bool) -> String {
    let mut out = String::new();
    out.push_str("{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",");
    out.push_str("\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{");
    out.push_str("\"name\":\"fmoe-lint\",");
    out.push_str("\"informationUri\":\"https://github.com/fmoe-sim/fmoe\",\"rules\":[");
    for (i, (id, desc)) in RULE_CATALOG.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            esc(id),
            esc(desc)
        ));
    }
    out.push_str("]}},\"results\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"ruleId\":\"{}\",\"level\":\"{}\",\"message\":{{\"text\":\"{}\"}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
             \"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]}}",
            esc(d.code),
            level(d, deny_all),
            esc(&d.message),
            esc(&d.path),
            d.line,
            d.col
        ));
    }
    out.push_str("]}]}");
    out.push('\n');
    out
}

/// Renders the report as flat JSON (one object per diagnostic).
#[must_use]
pub fn to_json(report: &LintReport, deny_all: bool) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"files\":{},\"suppressed\":{},\"errors\":{},\"warnings\":{},\"diagnostics\":[",
        report.files,
        report.suppressed,
        report.errors(deny_all),
        report.warnings(deny_all)
    ));
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"code\":\"{}\",\"level\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\
             \"message\":\"{}\",\"line_text\":\"{}\"}}",
            esc(d.code),
            level(d, deny_all),
            esc(&d.path),
            d.line,
            d.col,
            esc(&d.message),
            esc(&d.line_text)
        ));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> LintReport {
        LintReport {
            diagnostics: vec![Diagnostic {
                code: "FM001",
                severity: Severity::Error,
                path: "crates/x/src/lib.rs".into(),
                line: 3,
                col: 24,
                message: "`HashMap` in a \"sim\" crate".into(),
                line_text: "use std::collections::HashMap;".into(),
            }],
            suppressed: 2,
            files: 5,
        }
    }

    #[test]
    fn sarif_has_schema_rules_and_result() {
        let s = to_sarif(&sample_report(), true);
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"ruleId\":\"FM001\""));
        assert!(s.contains("\"startLine\":3"));
        assert!(s.contains("\\\"sim\\\""), "quotes must be escaped");
        assert!(s.contains("\"id\":\"FM010\""), "rule catalog is embedded");
    }

    #[test]
    fn emitters_are_deterministic() {
        let r = sample_report();
        assert_eq!(to_sarif(&r, false), to_sarif(&r, false));
        assert_eq!(to_json(&r, false), to_json(&r, false));
    }

    #[test]
    fn json_counts_match_report() {
        let s = to_json(&sample_report(), false);
        assert!(s.contains("\"files\":5"));
        assert!(s.contains("\"suppressed\":2"));
        assert!(s.contains("\"errors\":1"));
    }
}
