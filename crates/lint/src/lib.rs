//! `fmoe-lint`: in-repo static analysis enforcing the determinism &
//! no-panic contract (DESIGN.md §10).
//!
//! The whole value of this reproduction rests on bit-reproducible
//! discrete-event simulation: seeded runs must be byte-identical, and
//! library code must never panic mid-sweep. This crate is the tooling
//! layer that keeps the contract true *statically*:
//!
//! | Code  | Rule |
//! |-------|------|
//! | FM001 | unordered `HashMap`/`HashSet` in simulation-path crates |
//! | FM002 | wall-clock time sources outside `fmoe-bench` |
//! | FM003 | unseeded randomness (`thread_rng`, `rand::random`, `from_entropy`) |
//! | FM004 | `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in library code |
//! | FM005 | exact float `==`/`!=` comparisons |
//! | FM006 | lossy `as` casts on byte-size / virtual-time quantities |
//! | FM007 | shared-state hazards in thread-spawning modules |
//! | FM008 | sim-path crate root missing `#![forbid(unsafe_code)]` |
//! | FM010 | public sim-path API transitively reaches a panic site |
//! | FM011 | sim-path code transitively reaches a wall clock / unseeded RNG |
//! | FM012 | `dyn` dispatch where no implementor is contract-clean |
//!
//! FM001–FM008 are token-level rules over a single file. FM010–FM012
//! are *semantic*: a second stage ([`parser`] → [`graph`] → [`taint`])
//! parses items, builds the cross-crate call graph, and propagates
//! panic / wall-clock / randomness taint caller-ward, so a public API
//! that reaches `panic!` three crates away is still caught. Reports can
//! be rendered as text, flat JSON, or SARIF 2.1.0 ([`sarif`]), and the
//! unambiguous rewrites have autofixes behind a dry-run diff ([`fix`]).
//!
//! Intended violations are suppressed via the checked-in `lint.toml`
//! allowlist; every entry must carry a non-empty justification (FM000
//! polices the allowlist itself).
//!
//! Run it with:
//!
//! ```text
//! cargo run -p fmoe-lint -- --workspace --deny-all
//! ```
//!
//! The implementation is dependency-free and uses its own small Rust
//! lexer ([`lexer`]) that understands strings, comments, `cfg(test)`
//! blocks, and attribute spans — consistent with the vendored-stub
//! offline build, no `syn` required.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod allowlist;
pub mod diag;
pub mod fix;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod taint;
pub mod walk;

pub use allowlist::Allowlist;
pub use diag::{Diagnostic, Severity};
pub use rules::{lint_source, FileContext, FileKind};

use std::fs;
use std::path::Path;

/// Outcome of a full lint run, ready for rendering and exit-code logic.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Diagnostics that survived the allowlist, sorted by location.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of findings suppressed by `lint.toml`.
    pub suppressed: usize,
    /// Number of files linted.
    pub files: usize,
}

impl LintReport {
    /// Number of error-severity diagnostics (after `deny_all` promotion,
    /// every diagnostic counts).
    #[must_use]
    pub fn errors(&self, deny_all: bool) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| deny_all || d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics (zero under `deny_all`).
    #[must_use]
    pub fn warnings(&self, deny_all: bool) -> usize {
        if deny_all {
            0
        } else {
            self.diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Warning)
                .count()
        }
    }
}

/// Knobs for a workspace lint run.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Directory names (under `crates/`) treated as simulation-path.
    pub sim_path_crates: Vec<String>,
    /// Widen FM010's panic seeds to slice indexing and non-literal
    /// division (`--pedantic-panics`).
    pub pedantic_panics: bool,
}

impl Default for LintOptions {
    fn default() -> Self {
        Self {
            sim_path_crates: rules::SIM_PATH_CRATES
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
            pedantic_panics: false,
        }
    }
}

/// Lints every workspace `src/` tree rooted at `root`, applying the
/// allowlist at `allowlist_path` when present. Runs both the
/// token-level rules (FM001–FM008) and the cross-crate semantic stage
/// (FM010–FM012) with default options.
///
/// # Errors
///
/// Returns an [`std::io::Error`] when a source file cannot be read.
pub fn lint_workspace(root: &Path, allowlist_path: &Path) -> std::io::Result<LintReport> {
    lint_workspace_with(root, allowlist_path, &LintOptions::default())
}

/// [`lint_workspace`] with explicit [`LintOptions`].
///
/// # Errors
///
/// Returns an [`std::io::Error`] when a source file cannot be read.
pub fn lint_workspace_with(
    root: &Path,
    allowlist_path: &Path,
    opts: &LintOptions,
) -> std::io::Result<LintReport> {
    let sim = &opts.sim_path_crates;
    // Token stage over the flat file walk.
    let files = walk::workspace_sources(root)?;
    let mut raw = Vec::new();
    for file in &files {
        let rel = walk::relative_display(root, file);
        let source = fs::read_to_string(file)?;
        let ctx = FileContext::classify_with(&rel, sim);
        raw.extend(lint_source(&ctx, &source));
    }
    // Semantic stage over the per-crate source map.
    let crates = walk::workspace_crates(root)?;
    let mut crate_texts = Vec::with_capacity(crates.len());
    for krate in crates {
        let mut texts = Vec::with_capacity(krate.files.len());
        for file in &krate.files {
            let rel = walk::relative_display(root, file);
            texts.push((rel, fs::read_to_string(file)?));
        }
        crate_texts.push((krate, texts));
    }
    let g = graph::CallGraph::build(&crate_texts, sim);
    raw.extend(taint::semantic_diagnostics(&g, opts.pedantic_panics));
    Ok(apply_allowlist(raw, allowlist_path, files.len(), true))
}

/// Lints an explicit set of files (paths are classified by their
/// repo-relative shape, so pass paths relative to the workspace root).
///
/// # Errors
///
/// Returns an [`std::io::Error`] when a source file cannot be read.
pub fn lint_files(
    root: &Path,
    paths: &[String],
    allowlist_path: &Path,
) -> std::io::Result<LintReport> {
    let mut raw = Vec::new();
    for rel in paths {
        let source = fs::read_to_string(root.join(rel))?;
        let ctx = FileContext::classify(rel);
        raw.extend(lint_source(&ctx, &source));
    }
    Ok(apply_allowlist(raw, allowlist_path, paths.len(), false))
}

/// Filters raw findings through the allowlist and appends allowlist
/// hygiene diagnostics (parse problems, empty justifications, and —
/// for workspace runs only — stale entries, as errors).
fn apply_allowlist(
    raw: Vec<Diagnostic>,
    allowlist_path: &Path,
    files: usize,
    check_unused: bool,
) -> LintReport {
    let toml_display = allowlist_path.file_name().map_or_else(
        || "lint.toml".to_string(),
        |n| n.to_string_lossy().to_string(),
    );
    let (mut allow, mut diagnostics) = match fs::read_to_string(allowlist_path) {
        Ok(text) => Allowlist::parse(&toml_display, &text),
        Err(_) => (Allowlist::default(), Vec::new()),
    };
    let mut suppressed = 0usize;
    for d in raw {
        if allow.suppresses(&d) {
            suppressed += 1;
        } else {
            diagnostics.push(d);
        }
    }
    if check_unused {
        diagnostics.extend(allow.unused_warnings(&toml_display));
    }
    diagnostics.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.code).cmp(&(b.path.as_str(), b.line, b.col, b.code))
    });
    LintReport {
        diagnostics,
        suppressed,
        files,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn this_workspace_is_clean_under_deny_all() {
        let cwd = std::env::current_dir().expect("cwd");
        let root = walk::find_workspace_root(&cwd).expect("workspace root");
        let report = lint_workspace(&root, &root.join("lint.toml")).expect("lint run");
        let rendered: String = report.diagnostics.iter().map(ToString::to_string).collect();
        assert_eq!(
            report.errors(true),
            0,
            "workspace must stay lint-clean under --deny-all:\n{rendered}"
        );
    }
}
