//! Mechanical autofixes for the rewrites FM001 and FM005 already know,
//! behind a dry-run diff.
//!
//! Only unambiguous patterns are rewritten:
//!
//! * **FM001** — `HashMap` → `BTreeMap`, `HashSet` → `BTreeSet` at the
//!   flagged token (covers both the `use std::collections::…` import
//!   and the type positions). Lines that rely on hash-only API
//!   (`with_capacity`, `with_hasher`) are skipped — a blind type swap
//!   there would not compile.
//! * **FM005** — `a == 1.5` / `1.5 == a` → `a.total_cmp(&1.5).is_eq()`
//!   (and `!=` → `.is_ne()`), only when one side is an identifier and
//!   the other a float literal on the same line. Anything else
//!   (expression operands, two identifiers) is left for a human.
//!
//! Fixes are planned against the *post-allowlist* diagnostics, so
//! justified sentinels in `lint.toml` are never rewritten. The dry-run
//! renders a unified-style diff and touches nothing; CI asserts the
//! diff is empty on a clean tree (autofix idempotence gate).

use crate::diag::Diagnostic;
use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// One line rewrite inside a file.
#[derive(Debug, Clone)]
pub struct Edit {
    /// 1-based line number.
    pub line: u32,
    /// The line before the rewrite.
    pub old: String,
    /// The line after the rewrite.
    pub new: String,
}

/// All rewrites planned for one file.
#[derive(Debug, Clone)]
pub struct FilePlan {
    /// Repo-relative path.
    pub path: String,
    /// Line edits, sorted by line number.
    pub edits: Vec<Edit>,
}

/// Plans fixes for every fixable diagnostic. Diagnostics that do not
/// match an unambiguous pattern are silently skipped.
///
/// # Errors
///
/// Returns an [`io::Error`] when a flagged file cannot be read.
pub fn plan(root: &Path, diagnostics: &[Diagnostic]) -> io::Result<Vec<FilePlan>> {
    // Group fixable diagnostics by file.
    let mut by_file: BTreeMap<&str, Vec<&Diagnostic>> = BTreeMap::new();
    for d in diagnostics {
        if d.code == "FM001" || d.code == "FM005" {
            by_file.entry(d.path.as_str()).or_default().push(d);
        }
    }
    let mut plans = Vec::new();
    for (path, diags) in by_file {
        let source = fs::read_to_string(root.join(path))?;
        let tokens = lex(&source);
        let mut lines: Vec<String> = source.lines().map(str::to_string).collect();
        // Collect (line, col-span, replacement) edits, then apply the
        // per-line edits right-to-left so earlier columns stay valid.
        let mut raw: Vec<(u32, u32, u32, String)> = Vec::new();
        for d in diags {
            match d.code {
                "FM001" => plan_fm001(&lines, d, &mut raw),
                "FM005" => plan_fm005(&tokens, d, &mut raw),
                _ => {}
            }
        }
        if raw.is_empty() {
            continue;
        }
        raw.sort_by_key(|a| (a.0, std::cmp::Reverse(a.1)));
        raw.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        let mut edits: BTreeMap<u32, (String, String)> = BTreeMap::new();
        for (line_no, start_col, end_col, replacement) in raw {
            let idx = line_no as usize - 1;
            let Some(line) = lines.get(idx) else { continue };
            let old_original = edits
                .get(&line_no)
                .map_or_else(|| line.clone(), |(old, _)| old.clone());
            let chars: Vec<char> = line.chars().collect();
            let (s, e) = (start_col as usize - 1, end_col as usize - 1);
            if s >= chars.len() || e > chars.len() || s >= e {
                continue;
            }
            let new_line: String = chars[..s].iter().collect::<String>()
                + &replacement
                + &chars[e..].iter().collect::<String>();
            lines[idx] = new_line.clone();
            edits.insert(line_no, (old_original, new_line));
        }
        let edits: Vec<Edit> = edits
            .into_iter()
            .map(|(line, (old, new))| Edit { line, old, new })
            .collect();
        if !edits.is_empty() {
            plans.push(FilePlan {
                path: path.to_string(),
                edits,
            });
        }
    }
    Ok(plans)
}

/// FM001: swap the flagged `HashMap`/`HashSet` token for its ordered
/// counterpart.
fn plan_fm001(lines: &[String], d: &Diagnostic, out: &mut Vec<(u32, u32, u32, String)>) {
    let Some(line) = lines.get(d.line as usize - 1) else {
        return;
    };
    // Hash-only constructors have no BTree equivalent; skip the line.
    if line.contains("with_capacity") || line.contains("with_hasher") {
        return;
    }
    let chars: Vec<char> = line.chars().collect();
    let start = d.col as usize - 1;
    for (word, replacement) in [("HashMap", "BTreeMap"), ("HashSet", "BTreeSet")] {
        let end = start + word.len();
        if end <= chars.len() && chars[start..end].iter().collect::<String>() == word {
            out.push((
                d.line,
                d.col,
                d.col + word.len() as u32,
                replacement.to_string(),
            ));
            return;
        }
    }
}

/// FM005: rewrite `ident == float` / `float == ident` into `total_cmp`.
fn plan_fm005(tokens: &[Token], d: &Diagnostic, out: &mut Vec<(u32, u32, u32, String)>) {
    let Some(op_idx) = tokens
        .iter()
        .position(|t| t.line == d.line && t.col == d.col && (t.is_punct("==") || t.is_punct("!=")))
    else {
        return;
    };
    let Some(prev) = op_idx.checked_sub(1).and_then(|i| tokens.get(i)) else {
        return;
    };
    let Some(next) = tokens.get(op_idx + 1) else {
        return;
    };
    if prev.line != d.line || next.line != d.line {
        return;
    }
    // Refuse when the identifier side is actually part of a larger
    // expression (a method call or field access feeding the operand).
    let before_prev = op_idx.checked_sub(2).and_then(|i| tokens.get(i));
    let (ident, float) = match (prev.kind, next.kind) {
        (TokenKind::Ident, TokenKind::Float) => {
            if before_prev.is_some_and(|t| t.is_punct(".") || t.is_punct("::")) {
                return;
            }
            (prev, next)
        }
        (TokenKind::Float, TokenKind::Ident) => {
            if tokens
                .get(op_idx + 2)
                .is_some_and(|t| t.is_punct(".") || t.is_punct("::") || t.is_punct("("))
            {
                return;
            }
            (next, prev)
        }
        _ => return,
    };
    let method = if tokens[op_idx].is_punct("==") {
        "is_eq"
    } else {
        "is_ne"
    };
    // The rewrite spans from the left operand through the right one.
    let start = prev.col;
    let end = next.col + next.text.chars().count() as u32;
    out.push((
        d.line,
        start,
        end,
        format!("{}.total_cmp(&{}).{}()", ident.text, float.text, method),
    ));
}

/// Renders the plans as a unified-style diff.
#[must_use]
pub fn render_diff(plans: &[FilePlan]) -> String {
    let mut out = String::new();
    for plan in plans {
        out.push_str(&format!("--- a/{}\n+++ b/{}\n", plan.path, plan.path));
        for e in &plan.edits {
            out.push_str(&format!("@@ -{line},1 +{line},1 @@\n", line = e.line));
            out.push_str(&format!("-{}\n+{}\n", e.old, e.new));
        }
    }
    out
}

/// Applies the plans in place. Returns the number of edited lines.
///
/// # Errors
///
/// Returns an [`io::Error`] when a file cannot be read or written.
pub fn apply(root: &Path, plans: &[FilePlan]) -> io::Result<usize> {
    let mut edited = 0usize;
    for plan in plans {
        let full = root.join(&plan.path);
        let source = fs::read_to_string(&full)?;
        let ends_with_newline = source.ends_with('\n');
        let mut lines: Vec<String> = source.lines().map(str::to_string).collect();
        for e in &plan.edits {
            let idx = e.line as usize - 1;
            if lines.get(idx).map(String::as_str) == Some(e.old.as_str()) {
                lines[idx] = e.new.clone();
                edited += 1;
            }
        }
        let mut text = lines.join("\n");
        if ends_with_newline {
            text.push('\n');
        }
        fs::write(&full, text)?;
    }
    Ok(edited)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;

    fn diag(code: &'static str, path: &str, line: u32, col: u32) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            path: path.into(),
            line,
            col,
            message: String::new(),
            line_text: String::new(),
        }
    }

    fn plan_on_source(source: &str, diags: &[Diagnostic]) -> Vec<FilePlan> {
        let dir = std::env::temp_dir().join(format!(
            "fmoe-lint-fix-{}-{:p}",
            std::process::id(),
            &source
        ));
        std::fs::create_dir_all(dir.join("src")).expect("mkdir");
        std::fs::write(dir.join("src/x.rs"), source).expect("write");
        let diags: Vec<Diagnostic> = diags
            .iter()
            .map(|d| Diagnostic {
                path: "src/x.rs".into(),
                ..d.clone()
            })
            .collect();
        let plans = plan(&dir, &diags).expect("plan");
        std::fs::remove_dir_all(&dir).ok();
        plans
    }

    #[test]
    fn fm001_swaps_both_import_and_type() {
        let src = "use std::collections::HashMap;\nfn f(m: HashMap<u32, u32>) {}\n";
        let d1 = diag("FM001", "src/x.rs", 1, 23);
        let d2 = diag("FM001", "src/x.rs", 2, 9);
        let plans = plan_on_source(src, &[d1, d2]);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].edits[0].new, "use std::collections::BTreeMap;");
        assert_eq!(plans[0].edits[1].new, "fn f(m: BTreeMap<u32, u32>) {}");
    }

    #[test]
    fn fm001_skips_capacity_constructors() {
        let src = "let m = HashMap::with_capacity(8);\n";
        let d = diag("FM001", "src/x.rs", 1, 9);
        assert!(plan_on_source(src, &[d]).is_empty());
    }

    #[test]
    fn fm005_rewrites_ident_vs_literal() {
        let src = "fn f(c: f64) -> bool { c == 0.0 }\n";
        let d = diag("FM005", "src/x.rs", 1, 26);
        let plans = plan_on_source(src, &[d]);
        assert_eq!(plans.len(), 1);
        assert_eq!(
            plans[0].edits[0].new,
            "fn f(c: f64) -> bool { c.total_cmp(&0.0).is_eq() }"
        );
    }

    #[test]
    fn fm005_rewrites_ne_and_reversed_operands() {
        let src = "fn f(c: f64) -> bool { 1.5 != c }\n";
        let d = diag("FM005", "src/x.rs", 1, 28);
        let plans = plan_on_source(src, &[d]);
        assert_eq!(
            plans[0].edits[0].new,
            "fn f(c: f64) -> bool { c.total_cmp(&1.5).is_ne() }"
        );
    }

    #[test]
    fn fm005_leaves_expression_operands_alone() {
        let src = "fn f(c: f64) -> bool { c.abs() == 0.0 }\n";
        // The operator sits after `)`, so operands are not ident/float.
        let d = diag("FM005", "src/x.rs", 1, 32);
        assert!(plan_on_source(src, &[d]).is_empty());
    }

    #[test]
    fn diff_renders_unified_hunks() {
        let plans = vec![FilePlan {
            path: "src/x.rs".into(),
            edits: vec![Edit {
                line: 3,
                old: "old".into(),
                new: "new".into(),
            }],
        }];
        let diff = render_diff(&plans);
        assert!(diff.contains("--- a/src/x.rs"));
        assert!(diff.contains("@@ -3,1 +3,1 @@"));
        assert!(diff.contains("-old\n+new\n"));
    }
}
