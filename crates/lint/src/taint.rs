//! Taint propagation over the call graph, and the transitive rules
//! FM010–FM012.
//!
//! Three facts propagate caller-ward along call edges:
//!
//! * **may-panic** — seeded by the FM004 family (`unwrap`, `expect`,
//!   `panic!`, `unreachable!`, `todo!`, `unimplemented!`) and, under the
//!   pedantic knob, slice indexing and non-literal division;
//! * **touches-wall-clock** — seeded by `Instant::now` / `SystemTime`;
//! * **uses-unseeded-randomness** — seeded by `thread_rng`,
//!   `from_entropy`, `rand::random`.
//!
//! Propagation is a multi-source BFS on the *reversed* graph: a node is
//! tainted when it (a) contains a seed or (b) calls a tainted node. The
//! BFS records, per tainted node, the next hop toward the seed, so a
//! diagnostic can print the full call chain
//! (`a::f → b::g → c::h`). Propagation is monotone by construction —
//! adding an edge can only grow the tainted set — and a property test
//! (`tests/taint_props.rs`) locks that invariant.

use crate::diag::{Diagnostic, Severity};
use crate::graph::CallGraph;
use crate::parser::{Seed, SeedKind};
use crate::rules::FileKind;
use std::collections::VecDeque;

/// Which fact a propagation pass tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fact {
    /// May transitively panic.
    Panic,
    /// May transitively read a wall clock.
    WallClock,
    /// May transitively draw unseeded randomness.
    UnseededRng,
}

impl Fact {
    /// Whether `seed` introduces this fact (`pedantic` enables the
    /// indexing / division panic seeds).
    #[must_use]
    pub fn seeded_by(self, seed: &Seed, pedantic: bool) -> bool {
        match self {
            Self::Panic => {
                seed.kind == SeedKind::PanicExplicit || (pedantic && seed.kind.is_panic())
            }
            Self::WallClock => seed.kind == SeedKind::WallClock,
            Self::UnseededRng => seed.kind == SeedKind::UnseededRng,
        }
    }
}

/// The result of one propagation pass.
#[derive(Debug)]
pub struct TaintMap {
    /// For each tainted node: the callee one step closer to the seed
    /// (`None` for nodes that carry the seed themselves).
    pub next: Vec<Option<usize>>,
    /// For each tainted node: (seed-carrying node, the seed).
    pub origin: Vec<Option<(usize, Seed)>>,
    /// Tainted flags (`origin[i].is_some()` unrolled for cheap tests).
    pub tainted: Vec<bool>,
}

impl TaintMap {
    /// The full call chain from `node` to the seed, as qualified paths.
    #[must_use]
    pub fn chain(&self, graph: &CallGraph, node: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = Some(node);
        while let Some(i) = cur {
            out.push(graph.nodes[i].qpath.clone());
            cur = self.next[i];
        }
        out
    }
}

/// Minimal monotone reachability used by the property tests: which of
/// `n` nodes reach a seed along `edges` (caller → callee)?
#[must_use]
pub fn reaches_seed(n: usize, edges: &[(usize, usize)], seeds: &[usize]) -> Vec<bool> {
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(from, to) in edges {
        if from < n && to < n {
            rev[to].push(from);
        }
    }
    let mut tainted = vec![false; n];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &s in seeds {
        if s < n && !tainted[s] {
            tainted[s] = true;
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        for &caller in &rev[v] {
            if !tainted[caller] {
                tainted[caller] = true;
                queue.push_back(caller);
            }
        }
    }
    tainted
}

/// Propagates one fact over the graph, recording chains.
#[must_use]
pub fn propagate(graph: &CallGraph, fact: Fact, pedantic: bool) -> TaintMap {
    let n = graph.nodes.len();
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (caller, callees) in graph.edges.iter().enumerate() {
        for &callee in callees {
            rev[callee].push(caller);
        }
    }
    let mut map = TaintMap {
        next: vec![None; n],
        origin: vec![None; n],
        tainted: vec![false; n],
    };
    let mut queue: VecDeque<usize> = VecDeque::new();
    // Seeds in node order; the first matching seed in source order wins,
    // so chains and diagnostics are deterministic.
    for (i, node) in graph.nodes.iter().enumerate() {
        if let Some(seed) = node.seeds.iter().find(|s| fact.seeded_by(s, pedantic)) {
            map.tainted[i] = true;
            map.origin[i] = Some((i, seed.clone()));
            queue.push_back(i);
        }
    }
    while let Some(v) = queue.pop_front() {
        for &caller in &rev[v] {
            if !map.tainted[caller] {
                map.tainted[caller] = true;
                map.next[caller] = Some(v);
                map.origin[caller] = map.origin[v].clone();
                queue.push_back(caller);
            }
        }
    }
    map
}

/// Runs the transitive rules over a built graph. `pedantic` widens the
/// panic seeds to indexing and non-literal division.
#[must_use]
pub fn semantic_diagnostics(graph: &CallGraph, pedantic: bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let panic = propagate(graph, Fact::Panic, pedantic);
    let clock = propagate(graph, Fact::WallClock, pedantic);
    let rng = propagate(graph, Fact::UnseededRng, pedantic);

    // FM010: public API of a sim-path crate transitively reaches a
    // panic site. Local seeds are FM004's territory; this rule fires
    // only when the panic is at least one call away.
    for (i, node) in graph.nodes.iter().enumerate() {
        if !(node.sim_path && node.kind == FileKind::Library && node.is_pub) {
            continue;
        }
        if !panic.tainted[i] || panic.next[i].is_none() {
            continue;
        }
        let Some((seed_node, seed)) = &panic.origin[i] else {
            continue;
        };
        let chain = panic.chain(graph, i).join(" → ");
        let sn = &graph.nodes[*seed_node];
        out.push(Diagnostic {
            code: "FM010",
            severity: Severity::Error,
            path: node.file.clone(),
            line: node.line,
            col: node.col,
            message: format!(
                "public `{}` transitively reaches a panic site ({} in `{}` at {}:{}); \
                 call chain: {}",
                node.qpath, seed.what, sn.qpath, sn.file, seed.line, chain
            ),
            line_text: node.line_text.clone(),
        });
    }

    // FM011: sim-path library code transitively reaches a wall clock or
    // unseeded RNG. Local seeds are FM002/FM003's territory.
    for (map, what) in [(&clock, "a wall-clock read"), (&rng, "unseeded randomness")] {
        for (i, node) in graph.nodes.iter().enumerate() {
            if !(node.sim_path && node.kind == FileKind::Library) {
                continue;
            }
            if !map.tainted[i] || map.next[i].is_none() {
                continue;
            }
            let Some((seed_node, seed)) = &map.origin[i] else {
                continue;
            };
            let chain = map.chain(graph, i).join(" → ");
            let sn = &graph.nodes[*seed_node];
            out.push(Diagnostic {
                code: "FM011",
                severity: Severity::Error,
                path: node.file.clone(),
                line: node.line,
                col: node.col,
                message: format!(
                    "sim-path `{}` transitively reaches {} ({} in `{}` at {}:{}); \
                     determinism requires the virtual clock and seeded RNGs; call chain: {}",
                    node.qpath, what, seed.what, sn.qpath, sn.file, seed.line, chain
                ),
                line_text: node.line_text.clone(),
            });
        }
    }

    // FM012: `dyn Trait` dispatch where NO workspace implementor is
    // contract-clean. Conservative: silent when the trait or its
    // implementors are unknown (std traits, closures, vendored shims).
    for du in &graph.dyn_uses {
        if !(du.sim_path && du.kind == FileKind::Library) {
            continue;
        }
        let Some(info) = graph.traits.get(&du.site.trait_name) else {
            continue;
        };
        if info.implementors.is_empty() {
            continue;
        }
        let mut dirty: Vec<String> = Vec::new();
        let mut all_dirty = true;
        for ty in &info.implementors {
            let mut tainted_method: Option<String> = None;
            for m in &info.methods {
                if let Some(ids) = graph.methods_by_type.get(&(ty.clone(), m.clone())) {
                    if ids.iter().any(|&id| panic.tainted[id]) {
                        tainted_method = Some(m.clone());
                        break;
                    }
                }
            }
            match tainted_method {
                Some(m) => dirty.push(format!("{ty}::{m}")),
                None => {
                    all_dirty = false;
                    break;
                }
            }
        }
        if all_dirty {
            out.push(Diagnostic {
                code: "FM012",
                severity: Severity::Error,
                path: du.file.clone(),
                line: du.site.line,
                col: du.site.col,
                message: format!(
                    "`dyn {}` dispatch: every workspace implementor may panic ({}) — \
                     no contract-clean implementation exists for this trait object",
                    du.site.trait_name,
                    dirty.join(", ")
                ),
                line_text: du.line_text.clone(),
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CallGraph;
    use crate::walk::CrateSources;

    fn krate(name: &str, src: &str) -> (CrateSources, Vec<(String, String)>) {
        (
            CrateSources {
                dir: name.to_string(),
                package: name.to_string(),
                ident: name.to_string(),
                files: Vec::new(),
            },
            vec![(format!("crates/{name}/src/lib.rs"), src.to_string())],
        )
    }

    fn chain_graph() -> CallGraph {
        let ws = vec![
            krate("a", "use b::g;\npub fn f() { g(); }\n"),
            krate("b", "use c::h;\npub fn g() { h(); }\n"),
            krate("c", "pub fn h() { x.unwrap(); }\n"),
        ];
        CallGraph::build(&ws, &["a".into(), "b".into(), "c".into()])
    }

    #[test]
    fn panic_taint_propagates_across_crates() {
        let g = chain_graph();
        let t = propagate(&g, Fact::Panic, false);
        for q in ["a::f", "b::g", "c::h"] {
            assert!(t.tainted[g.by_qpath[q]], "{q} must be tainted");
        }
        let f = g.by_qpath["a::f"];
        assert_eq!(t.chain(&g, f), vec!["a::f", "b::g", "c::h"]);
    }

    #[test]
    fn fm010_reports_the_full_chain() {
        let g = chain_graph();
        let diags = semantic_diagnostics(&g, false);
        let fm010: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "FM010").collect();
        // `a::f` and `b::g` reach the panic transitively; `c::h` carries
        // it locally (FM004's territory) and is not reported.
        assert_eq!(fm010.len(), 2);
        assert!(fm010[0].message.contains("call chain: a::f → b::g → c::h"));
    }

    #[test]
    fn fm011_fires_on_clock_and_rng_chains() {
        let ws = vec![
            krate("a", "use b::ticker;\npub fn f() { ticker(); }\n"),
            krate("b", "pub fn ticker() { let t = Instant::now(); }\n"),
        ];
        let g = CallGraph::build(&ws, &["a".into()]);
        let diags = semantic_diagnostics(&g, false);
        let fm011: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "FM011").collect();
        assert_eq!(fm011.len(), 1, "only the sim-path caller is reported");
        assert!(fm011[0].message.contains("a::f → b::ticker"));
    }

    #[test]
    fn fm012_fires_only_when_every_implementor_is_dirty() {
        let dirty = "pub trait P { fn go(&self); }\n\
             pub struct X;\nimpl P for X { fn go(&self) { panic!(\"x\"); } }\n\
             pub struct Y;\nimpl P for Y { fn go(&self) { helper(); } }\n\
             fn helper() { q.unwrap(); }\n\
             pub fn drive(p: &mut dyn P) { p.go(); }\n";
        let g = CallGraph::build(&[krate("a", dirty)], &["a".into()]);
        let diags = semantic_diagnostics(&g, false);
        assert!(diags.iter().any(|d| d.code == "FM012"));

        let mixed = "pub trait P { fn go(&self); }\n\
             pub struct X;\nimpl P for X { fn go(&self) { panic!(\"x\"); } }\n\
             pub struct Y;\nimpl P for Y { fn go(&self) {} }\n\
             pub fn drive(p: &mut dyn P) { p.go(); }\n";
        let g = CallGraph::build(&[krate("a", mixed)], &["a".into()]);
        let diags = semantic_diagnostics(&g, false);
        assert!(
            !diags.iter().any(|d| d.code == "FM012"),
            "one clean implementor keeps the trait object usable"
        );
    }

    #[test]
    fn pedantic_widens_panic_seeds() {
        let ws = vec![
            krate("a", "use b::pick;\npub fn f() { pick(); }\n"),
            krate("b", "pub fn pick(xs: &[u64], i: usize) -> u64 { xs[i] }\n"),
        ];
        let g = CallGraph::build(&ws, &["a".into(), "b".into()]);
        assert!(semantic_diagnostics(&g, false)
            .iter()
            .all(|d| d.code != "FM010"));
        assert!(semantic_diagnostics(&g, true)
            .iter()
            .any(|d| d.code == "FM010"));
    }

    #[test]
    fn reaches_seed_matches_propagate() {
        let g = chain_graph();
        let edges: Vec<(usize, usize)> = g
            .edges
            .iter()
            .enumerate()
            .flat_map(|(i, adj)| adj.iter().map(move |&j| (i, j)))
            .collect();
        let seeds: Vec<usize> = g
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.seeds.iter().any(|s| Fact::Panic.seeded_by(s, false)))
            .map(|(i, _)| i)
            .collect();
        let simple = reaches_seed(g.nodes.len(), &edges, &seeds);
        let full = propagate(&g, Fact::Panic, false);
        assert_eq!(simple, full.tainted);
    }
}
