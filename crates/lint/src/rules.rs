//! The FM001–FM008 rule implementations.
//!
//! Every rule is a pure function over the token stream produced by
//! [`crate::lexer::lex`], the per-token test-region markers from
//! [`crate::lexer::mark_test_regions`], and a [`FileContext`] describing
//! where the file sits in the workspace. Rules never read types — they
//! are deliberate, documented heuristics, and intended false positives
//! are suppressed through the checked-in `lint.toml` allowlist.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{lex, mark_test_regions, Token, TokenKind};

/// How a file participates in the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Part of a crate's library (`src/*.rs` except `src/bin/`).
    Library,
    /// A binary target (`src/bin/*.rs` or `src/main.rs`).
    Binary,
    /// Test or bench code (`tests/`, `benches/`); most rules skip these.
    TestOrBench,
}

/// Where a file sits in the workspace, for rule gating.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Repo-relative path, used in diagnostics and allowlist matching.
    pub path: String,
    /// How the file participates in the build.
    pub kind: FileKind,
    /// `true` for crates on the simulation path (core, cache, memsim,
    /// serving, baselines, model, workload, trace): iteration order can
    /// leak into plans, evictions, and CSV output, so unordered
    /// containers are banned outright (FM001).
    pub sim_path: bool,
    /// `true` for bench-crate *binaries* (and `tests/`/`benches/`
    /// targets), the only places wall-clock time is legitimate (FM002).
    /// The bench crate's library — the harness, `ParallelRunner`,
    /// report/plot writers — feeds deterministic artifacts and stays
    /// under the same no-wall-clock contract as the simulation crates.
    pub wall_clock_allowed: bool,
    /// `true` for the crate root (`src/lib.rs`), where crate-level
    /// attributes like `#![forbid(unsafe_code)]` must live (FM008).
    pub is_crate_root: bool,
}

/// Directory names (under `crates/`) of simulation-path crates.
pub const SIM_PATH_CRATES: &[&str] = &[
    "core",
    "cache",
    "memsim",
    "serving",
    "baselines",
    "model",
    "workload",
    "trace",
    "cluster",
    "faults",
];

impl FileContext {
    /// Classifies a repo-relative path (`crates/cache/src/cache.rs`,
    /// `src/lib.rs`, …) into a [`FileContext`] with the default
    /// [`SIM_PATH_CRATES`] set.
    #[must_use]
    pub fn classify(path: &str) -> Self {
        Self::classify_with(path, SIM_PATH_CRATES)
    }

    /// Classifies a repo-relative path against an explicit set of
    /// simulation-path crate directory names (used by fixture corpora
    /// and by `LintOptions`-driven runs).
    #[must_use]
    pub fn classify_with<S: AsRef<str>>(path: &str, sim_crates: &[S]) -> Self {
        let crate_dir = path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("");
        let kind = if path.contains("/tests/") || path.contains("/benches/") {
            FileKind::TestOrBench
        } else if path.contains("/src/bin/") || path.ends_with("src/main.rs") {
            FileKind::Binary
        } else {
            FileKind::Library
        };
        Self {
            path: path.to_string(),
            kind,
            sim_path: sim_crates.iter().any(|s| s.as_ref() == crate_dir),
            wall_clock_allowed: crate_dir == "bench" && kind != FileKind::Library,
            is_crate_root: path.ends_with("src/lib.rs"),
        }
    }
}

/// Integer/float types that lose information when a byte-size or
/// virtual-time `u64`/`usize` is cast into them.
const NARROW_TYPES: &[&str] = &["u32", "u16", "u8", "i32", "i16", "i8", "f32"];

/// Identifier suffixes that mark a quantity as a byte size or a virtual
/// time, where lossy casts corrupt simulation results silently.
const SIZEISH_SUFFIXES: &[&str] = &[
    "bytes", "size", "len", "ns", "nanos", "capacity", "budget", "time",
];

/// Runs every rule over one file's source text.
#[must_use]
pub fn lint_source(ctx: &FileContext, source: &str) -> Vec<Diagnostic> {
    let tokens = lex(source);
    let in_test = mark_test_regions(&tokens);
    let lines: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();

    let diag = |code: &'static str,
                severity: Severity,
                tok: &Token,
                message: String,
                lines: &[&str]|
     -> Diagnostic {
        Diagnostic {
            code,
            severity,
            path: ctx.path.clone(),
            line: tok.line,
            col: tok.col,
            message,
            line_text: lines
                .get(tok.line as usize - 1)
                .map_or_else(String::new, |l| (*l).to_string()),
        }
    };

    let file_spawns_threads = tokens
        .windows(3)
        .any(|w| w[0].is_ident("thread") && w[1].is_punct("::") && w[2].is_ident("spawn"));

    // FM008: simulation-path crate roots must forbid unsafe code. The
    // check is token-level (`#` `!` `[` `forbid` `(` `unsafe_code` `)`
    // `]`), so comments and formatting don't matter.
    if ctx.sim_path && ctx.is_crate_root {
        let has_forbid = tokens.windows(8).any(|w| {
            w[0].is_punct("#")
                && w[1].is_punct("!")
                && w[2].is_punct("[")
                && w[3].is_ident("forbid")
                && w[4].is_punct("(")
                && w[5].is_ident("unsafe_code")
                && w[6].is_punct(")")
                && w[7].is_punct("]")
        });
        if !has_forbid {
            out.push(Diagnostic {
                code: "FM008",
                severity: Severity::Error,
                path: ctx.path.clone(),
                line: 1,
                col: 1,
                message: "simulation-path crate root is missing \
                          `#![forbid(unsafe_code)]`: the determinism contract \
                          (DESIGN.md §10) requires it so no unsafe block can \
                          introduce UB-dependent behavior"
                    .to_string(),
                line_text: lines.first().map_or_else(String::new, |l| (*l).to_string()),
            });
        }
    }

    for (i, tok) in tokens.iter().enumerate() {
        if in_test[i] || ctx.kind == FileKind::TestOrBench {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|j| tokens.get(j));
        let next = tokens.get(i + 1);
        let next2 = tokens.get(i + 2);

        // FM001: unordered containers on the simulation path.
        if ctx.sim_path
            && tok.kind == TokenKind::Ident
            && (tok.text == "HashMap" || tok.text == "HashSet")
        {
            let ordered = if tok.text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            out.push(diag(
                "FM001",
                Severity::Error,
                tok,
                format!(
                    "`{}` in a simulation-path crate: iteration order is \
                     unspecified and can leak into plans, evictions, or CSV \
                     output — use `{}` or sort before any order-observable use",
                    tok.text, ordered
                ),
                &lines,
            ));
        }

        // FM002: wall-clock time outside the bench crate.
        if !ctx.wall_clock_allowed {
            let instant_now = tok.is_ident("Instant")
                && next.is_some_and(|t| t.is_punct("::"))
                && next2.is_some_and(|t| t.is_ident("now"));
            if instant_now || tok.is_ident("SystemTime") {
                out.push(diag(
                    "FM002",
                    Severity::Error,
                    tok,
                    "wall-clock time source outside `fmoe-bench`: simulation \
                     code must use `VirtualClock` so runs are bit-reproducible"
                        .to_string(),
                    &lines,
                ));
            }
        }

        // FM003: unseeded randomness.
        let rand_random = tok.is_ident("rand")
            && next.is_some_and(|t| t.is_punct("::"))
            && next2.is_some_and(|t| t.is_ident("random"));
        if tok.is_ident("thread_rng") || tok.is_ident("from_entropy") || rand_random {
            out.push(diag(
                "FM003",
                Severity::Error,
                tok,
                "unseeded randomness: only the seeded generators in \
                 `fmoe_stats::rng` are allowed, so every run is replayable \
                 from its seed"
                    .to_string(),
                &lines,
            ));
        }

        // FM004: panicking calls in library code.
        if ctx.kind == FileKind::Library {
            let method_call =
                prev.is_some_and(|t| t.is_punct(".")) && next.is_some_and(|t| t.is_punct("("));
            if method_call && (tok.is_ident("unwrap") || tok.is_ident("expect")) {
                out.push(diag(
                    "FM004",
                    Severity::Error,
                    tok,
                    format!(
                        "`{}()` in library code: return a typed error, make \
                         the constructor infallible, or allowlist it in \
                         `lint.toml` with a proof of unreachability",
                        tok.text
                    ),
                    &lines,
                ));
            }
            let macro_bang = next.is_some_and(|t| t.is_punct("!"));
            if macro_bang
                && (tok.is_ident("panic")
                    || tok.is_ident("unreachable")
                    || tok.is_ident("todo")
                    || tok.is_ident("unimplemented"))
            {
                out.push(diag(
                    "FM004",
                    Severity::Error,
                    tok,
                    format!(
                        "`{}!` in library code: a panic mid-sweep aborts the \
                         whole experiment — return a typed error instead",
                        tok.text
                    ),
                    &lines,
                ));
            }
        }

        // FM005: exact float equality.
        if (tok.is_punct("==") || tok.is_punct("!="))
            && (prev.is_some_and(|t| t.kind == TokenKind::Float)
                || next.is_some_and(|t| t.kind == TokenKind::Float))
        {
            out.push(diag(
                "FM005",
                Severity::Warning,
                tok,
                "exact float comparison: floats accumulate rounding error — \
                 compare with a tolerance, or allowlist this as an exact \
                 sentinel in `lint.toml`"
                    .to_string(),
                &lines,
            ));
        }

        // FM006a: f64 round-trip casts on integers.
        if tok.is_ident("as")
            && next.is_some_and(|t| t.is_ident("f64"))
            && next2.is_some_and(|t| t.is_ident("as"))
            && tokens
                .get(i + 3)
                .is_some_and(|t| matches!(t.text.as_str(), "u64" | "usize" | "i64"))
        {
            out.push(diag(
                "FM006",
                Severity::Warning,
                tok,
                "`as f64 as <int>` round-trip: values above 2^53 silently \
                 lose precision — stay in integer arithmetic"
                    .to_string(),
                &lines,
            ));
        }

        // FM006b: narrowing casts on size/time-named quantities.
        if tok.kind == TokenKind::Ident
            && next.is_some_and(|t| t.is_ident("as"))
            && next2.is_some_and(|t| NARROW_TYPES.contains(&t.text.as_str()))
        {
            let lower = tok.text.to_ascii_lowercase();
            if SIZEISH_SUFFIXES.iter().any(|s| lower.ends_with(s)) {
                let target = next2.map_or("", |t| t.text.as_str());
                out.push(diag(
                    "FM006",
                    Severity::Warning,
                    tok,
                    format!(
                        "lossy `as {target}` cast on `{}`: byte-size and \
                         virtual-time quantities must stay in u64/usize (use \
                         `try_from` if narrowing is really intended)",
                        tok.text
                    ),
                    &lines,
                ));
            }
        }

        // FM007: race-hazard heuristic in thread-spawning modules.
        if file_spawns_threads {
            let hazardous = tok.is_ident("RefCell")
                || tok.is_ident("UnsafeCell")
                || (tok.is_ident("Cell") && next.is_some_and(|t| t.is_punct("<")))
                || (tok.is_ident("Rc") && next.is_some_and(|t| t.is_punct("<")))
                || (tok.is_ident("static") && next.is_some_and(|t| t.is_ident("mut")))
                || (tok.is_ident("sync")
                    && next.is_some_and(|t| t.is_punct("::"))
                    && next2.is_some_and(|t| t.is_ident("Mutex")));
            if hazardous {
                out.push(diag(
                    "FM007",
                    Severity::Error,
                    tok,
                    "shared-state hazard in a thread-spawning module: only \
                     `parking_lot::RwLock` and crossbeam channels are approved \
                     for cross-thread state (see DESIGN.md §10)"
                        .to_string(),
                    &lines,
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx(path: &str) -> FileContext {
        FileContext::classify(path)
    }

    fn codes(ctx: &FileContext, src: &str) -> Vec<&'static str> {
        lint_source(ctx, src).into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn classify_kinds_and_crates() {
        let c = FileContext::classify("crates/cache/src/cache.rs");
        assert_eq!(c.kind, FileKind::Library);
        assert!(c.sim_path);
        assert!(!c.wall_clock_allowed);
        let b = FileContext::classify("crates/bench/src/bin/fmoe_sim.rs");
        assert_eq!(b.kind, FileKind::Binary);
        assert!(!b.sim_path);
        assert!(b.wall_clock_allowed);
        // The bench *library* (harness, ParallelRunner, report writers)
        // produces deterministic artifacts: no wall clock there.
        let h = FileContext::classify("crates/bench/src/harness.rs");
        assert_eq!(h.kind, FileKind::Library);
        assert!(!h.wall_clock_allowed);
        let t = FileContext::classify("crates/memsim/tests/faults.rs");
        assert_eq!(t.kind, FileKind::TestOrBench);
        // Fault schedules feed the engines' virtual-time math directly:
        // the faults crate is sim-path and under the full contract.
        let f = FileContext::classify("crates/faults/src/replica.rs");
        assert_eq!(f.kind, FileKind::Library);
        assert!(f.sim_path);
        let root = FileContext::classify("src/lib.rs");
        assert_eq!(root.kind, FileKind::Library);
        assert!(!root.sim_path);
    }

    #[test]
    fn classify_covers_arena_and_sharded_cache_files() {
        // The arena-backed core and the sharded concurrent cache are
        // sim-path library code under the full contract (FM001/FM008):
        // no hash containers, no wall clocks, forbid(unsafe_code).
        for path in [
            "crates/cache/src/arena.rs",
            "crates/cache/src/sharded.rs",
            "crates/cache/src/policy.rs",
        ] {
            let ctx = FileContext::classify(path);
            assert_eq!(ctx.kind, FileKind::Library, "{path}");
            assert!(ctx.sim_path, "{path} must be sim-path");
            assert!(!ctx.wall_clock_allowed, "{path}");
        }
        // Their integration tests are exempt from library-only rules
        // (FM004 unwrap rules, etc.) like any other test file.
        let t = FileContext::classify("crates/cache/tests/oracle_diff.rs");
        assert_eq!(t.kind, FileKind::TestOrBench);
        let s = FileContext::classify("crates/cache/tests/sharded_concurrency.rs");
        assert_eq!(s.kind, FileKind::TestOrBench);
    }

    #[test]
    fn fm001_only_fires_on_sim_path() {
        let src = "use std::collections::HashMap;";
        assert_eq!(codes(&lib_ctx("crates/cache/src/x.rs"), src), ["FM001"]);
        assert!(codes(&lib_ctx("crates/bench/src/x.rs"), src).is_empty());
    }

    #[test]
    fn fm002_allows_bench_binaries_only() {
        let src = "let t = Instant::now();";
        assert_eq!(codes(&lib_ctx("crates/stats/src/x.rs"), src), ["FM002"]);
        // Bench binaries (perf_smoke and friends) may time themselves…
        assert!(codes(&lib_ctx("crates/bench/src/bin/perf_smoke.rs"), src).is_empty());
        // …but the bench library feeds deterministic CSVs and may not.
        assert_eq!(
            codes(&lib_ctx("crates/bench/src/harness.rs"), src),
            ["FM002"]
        );
    }

    #[test]
    fn fm004_skips_bins_and_tests() {
        let src = "fn f() { x.unwrap(); }";
        assert_eq!(codes(&lib_ctx("crates/stats/src/x.rs"), src), ["FM004"]);
        assert!(codes(&lib_ctx("crates/bench/src/bin/b.rs"), src).is_empty());
        let in_test = "#[cfg(test)]\nmod tests { fn f() { x.unwrap(); } }";
        assert!(codes(&lib_ctx("crates/stats/src/x.rs"), in_test).is_empty());
    }

    #[test]
    fn fm008_requires_forbid_unsafe_in_sim_crate_roots() {
        let bare = "pub mod x;\n";
        let with_attr = "#![forbid(unsafe_code)]\npub mod x;\n";
        assert_eq!(codes(&lib_ctx("crates/cache/src/lib.rs"), bare), ["FM008"]);
        assert!(codes(&lib_ctx("crates/cache/src/lib.rs"), with_attr).is_empty());
        // Non-root files and non-sim crates are exempt.
        assert!(codes(&lib_ctx("crates/cache/src/cache.rs"), bare).is_empty());
        assert!(codes(&lib_ctx("crates/bench/src/lib.rs"), bare).is_empty());
    }

    #[test]
    fn fm007_requires_thread_spawn_in_file() {
        let hazard = "fn f() { let c = RefCell::new(0); }";
        assert!(codes(&lib_ctx("crates/stats/src/x.rs"), hazard).is_empty());
        let spawning = format!("fn g() {{ std::thread::spawn(|| ()); }}\n{hazard}");
        assert_eq!(
            codes(&lib_ctx("crates/stats/src/x.rs"), &spawning),
            ["FM007"]
        );
    }
}
