//! The `lint.toml` allowlist: checked-in, justified suppressions.
//!
//! Format — a tiny TOML subset (array-of-tables with string values
//! only), parsed here so the linter stays dependency-free:
//!
//! ```toml
//! [[allow]]
//! rule = "FM005"
//! path = "crates/baselines/src/moe_infinity.rs"
//! contains = "c == 0.0"
//! justification = "EAM counts are integral f64s; exact zero is the empty sentinel."
//! ```
//!
//! * `rule` and `path` are required; `contains` optionally narrows the
//!   match to diagnostics whose offending source line *or message*
//!   contains the substring (message matching lets one entry suppress a
//!   family of FM010/FM011 call-chain diagnostics that all end at the
//!   same documented panic site).
//! * `justification` is required and must be non-empty — an empty
//!   justification is itself an error (FM000).
//! * Entries that suppress nothing produce an FM000 *error* in
//!   workspace runs, so stale suppressions fail CI under `--deny-all`.
//!   Single-file runs skip the staleness check (entries for other files
//!   would look unused).

use crate::diag::{Diagnostic, Severity};

/// One `[[allow]]` entry.
#[derive(Debug, Clone, Default)]
pub struct AllowEntry {
    /// Rule code the entry suppresses (`FM001`…`FM007`).
    pub rule: String,
    /// Repo-relative path (matched exactly or as a suffix).
    pub path: String,
    /// Optional substring the offending source line or the diagnostic
    /// message must contain.
    pub contains: Option<String>,
    /// Why the violation is intended. Must be non-empty.
    pub justification: String,
    /// Line in `lint.toml` where the entry starts (for diagnostics).
    pub line: u32,
}

/// The parsed allowlist plus per-entry usage tracking.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
    used: Vec<bool>,
}

impl Allowlist {
    /// Parses `lint.toml` text. Malformed lines and empty justifications
    /// are reported as FM000 diagnostics against `toml_path`; parsing
    /// continues so all problems surface in one run.
    #[must_use]
    pub fn parse(toml_path: &str, text: &str) -> (Self, Vec<Diagnostic>) {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut problems = Vec::new();
        let mut current: Option<AllowEntry> = None;
        let problem = |line_no: u32, line: &str, message: String| Diagnostic {
            code: "FM000",
            severity: Severity::Error,
            path: toml_path.to_string(),
            line: line_no,
            col: 1,
            message,
            line_text: line.to_string(),
        };

        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(e) = current.take() {
                    entries.push(e);
                }
                current = Some(AllowEntry {
                    line: line_no,
                    ..AllowEntry::default()
                });
                continue;
            }
            let Some((key, value)) = parse_kv(line) else {
                problems.push(problem(
                    line_no,
                    raw,
                    "unrecognized lint.toml line: expected `[[allow]]` or \
                     `key = \"value\"`"
                        .to_string(),
                ));
                continue;
            };
            let Some(entry) = current.as_mut() else {
                problems.push(problem(
                    line_no,
                    raw,
                    format!("`{key}` appears before the first `[[allow]]` header"),
                ));
                continue;
            };
            match key {
                "rule" => entry.rule = value,
                "path" => entry.path = value,
                "contains" => entry.contains = Some(value),
                "justification" => entry.justification = value,
                other => problems.push(problem(
                    line_no,
                    raw,
                    format!(
                        "unknown allowlist key `{other}` (expected rule, path, \
                         contains, justification)"
                    ),
                )),
            }
        }
        if let Some(e) = current.take() {
            entries.push(e);
        }

        for e in &entries {
            if e.justification.trim().is_empty() {
                problems.push(problem(
                    e.line,
                    "[[allow]]",
                    format!(
                        "allowlist entry for {} / {} has an empty justification \
                         — every suppression must explain why the violation is \
                         intended",
                        if e.rule.is_empty() {
                            "<no rule>"
                        } else {
                            &e.rule
                        },
                        if e.path.is_empty() {
                            "<no path>"
                        } else {
                            &e.path
                        },
                    ),
                ));
            }
            if e.rule.is_empty() || e.path.is_empty() {
                problems.push(problem(
                    e.line,
                    "[[allow]]",
                    "allowlist entry is missing a `rule` or `path` field".to_string(),
                ));
            }
        }

        let used = vec![false; entries.len()];
        (Self { entries, used }, problems)
    }

    /// `true` (and marks the entry used) when some entry suppresses `d`.
    pub fn suppresses(&mut self, d: &Diagnostic) -> bool {
        let mut hit = false;
        for (i, e) in self.entries.iter().enumerate() {
            if e.rule != d.code {
                continue;
            }
            if !(d.path == e.path || d.path.ends_with(&e.path)) {
                continue;
            }
            if let Some(c) = &e.contains {
                if !d.line_text.contains(c.as_str()) && !d.message.contains(c.as_str()) {
                    continue;
                }
            }
            self.used[i] = true;
            hit = true;
        }
        hit
    }

    /// FM000 errors for entries that never suppressed anything. Only
    /// meaningful after a *workspace* run — callers linting a file
    /// subset must not invoke this.
    #[must_use]
    pub fn unused_warnings(&self, toml_path: &str) -> Vec<Diagnostic> {
        self.entries
            .iter()
            .zip(&self.used)
            .filter(|&(_, used)| !used)
            .map(|(e, _)| Diagnostic {
                code: "FM000",
                severity: Severity::Error,
                path: toml_path.to_string(),
                line: e.line,
                col: 1,
                message: format!(
                    "unused allowlist entry ({} on {}): the violation it \
                     suppressed is gone — delete the entry",
                    e.rule, e.path
                ),
                line_text: String::new(),
            })
            .collect()
    }

    /// Number of parsed entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries were parsed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Parses a `key = "value"` line; returns `None` when malformed.
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    let rest = rest.trim();
    let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
    // Unescape the two sequences a path/justification can reasonably
    // contain; anything else passes through verbatim.
    let value = inner.replace("\\\"", "\"").replace("\\\\", "\\");
    Some((key, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_diag(code: &'static str, path: &str, line_text: &str) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            path: path.to_string(),
            line: 1,
            col: 1,
            message: String::new(),
            line_text: line_text.to_string(),
        }
    }

    #[test]
    fn parses_and_suppresses() {
        let toml = r#"
# comment
[[allow]]
rule = "FM005"
path = "crates/x/src/a.rs"
contains = "c == 0.0"
justification = "sentinel"
"#;
        let (mut al, problems) = Allowlist::parse("lint.toml", toml);
        assert!(problems.is_empty());
        assert_eq!(al.len(), 1);
        let d = sample_diag("FM005", "crates/x/src/a.rs", "if c == 0.0 {");
        assert!(al.suppresses(&d));
        let other = sample_diag("FM005", "crates/x/src/a.rs", "if c == 1.0 {");
        assert!(!al.suppresses(&other));
        assert!(al.unused_warnings("lint.toml").is_empty());
    }

    #[test]
    fn empty_justification_is_an_error() {
        let toml = "[[allow]]\nrule = \"FM004\"\npath = \"a.rs\"\njustification = \"\"\n";
        let (_, problems) = Allowlist::parse("lint.toml", toml);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].message.contains("empty justification"));
        assert_eq!(problems[0].severity, Severity::Error);
    }

    #[test]
    fn unused_entries_are_errors() {
        let toml = "[[allow]]\nrule = \"FM001\"\npath = \"never.rs\"\njustification = \"x\"\n";
        let (al, problems) = Allowlist::parse("lint.toml", toml);
        assert!(problems.is_empty());
        let stale = al.unused_warnings("lint.toml");
        assert_eq!(stale.len(), 1);
        assert!(stale[0].message.contains("unused allowlist entry"));
        assert_eq!(stale[0].severity, Severity::Error);
    }

    #[test]
    fn contains_matches_message_too() {
        let toml = "[[allow]]\nrule = \"FM010\"\npath = \"crates/x/src/a.rs\"\n\
                    contains = \"serve_batch\"\njustification = \"documented panic\"\n";
        let (mut al, problems) = Allowlist::parse("lint.toml", toml);
        assert!(problems.is_empty());
        let mut d = sample_diag("FM010", "crates/x/src/a.rs", "pub fn serve_request(");
        d.message = "call chain: serve_request \u{2192} serve_batch".to_string();
        assert!(al.suppresses(&d));
    }

    #[test]
    fn malformed_lines_are_reported() {
        let toml = "[[allow]]\nrule FM001\n";
        let (_, problems) = Allowlist::parse("lint.toml", toml);
        assert!(!problems.is_empty());
    }

    #[test]
    fn keys_before_header_are_reported() {
        let toml = "rule = \"FM001\"\n";
        let (_, problems) = Allowlist::parse("lint.toml", toml);
        assert!(problems
            .iter()
            .any(|p| p.message.contains("before the first")));
    }
}
