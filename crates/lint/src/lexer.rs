//! A minimal Rust lexer: just enough structure for line/token-level
//! lint rules.
//!
//! The lexer understands the pieces of Rust surface syntax that would
//! otherwise produce false positives in a text-level scan:
//!
//! * line (`//`) and nested block (`/* */`) comments, including doc
//!   comments, are dropped entirely;
//! * string, raw-string, byte-string and char literals are lexed as
//!   single opaque tokens (a `HashMap` inside a string never fires);
//! * lifetimes (`'a`) are distinguished from char literals (`'a'`);
//! * a small set of multi-character operators (`==`, `!=`, `::`, …) are
//!   glued so rules can match them as single tokens.
//!
//! It is deliberately *not* a parser: there is no precedence, no AST,
//! and no name resolution. Rules work on the token stream plus the
//! test-region markers computed by [`mark_test_regions`].

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `as`, `fn`, …).
    Ident,
    /// A lifetime such as `'a` (the text excludes the quote).
    Lifetime,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `0.5f32`).
    Float,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `'c'`.
    StrLike,
    /// Punctuation; multi-character operators are glued (`==`, `::`).
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token class.
    pub kind: TokenKind,
    /// The token text as it appears in the source (string-like literals
    /// keep their quotes/prefix).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based source column of the token's first character.
    pub col: u32,
}

impl Token {
    /// `true` when the token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// `true` when the token is the punctuation `s`.
    #[must_use]
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// Multi-character operators glued into single tokens, longest first.
const GLUED: &[&str] = &[
    "..=", "...", "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into a token stream. Never fails: unrecognized bytes
/// become single-character [`TokenKind::Punct`] tokens, and unterminated
/// literals run to end of input.
#[must_use]
pub fn lex(source: &str) -> Vec<Token> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    // Advances `n` chars, maintaining line/col.
    macro_rules! advance {
        ($n:expr) => {
            for _ in 0..$n {
                if i < chars.len() {
                    if chars[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);

        // Whitespace.
        if c.is_whitespace() {
            advance!(1);
            continue;
        }

        // Line comment (also doc comments).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                advance!(1);
            }
            continue;
        }

        // Nested block comment.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    advance!(2);
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    advance!(2);
                    if depth == 0 {
                        break;
                    }
                } else {
                    advance!(1);
                }
            }
            continue;
        }

        // Raw strings and byte strings: r"…", r#"…"#, br"…", b"…".
        if c == 'r' || c == 'b' {
            let mut j = i;
            let mut is_raw = false;
            if chars[j] == 'b' {
                j += 1;
                if chars.get(j) == Some(&'r') {
                    j += 1;
                    is_raw = true;
                }
            } else {
                j += 1; // 'r'
                is_raw = true;
            }
            let mut hashes = 0usize;
            if is_raw {
                while chars.get(j + hashes) == Some(&'#') {
                    hashes += 1;
                }
            }
            // Only a string if the prefix is followed by a quote —
            // otherwise it is an identifier starting with r/b.
            if chars.get(j + hashes) == Some(&'"') {
                let start = i;
                advance!(j + hashes - i + 1); // prefix + hashes + quote
                loop {
                    if i >= chars.len() {
                        break;
                    }
                    if !is_raw && chars[i] == '\\' {
                        advance!(2);
                        continue;
                    }
                    if chars[i] == '"' {
                        // For raw strings require the matching hashes.
                        let mut ok = true;
                        if is_raw {
                            for h in 0..hashes {
                                if chars.get(i + 1 + h) != Some(&'#') {
                                    ok = false;
                                    break;
                                }
                            }
                        }
                        if ok {
                            advance!(1 + if is_raw { hashes } else { 0 });
                            break;
                        }
                    }
                    advance!(1);
                }
                tokens.push(Token {
                    kind: TokenKind::StrLike,
                    text: chars[start..i.min(chars.len())].iter().collect(),
                    line: tline,
                    col: tcol,
                });
                continue;
            }
            // else: fall through to identifier lexing below.
        }

        // Plain string literal.
        if c == '"' {
            let start = i;
            advance!(1);
            while i < chars.len() {
                if chars[i] == '\\' {
                    advance!(2);
                    continue;
                }
                if chars[i] == '"' {
                    advance!(1);
                    break;
                }
                advance!(1);
            }
            tokens.push(Token {
                kind: TokenKind::StrLike,
                text: chars[start..i.min(chars.len())].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Lifetime or char literal.
        if c == '\'' {
            // Lifetime: 'ident not followed by a closing quote.
            if chars.get(i + 1).copied().is_some_and(is_ident_start) {
                let mut j = i + 1;
                while chars.get(j).copied().is_some_and(is_ident_continue) {
                    j += 1;
                }
                if chars.get(j) != Some(&'\'') {
                    let text: String = chars[i..j].iter().collect();
                    advance!(j - i);
                    tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text,
                        line: tline,
                        col: tcol,
                    });
                    continue;
                }
            }
            // Char literal.
            let start = i;
            advance!(1);
            if chars.get(i) == Some(&'\\') {
                advance!(2);
                // \u{…}
                while i < chars.len() && chars[i] != '\'' {
                    advance!(1);
                }
            } else if i < chars.len() {
                advance!(1);
            }
            if chars.get(i) == Some(&'\'') {
                advance!(1);
            }
            tokens.push(Token {
                kind: TokenKind::StrLike,
                text: chars[start..i.min(chars.len())].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Numeric literal.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            advance!(1);
            // In a radix-prefixed literal (0xFE, 0b10, 0o7) an `e`/`E`
            // is a digit or suffix, never an exponent.
            let radix_prefix =
                c == '0' && matches!(chars.get(i), Some('x' | 'X' | 'o' | 'O' | 'b' | 'B'));
            while i < chars.len() {
                let d = chars[i];
                if d.is_ascii_alphanumeric() || d == '_' {
                    if (d == 'e' || d == 'E') && !radix_prefix {
                        // Exponent: `1e5`, `2e-3`, `4E+2` are floats.
                        advance!(1);
                        if matches!(chars.get(i), Some('+' | '-'))
                            && chars.get(i + 1).is_some_and(char::is_ascii_digit)
                        {
                            is_float = true;
                            advance!(1);
                        } else if chars.get(i).is_some_and(char::is_ascii_digit) {
                            is_float = true;
                        }
                        continue;
                    }
                    advance!(1);
                } else if d == '.' && chars.get(i + 1).is_some_and(char::is_ascii_digit) {
                    is_float = true;
                    advance!(1);
                } else {
                    break;
                }
            }
            let text: String = chars[start..i].iter().collect();
            if text.ends_with("f32") || text.ends_with("f64") {
                is_float = true;
            }
            tokens.push(Token {
                kind: if is_float {
                    TokenKind::Float
                } else {
                    TokenKind::Int
                },
                text,
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                advance!(1);
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: chars[start..i].iter().collect(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Glued multi-char operators, longest first.
        let mut matched = false;
        for op in GLUED {
            let oplen = op.len();
            if chars[i..].iter().take(oplen).collect::<String>() == **op {
                // `1..2` lexes `..` here because the number lexer refuses
                // `.` unless followed by a digit — and `..` never is.
                advance!(oplen);
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (*op).to_string(),
                    line: tline,
                    col: tcol,
                });
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }

        // Single-char punctuation (or anything unrecognized).
        advance!(1);
        tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line: tline,
            col: tcol,
        });
    }
    tokens
}

/// Computes, for every token, whether it lies inside test-only code:
/// an item annotated `#[test]`, `#[cfg(test)]` (including
/// `#[cfg(all(test, …))]` but not `#[cfg(not(test))]`), or `#[bench]`.
///
/// The marker covers the attribute itself, any further attributes on the
/// same item, and the item's body (up to the matching `}` or the
/// terminating `;`).
#[must_use]
pub fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let (attr_end, is_test) = scan_attribute(tokens, i);
            if is_test {
                let region_end = skip_item(tokens, attr_end);
                for flag in in_test.iter_mut().take(region_end).skip(i) {
                    *flag = true;
                }
                i = region_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Scans the attribute starting at `#` index `start`; returns the index
/// one past the closing `]` and whether it is a test-marking attribute.
fn scan_attribute(tokens: &[Token], start: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut j = start + 1; // at '['
    let mut inner: Vec<&Token> = Vec::new();
    while j < tokens.len() {
        if tokens[j].is_punct("[") {
            depth += 1;
        } else if tokens[j].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                j += 1;
                break;
            }
        } else if depth >= 1 {
            inner.push(&tokens[j]);
        }
        j += 1;
    }
    let is_test = match inner.first() {
        Some(t) if t.is_ident("test") || t.is_ident("bench") => true,
        Some(t) if t.is_ident("cfg") => {
            inner.iter().any(|t| t.is_ident("test")) && !inner.iter().any(|t| t.is_ident("not"))
        }
        _ => false,
    };
    (j, is_test)
}

/// Skips the item following an attribute: further attributes, then
/// either a braced body (to its matching `}`) or a `;`-terminated item.
/// Returns the index one past the item.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    // Further attributes on the same item.
    while i < tokens.len()
        && tokens[i].is_punct("#")
        && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))
    {
        let (end, _) = scan_attribute(tokens, i);
        i = end;
    }
    let mut brace = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("{") {
            brace += 1;
        } else if t.is_punct("}") {
            brace = brace.saturating_sub(1);
            if brace == 0 {
                return i + 1;
            }
        } else if t.is_punct(";") && brace == 0 {
            return i + 1;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_opaque() {
        let toks = lex("// HashMap\nlet x = \"HashMap\"; /* HashSet */ y");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "x", "y"]);
    }

    #[test]
    fn raw_strings_do_not_leak() {
        let toks = lex(r##"let s = r#"Instant::now"#; z"##);
        assert!(toks.iter().any(|t| t.is_ident("z")));
        assert!(!toks.iter().any(|t| t.is_ident("Instant")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::StrLike && t.text == "'x'"));
    }

    #[test]
    fn float_and_int_literals() {
        let toks = lex("a == 0.0; b == 1; c == 2e-3; d == 4f64; e == 0xFF");
        let kinds: Vec<TokenKind> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Int | TokenKind::Float))
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Float,
                TokenKind::Int,
                TokenKind::Float,
                TokenKind::Float,
                TokenKind::Int
            ]
        );
    }

    #[test]
    fn ranges_are_not_floats() {
        let toks = lex("for i in 0..10 {}");
        assert!(toks.iter().any(|t| t.is_punct("..")));
        assert!(toks.iter().all(|t| t.kind != TokenKind::Float));
    }

    #[test]
    fn glued_operators() {
        let toks = lex("a == b != c :: d -> e");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "->"]);
    }

    #[test]
    fn line_and_col_positions() {
        let toks = lex("a\n  bb\n");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn tail() {}";
        let toks = lex(src);
        let marks = mark_test_regions(&toks);
        let unwrap_idx = toks
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("has unwrap");
        let tail_idx = toks
            .iter()
            .position(|t| t.is_ident("tail"))
            .expect("has tail");
        assert!(marks[unwrap_idx]);
        assert!(!marks[tail_idx]);
        assert!(!marks[0]);
    }

    #[test]
    fn cfg_not_test_is_not_marked() {
        let src = "#[cfg(not(test))]\nmod real { fn f() { x.unwrap(); } }";
        let toks = lex(src);
        let marks = mark_test_regions(&toks);
        let unwrap_idx = toks
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("has unwrap");
        assert!(!marks[unwrap_idx]);
    }

    #[test]
    fn test_attribute_with_more_attributes() {
        let src = "#[test]\n#[ignore]\nfn t() { x.unwrap(); }\nfn real() {}";
        let toks = lex(src);
        let marks = mark_test_regions(&toks);
        let unwrap_idx = toks
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("has unwrap");
        let real_idx = toks
            .iter()
            .position(|t| t.is_ident("real"))
            .expect("has real");
        assert!(marks[unwrap_idx]);
        assert!(!marks[real_idx]);
    }
}
