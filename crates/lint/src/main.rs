//! CLI for `fmoe-lint`. See the library docs for the rule catalog.
//!
//! ```text
//! cargo run -p fmoe-lint -- --workspace [--deny-all] [--format sarif]
//! cargo run -p fmoe-lint -- --workspace --fix --dry-run
//! cargo run -p fmoe-lint -- crates/cache/src/cache.rs
//! ```
//!
//! Exit codes: 0 clean, 1 findings at failing severity (or a non-empty
//! `--fix --dry-run` diff), 2 usage or I/O error.

#![forbid(unsafe_code)]

use fmoe_lint::{
    fix, lint_files, lint_workspace_with, sarif, walk, LintOptions, LintReport, Severity,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: fmoe-lint (--workspace | FILE...) [options]

  --workspace           lint every workspace src/ tree (token rules
                        FM001-FM008 plus the cross-crate taint rules
                        FM010-FM012)
  --deny-all            treat warnings as errors
  --allowlist PATH      lint.toml location (default: <root>/lint.toml)
  --format FMT          output format: text (default), json, sarif
  --pedantic-panics     widen FM010 panic seeds to slice indexing and
                        non-literal division
  --fix                 apply the unambiguous autofixes (FM001, FM005)
  --dry-run             with --fix: print the diff, change nothing;
                        exits 1 when the diff is non-empty";

fn main() -> ExitCode {
    let mut workspace = false;
    let mut deny_all = false;
    let mut fix_mode = false;
    let mut dry_run = false;
    let mut pedantic = false;
    let mut format = Format::Text;
    let mut allowlist: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--deny-all" => deny_all = true,
            "--fix" => fix_mode = true,
            "--dry-run" => dry_run = true,
            "--pedantic-panics" => pedantic = true,
            "--allowlist" => match args.next() {
                Some(p) => allowlist = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--allowlist needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!(
                        "--format needs one of text, json, sarif (got {})\n{USAGE}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}\n{USAGE}");
                return ExitCode::from(2);
            }
            path => files.push(path.to_string()),
        }
    }
    if !workspace && files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }
    if dry_run && !fix_mode {
        eprintln!("--dry-run only makes sense with --fix\n{USAGE}");
        return ExitCode::from(2);
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("fmoe-lint: cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match walk::find_workspace_root(&cwd) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fmoe-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let allowlist_path = allowlist.unwrap_or_else(|| root.join("lint.toml"));

    let opts = LintOptions {
        pedantic_panics: pedantic,
        ..LintOptions::default()
    };
    let report = if workspace {
        lint_workspace_with(&root, &allowlist_path, &opts)
    } else {
        lint_files(&root, &files, &allowlist_path)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fmoe-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if fix_mode {
        return run_fix(&root, &report, dry_run);
    }
    match format {
        Format::Text => render(&report, deny_all),
        Format::Json => {
            print!("{}", sarif::to_json(&report, deny_all));
            summary_and_code(&report, deny_all)
        }
        Format::Sarif => {
            print!("{}", sarif::to_sarif(&report, deny_all));
            summary_and_code(&report, deny_all)
        }
    }
}

/// Output format selector.
#[derive(Clone, Copy)]
enum Format {
    Text,
    Json,
    Sarif,
}

/// Plans (and optionally applies) the autofixes for a report.
fn run_fix(root: &std::path::Path, report: &LintReport, dry_run: bool) -> ExitCode {
    let plans = match fix::plan(root, &report.diagnostics) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("fmoe-lint: fix planning failed: {e}");
            return ExitCode::from(2);
        }
    };
    let edits: usize = plans.iter().map(|p| p.edits.len()).sum();
    if dry_run {
        print!("{}", fix::render_diff(&plans));
        eprintln!(
            "fmoe-lint: --fix --dry-run: {edits} edit(s) in {} file(s) would be applied",
            plans.len()
        );
        return if edits == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    match fix::apply(root, &plans) {
        Ok(applied) => {
            eprintln!(
                "fmoe-lint: --fix: applied {applied} edit(s) in {} file(s)",
                plans.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fmoe-lint: fix application failed: {e}");
            ExitCode::from(2)
        }
    }
}

/// Summary line on stderr plus the exit code, for machine formats whose
/// stdout must stay a single well-formed document.
fn summary_and_code(report: &LintReport, deny_all: bool) -> ExitCode {
    let errors = report.errors(deny_all);
    eprintln!(
        "fmoe-lint: {} file(s), {} error(s), {} warning(s), {} suppressed by lint.toml",
        report.files,
        errors,
        report.warnings(deny_all),
        report.suppressed
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Prints diagnostics and the summary; computes the exit code.
fn render(report: &LintReport, deny_all: bool) -> ExitCode {
    for d in &report.diagnostics {
        let shown = if deny_all && d.severity == Severity::Warning {
            let mut promoted = d.clone();
            promoted.severity = Severity::Error;
            promoted
        } else {
            d.clone()
        };
        eprint!("{shown}");
    }
    summary_and_code(report, deny_all)
}
