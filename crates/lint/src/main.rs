//! CLI for `fmoe-lint`. See the library docs for the rule catalog.
//!
//! ```text
//! cargo run -p fmoe-lint -- --workspace [--deny-all]
//! cargo run -p fmoe-lint -- crates/cache/src/cache.rs
//! ```
//!
//! Exit codes: 0 clean, 1 findings at failing severity, 2 usage or I/O
//! error.

#![forbid(unsafe_code)]

use fmoe_lint::{lint_files, lint_workspace, walk, LintReport, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: fmoe-lint (--workspace | FILE...) [--deny-all] [--allowlist PATH]

  --workspace        lint every workspace src/ tree
  --deny-all         treat warnings as errors
  --allowlist PATH   lint.toml location (default: <root>/lint.toml)";

fn main() -> ExitCode {
    let mut workspace = false;
    let mut deny_all = false;
    let mut allowlist: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--deny-all" => deny_all = true,
            "--allowlist" => match args.next() {
                Some(p) => allowlist = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--allowlist needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}\n{USAGE}");
                return ExitCode::from(2);
            }
            path => files.push(path.to_string()),
        }
    }
    if !workspace && files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("fmoe-lint: cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match walk::find_workspace_root(&cwd) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fmoe-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let allowlist_path = allowlist.unwrap_or_else(|| root.join("lint.toml"));

    let report = if workspace {
        lint_workspace(&root, &allowlist_path)
    } else {
        lint_files(&root, &files, &allowlist_path)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fmoe-lint: {e}");
            return ExitCode::from(2);
        }
    };
    render(&report, deny_all)
}

/// Prints diagnostics and the summary; computes the exit code.
fn render(report: &LintReport, deny_all: bool) -> ExitCode {
    for d in &report.diagnostics {
        let shown = if deny_all && d.severity == Severity::Warning {
            let mut promoted = d.clone();
            promoted.severity = Severity::Error;
            promoted
        } else {
            d.clone()
        };
        eprint!("{shown}");
    }
    let errors = report.errors(deny_all);
    let warnings = report.warnings(deny_all);
    eprintln!(
        "fmoe-lint: {} file(s), {} error(s), {} warning(s), {} suppressed by lint.toml",
        report.files, errors, warnings, report.suppressed
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
