//! Item-level parser: the second analysis stage on top of [`crate::lexer`].
//!
//! This is deliberately *not* a full Rust grammar. It recovers exactly
//! the structure the cross-crate rules (FM010–FM012) need:
//!
//! * `fn` items (free functions, inherent/trait-impl methods, trait
//!   default methods) with their visibility, source span, and body;
//! * `impl` blocks (`impl Type` and `impl Trait for Type`);
//! * `trait` definitions and their method names;
//! * `use` declarations (single names, `as` aliases, nested groups,
//!   glob imports) for intra-workspace path resolution;
//! * call expressions inside bodies — `path::to::f(…)`, `Type::assoc(…)`
//!   including turbofish, and `.method(…)` calls;
//! * taint *seeds* inside bodies: explicit panics (`unwrap`/`expect`/
//!   `panic!`-family), wall-clock reads (`Instant::now`, `SystemTime`),
//!   unseeded randomness (`thread_rng`, `from_entropy`, `rand::random`),
//!   and — under the pedantic knob — slice indexing and `/` `%` on
//!   non-literal divisors;
//! * `dyn Trait` sites for the FM012 dispatch rule.
//!
//! Expressions have no precedence and no types here; everything above is
//! recovered from the token stream plus brace/paren/bracket balancing.
//! Items inside `#[cfg(test)]` regions are skipped entirely — test code
//! is outside the contract.

use crate::lexer::{lex, mark_test_regions, Token, TokenKind};

/// Taint facts a seed can introduce (see [`crate::taint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SeedKind {
    /// `unwrap()`, `expect()`, `panic!`, `unreachable!`, `todo!`,
    /// `unimplemented!` — the FM004 family.
    PanicExplicit,
    /// Slice/array indexing `x[i]` (pedantic; panics on out-of-range).
    PanicIndex,
    /// `/` or `%` with a non-literal divisor (pedantic; integer division
    /// panics on zero — the lexer cannot see types, so this also matches
    /// float division and is off by default).
    PanicDiv,
    /// `Instant::now` / `SystemTime` — wall-clock reads.
    WallClock,
    /// `thread_rng` / `from_entropy` / `rand::random`.
    UnseededRng,
}

impl SeedKind {
    /// `true` for the panic-fact seeds.
    #[must_use]
    pub fn is_panic(self) -> bool {
        matches!(
            self,
            Self::PanicExplicit | Self::PanicIndex | Self::PanicDiv
        )
    }

    /// `true` for seeds only collected under `--pedantic-panics`.
    #[must_use]
    pub fn is_pedantic(self) -> bool {
        matches!(self, Self::PanicIndex | Self::PanicDiv)
    }
}

/// One taint seed found inside a function body.
#[derive(Debug, Clone)]
pub struct Seed {
    /// Which fact the seed introduces.
    pub kind: SeedKind,
    /// The offending source text (`unwrap`, `panic!`, `Instant::now`, …).
    pub what: String,
    /// 1-based line of the seed.
    pub line: u32,
    /// 1-based column of the seed.
    pub col: u32,
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Path segments (`["fmoe_cache", "lru", "evict"]`, `["helper"]`).
    /// For method calls this is the single method name.
    pub segments: Vec<String>,
    /// `true` for `.name(…)` method-call syntax.
    pub method: bool,
    /// `true` when a method call's receiver is literally `self`.
    pub on_self: bool,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's own name.
    pub name: String,
    /// Inline-module path inside the file (file-level path is added by
    /// the graph layer from the file's location under `src/`).
    pub modules: Vec<String>,
    /// Base name of the `impl` type the method belongs to, if any.
    pub self_type: Option<String>,
    /// Trait name for `impl Trait for Type` methods and trait default
    /// methods.
    pub trait_name: Option<String>,
    /// `true` for plain `pub` items (not `pub(crate)` / `pub(super)`).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Calls made from the body, in source order.
    pub calls: Vec<CallSite>,
    /// Taint seeds found in the body, in source order.
    pub seeds: Vec<Seed>,
}

/// One parsed `trait` definition.
#[derive(Debug, Clone)]
pub struct TraitDef {
    /// The trait's name.
    pub name: String,
    /// Inline-module path inside the file.
    pub modules: Vec<String>,
    /// Names of every method the trait declares (with or without a
    /// default body).
    pub methods: Vec<String>,
}

/// One `impl` block's identity (methods are recorded as [`FnItem`]s).
#[derive(Debug, Clone)]
pub struct ImplInfo {
    /// Base name of the implementing type.
    pub type_name: String,
    /// Trait being implemented, for `impl Trait for Type`.
    pub trait_name: Option<String>,
}

/// One single-name `use` import: `name` resolves to `path`.
#[derive(Debug, Clone)]
pub struct Import {
    /// The name the import binds in this file.
    pub name: String,
    /// Full path segments as written (`["crate", "engine", "Engine"]`).
    pub path: Vec<String>,
}

/// One `dyn Trait` occurrence outside test code.
#[derive(Debug, Clone)]
pub struct DynSite {
    /// The trait named after `dyn`.
    pub trait_name: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column of the `dyn` keyword.
    pub col: u32,
}

/// Everything recovered from one source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// All non-test `fn` items.
    pub fns: Vec<FnItem>,
    /// All non-test `trait` definitions.
    pub traits: Vec<TraitDef>,
    /// All non-test `impl` blocks.
    pub impls: Vec<ImplInfo>,
    /// Single-name imports.
    pub imports: Vec<Import>,
    /// Glob-import base paths (`use x::y::*` records `["x", "y"]`).
    pub globs: Vec<Vec<String>>,
    /// `dyn Trait` sites.
    pub dyn_sites: Vec<DynSite>,
}

/// Keywords that look like call heads but never are.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "loop", "return", "break", "continue", "in", "let",
    "mut", "ref", "move", "async", "await", "fn", "impl", "trait", "struct", "enum", "union",
    "mod", "use", "pub", "where", "unsafe", "extern", "dyn", "as", "const", "static", "type",
];

/// Parses one file's source into the item model.
#[must_use]
pub fn parse_file(source: &str) -> ParsedFile {
    let tokens = lex(source);
    let in_test = mark_test_regions(&tokens);
    let mut out = ParsedFile::default();
    let mut ctx = ItemCtx {
        modules: Vec::new(),
        impl_type: None,
        impl_trait: None,
        trait_def: None,
    };
    parse_items(&tokens, &in_test, 0, tokens.len(), &mut ctx, &mut out);
    collect_dyn_sites(&tokens, &in_test, &mut out);
    out
}

/// Parser context while descending into modules / impls / traits.
struct ItemCtx {
    modules: Vec<String>,
    impl_type: Option<String>,
    impl_trait: Option<String>,
    /// Set while parsing a `trait` body: methods register on this trait.
    trait_def: Option<usize>,
}

/// Walks items in `tokens[i..end]`, appending to `out`.
#[allow(clippy::too_many_lines)]
fn parse_items(
    tokens: &[Token],
    in_test: &[bool],
    mut i: usize,
    end: usize,
    ctx: &mut ItemCtx,
    out: &mut ParsedFile,
) {
    let mut vis_pub = false;
    while i < end {
        let t = &tokens[i];

        // Attributes: skip. `#[…]` and inner `#![…]`.
        if t.is_punct("#") {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is_punct("!")) {
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| t.is_punct("[")) {
                i = skip_balanced(tokens, j, end, "[", "]");
                continue;
            }
            i += 1;
            continue;
        }

        if t.is_ident("pub") {
            // Plain `pub` only; `pub(crate)` / `pub(super)` / `pub(in …)`
            // are not public API.
            if tokens.get(i + 1).is_some_and(|t| t.is_punct("(")) {
                i = skip_balanced(tokens, i + 1, end, "(", ")");
            } else {
                vis_pub = true;
                i += 1;
            }
            continue;
        }

        if t.is_ident("mod") {
            let name = tokens.get(i + 1).map(|t| t.text.clone());
            if tokens.get(i + 2).is_some_and(|t| t.is_punct("{")) {
                let body_end = skip_balanced(tokens, i + 2, end, "{", "}");
                if let Some(name) = name {
                    ctx.modules.push(name);
                    parse_items(tokens, in_test, i + 3, body_end - 1, ctx, out);
                    ctx.modules.pop();
                }
                i = body_end;
            } else {
                // `mod name;` — outline module, covered by its own file.
                i = skip_to_semicolon(tokens, i, end);
            }
            vis_pub = false;
            continue;
        }

        if t.is_ident("use") {
            let (imports, globs, next) = parse_use(tokens, i + 1, end);
            if !in_test.get(i).copied().unwrap_or(false) {
                out.imports.extend(imports);
                out.globs.extend(globs);
            }
            i = next;
            vis_pub = false;
            continue;
        }

        if t.is_ident("impl") {
            i = parse_impl(tokens, in_test, i, end, ctx, out);
            vis_pub = false;
            continue;
        }

        if t.is_ident("trait") {
            i = parse_trait(tokens, in_test, i, end, ctx, out);
            vis_pub = false;
            continue;
        }

        if t.is_ident("fn") {
            i = parse_fn(tokens, in_test, i, end, ctx, out, vis_pub);
            vis_pub = false;
            continue;
        }

        // Items we skip wholesale: struct/enum/union/const/static/type/
        // macro_rules/extern. All end at `;` or a braced body.
        if t.kind == TokenKind::Ident
            && matches!(
                t.text.as_str(),
                "struct"
                    | "enum"
                    | "union"
                    | "const"
                    | "static"
                    | "type"
                    | "macro_rules"
                    | "extern"
            )
        {
            i = skip_item_body(tokens, i + 1, end);
            vis_pub = false;
            continue;
        }

        i += 1;
        vis_pub = false;
    }
}

/// Skips to one past the matching closer for the opener at `open_idx`.
fn skip_balanced(tokens: &[Token], open_idx: usize, end: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut i = open_idx;
    while i < end {
        if tokens[i].is_punct(open) {
            depth += 1;
        } else if tokens[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end
}

/// Skips to one past the next `;` at zero bracket depth.
fn skip_to_semicolon(tokens: &[Token], mut i: usize, end: usize) -> usize {
    let mut depth = 0isize;
    while i < end {
        let t = &tokens[i];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if t.is_punct(";") && depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    end
}

/// Skips an item body starting after its keyword: runs to a `;` or
/// through a braced block, whichever comes first at depth 0.
fn skip_item_body(tokens: &[Token], mut i: usize, end: usize) -> usize {
    let mut depth = 0isize;
    while i < end {
        let t = &tokens[i];
        if t.is_punct("{") && depth == 0 {
            return skip_balanced(tokens, i, end, "{", "}");
        }
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if t.is_punct(";") && depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    end
}

/// Parses a `use` tree starting after the `use` keyword. Returns the
/// imports, the glob bases, and the index one past the closing `;`.
fn parse_use(tokens: &[Token], start: usize, end: usize) -> (Vec<Import>, Vec<Vec<String>>, usize) {
    let stop = skip_to_semicolon(tokens, start, end);
    let mut imports = Vec::new();
    let mut globs = Vec::new();
    // `stop - 1` points one past `;`; the tree is tokens[start..stop-1].
    let tree_end = stop.saturating_sub(1).max(start);
    parse_use_tree(
        tokens,
        start,
        tree_end,
        &Vec::new(),
        &mut imports,
        &mut globs,
    );
    (imports, globs, stop)
}

/// Recursively parses one use-tree level: `a::b::{c, d as e, f::*}`.
fn parse_use_tree(
    tokens: &[Token],
    mut i: usize,
    end: usize,
    prefix: &[String],
    imports: &mut Vec<Import>,
    globs: &mut Vec<Vec<String>>,
) {
    let mut path: Vec<String> = prefix.to_vec();
    while i < end {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident && t.text != "as" {
            path.push(t.text.clone());
            i += 1;
            continue;
        }
        if t.is_punct("::") {
            i += 1;
            continue;
        }
        if t.is_punct("*") {
            globs.push(path.clone());
            return;
        }
        if t.is_ident("as") {
            // `path as alias` — alias binds the same target path.
            if let Some(alias) = tokens.get(i + 1) {
                imports.push(Import {
                    name: alias.text.clone(),
                    path: path.clone(),
                });
            }
            return;
        }
        if t.is_punct("{") {
            let group_end = skip_balanced(tokens, i, end, "{", "}");
            // Split the group body on top-level commas.
            let mut item_start = i + 1;
            let mut depth = 0usize;
            let mut j = i + 1;
            while j < group_end - 1 {
                if tokens[j].is_punct("{") {
                    depth += 1;
                } else if tokens[j].is_punct("}") {
                    depth -= 1;
                } else if tokens[j].is_punct(",") && depth == 0 {
                    parse_use_tree(tokens, item_start, j, &path, imports, globs);
                    item_start = j + 1;
                }
                j += 1;
            }
            if item_start < group_end - 1 {
                parse_use_tree(tokens, item_start, group_end - 1, &path, imports, globs);
            }
            return;
        }
        // Anything else ends this tree.
        break;
    }
    // `use a::b::c;` — the final segment is the bound name. `self` in a
    // group (`use x::{self, y}`) binds the parent's last segment.
    if let Some(last) = path.last().cloned() {
        if last == "self" {
            path.pop();
            if let Some(name) = path.last().cloned() {
                imports.push(Import { name, path });
            }
        } else if path.len() > prefix.len() || !path.is_empty() {
            imports.push(Import { name: last, path });
        }
    }
}

/// Skips a balanced generic-argument list starting at `<`. Honors the
/// lexer's glued `<<` / `>>` shift tokens (each counts twice).
fn skip_angles(tokens: &[Token], mut i: usize, end: usize) -> usize {
    let mut depth = 0isize;
    while i < end {
        let t = &tokens[i];
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct("<<") {
            depth += 2;
        } else if t.is_punct(">") {
            depth -= 1;
            if depth <= 0 {
                return i + 1;
            }
        } else if t.is_punct(">>") {
            depth -= 2;
            if depth <= 0 {
                return i + 1;
            }
        } else if t.is_punct("(") || t.is_punct("[") {
            // Parenthesized types / arrays inside generics.
            i = skip_balanced(tokens, i, end, if t.is_punct("(") { "(" } else { "[" }, {
                if t.is_punct("(") {
                    ")"
                } else {
                    "]"
                }
            });
            continue;
        }
        i += 1;
    }
    end
}

/// Reads a type path after `impl` (or after `for`), returning the base
/// name of the final segment and the index after the path.
fn read_type_path(tokens: &[Token], mut i: usize, end: usize) -> (Option<String>, usize) {
    // Skip leading `&`, lifetimes, `mut`, `dyn`.
    while i < end {
        let t = &tokens[i];
        if t.is_punct("&")
            || t.kind == TokenKind::Lifetime
            || t.is_ident("mut")
            || t.is_ident("dyn")
        {
            i += 1;
        } else {
            break;
        }
    }
    let mut base: Option<String> = None;
    while i < end {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident {
            base = Some(t.text.clone());
            i += 1;
            if tokens.get(i).is_some_and(|t| t.is_punct("<")) {
                i = skip_angles(tokens, i, end);
            }
            if tokens.get(i).is_some_and(|t| t.is_punct("::")) {
                i += 1;
                continue;
            }
            break;
        }
        break;
    }
    (base, i)
}

/// Parses an `impl` block starting at the `impl` keyword; returns the
/// index one past the block.
fn parse_impl(
    tokens: &[Token],
    in_test: &[bool],
    start: usize,
    end: usize,
    ctx: &mut ItemCtx,
    out: &mut ParsedFile,
) -> usize {
    let mut i = start + 1;
    if tokens.get(i).is_some_and(|t| t.is_punct("<")) {
        i = skip_angles(tokens, i, end);
    }
    let (first, after_first) = read_type_path(tokens, i, end);
    i = after_first;
    let (type_name, trait_name) = if tokens.get(i).is_some_and(|t| t.is_ident("for")) {
        let (ty, after_ty) = read_type_path(tokens, i + 1, end);
        i = after_ty;
        (ty, first)
    } else {
        (first, None)
    };
    // Skip a where-clause up to the body.
    while i < end && !tokens[i].is_punct("{") {
        if tokens[i].is_punct(";") {
            return i + 1; // `impl Trait for Type;` — nothing to do.
        }
        if tokens[i].is_punct("<") {
            i = skip_angles(tokens, i, end);
            continue;
        }
        i += 1;
    }
    if i >= end {
        return end;
    }
    let body_end = skip_balanced(tokens, i, end, "{", "}");
    if let Some(type_name) = type_name {
        if !in_test.get(start).copied().unwrap_or(false) {
            out.impls.push(ImplInfo {
                type_name: type_name.clone(),
                trait_name: trait_name.clone(),
            });
        }
        let saved_ty = ctx.impl_type.replace(type_name);
        let saved_tr = ctx.impl_trait.take();
        ctx.impl_trait = trait_name;
        parse_items(tokens, in_test, i + 1, body_end - 1, ctx, out);
        ctx.impl_type = saved_ty;
        ctx.impl_trait = saved_tr;
    }
    body_end
}

/// Parses a `trait` definition starting at the `trait` keyword; returns
/// the index one past the body.
fn parse_trait(
    tokens: &[Token],
    in_test: &[bool],
    start: usize,
    end: usize,
    ctx: &mut ItemCtx,
    out: &mut ParsedFile,
) -> usize {
    let Some(name_tok) = tokens.get(start + 1) else {
        return end;
    };
    let name = name_tok.text.clone();
    let mut i = start + 2;
    while i < end && !tokens[i].is_punct("{") {
        if tokens[i].is_punct(";") {
            return i + 1;
        }
        if tokens[i].is_punct("<") {
            i = skip_angles(tokens, i, end);
            continue;
        }
        i += 1;
    }
    if i >= end {
        return end;
    }
    let body_end = skip_balanced(tokens, i, end, "{", "}");
    if in_test.get(start).copied().unwrap_or(false) {
        return body_end;
    }
    out.traits.push(TraitDef {
        name: name.clone(),
        modules: ctx.modules.clone(),
        methods: Vec::new(),
    });
    let trait_idx = out.traits.len() - 1;
    let saved = ctx.trait_def.replace(trait_idx);
    let saved_ty = ctx.impl_type.replace(name.clone());
    let saved_tr = ctx.impl_trait.replace(name);
    parse_items(tokens, in_test, i + 1, body_end - 1, ctx, out);
    ctx.trait_def = saved;
    ctx.impl_type = saved_ty;
    ctx.impl_trait = saved_tr;
    body_end
}

/// Parses a `fn` item starting at the `fn` keyword; returns the index
/// one past the item.
fn parse_fn(
    tokens: &[Token],
    in_test: &[bool],
    start: usize,
    end: usize,
    ctx: &mut ItemCtx,
    out: &mut ParsedFile,
    is_pub: bool,
) -> usize {
    let Some(name_tok) = tokens.get(start + 1) else {
        return end;
    };
    let name = name_tok.text.clone();
    // Scan the signature to the body `{` or a `;` (trait method with no
    // default body).
    let mut i = start + 2;
    let mut depth = 0isize;
    let body_start = loop {
        if i >= end {
            break None;
        }
        let t = &tokens[i];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if t.is_punct("<") && depth == 0 {
            i = skip_angles(tokens, i, end);
            continue;
        } else if t.is_punct("{") && depth == 0 {
            break Some(i);
        } else if t.is_punct(";") && depth == 0 {
            break None;
        }
        i += 1;
    };

    // Register the method name on the enclosing trait definition.
    if let Some(trait_idx) = ctx.trait_def {
        if !in_test.get(start).copied().unwrap_or(false) {
            out.traits[trait_idx].methods.push(name.clone());
        }
    }

    let Some(body_start) = body_start else {
        return i.min(end).saturating_add(1).min(end.max(1));
    };
    let body_end = skip_balanced(tokens, body_start, end, "{", "}");
    if in_test.get(start).copied().unwrap_or(false) {
        return body_end;
    }
    let mut item = FnItem {
        name,
        modules: ctx.modules.clone(),
        self_type: ctx.impl_type.clone(),
        trait_name: ctx.impl_trait.clone(),
        is_pub,
        line: tokens[start].line,
        col: tokens[start].col,
        calls: Vec::new(),
        seeds: Vec::new(),
    };
    scan_body(
        tokens,
        body_start + 1,
        body_end.saturating_sub(1),
        &mut item,
    );
    out.fns.push(item);
    body_end
}

/// Scans a fn body for call sites and taint seeds.
#[allow(clippy::too_many_lines)]
fn scan_body(tokens: &[Token], start: usize, end: usize, item: &mut FnItem) {
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        let prev = i.checked_sub(1).and_then(|j| tokens.get(j));
        let next = tokens.get(i + 1);

        // Method calls and method-style seeds: `.name(…)`.
        if t.is_punct(".") {
            if let Some(name_tok) = next {
                if name_tok.kind == TokenKind::Ident {
                    let mut after = i + 2;
                    // Turbofish: `.collect::<…>(…)`.
                    if tokens.get(after).is_some_and(|t| t.is_punct("::"))
                        && tokens.get(after + 1).is_some_and(|t| t.is_punct("<"))
                    {
                        after = skip_angles(tokens, after + 1, end);
                    }
                    if tokens.get(after).is_some_and(|t| t.is_punct("(")) {
                        let name = name_tok.text.as_str();
                        if name == "unwrap" || name == "expect" {
                            item.seeds.push(Seed {
                                kind: SeedKind::PanicExplicit,
                                what: format!("{name}()"),
                                line: name_tok.line,
                                col: name_tok.col,
                            });
                        } else if name != "await" {
                            item.calls.push(CallSite {
                                segments: vec![name_tok.text.clone()],
                                method: true,
                                on_self: prev.is_some_and(|p| p.is_ident("self")),
                            });
                        }
                        i = after + 1;
                        continue;
                    }
                }
            }
            i += 1;
            continue;
        }

        if t.kind == TokenKind::Ident {
            // Panic macros.
            if next.is_some_and(|n| n.is_punct("!"))
                && matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
            {
                item.seeds.push(Seed {
                    kind: SeedKind::PanicExplicit,
                    what: format!("{}!", t.text),
                    line: t.line,
                    col: t.col,
                });
                i += 2;
                continue;
            }

            // Wall clock: `Instant::now` / `SystemTime`.
            if t.text == "Instant"
                && next.is_some_and(|n| n.is_punct("::"))
                && tokens.get(i + 2).is_some_and(|n| n.is_ident("now"))
            {
                item.seeds.push(Seed {
                    kind: SeedKind::WallClock,
                    what: "Instant::now".to_string(),
                    line: t.line,
                    col: t.col,
                });
                i += 3;
                continue;
            }
            if t.text == "SystemTime" {
                item.seeds.push(Seed {
                    kind: SeedKind::WallClock,
                    what: "SystemTime".to_string(),
                    line: t.line,
                    col: t.col,
                });
                i += 1;
                continue;
            }

            // Unseeded randomness.
            if t.text == "thread_rng" || t.text == "from_entropy" {
                item.seeds.push(Seed {
                    kind: SeedKind::UnseededRng,
                    what: t.text.clone(),
                    line: t.line,
                    col: t.col,
                });
                i += 1;
                continue;
            }
            if t.text == "rand"
                && next.is_some_and(|n| n.is_punct("::"))
                && tokens.get(i + 2).is_some_and(|n| n.is_ident("random"))
            {
                item.seeds.push(Seed {
                    kind: SeedKind::UnseededRng,
                    what: "rand::random".to_string(),
                    line: t.line,
                    col: t.col,
                });
                i += 3;
                continue;
            }

            // Path-call head: an ident not preceded by `::`, `.`, or `fn`.
            let is_head = !prev.is_some_and(|p| {
                p.is_punct("::") || p.is_punct(".") || p.is_ident("fn") || p.is_punct("#")
            });
            if is_head && !NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
                let mut segs = vec![t.text.clone()];
                let mut j = i + 1;
                loop {
                    if tokens.get(j).is_some_and(|t| t.is_punct("::"))
                        && tokens
                            .get(j + 1)
                            .is_some_and(|t| t.kind == TokenKind::Ident)
                    {
                        segs.push(tokens[j + 1].text.clone());
                        j += 2;
                        continue;
                    }
                    break;
                }
                // Turbofish on the final segment: `f::<T>(…)`.
                let mut call_paren = j;
                if tokens.get(j).is_some_and(|t| t.is_punct("::"))
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct("<"))
                {
                    call_paren = skip_angles(tokens, j + 1, end);
                }
                let is_macro = tokens.get(call_paren).is_some_and(|t| t.is_punct("!"));
                if !is_macro && tokens.get(call_paren).is_some_and(|t| t.is_punct("(")) {
                    item.calls.push(CallSite {
                        segments: segs,
                        method: false,
                        on_self: false,
                    });
                }
                i = j;
                continue;
            }
            i += 1;
            continue;
        }

        // Pedantic: indexing `x[…]` — `[` whose previous token closes an
        // expression (identifier, `)`, or `]`), not an array literal or
        // attribute.
        if t.is_punct("[") {
            let indexing = prev.is_some_and(|p| {
                (p.kind == TokenKind::Ident && !NON_CALL_KEYWORDS.contains(&p.text.as_str()))
                    || p.is_punct(")")
                    || p.is_punct("]")
            });
            if indexing {
                item.seeds.push(Seed {
                    kind: SeedKind::PanicIndex,
                    what: "slice indexing".to_string(),
                    line: t.line,
                    col: t.col,
                });
            }
            i += 1;
            continue;
        }

        // Pedantic: `/` `%` with a non-literal divisor.
        if (t.is_punct("/") || t.is_punct("%") || t.is_punct("/=") || t.is_punct("%=")) && {
            let divisor_nonliteral =
                next.is_some_and(|n| n.kind == TokenKind::Ident || n.is_punct("("));
            let lhs_expr = prev.is_some_and(|p| {
                p.kind == TokenKind::Ident
                    || p.kind == TokenKind::Int
                    || p.is_punct(")")
                    || p.is_punct("]")
            });
            divisor_nonliteral && lhs_expr
        } {
            item.seeds.push(Seed {
                kind: SeedKind::PanicDiv,
                what: format!("`{}` with non-literal divisor", t.text),
                line: t.line,
                col: t.col,
            });
            i += 1;
            continue;
        }

        i += 1;
    }
}

/// Records every `dyn Trait` occurrence outside test regions.
fn collect_dyn_sites(tokens: &[Token], in_test: &[bool], out: &mut ParsedFile) {
    for (i, t) in tokens.iter().enumerate() {
        if in_test.get(i).copied().unwrap_or(false) {
            continue;
        }
        if t.is_ident("dyn") {
            if let Some(name) = tokens.get(i + 1) {
                if name.kind == TokenKind::Ident {
                    out.dyn_sites.push(DynSite {
                        trait_name: name.text.clone(),
                        line: t.line,
                        col: t.col,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_file(src)
    }

    #[test]
    fn free_fn_with_calls_and_seeds() {
        let p = parse("pub fn f() { helper(); x.unwrap(); other::g(1); }");
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert!(f.is_pub);
        assert_eq!(f.name, "f");
        let segs: Vec<Vec<String>> = f.calls.iter().map(|c| c.segments.clone()).collect();
        assert_eq!(segs, vec![vec!["helper"], vec!["other", "g"]]);
        assert_eq!(f.seeds.len(), 1);
        assert_eq!(f.seeds[0].kind, SeedKind::PanicExplicit);
    }

    #[test]
    fn impl_methods_carry_type_and_trait() {
        let p = parse("impl Widget { fn a(&self) { self.b(); } }\nimpl Render for Widget { fn draw(&self) {} }");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].self_type.as_deref(), Some("Widget"));
        assert!(p.fns[0].trait_name.is_none());
        assert!(p.fns[0].calls[0].method && p.fns[0].calls[0].on_self);
        assert_eq!(p.fns[1].self_type.as_deref(), Some("Widget"));
        assert_eq!(p.fns[1].trait_name.as_deref(), Some("Render"));
        assert_eq!(p.impls.len(), 2);
    }

    #[test]
    fn trait_methods_and_defaults() {
        let p = parse("trait T { fn req(&self); fn opt(&self) { self.req(); } }");
        assert_eq!(p.traits.len(), 1);
        assert_eq!(p.traits[0].methods, vec!["req", "opt"]);
        // Only the default method has a body and becomes an FnItem.
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "opt");
        assert_eq!(p.fns[0].trait_name.as_deref(), Some("T"));
    }

    #[test]
    fn use_trees_groups_aliases_globs() {
        let p = parse(
            "use crate::engine::Engine;\nuse fmoe_cache::{lru, policy::Policy as P};\nuse super::*;",
        );
        let names: Vec<&str> = p.imports.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["Engine", "lru", "P"]);
        assert_eq!(p.imports[2].path, vec!["fmoe_cache", "policy", "Policy"]);
        assert_eq!(p.globs, vec![vec!["super"]]);
    }

    #[test]
    fn inline_modules_nest() {
        let p = parse("mod outer { mod inner { fn deep() {} } fn shallow() {} }");
        let paths: Vec<(Vec<String>, &str)> = p
            .fns
            .iter()
            .map(|f| (f.modules.clone(), f.name.as_str()))
            .collect();
        assert!(paths.contains(&(vec!["outer".into(), "inner".into()], "deep")));
        assert!(paths.contains(&(vec!["outer".into()], "shallow")));
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let p = parse("#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\nfn real() {}");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn turbofish_and_macros() {
        let p = parse("fn f() { parse::<u64>(s); vec![1]; format!(\"{}\", x); g::<T>(); }");
        let segs: Vec<Vec<String>> = p.fns[0].calls.iter().map(|c| c.segments.clone()).collect();
        assert_eq!(segs, vec![vec!["parse"], vec!["g"]]);
    }

    #[test]
    fn wall_clock_and_rng_seeds() {
        let p = parse("fn f() { let t = Instant::now(); let r = thread_rng(); }");
        let kinds: Vec<SeedKind> = p.fns[0].seeds.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec![SeedKind::WallClock, SeedKind::UnseededRng]);
    }

    #[test]
    fn pedantic_seeds_index_and_div() {
        let p = parse("fn f(xs: &[u64], n: u64) -> u64 { xs[3] + xs.len() as u64 / n }");
        let kinds: Vec<SeedKind> = p.fns[0].seeds.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SeedKind::PanicIndex));
        assert!(kinds.contains(&SeedKind::PanicDiv));
        // Array literals and attributes are not indexing.
        let q = parse("fn g() { let a = [1, 2]; }");
        assert!(q.fns[0].seeds.is_empty());
    }

    #[test]
    fn dyn_sites_are_collected() {
        let p = parse(
            "fn f(p: &mut dyn Predictor) {}\n#[cfg(test)]\nmod t { fn g(p: &dyn Predictor) {} }",
        );
        assert_eq!(p.dyn_sites.len(), 1);
        assert_eq!(p.dyn_sites[0].trait_name, "Predictor");
    }
}
