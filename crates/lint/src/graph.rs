//! Cross-crate call graph, keyed by `crate::module::fn`.
//!
//! Built from the per-file item models produced by [`crate::parser`]:
//! every workspace `fn` becomes a node with a qualified path
//! (`fmoe_serving::engine::Engine::serve_batch`, `a::f`, …), and every
//! call expression that resolves to a workspace function becomes an
//! edge. Resolution is deliberately heuristic — there is no type
//! inference — and errs toward *missing* edges rather than inventing
//! them:
//!
//! * path calls resolve through the file's `use` map (including aliases,
//!   groups, and glob imports), `crate::` / `self::` / `super::`
//!   prefixes, and workspace crate idents;
//! * `Type::assoc(…)` resolves by the type's base name against every
//!   `impl` block in the workspace (type names are effectively unique
//!   here, and this transparently handles `pub use` re-exports);
//! * `self.method(…)` resolves against the enclosing `impl` type;
//!   other `.method(…)` calls resolve only when exactly one workspace
//!   impl defines that method name and the name is not on the
//!   common-std-method deny list (`len`, `push`, `get`, …), so a
//!   `Vec::push` never aliases a workspace method;
//! * unresolved calls (std, vendored shims, closures) produce no edge.
//!
//! The graph also records trait definitions, their implementors, and
//! `dyn Trait` sites for the FM012 dispatch rule.

use crate::parser::{parse_file, DynSite, ParsedFile, Seed};
use crate::rules::{FileContext, FileKind};
use crate::walk::CrateSources;
use std::collections::{BTreeMap, BTreeSet};

/// Method names never resolved by bare-name uniqueness: they collide
/// with ubiquitous std methods, so a lone workspace impl must not
/// capture every call.
const COMMON_METHODS: &[&str] = &[
    "new",
    "len",
    "is_empty",
    "push",
    "pop",
    "get",
    "get_mut",
    "insert",
    "remove",
    "clear",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "extend",
    "take",
    "clone",
    "to_string",
    "as_ref",
    "as_mut",
    "as_str",
    "fmt",
    "default",
    "cmp",
    "partial_cmp",
    "eq",
    "hash",
    "drop",
    "from",
    "into",
    "try_from",
    "try_into",
    "index",
    "sort",
    "sort_by",
    "min",
    "max",
    "abs",
    "floor",
    "ceil",
    "round",
    "split",
    "join",
    "parse",
    "write",
    "read",
    "flush",
    "send",
    "recv",
    "lock",
    "borrow",
    "borrow_mut",
    "entry",
    "keys",
    "values",
    "drain",
    "retain",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "expect",
    "first",
    "last",
    "count",
    "sum",
    "collect",
    "filter",
    "find",
    "position",
    "any",
    "all",
];

/// One function node in the call graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Fully qualified path: `crate_ident::modules::[Type::]name`.
    pub qpath: String,
    /// Directory name of the owning crate under `crates/` (empty for
    /// the root package).
    pub crate_dir: String,
    /// Repo-relative source file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Source text of the definition line (for diagnostics and
    /// allowlist `contains` matching).
    pub line_text: String,
    /// Plain `pub` visibility.
    pub is_pub: bool,
    /// How the defining file participates in the build.
    pub kind: FileKind,
    /// Whether the owning crate is on the simulation path.
    pub sim_path: bool,
    /// Taint seeds inside this function's body.
    pub seeds: Vec<Seed>,
}

/// A trait's workspace-wide identity for FM012.
#[derive(Debug, Clone, Default)]
pub struct TraitInfo {
    /// Method names the trait declares.
    pub methods: BTreeSet<String>,
    /// Base type names of workspace `impl Trait for Type` blocks.
    pub implementors: BTreeSet<String>,
}

/// A `dyn Trait` occurrence with its file context.
#[derive(Debug, Clone)]
pub struct DynUse {
    /// Repo-relative file.
    pub file: String,
    /// The site itself.
    pub site: DynSite,
    /// Source text of the line.
    pub line_text: String,
    /// Whether the file is in a sim-path crate.
    pub sim_path: bool,
    /// File kind (dyn sites in tests/benches are ignored by FM012).
    pub kind: FileKind,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All function nodes, in deterministic (file, line) order.
    pub nodes: Vec<FnNode>,
    /// Adjacency: `edges[i]` = sorted, deduplicated callee node ids.
    pub edges: Vec<Vec<usize>>,
    /// Trait name → methods + implementors.
    pub traits: BTreeMap<String, TraitInfo>,
    /// Every `dyn Trait` site outside test code.
    pub dyn_uses: Vec<DynUse>,
    /// qpath → node id.
    pub by_qpath: BTreeMap<String, usize>,
    /// (type base name, method name) → node ids.
    pub methods_by_type: BTreeMap<(String, String), Vec<usize>>,
}

/// One file prepared for graph construction.
struct FileEntry {
    rel: String,
    ctx: FileContext,
    crate_ident: String,
    crate_dir: String,
    /// Module path derived from the file's location under `src/`.
    file_modules: Vec<String>,
    parsed: ParsedFile,
    lines: Vec<String>,
}

/// Derives the module path of a file from its path under `src/`
/// (`src/lib.rs` → `[]`, `src/foo/bar.rs` → `["foo", "bar"]`,
/// `src/foo/mod.rs` → `["foo"]`, binaries get a `bin`-prefixed
/// namespace so their items never collide with library paths).
fn file_module_path(rel: &str) -> Vec<String> {
    let Some(pos) = rel.find("src/") else {
        return Vec::new();
    };
    let rest = &rel[pos + 4..];
    let rest = rest.strip_suffix(".rs").unwrap_or(rest);
    if rest == "lib.rs" || rest == "lib" {
        return Vec::new();
    }
    let mut parts: Vec<String> = rest.split('/').map(str::to_string).collect();
    if parts.last().is_some_and(|p| p == "mod") {
        parts.pop();
    }
    if parts == ["main"] {
        return vec!["bin".to_string(), "main".to_string()];
    }
    parts
}

impl CallGraph {
    /// Builds the graph from every crate's parsed sources. `sources`
    /// maps each file to its text; `sim_path_crates` mirrors the rule
    /// gating in [`FileContext`].
    #[must_use]
    pub fn build(crates: &[(CrateSources, Vec<(String, String)>)], sim: &[String]) -> Self {
        let mut files: Vec<FileEntry> = Vec::new();
        for (krate, texts) in crates {
            for (rel, text) in texts {
                let ctx = FileContext::classify_with(rel, sim);
                files.push(FileEntry {
                    rel: rel.clone(),
                    ctx,
                    crate_ident: krate.ident.clone(),
                    crate_dir: krate.dir.clone(),
                    file_modules: file_module_path(rel),
                    parsed: parse_file(text),
                    lines: text.lines().map(str::to_string).collect(),
                });
            }
        }

        let mut graph = Self::default();
        // Pass 1: nodes, trait table, dyn sites, symbol indexes.
        let mut free_by_mod: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut free_by_crate: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut method_by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        // file index → node id of each fn, in parse order.
        let mut node_ids: Vec<Vec<usize>> = Vec::new();

        for entry in &files {
            let mut ids = Vec::new();
            for f in &entry.parsed.fns {
                let mut segs: Vec<String> = vec![entry.crate_ident.clone()];
                segs.extend(entry.file_modules.iter().cloned());
                segs.extend(f.modules.iter().cloned());
                let mod_qpath = segs.join("::");
                if let Some(ty) = &f.self_type {
                    segs.push(ty.clone());
                }
                segs.push(f.name.clone());
                let qpath = segs.join("::");
                let id = graph.nodes.len();
                let line_text = entry
                    .lines
                    .get(f.line as usize - 1)
                    .cloned()
                    .unwrap_or_default();
                graph.nodes.push(FnNode {
                    qpath: qpath.clone(),
                    crate_dir: entry.crate_dir.clone(),
                    file: entry.rel.clone(),
                    line: f.line,
                    col: f.col,
                    line_text,
                    is_pub: f.is_pub,
                    kind: entry.ctx.kind,
                    sim_path: entry.ctx.sim_path,
                    seeds: f.seeds.clone(),
                });
                graph.by_qpath.entry(qpath).or_insert(id);
                if let Some(ty) = &f.self_type {
                    graph
                        .methods_by_type
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                    method_by_name.entry(f.name.clone()).or_default().push(id);
                } else {
                    free_by_mod.entry((mod_qpath, f.name.clone())).or_insert(id);
                    free_by_crate
                        .entry((entry.crate_ident.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                }
                ids.push(id);
            }
            node_ids.push(ids);

            for t in &entry.parsed.traits {
                let info = graph.traits.entry(t.name.clone()).or_default();
                info.methods.extend(t.methods.iter().cloned());
            }
            for im in &entry.parsed.impls {
                if let Some(tr) = &im.trait_name {
                    graph
                        .traits
                        .entry(tr.clone())
                        .or_default()
                        .implementors
                        .insert(im.type_name.clone());
                }
            }
            for site in &entry.parsed.dyn_sites {
                let line_text = entry
                    .lines
                    .get(site.line as usize - 1)
                    .cloned()
                    .unwrap_or_default();
                graph.dyn_uses.push(DynUse {
                    file: entry.rel.clone(),
                    site: site.clone(),
                    line_text,
                    sim_path: entry.ctx.sim_path,
                    kind: entry.ctx.kind,
                });
            }
        }

        let crate_idents: BTreeSet<String> = crates.iter().map(|(k, _)| k.ident.clone()).collect();

        // Pass 2: resolve calls into edges.
        graph.edges = vec![Vec::new(); graph.nodes.len()];
        for (entry, ids) in files.iter().zip(&node_ids) {
            // Resolve this file's imports to absolute paths once.
            let mut imports: BTreeMap<String, Vec<String>> = BTreeMap::new();
            for imp in &entry.parsed.imports {
                if let Some(abs) = absolutize(
                    &imp.path,
                    &entry.crate_ident,
                    &entry.file_modules,
                    &crate_idents,
                ) {
                    imports.insert(imp.name.clone(), abs);
                }
            }
            let globs: Vec<Vec<String>> = entry
                .parsed
                .globs
                .iter()
                .filter_map(|g| {
                    absolutize(g, &entry.crate_ident, &entry.file_modules, &crate_idents)
                })
                .collect();

            for (f, &caller) in entry.parsed.fns.iter().zip(ids) {
                let mut mod_segs: Vec<String> = vec![entry.crate_ident.clone()];
                mod_segs.extend(entry.file_modules.iter().cloned());
                mod_segs.extend(f.modules.iter().cloned());
                for call in &f.calls {
                    let callees = if call.method {
                        resolve_method(
                            &call.segments[0],
                            call.on_self,
                            f.self_type.as_deref(),
                            &graph.methods_by_type,
                            &method_by_name,
                        )
                    } else {
                        resolve_path(
                            &call.segments,
                            &mod_segs,
                            f.self_type.as_deref(),
                            &imports,
                            &globs,
                            &crate_idents,
                            &graph.by_qpath,
                            &graph.methods_by_type,
                            &free_by_mod,
                            &free_by_crate,
                        )
                    };
                    for callee in callees {
                        if callee != caller {
                            graph.edges[caller].push(callee);
                        }
                    }
                }
            }
        }
        for adj in &mut graph.edges {
            adj.sort_unstable();
            adj.dedup();
        }
        graph
    }
}

/// Expands `crate::` / `self::` / `super::` prefixes into an absolute
/// segment path; returns `None` for external (std / vendored) paths.
fn absolutize(
    path: &[String],
    crate_ident: &str,
    file_modules: &[String],
    crate_idents: &BTreeSet<String>,
) -> Option<Vec<String>> {
    let first = path.first()?;
    let mut abs: Vec<String>;
    let mut rest = &path[1..];
    match first.as_str() {
        "crate" => abs = vec![crate_ident.to_string()],
        "self" => {
            abs = vec![crate_ident.to_string()];
            abs.extend(file_modules.iter().cloned());
        }
        "super" => {
            abs = vec![crate_ident.to_string()];
            abs.extend(file_modules.iter().cloned());
            abs.pop()?;
            while rest.first().is_some_and(|s| s == "super") {
                abs.pop()?;
                rest = &rest[1..];
            }
        }
        ident if crate_idents.contains(ident) => {
            abs = vec![ident.to_string()];
        }
        "std" | "core" | "alloc" => return None,
        _ => return None,
    }
    abs.extend(rest.iter().cloned());
    Some(abs)
}

/// Resolves a `.method(…)` call site.
fn resolve_method(
    name: &str,
    on_self: bool,
    self_type: Option<&str>,
    methods_by_type: &BTreeMap<(String, String), Vec<usize>>,
    method_by_name: &BTreeMap<String, Vec<usize>>,
) -> Vec<usize> {
    if on_self {
        if let Some(ty) = self_type {
            if let Some(ids) = methods_by_type.get(&(ty.to_string(), name.to_string())) {
                return ids.clone();
            }
        }
    }
    if COMMON_METHODS.contains(&name) {
        return Vec::new();
    }
    match method_by_name.get(name) {
        Some(ids) if ids.len() == 1 => ids.clone(),
        _ => Vec::new(),
    }
}

/// Resolves a path call (`helper(…)`, `module::f(…)`, `Type::assoc(…)`,
/// `crate::x::y(…)`, `fmoe_cache::lru::evict(…)`).
#[allow(clippy::too_many_arguments)]
fn resolve_path(
    segments: &[String],
    caller_mod: &[String],
    self_type: Option<&str>,
    imports: &BTreeMap<String, Vec<String>>,
    globs: &[Vec<String>],
    crate_idents: &BTreeSet<String>,
    by_qpath: &BTreeMap<String, usize>,
    methods_by_type: &BTreeMap<(String, String), Vec<usize>>,
    free_by_mod: &BTreeMap<(String, String), usize>,
    free_by_crate: &BTreeMap<(String, String), Vec<usize>>,
) -> Vec<usize> {
    let Some(name) = segments.last() else {
        return Vec::new();
    };

    // Substitute `Self::helper(…)` with the enclosing impl type.
    let segments: Vec<String> = if segments.first().is_some_and(|s| s == "Self") {
        let Some(ty) = self_type else {
            return Vec::new();
        };
        let mut s = vec![ty.to_string()];
        s.extend(segments[1..].iter().cloned());
        s
    } else {
        segments.to_vec()
    };

    if segments.len() == 1 {
        // Bare call: same module, then single-name imports, then globs.
        let mod_qpath = caller_mod.join("::");
        if let Some(&id) = free_by_mod.get(&(mod_qpath, name.clone())) {
            return vec![id];
        }
        if let Some(abs) = imports.get(name) {
            if let Some(&id) = by_qpath.get(&abs.join("::")) {
                return vec![id];
            }
        }
        for g in globs {
            let mut p = g.clone();
            p.push(name.clone());
            if let Some(&id) = by_qpath.get(&p.join("::")) {
                return vec![id];
            }
        }
        return Vec::new();
    }

    // `Type::assoc(…)` by base type name — resolves re-exports too.
    let penult = &segments[segments.len() - 2];
    if penult.chars().next().is_some_and(char::is_uppercase) {
        if let Some(ids) = methods_by_type.get(&(penult.clone(), name.clone())) {
            return ids.clone();
        }
    }

    // Absolute / prefixed paths.
    if let Some(abs) = absolutize(&segments, &caller_mod[0], &caller_mod[1..], crate_idents) {
        if let Some(&id) = by_qpath.get(&abs.join("::")) {
            return vec![id];
        }
        // `fmoe_x::reexported_fn(…)`: unique free fn in that crate.
        if abs.len() == 2 && crate_idents.contains(&abs[0]) {
            if let Some(ids) = free_by_crate.get(&(abs[0].clone(), name.clone())) {
                if ids.len() == 1 {
                    return ids.clone();
                }
            }
        }
        return Vec::new();
    }

    // First segment is an imported module or type alias.
    if let Some(base) = imports.get(&segments[0]) {
        let mut p = base.clone();
        p.extend(segments[1..].iter().cloned());
        if let Some(&id) = by_qpath.get(&p.join("::")) {
            return vec![id];
        }
        return Vec::new();
    }

    // Relative path from the caller's module.
    let mut p = caller_mod.to_vec();
    p.extend(segments.iter().cloned());
    if let Some(&id) = by_qpath.get(&p.join("::")) {
        return vec![id];
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::CrateSources;

    fn mini_workspace() -> Vec<(CrateSources, Vec<(String, String)>)> {
        let a = CrateSources {
            dir: "a".into(),
            package: "a".into(),
            ident: "a".into(),
            files: Vec::new(),
        };
        let b = CrateSources {
            dir: "b".into(),
            package: "b".into(),
            ident: "b".into(),
            files: Vec::new(),
        };
        vec![
            (
                a,
                vec![(
                    "crates/a/src/lib.rs".to_string(),
                    "use b::g;\npub fn f() { g(); local(); }\nfn local() {}\n".to_string(),
                )],
            ),
            (
                b,
                vec![(
                    "crates/b/src/lib.rs".to_string(),
                    "pub fn g() { h::deep(); }\npub mod h { pub fn deep() { x.unwrap(); } }\n"
                        .to_string(),
                )],
            ),
        ]
    }

    #[test]
    fn cross_crate_edges_resolve() {
        let ws = mini_workspace();
        let g = CallGraph::build(&ws, &["a".into(), "b".into()]);
        let f = g.by_qpath["a::f"];
        let gg = g.by_qpath["b::g"];
        let local = g.by_qpath["a::local"];
        let deep = g.by_qpath["b::h::deep"];
        assert!(g.edges[f].contains(&gg), "import-resolved cross-crate call");
        assert!(g.edges[f].contains(&local), "same-module call");
        assert!(g.edges[gg].contains(&deep), "relative module path call");
        assert_eq!(g.nodes[deep].seeds.len(), 1);
    }

    #[test]
    fn method_calls_resolve_via_impl_type() {
        let ws = vec![(
            CrateSources {
                dir: "a".into(),
                package: "a".into(),
                ident: "a".into(),
                files: Vec::new(),
            },
            vec![(
                "crates/a/src/lib.rs".to_string(),
                "pub struct S;\nimpl S {\n  pub fn outer(&self) { self.inner(); }\n  fn inner(&self) { panic!(\"x\"); }\n}\npub fn mk() { S::fresh(); }\nimpl S { fn fresh() {} }\n"
                    .to_string(),
            )],
        )];
        let g = CallGraph::build(&ws, &["a".into()]);
        let outer = g.by_qpath["a::S::outer"];
        let inner = g.by_qpath["a::S::inner"];
        let mk = g.by_qpath["a::mk"];
        let fresh = g.by_qpath["a::S::fresh"];
        assert!(g.edges[outer].contains(&inner), "self.method resolution");
        assert!(g.edges[mk].contains(&fresh), "Type::assoc resolution");
    }

    #[test]
    fn common_method_names_do_not_alias() {
        let ws = vec![(
            CrateSources {
                dir: "a".into(),
                package: "a".into(),
                ident: "a".into(),
                files: Vec::new(),
            },
            vec![(
                "crates/a/src/lib.rs".to_string(),
                "pub struct S;\nimpl S { pub fn push(&self) { panic!(\"x\"); } }\npub fn user(v: &mut Vec<u32>) { v.push(1); }\n"
                    .to_string(),
            )],
        )];
        let g = CallGraph::build(&ws, &["a".into()]);
        let user = g.by_qpath["a::user"];
        assert!(
            g.edges[user].is_empty(),
            "`push` is a common std method and must not alias S::push"
        );
    }

    #[test]
    fn module_paths_from_file_layout() {
        assert_eq!(
            file_module_path("crates/x/src/lib.rs"),
            Vec::<String>::new()
        );
        assert_eq!(file_module_path("crates/x/src/foo.rs"), vec!["foo"]);
        assert_eq!(file_module_path("crates/x/src/foo/mod.rs"), vec!["foo"]);
        assert_eq!(
            file_module_path("crates/x/src/foo/bar.rs"),
            vec!["foo", "bar"]
        );
        assert_eq!(file_module_path("src/main.rs"), vec!["bin", "main"]);
        assert_eq!(
            file_module_path("crates/x/src/bin/tool.rs"),
            vec!["bin", "tool"]
        );
    }

    #[test]
    fn traits_and_dyn_sites_are_tabulated() {
        let ws = vec![(
            CrateSources {
                dir: "a".into(),
                package: "a".into(),
                ident: "a".into(),
                files: Vec::new(),
            },
            vec![(
                "crates/a/src/lib.rs".to_string(),
                "pub trait P { fn go(&self); }\npub struct X;\nimpl P for X { fn go(&self) {} }\npub fn drive(p: &mut dyn P) { p.go(); }\n"
                    .to_string(),
            )],
        )];
        let g = CallGraph::build(&ws, &["a".into()]);
        let info = &g.traits["P"];
        assert!(info.methods.contains("go"));
        assert!(info.implementors.contains("X"));
        assert_eq!(g.dyn_uses.len(), 1);
        assert_eq!(g.dyn_uses[0].site.trait_name, "P");
    }
}
