//! Chain-fixture middle crate.

#![forbid(unsafe_code)]

use c::h;

/// Middle of the panic chain: forwards to `c::h`.
pub fn g() {
    h();
}

/// Reads the wall clock (the FM011 seed).
pub fn now_ms() -> u64 {
    let _t = Instant::now();
    0
}
