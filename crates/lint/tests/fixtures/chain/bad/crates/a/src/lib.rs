//! Chain-fixture head crate: public APIs that transitively reach a
//! panic (FM010), a wall clock (FM011), and a `dyn` trait with no
//! contract-clean implementor (FM012).

#![forbid(unsafe_code)]

use b::g;
use b::now_ms;

/// Head of the three-crate panic chain `a::f → b::g → c::h`.
pub fn f() {
    g();
}

/// Head of the wall-clock chain `a::tick → b::now_ms`.
pub fn tick() -> u64 {
    now_ms()
}

/// A dispatch trait whose every workspace implementor may panic.
pub trait Policy {
    /// Decides something.
    fn decide(&self) -> u32;
}

/// First implementor: panics through `f`.
pub struct Alpha;

impl Policy for Alpha {
    fn decide(&self) -> u32 {
        f();
        0
    }
}

/// Second implementor: panics through a private helper.
pub struct Beta;

impl Policy for Beta {
    fn decide(&self) -> u32 {
        helper()
    }
}

fn helper() -> u32 {
    g();
    1
}

/// The `dyn` site FM012 flags: no implementor is contract-clean.
pub fn drive(p: &dyn Policy) -> u32 {
    p.decide()
}
