//! Chain-fixture tail crate: carries the panic seed.

#![forbid(unsafe_code)]

/// Tail of the panic chain. The `panic!` below must stay on line 9:
/// the semantic tests lock the full FM010 diagnostic text, including
/// this seed location.
pub fn h() {
    panic!("fixture panic");
}
