//! Clean chain-fixture head: typed errors, an injected clock, and one
//! contract-clean trait implementor.

#![forbid(unsafe_code)]

use b::g;
use b::now_ms;

/// Same shape as the bad fixture's `f`, but the chain is fallible.
///
/// # Errors
///
/// Forwards `b::g`'s error.
pub fn f() -> Result<u32, String> {
    g()
}

/// Reads an injected virtual clock instead of the wall clock.
pub fn tick(clock_ns: u64) -> u64 {
    now_ms(clock_ns)
}

/// A dispatch trait with a contract-clean implementor.
pub trait Policy {
    /// Decides something.
    fn decide(&self) -> u32;
}

/// A clean implementor: FM012 stays silent.
pub struct Alpha;

impl Policy for Alpha {
    fn decide(&self) -> u32 {
        0
    }
}

/// Dispatches through the clean trait object.
pub fn drive(p: &dyn Policy) -> u32 {
    p.decide()
}
