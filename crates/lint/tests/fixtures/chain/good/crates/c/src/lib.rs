//! Clean chain-fixture tail crate: no panic seed.

#![forbid(unsafe_code)]

/// Tail of the clean chain.
///
/// # Errors
///
/// Never fails in the fixture; the type exists so callers stay
/// fallible.
pub fn h() -> Result<u32, String> {
    Ok(7)
}
