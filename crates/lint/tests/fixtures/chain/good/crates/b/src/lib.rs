//! Clean chain-fixture middle crate.

#![forbid(unsafe_code)]

/// Forwards to `c::h`, staying fallible.
///
/// # Errors
///
/// Forwards `c::h`'s error.
pub fn g() -> Result<u32, String> {
    c::h()
}

/// Converts an injected virtual-clock reading; no wall clock.
pub fn now_ms(clock_ns: u64) -> u64 {
    clock_ns / 1_000_000
}
