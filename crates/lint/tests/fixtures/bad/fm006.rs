//! BAD: lossy casts on size/time quantities.
pub fn shrink(total_bytes: u64, deadline_ns: u64) -> (u32, f32) {
    let b = total_bytes as u32;
    let t = deadline_ns as f32;
    let _roundtrip = (total_bytes as f64 as u64) + 1;
    (b, t)
}
