//! BAD: unordered containers in a simulation-path crate.
use std::collections::HashMap;
use std::collections::HashSet;

pub struct Cache {
    resident: HashMap<u64, u64>,
    pinned: HashSet<u64>,
}
