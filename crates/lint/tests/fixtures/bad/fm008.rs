//! FM008 bad fixture: a simulation-path crate root with no
//! `#![forbid(unsafe_code)]` attribute.

pub mod submodule;

/// A perfectly ordinary function; the violation is the missing
/// crate-level attribute, not anything in the body.
pub fn entry() -> u64 {
    42
}
