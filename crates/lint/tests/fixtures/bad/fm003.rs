//! BAD: unseeded randomness.
pub fn roll() -> f64 {
    let mut rng = rand::thread_rng();
    let _ = &mut rng;
    rand::random()
}
