//! BAD: non-thread-safe shared state in a thread-spawning module.
use std::cell::RefCell;

pub fn run() {
    let shared = RefCell::new(0u64);
    std::thread::spawn(move || {
        *shared.borrow_mut() += 1;
    });
}
