//! BAD: wall-clock sources outside the bench crate.
use std::time::Instant;
use std::time::SystemTime;

pub fn stamp() -> u128 {
    let t = Instant::now();
    let _ = t;
    SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0)
}
