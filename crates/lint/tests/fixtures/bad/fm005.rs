//! BAD: exact float comparisons.
pub fn check(x: f64, y: f64) -> bool {
    x == 0.5 && y != 1.25
}
