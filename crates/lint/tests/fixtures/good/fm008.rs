//! FM008 good fixture: the crate root forbids unsafe code.

#![forbid(unsafe_code)]

pub mod submodule;

/// A perfectly ordinary function.
pub fn entry() -> u64 {
    42
}
