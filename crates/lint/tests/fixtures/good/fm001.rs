//! GOOD: ordered containers; HashMap only in comments and strings.
// A HashMap would be wrong here.
use std::collections::{BTreeMap, BTreeSet};

pub struct Cache {
    resident: BTreeMap<u64, u64>,
    pinned: BTreeSet<u64>,
}

pub fn doc() -> &'static str {
    "uses a HashMap internally (it does not)"
}
