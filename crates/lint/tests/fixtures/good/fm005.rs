//! GOOD: tolerance comparison; integer equality untouched.
pub fn check(x: f64, n: u64) -> bool {
    (x - 0.5).abs() < 1e-12 && n == 1
}
