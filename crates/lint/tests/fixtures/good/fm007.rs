//! GOOD: approved primitives (RwLock + channels) around the thread.
use std::sync::Arc;

pub fn run() {
    let shared = Arc::new(parking_lot::RwLock::new(0u64));
    let worker = Arc::clone(&shared);
    std::thread::spawn(move || {
        *worker.write() += 1;
    });
}
