//! GOOD: virtual time only; Instant::now only in test code.
pub struct VirtualClock {
    now: u64,
}

impl VirtualClock {
    pub fn advance(&mut self, ns: u64) {
        self.now += ns;
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
