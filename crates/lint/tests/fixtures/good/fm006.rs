//! GOOD: sizes stay wide; narrowing is explicit try_from.
pub fn shrink(total_bytes: u64, slot: usize) -> (u64, Option<u32>) {
    let b = total_bytes / 2;
    let s = u32::try_from(slot).ok();
    (b, s)
}
