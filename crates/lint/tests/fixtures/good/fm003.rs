//! GOOD: seeded generators only.
pub fn roll(seed: u64) -> u64 {
    // fmoe_stats::rng::SplitMix64-style seeded generation.
    let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    s ^ (s >> 31)
}
