//! GOOD: typed errors; unwrap only inside test code.
pub fn first(xs: &[u64]) -> Result<u64, &'static str> {
    xs.first().copied().ok_or("empty input")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(super::first(&[3]).unwrap(), 3);
    }
}
