//! Fixture self-tests: every rule FM001–FM008 must fire on its `bad/`
//! fixture and stay silent on its `good/` counterpart.
//!
//! The fixtures live under `tests/fixtures/` and are linted as if they
//! sat in a simulation-path library crate (`crates/cache/src/…`), the
//! strictest context: sim-path, no wall clock, library (non-test,
//! non-bin) code.

use fmoe_lint::{lint_source, FileContext};
use std::fs;
use std::path::PathBuf;

const RULES: [&str; 7] = [
    "FM001", "FM002", "FM003", "FM004", "FM005", "FM006", "FM007",
];

fn fixture(kind: &str, rule: &str) -> String {
    let path: PathBuf = [
        env!("CARGO_MANIFEST_DIR"),
        "tests",
        "fixtures",
        kind,
        &format!("{}.rs", rule.to_lowercase()),
    ]
    .iter()
    .collect();
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()))
}

fn strict_context() -> FileContext {
    let ctx = FileContext::classify("crates/cache/src/fixture.rs");
    assert!(ctx.sim_path, "fixture context must be sim-path");
    assert!(
        !ctx.wall_clock_allowed,
        "fixture context must ban wall clocks"
    );
    ctx
}

#[test]
fn every_rule_fires_on_its_bad_fixture() {
    let ctx = strict_context();
    for rule in RULES {
        let source = fixture("bad", rule);
        let diags = lint_source(&ctx, &source);
        assert!(
            diags.iter().any(|d| d.code == rule),
            "{rule} did not fire on bad fixture; got: {:?}",
            diags.iter().map(|d| d.code).collect::<Vec<_>>()
        );
    }
}

#[test]
fn every_rule_is_silent_on_its_good_fixture() {
    let ctx = strict_context();
    for rule in RULES {
        let source = fixture("good", rule);
        let diags = lint_source(&ctx, &source);
        let rendered: String = diags.iter().map(ToString::to_string).collect();
        assert!(
            diags.is_empty(),
            "good fixture for {rule} must lint clean, got:\n{rendered}"
        );
    }
}

#[test]
fn fm008_fires_on_bad_and_stays_silent_on_good() {
    // FM008 only applies to crate roots, so it gets its own context
    // (`src/lib.rs`) instead of the shared `fixture.rs` one.
    let ctx = FileContext::classify("crates/cache/src/lib.rs");
    assert!(ctx.is_crate_root, "FM008 context must be a crate root");

    let bad = fixture("bad", "FM008");
    let diags = lint_source(&ctx, &bad);
    assert!(
        diags.iter().any(|d| d.code == "FM008"),
        "FM008 did not fire on bad fixture; got: {:?}",
        diags.iter().map(|d| d.code).collect::<Vec<_>>()
    );

    let good = fixture("good", "FM008");
    let diags = lint_source(&ctx, &good);
    let rendered: String = diags.iter().map(ToString::to_string).collect();
    assert!(
        diags.is_empty(),
        "good FM008 fixture must lint clean, got:\n{rendered}"
    );

    // A non-root file never triggers FM008, even without the attribute.
    let non_root = FileContext::classify("crates/cache/src/fixture.rs");
    assert!(lint_source(&non_root, &bad).is_empty());
}

#[test]
fn bad_fixtures_fire_at_span_accurate_locations() {
    let ctx = strict_context();
    let source = fixture("bad", "FM001");
    let diags = lint_source(&ctx, &source);
    let first = diags
        .iter()
        .find(|d| d.code == "FM001")
        .expect("FM001 fires");
    // `use std::collections::HashMap;` is line 2 of the fixture; the
    // diagnostic must point at the `HashMap` token, not the line start.
    assert_eq!(first.line, 2);
    assert!(first.col > 1, "column should point at the offending token");
    assert!(first.line_text.contains("HashMap"));
}
