//! Lexer edge-case regression tests: raw strings, byte strings,
//! raw-byte strings, nested block comments, and numeric-literal
//! classification. These lock behaviors the rules depend on — a
//! `HashMap` inside any string or comment form must never fire.

use fmoe_lint::lexer::{lex, TokenKind};
use fmoe_lint::{lint_source, FileContext};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone())
        .collect()
}

#[test]
fn raw_strings_with_hashes_are_opaque() {
    let src = r####"let s = r#"HashMap "quoted" Instant::now"#; tail"####;
    let ids = idents(src);
    assert!(ids.contains(&"tail".to_string()));
    assert!(!ids.contains(&"HashMap".to_string()));
    assert!(!ids.contains(&"Instant".to_string()));
}

#[test]
fn raw_strings_with_two_hashes_stop_at_matching_delimiter() {
    // The inner `"#` must not terminate an `r##"…"##` string.
    let src = r#####"let s = r##"contains "# inside HashMap"##; tail"#####;
    let ids = idents(src);
    assert!(ids.contains(&"tail".to_string()));
    assert!(!ids.contains(&"HashMap".to_string()));
}

#[test]
fn byte_strings_are_opaque() {
    let src = "let s = b\"HashMap thread_rng\"; tail";
    let ids = idents(src);
    assert!(ids.contains(&"tail".to_string()));
    assert!(!ids.contains(&"HashMap".to_string()));
    assert!(!ids.contains(&"thread_rng".to_string()));
}

#[test]
fn raw_byte_strings_are_opaque() {
    let src = r####"let s = br#"SystemTime "x" HashSet"#; tail"####;
    let ids = idents(src);
    assert!(ids.contains(&"tail".to_string()));
    assert!(!ids.contains(&"SystemTime".to_string()));
    assert!(!ids.contains(&"HashSet".to_string()));
}

#[test]
fn idents_starting_with_r_or_b_are_not_strings() {
    let ids = idents("let radius = base + b; r");
    assert_eq!(ids, vec!["let", "radius", "base", "b", "r"]);
}

#[test]
fn nested_block_comments_are_dropped() {
    let src = "before /* outer /* inner HashMap */ still comment */ after";
    let ids = idents(src);
    assert_eq!(ids, vec!["before", "after"]);
}

#[test]
fn block_comment_with_code_after_on_same_line() {
    let src = "/* x */ let v = 1; /* y /* z */ */ tail";
    let ids = idents(src);
    assert_eq!(ids, vec!["let", "v", "tail"]);
}

#[test]
fn exponent_without_sign_is_a_float() {
    let toks = lex("a == 1e5; b == 2E3; c == 2e-3");
    let floats: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::Float)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(floats, vec!["1e5", "2E3", "2e-3"]);
}

#[test]
fn hex_digits_e_are_not_exponents() {
    let toks = lex("m == 0xE5; n == 0xfe; o == 0b10; p == 0o17");
    assert!(
        toks.iter().all(|t| t.kind != TokenKind::Float),
        "radix literals must stay Int: {toks:?}"
    );
}

#[test]
fn rules_stay_silent_on_string_and_comment_contents() {
    // End-to-end: the strictest context plus every opaque form at once.
    let src = r####"
//! Docs mention HashMap and Instant::now freely.
/* block with thread_rng and /* nested SystemTime */ tail */
pub fn ok() -> &'static str {
    r#"HashMap::new() thread_rng() Instant::now()"#
}
"####;
    let ctx = FileContext::classify("crates/cache/src/fixture.rs");
    let diags = lint_source(&ctx, src);
    let rendered: String = diags.iter().map(ToString::to_string).collect();
    assert!(diags.is_empty(), "expected clean, got:\n{rendered}");
}

#[test]
fn float_comparison_with_exponent_literal_fires_fm005() {
    // The FM005 rule depends on exponent literals classifying as Float.
    let ctx = FileContext::classify("crates/cache/src/fixture.rs");
    let diags = lint_source(&ctx, "fn f(x: f64) -> bool { x == 1e9 }");
    assert!(
        diags.iter().any(|d| d.code == "FM005"),
        "1e9 must classify as a float so FM005 fires"
    );
}
