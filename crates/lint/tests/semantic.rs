//! End-to-end tests of the semantic stage (parser → call graph →
//! taint) over the on-disk chain fixture workspaces under
//! `tests/fixtures/chain/`.

use fmoe_lint::{lint_workspace_with, sarif, LintOptions};
use std::path::PathBuf;

fn fixture_root(kind: &str) -> PathBuf {
    [
        env!("CARGO_MANIFEST_DIR"),
        "tests",
        "fixtures",
        "chain",
        kind,
    ]
    .iter()
    .collect()
}

fn opts() -> LintOptions {
    LintOptions {
        sim_path_crates: vec!["a".into(), "b".into(), "c".into()],
        pedantic_panics: false,
    }
}

#[test]
fn fm010_locks_the_exact_diagnostic_format() {
    let root = fixture_root("bad");
    let report = lint_workspace_with(&root, &root.join("lint.toml"), &opts()).expect("lint run");
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == "FM010" && d.path == "crates/a/src/lib.rs")
        .expect("FM010 fires on a::f");
    assert_eq!(
        d.message,
        "public `a::f` transitively reaches a panic site (panic! in `c::h` at \
         crates/c/src/lib.rs:9); call chain: a::f → b::g → c::h"
    );
}

#[test]
fn bad_chain_workspace_reports_all_three_transitive_rules() {
    let root = fixture_root("bad");
    let report = lint_workspace_with(&root, &root.join("lint.toml"), &opts()).expect("lint run");
    let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
    assert!(codes.contains(&"FM010"), "panic chain: {codes:?}");
    assert!(codes.contains(&"FM011"), "clock chain: {codes:?}");
    assert!(codes.contains(&"FM012"), "dyn dispatch: {codes:?}");

    let fm011 = report
        .diagnostics
        .iter()
        .find(|d| d.code == "FM011")
        .expect("FM011 present");
    assert!(
        fm011.message.contains("a::tick → b::now_ms"),
        "clock chain text: {}",
        fm011.message
    );
    let fm012 = report
        .diagnostics
        .iter()
        .find(|d| d.code == "FM012")
        .expect("FM012 present");
    assert!(
        fm012.message.contains("Alpha::decide") && fm012.message.contains("Beta::decide"),
        "FM012 must list the dirty implementors: {}",
        fm012.message
    );
}

#[test]
fn good_chain_workspace_is_clean() {
    let root = fixture_root("good");
    let report = lint_workspace_with(&root, &root.join("lint.toml"), &opts()).expect("lint run");
    let rendered: String = report.diagnostics.iter().map(ToString::to_string).collect();
    assert_eq!(
        report.errors(true),
        0,
        "good chain fixture must lint clean under deny-all:\n{rendered}"
    );
}

#[test]
fn sarif_is_byte_identical_across_independent_runs() {
    let root = fixture_root("bad");
    let r1 = lint_workspace_with(&root, &root.join("lint.toml"), &opts()).expect("run 1");
    let r2 = lint_workspace_with(&root, &root.join("lint.toml"), &opts()).expect("run 2");
    let s1 = sarif::to_sarif(&r1, true);
    let s2 = sarif::to_sarif(&r2, true);
    assert_eq!(s1, s2, "SARIF must be deterministic across runs");
    assert!(s1.contains("\"ruleId\":\"FM010\""));
    assert_eq!(sarif::to_json(&r1, true), sarif::to_json(&r2, true));
}
