//! Property tests for taint propagation: the analysis is *monotone* —
//! adding call edges or seeds can only grow the tainted set, never
//! shrink it. Monotonicity is what makes the conservative resolution
//! strategy sound: a missed edge can hide a violation, but a resolved
//! edge can never un-taint a function.

use fmoe_lint::taint::reaches_seed;
use proptest::prelude::*;

/// Builds a deterministic pseudo-random edge list over `n` nodes from a
/// seed, so each case is replayable.
fn edges_from(seed: u64, n: usize, m: usize) -> Vec<(usize, usize)> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..m)
        .map(|_| (next() as usize % n, next() as usize % n))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Adding one edge never removes taint from any node.
    #[test]
    fn adding_an_edge_is_monotone(
        seed in 0u64..10_000,
        n in 2usize..24,
        m in 0usize..40,
        from in 0usize..24,
        to in 0usize..24,
        seed_node in 0usize..24,
    ) {
        let edges = edges_from(seed, n, m);
        let seeds = [seed_node % n];
        let before = reaches_seed(n, &edges, &seeds);

        let mut extended = edges.clone();
        extended.push((from % n, to % n));
        let after = reaches_seed(n, &extended, &seeds);

        for i in 0..n {
            prop_assert!(
                !before[i] || after[i],
                "node {i} lost taint after adding edge {:?}",
                (from % n, to % n)
            );
        }
    }

    /// Adding a seed never removes taint either.
    #[test]
    fn adding_a_seed_is_monotone(
        seed in 0u64..10_000,
        n in 2usize..24,
        m in 0usize..40,
        s1 in 0usize..24,
        s2 in 0usize..24,
    ) {
        let edges = edges_from(seed, n, m);
        let before = reaches_seed(n, &edges, &[s1 % n]);
        let after = reaches_seed(n, &edges, &[s1 % n, s2 % n]);
        for i in 0..n {
            prop_assert!(!before[i] || after[i], "node {i} lost taint after adding a seed");
        }
    }

    /// Every tainted node really has a path to a seed: taint is exactly
    /// reverse-reachability, so a transitive closure over the edge list
    /// must agree with the BFS.
    #[test]
    fn taint_equals_reachability_closure(
        seed in 0u64..10_000,
        n in 2usize..16,
        m in 0usize..32,
        seed_node in 0usize..16,
    ) {
        let edges = edges_from(seed, n, m);
        let s = seed_node % n;
        let tainted = reaches_seed(n, &edges, &[s]);

        // Floyd-Warshall-style closure as an independent oracle.
        let mut reach = vec![vec![false; n]; n];
        for (i, row) in reach.iter_mut().enumerate() {
            row[i] = true;
        }
        for &(a, b) in &edges {
            reach[a][b] = true;
        }
        for k in 0..n {
            let via = reach[k].clone();
            for row in &mut reach {
                if row[k] {
                    for (j, &v) in via.iter().enumerate() {
                        if v {
                            row[j] = true;
                        }
                    }
                }
            }
        }
        for i in 0..n {
            prop_assert_eq!(
                tainted[i],
                reach[i][s],
                "node {} disagrees with the closure oracle",
                i
            );
        }
    }
}
