//! Deterministic fault injection for the fMoE serving simulator.
//!
//! Real offloading deployments do not run on pristine hardware: PCIe
//! links share bandwidth with other tenants, DMA engines hiccup, and
//! host memory comes under pressure from co-located processes. This
//! crate models those disturbances as a *schedule* of fault events
//! evaluated against the simulation's virtual clock, so every run is
//! exactly reproducible from a seed:
//!
//! * **Bandwidth degradation windows** — during `[start, end)` a GPU's
//!   host link runs at a fraction of nominal bandwidth.
//! * **Link stalls** — a degradation window with factor `0.0`: no bytes
//!   move until the window closes.
//! * **Transient transfer failures** — individual transfer attempts fail
//!   with a configured probability, decided by a pure hash of
//!   `(seed, gpu, tag, attempt)` so replays agree.
//! * **Memory-pressure spikes** — during `[start, end)` the effective
//!   expert-cache budget shrinks by a factor.
//!
//! Above the link level, [`ReplicaFaultSchedule`] models faults at
//! *fleet* scope — whole-replica crash windows, brownout (slow
//! degradation) windows, and planned drain/restart events — consumed by
//! the cluster dispatcher for failover routing and warm restart.
//!
//! The crate is deliberately dependency-free (time is `u64` nanoseconds,
//! GPUs and replicas are `u32` indices) so `fmoe-memsim` and
//! `fmoe-cluster` can consume it without a dependency cycle.
//! [`FaultSchedule::none`] and [`ReplicaFaultSchedule::none`] are the
//! identity schedules: consumers must behave byte-identically to a
//! fault-free build when given them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod replica;
pub mod schedule;

pub use replica::{
    ReplicaFaultSchedule, ReplicaFaultScheduleBuilder, ReplicaTransition, TransitionKind,
};
pub use schedule::{FaultSchedule, FaultScheduleBuilder, LinkSegment, PressureWindow};
