//! The fault schedule: a seeded, virtual-time-indexed set of fault events.

/// Virtual time in integer nanoseconds (mirrors `fmoe_memsim::Nanos`).
pub type Nanos = u64;

/// One bandwidth-degradation (or stall) window on a link.
#[derive(Debug, Clone, PartialEq)]
struct LinkWindow {
    /// Affected GPU index, or `None` for every GPU.
    gpu: Option<u32>,
    /// Window start (inclusive), virtual ns.
    start: Nanos,
    /// Window end (exclusive), virtual ns.
    end: Nanos,
    /// Multiplier on nominal link bandwidth in `[0, 1]`; `0.0` is a stall.
    factor: f64,
}

/// One memory-pressure window shrinking the effective cache budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PressureWindow {
    /// Window start (inclusive), virtual ns.
    pub start: Nanos,
    /// Window end (exclusive), virtual ns.
    pub end: Nanos,
    /// Multiplier on the configured cache budget in `(0, 1]`.
    pub budget_factor: f64,
}

/// The link condition at a queried instant, plus how long it holds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSegment {
    /// Effective bandwidth multiplier in `[0, 1]` (`0.0` = stalled).
    pub factor: f64,
    /// First instant after the query at which the factor may change;
    /// `u64::MAX` when no further windows affect this link.
    pub until: Nanos,
}

impl LinkSegment {
    /// The fault-free segment: full bandwidth forever.
    pub const NOMINAL: LinkSegment = LinkSegment {
        factor: 1.0,
        until: Nanos::MAX,
    };
}

/// A deterministic, seeded schedule of fault events.
///
/// Construct with [`FaultSchedule::none`] (identity), the
/// [`FaultSchedule::builder`] for explicit windows, or
/// [`FaultSchedule::synthetic`] for a randomized schedule parameterized
/// by an intensity knob (used by the chaos benchmarks).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    seed: u64,
    link_windows: Vec<LinkWindow>,
    pressure_windows: Vec<PressureWindow>,
    failure_rate: f64,
}

impl Default for FaultSchedule {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultSchedule {
    /// The identity schedule: no faults, ever. Consumers must behave
    /// byte-identically to a build without fault hooks when given this.
    #[must_use]
    pub fn none() -> Self {
        Self {
            seed: 0,
            link_windows: Vec::new(),
            pressure_windows: Vec::new(),
            failure_rate: 0.0,
        }
    }

    /// Starts building an explicit schedule.
    #[must_use]
    pub fn builder(seed: u64) -> FaultScheduleBuilder {
        FaultScheduleBuilder {
            schedule: FaultSchedule {
                seed,
                ..Self::none()
            },
        }
    }

    /// A randomized schedule over `[0, horizon)` whose severity scales
    /// with `intensity` in `[0, 1]`. Zero intensity yields the identity
    /// schedule; `1.0` yields heavy degradation, frequent transient
    /// failures, short full stalls, and deep memory-pressure spikes.
    #[must_use]
    pub fn synthetic(seed: u64, intensity: f64, horizon: Nanos, num_gpus: u32) -> Self {
        let intensity = intensity.clamp(0.0, 1.0);
        if intensity == 0.0 || horizon == 0 || num_gpus == 0 {
            return Self::none();
        }
        let mut rng = SplitMix64::new(seed ^ 0x5EED_FA17);
        let mut builder = Self::builder(seed);

        // Degradation windows: up to 3 per GPU, each covering a few
        // percent of the horizon, deeper at higher intensity.
        for gpu in 0..num_gpus {
            let windows = 1 + (rng.next_below(3) as f64 * intensity) as u64;
            for _ in 0..windows {
                let len = (horizon / 20).max(1) + rng.next_below((horizon / 10).max(1));
                let start = rng.next_below(horizon);
                let factor = 1.0 - intensity * (0.4 + 0.5 * rng.unit_f64());
                builder = builder.degrade_link(Some(gpu), start, start.saturating_add(len), factor);
            }
        }

        // Stalls: rarer, short, only at meaningful intensity.
        if intensity > 0.3 {
            let stalls = 1 + rng.next_below(num_gpus as u64);
            for _ in 0..stalls {
                let gpu = rng.next_below(num_gpus as u64) as u32;
                let len = (horizon / 200).max(1) + rng.next_below((horizon / 100).max(1));
                let start = rng.next_below(horizon);
                builder = builder.stall_link(Some(gpu), start, start.saturating_add(len));
            }
        }

        // Memory pressure: one or two spikes shrinking the budget.
        let spikes = 1 + rng.next_below(2);
        for _ in 0..spikes {
            let len = (horizon / 8).max(1) + rng.next_below((horizon / 8).max(1));
            let start = rng.next_below(horizon);
            let budget_factor = 1.0 - intensity * (0.2 + 0.3 * rng.unit_f64());
            builder = builder.memory_pressure(start, start.saturating_add(len), budget_factor);
        }

        builder.transient_failure_rate(0.15 * intensity).build()
    }

    /// `true` when this schedule can never inject a fault.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.link_windows.is_empty() && self.pressure_windows.is_empty() && self.failure_rate == 0.0
    }

    /// `true` when no window ever affects `gpu`'s link (transient
    /// failures are decided separately).
    #[must_use]
    pub fn link_is_clean(&self, gpu: u32) -> bool {
        !self
            .link_windows
            .iter()
            .any(|w| w.gpu.is_none() || w.gpu == Some(gpu))
    }

    /// The link condition for `gpu` at instant `at`: the product of all
    /// active windows' factors, and the next instant the answer changes.
    #[must_use]
    pub fn link_segment(&self, gpu: u32, at: Nanos) -> LinkSegment {
        let mut factor = 1.0;
        let mut until = Nanos::MAX;
        for w in &self.link_windows {
            if w.gpu.is_some() && w.gpu != Some(gpu) {
                continue;
            }
            if w.start <= at && at < w.end {
                factor *= w.factor;
                until = until.min(w.end);
            } else if w.start > at {
                until = until.min(w.start);
            }
        }
        LinkSegment { factor, until }
    }

    /// Whether attempt number `attempt` of the transfer identified by
    /// `(gpu, tag)` suffers a transient failure. Pure function of the
    /// schedule seed, so replays agree.
    #[must_use]
    pub fn fails_transfer(&self, gpu: u32, tag: u64, attempt: u32) -> bool {
        if self.failure_rate <= 0.0 {
            return false;
        }
        let mut h = SplitMix64::new(
            self.seed
                ^ 0xFA11_u64.rotate_left(32)
                ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (u64::from(gpu) << 48)
                ^ u64::from(attempt),
        );
        h.unit_f64() < self.failure_rate
    }

    /// The configured per-attempt transient failure probability.
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        self.failure_rate
    }

    /// The effective cache-budget multiplier at `at`: the most severe
    /// (smallest) factor among active pressure windows, `1.0` otherwise.
    #[must_use]
    pub fn budget_factor(&self, at: Nanos) -> f64 {
        self.pressure_windows
            .iter()
            .filter(|w| w.start <= at && at < w.end)
            .map(|w| w.budget_factor)
            .fold(1.0, f64::min)
    }

    /// All memory-pressure windows, for reporting.
    #[must_use]
    pub fn pressure_windows(&self) -> &[PressureWindow] {
        &self.pressure_windows
    }
}

/// Builder for explicit [`FaultSchedule`]s.
#[derive(Debug, Clone)]
pub struct FaultScheduleBuilder {
    schedule: FaultSchedule,
}

impl FaultScheduleBuilder {
    /// Adds a bandwidth-degradation window: during `[start, end)` the
    /// link of `gpu` (all GPUs when `None`) runs at `factor` × nominal
    /// bandwidth. `factor` is clamped to `[0, 1]`. A zero-length window
    /// (`start >= end`) covers no instant and is dropped as a no-op.
    #[must_use]
    pub fn degrade_link(mut self, gpu: Option<u32>, start: Nanos, end: Nanos, factor: f64) -> Self {
        if start >= end {
            return self;
        }
        self.schedule.link_windows.push(LinkWindow {
            gpu,
            start,
            end,
            factor: factor.clamp(0.0, 1.0),
        });
        self
    }

    /// Adds a full link stall (degradation with factor `0.0`).
    #[must_use]
    pub fn stall_link(self, gpu: Option<u32>, start: Nanos, end: Nanos) -> Self {
        self.degrade_link(gpu, start, end, 0.0)
    }

    /// Adds a memory-pressure window shrinking the effective cache
    /// budget to `budget_factor` × configured. The factor is clamped to
    /// `(0, 1]` — a zero budget would wedge the serving engine. A
    /// zero-length window (`start >= end`) covers no instant and is
    /// dropped as a no-op.
    #[must_use]
    pub fn memory_pressure(mut self, start: Nanos, end: Nanos, budget_factor: f64) -> Self {
        if start >= end {
            return self;
        }
        self.schedule.pressure_windows.push(PressureWindow {
            start,
            end,
            budget_factor: budget_factor.clamp(0.05, 1.0),
        });
        self
    }

    /// Sets the per-attempt transient transfer failure probability.
    #[must_use]
    pub fn transient_failure_rate(mut self, rate: f64) -> Self {
        self.schedule.failure_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Finalizes the schedule.
    #[must_use]
    pub fn build(self) -> FaultSchedule {
        self.schedule
    }
}

/// SplitMix64: tiny deterministic generator for schedule synthesis and
/// failure decisions. Shared with the replica-scope schedule so both
/// synthesize from the same primitive.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub(crate) fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    pub(crate) fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert_identity() {
        let s = FaultSchedule::none();
        assert!(s.is_inert());
        assert!(s.link_is_clean(0));
        assert_eq!(s.link_segment(3, 12345), LinkSegment::NOMINAL);
        assert!(!s.fails_transfer(0, 42, 0));
        assert_eq!(s.budget_factor(999), 1.0);
    }

    #[test]
    fn degradation_window_bounds_are_half_open() {
        let s = FaultSchedule::builder(1)
            .degrade_link(Some(0), 100, 200, 0.5)
            .build();
        assert_eq!(s.link_segment(0, 99).factor, 1.0);
        assert_eq!(s.link_segment(0, 99).until, 100);
        assert_eq!(s.link_segment(0, 100).factor, 0.5);
        assert_eq!(s.link_segment(0, 199).until, 200);
        assert_eq!(s.link_segment(0, 200).factor, 1.0);
        // Other GPUs are untouched.
        assert_eq!(s.link_segment(1, 150), LinkSegment::NOMINAL);
        assert!(s.link_is_clean(1));
        assert!(!s.link_is_clean(0));
    }

    #[test]
    fn overlapping_windows_compound() {
        let s = FaultSchedule::builder(1)
            .degrade_link(None, 0, 100, 0.5)
            .degrade_link(Some(2), 50, 80, 0.5)
            .build();
        assert_eq!(s.link_segment(2, 60).factor, 0.25);
        assert_eq!(s.link_segment(2, 60).until, 80);
        assert_eq!(s.link_segment(1, 60).factor, 0.5);
    }

    #[test]
    fn stall_is_zero_factor() {
        let s = FaultSchedule::builder(1)
            .stall_link(Some(0), 10, 20)
            .build();
        assert_eq!(s.link_segment(0, 15).factor, 0.0);
        assert_eq!(s.link_segment(0, 15).until, 20);
    }

    #[test]
    fn transient_failures_are_deterministic_and_rate_bounded() {
        let s = FaultSchedule::builder(7)
            .transient_failure_rate(0.3)
            .build();
        let t = FaultSchedule::builder(7)
            .transient_failure_rate(0.3)
            .build();
        let mut failures = 0u32;
        for tag in 0..2000u64 {
            let a = s.fails_transfer(1, tag, 0);
            assert_eq!(a, t.fails_transfer(1, tag, 0));
            failures += u32::from(a);
        }
        let rate = f64::from(failures) / 2000.0;
        assert!((0.2..0.4).contains(&rate), "empirical rate {rate}");
        // Different attempts of the same job get fresh coin flips.
        assert!((0..100).any(|att| !s.fails_transfer(1, 0, att)));
    }

    #[test]
    fn pressure_takes_most_severe_active_window() {
        let s = FaultSchedule::builder(1)
            .memory_pressure(0, 100, 0.8)
            .memory_pressure(50, 60, 0.5)
            .build();
        assert_eq!(s.budget_factor(10), 0.8);
        assert_eq!(s.budget_factor(55), 0.5);
        assert_eq!(s.budget_factor(100), 1.0);
        assert_eq!(s.pressure_windows().len(), 2);
    }

    #[test]
    fn zero_length_windows_are_dropped_as_no_ops() {
        // [t, t) covers no instant under half-open semantics, so the
        // builder drops such windows instead of panicking; a schedule
        // built only from them is the inert identity.
        let s = FaultSchedule::builder(1)
            .degrade_link(Some(0), 500, 500, 0.25)
            .stall_link(None, 70, 70)
            .memory_pressure(900, 900, 0.5)
            .build();
        assert!(s.is_inert());
        assert!(s.link_is_clean(0));
        assert_eq!(s.link_segment(0, 500), LinkSegment::NOMINAL);
        assert_eq!(s.budget_factor(900), 1.0);
        assert!(s.pressure_windows().is_empty());
        // Inverted bounds behave the same as empty ones.
        let inverted = FaultSchedule::builder(1)
            .degrade_link(Some(0), 200, 100, 0.25)
            .build();
        assert!(inverted.is_inert());
    }

    #[test]
    fn zero_length_window_mixed_with_real_ones_leaves_them_intact() {
        let s = FaultSchedule::builder(1)
            .degrade_link(Some(0), 300, 300, 0.5)
            .degrade_link(Some(0), 100, 200, 0.5)
            .build();
        assert!(!s.is_inert());
        assert_eq!(s.link_segment(0, 150).factor, 0.5);
        assert_eq!(s.link_segment(0, 300), LinkSegment::NOMINAL);
    }

    #[test]
    fn synthetic_zero_intensity_is_identity() {
        assert!(FaultSchedule::synthetic(9, 0.0, 1_000_000, 6).is_inert());
    }

    #[test]
    fn synthetic_is_reproducible_and_scales() {
        let a = FaultSchedule::synthetic(9, 0.7, 1_000_000_000, 4);
        let b = FaultSchedule::synthetic(9, 0.7, 1_000_000_000, 4);
        assert_eq!(a, b);
        assert!(!a.is_inert());
        assert!(a.failure_rate() > 0.0);
        let mild = FaultSchedule::synthetic(9, 0.1, 1_000_000_000, 4);
        assert!(mild.failure_rate() < a.failure_rate());
    }
}
