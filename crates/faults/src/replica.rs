//! Cluster-scope fault schedule: replica crashes, brownouts, and drains.
//!
//! The link-level [`crate::FaultSchedule`] perturbs one replica's
//! transfer fabric; this module models faults at the *fleet* level,
//! where the unit of failure is a whole serving replica. Three window
//! kinds, all half-open `[start, end)` in virtual nanoseconds:
//!
//! * **Crash windows** — the replica is gone: queued and in-flight work
//!   is lost and must be failed over; at the window's end the replica
//!   restarts (cold or donor-warmed, the consumer's choice).
//! * **Brownout windows** — the replica still serves but slowly; the
//!   `slowdown` factor (≥ 1) penalizes it in load-aware routing.
//! * **Drain windows** — planned maintenance: the replica stops
//!   accepting new requests but finishes its queue and keeps its cache,
//!   so no failover or warmup is needed at the end.
//!
//! Like [`crate::FaultSchedule`], the schedule is a pure value: seeded,
//! deterministic, and inert-by-construction when empty. Consumers must
//! behave byte-identically to a schedule-free build when given
//! [`ReplicaFaultSchedule::none`].

use crate::schedule::{Nanos, SplitMix64};

/// One crash or drain window on a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ReplicaWindow {
    /// Affected replica index.
    replica: u32,
    /// Window start (inclusive), virtual ns.
    start: Nanos,
    /// Window end (exclusive), virtual ns.
    end: Nanos,
}

/// One slow-degradation window on a replica.
#[derive(Debug, Clone, Copy, PartialEq)]
struct BrownoutWindow {
    /// Affected replica index.
    replica: u32,
    /// Window start (inclusive), virtual ns.
    start: Nanos,
    /// Window end (exclusive), virtual ns.
    end: Nanos,
    /// Service-time multiplier, ≥ 1.0 (1.0 = healthy speed).
    slowdown: f64,
}

/// What changed about a replica at a transition instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TransitionKind {
    /// The replica crashed: its queue and in-flight work are lost.
    CrashStart,
    /// The replica's crash window closed: it restarts (cold or warmed).
    Recovery,
    /// The replica entered a planned drain: unroutable, queue completes.
    DrainStart,
    /// The drain window closed: the replica accepts traffic again.
    DrainEnd,
}

/// One effective state change of one replica, derived from the window
/// set. Overlapping windows of the same kind coalesce: a transition is
/// emitted only when the replica's crashed/draining state actually
/// flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaTransition {
    /// Instant of the state change, virtual ns.
    pub at: Nanos,
    /// Which replica changed state.
    pub replica: u32,
    /// How it changed.
    pub kind: TransitionKind,
}

/// A deterministic, seeded schedule of replica-level fault events.
///
/// Construct with [`ReplicaFaultSchedule::none`] (identity), the
/// [`ReplicaFaultSchedule::builder`] for explicit windows, or
/// [`ReplicaFaultSchedule::synthetic`] for a randomized schedule
/// parameterized by an intensity knob (used by the cluster chaos
/// benchmark).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaFaultSchedule {
    seed: u64,
    crash_windows: Vec<ReplicaWindow>,
    brownout_windows: Vec<BrownoutWindow>,
    drain_windows: Vec<ReplicaWindow>,
}

impl Default for ReplicaFaultSchedule {
    fn default() -> Self {
        Self::none()
    }
}

impl ReplicaFaultSchedule {
    /// The identity schedule: no replica ever crashes, browns out, or
    /// drains. Consumers must behave byte-identically to a
    /// schedule-free build when given this.
    #[must_use]
    pub fn none() -> Self {
        Self {
            seed: 0,
            crash_windows: Vec::new(),
            brownout_windows: Vec::new(),
            drain_windows: Vec::new(),
        }
    }

    /// Starts building an explicit schedule.
    #[must_use]
    pub fn builder(seed: u64) -> ReplicaFaultScheduleBuilder {
        ReplicaFaultScheduleBuilder {
            schedule: ReplicaFaultSchedule {
                seed,
                ..Self::none()
            },
        }
    }

    /// A randomized schedule over `[0, horizon)` whose severity scales
    /// with `intensity` in `[0, 1]`. Zero intensity yields the identity
    /// schedule. Crashes and drains are only generated for fleets of at
    /// least two replicas (crashing a singleton just sheds everything,
    /// which is not an interesting chaos experiment), and at most
    /// `num_replicas - 1` distinct replicas receive crash windows so a
    /// failover target always exists.
    #[must_use]
    pub fn synthetic(seed: u64, intensity: f64, horizon: Nanos, num_replicas: u32) -> Self {
        let intensity = intensity.clamp(0.0, 1.0);
        if intensity == 0.0 || horizon == 0 || num_replicas == 0 {
            return Self::none();
        }
        let mut rng = SplitMix64::new(seed ^ 0xC1A5_7E12);
        let mut builder = Self::builder(seed);

        // Crashes: one to (num_replicas - 1), each covering a slice of
        // the horizon that deepens with intensity. Replica indices are
        // drawn from [1, num_replicas) so replica 0 always survives as
        // a failover target and donor.
        if num_replicas >= 2 {
            let max_crashes = u64::from(num_replicas) - 1;
            let crashes = 1 + (intensity * rng.next_below(max_crashes.max(1)) as f64) as u64;
            for _ in 0..crashes.min(max_crashes) {
                let replica = 1 + rng.next_below(max_crashes) as u32;
                let len = (horizon / 10).max(1)
                    + (intensity * rng.next_below((horizon / 5).max(1)) as f64) as u64;
                let start = (horizon / 10) + rng.next_below((horizon / 2).max(1));
                builder = builder.crash(replica, start, start.saturating_add(len));
            }
        }

        // Brownouts: any replica may slow down, deeper at higher
        // intensity.
        let brownouts = 1 + rng.next_below(u64::from(num_replicas));
        for _ in 0..brownouts {
            let replica = rng.next_below(u64::from(num_replicas)) as u32;
            let len = (horizon / 8).max(1) + rng.next_below((horizon / 4).max(1));
            let start = rng.next_below(horizon);
            let slowdown = 1.0 + intensity * (0.5 + 2.5 * rng.unit_f64());
            builder = builder.brownout(replica, start, start.saturating_add(len), slowdown);
        }

        // Planned drains only at meaningful intensity, again sparing
        // replica 0.
        if intensity > 0.5 && num_replicas >= 2 {
            let replica = 1 + rng.next_below(u64::from(num_replicas) - 1) as u32;
            let len = (horizon / 12).max(1) + rng.next_below((horizon / 12).max(1));
            let start = rng.next_below(horizon);
            builder = builder.drain(replica, start, start.saturating_add(len));
        }

        builder.build()
    }

    /// `true` when this schedule can never perturb a replica.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.crash_windows.is_empty()
            && self.brownout_windows.is_empty()
            && self.drain_windows.is_empty()
    }

    /// `true` when `replica` is inside a crash window at `at`.
    #[must_use]
    pub fn is_crashed(&self, replica: u32, at: Nanos) -> bool {
        self.crash_windows
            .iter()
            .any(|w| w.replica == replica && w.start <= at && at < w.end)
    }

    /// `true` when `replica` is inside a drain window at `at`.
    #[must_use]
    pub fn is_draining(&self, replica: u32, at: Nanos) -> bool {
        self.drain_windows
            .iter()
            .any(|w| w.replica == replica && w.start <= at && at < w.end)
    }

    /// `true` when `replica` must not receive new requests at `at`
    /// (crashed or draining).
    #[must_use]
    pub fn is_down(&self, replica: u32, at: Nanos) -> bool {
        self.is_crashed(replica, at) || self.is_draining(replica, at)
    }

    /// The service-time multiplier for `replica` at `at`: the product
    /// of all active brownout windows' slowdowns, `1.0` when healthy.
    #[must_use]
    pub fn slowdown(&self, replica: u32, at: Nanos) -> f64 {
        self.brownout_windows
            .iter()
            .filter(|w| w.replica == replica && w.start <= at && at < w.end)
            .map(|w| w.slowdown)
            .product()
    }

    /// All effective state changes, sorted by `(at, replica, kind)`.
    ///
    /// Overlapping or abutting windows of the same kind coalesce: a
    /// transition appears only where the replica's crashed (or
    /// draining) state actually flips, so a consumer replaying the list
    /// in order always sees alternating start/end events per replica
    /// and kind.
    #[must_use]
    pub fn transitions(&self) -> Vec<ReplicaTransition> {
        let mut instants: Vec<(u32, Nanos)> = Vec::new();
        for w in self.crash_windows.iter().chain(self.drain_windows.iter()) {
            instants.push((w.replica, w.start));
            instants.push((w.replica, w.end));
        }
        instants.sort_unstable();
        instants.dedup();

        let mut out = Vec::new();
        for (replica, at) in instants {
            // With integer nanoseconds the state "just before `at`" is
            // the state at `at - 1`; before time zero every replica is
            // healthy.
            let (was_crashed, was_draining) = if at == 0 {
                (false, false)
            } else {
                (
                    self.is_crashed(replica, at - 1),
                    self.is_draining(replica, at - 1),
                )
            };
            let crashed = self.is_crashed(replica, at);
            let draining = self.is_draining(replica, at);
            if !was_crashed && crashed {
                out.push(ReplicaTransition {
                    at,
                    replica,
                    kind: TransitionKind::CrashStart,
                });
            }
            if was_crashed && !crashed {
                out.push(ReplicaTransition {
                    at,
                    replica,
                    kind: TransitionKind::Recovery,
                });
            }
            if !was_draining && draining {
                out.push(ReplicaTransition {
                    at,
                    replica,
                    kind: TransitionKind::DrainStart,
                });
            }
            if was_draining && !draining {
                out.push(ReplicaTransition {
                    at,
                    replica,
                    kind: TransitionKind::DrainEnd,
                });
            }
        }
        out.sort_by_key(|t| (t.at, t.replica, t.kind));
        out
    }
}

/// Builder for explicit [`ReplicaFaultSchedule`]s.
#[derive(Debug, Clone)]
pub struct ReplicaFaultScheduleBuilder {
    schedule: ReplicaFaultSchedule,
}

impl ReplicaFaultScheduleBuilder {
    /// Adds a crash window: during `[start, end)` `replica` is gone and
    /// its queued/in-flight work must be failed over; at `end` it
    /// restarts. A zero-length window (`start >= end`) covers no
    /// instant and is dropped as a no-op.
    #[must_use]
    pub fn crash(mut self, replica: u32, start: Nanos, end: Nanos) -> Self {
        if start >= end {
            return self;
        }
        self.schedule.crash_windows.push(ReplicaWindow {
            replica,
            start,
            end,
        });
        self
    }

    /// Adds a brownout window: during `[start, end)` `replica` serves
    /// at `slowdown` × its nominal service time. `slowdown` is clamped
    /// to at least `1.0`; a factor of exactly `1.0` (no degradation) or
    /// a zero-length window is dropped as a no-op.
    #[must_use]
    pub fn brownout(mut self, replica: u32, start: Nanos, end: Nanos, slowdown: f64) -> Self {
        let slowdown = if slowdown.is_finite() {
            slowdown.max(1.0)
        } else {
            1.0
        };
        if start >= end || slowdown == 1.0 {
            return self;
        }
        self.schedule.brownout_windows.push(BrownoutWindow {
            replica,
            start,
            end,
            slowdown,
        });
        self
    }

    /// Adds a planned drain window: during `[start, end)` `replica`
    /// accepts no new requests but finishes its queue and keeps its
    /// cache. A zero-length window is dropped as a no-op.
    #[must_use]
    pub fn drain(mut self, replica: u32, start: Nanos, end: Nanos) -> Self {
        if start >= end {
            return self;
        }
        self.schedule.drain_windows.push(ReplicaWindow {
            replica,
            start,
            end,
        });
        self
    }

    /// Finalizes the schedule.
    #[must_use]
    pub fn build(self) -> ReplicaFaultSchedule {
        self.schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert_identity() {
        let s = ReplicaFaultSchedule::none();
        assert!(s.is_inert());
        assert!(!s.is_down(0, 12345));
        assert!(!s.is_crashed(3, 0));
        assert!(!s.is_draining(1, u64::MAX));
        assert_eq!(s.slowdown(0, 999), 1.0);
        assert!(s.transitions().is_empty());
        assert_eq!(s, ReplicaFaultSchedule::default());
    }

    #[test]
    fn crash_window_bounds_are_half_open() {
        let s = ReplicaFaultSchedule::builder(1).crash(2, 100, 200).build();
        assert!(!s.is_crashed(2, 99));
        assert!(s.is_crashed(2, 100));
        assert!(s.is_crashed(2, 199));
        assert!(!s.is_crashed(2, 200));
        assert!(s.is_down(2, 150));
        // Other replicas untouched.
        assert!(!s.is_down(1, 150));
    }

    #[test]
    fn drain_is_down_but_not_crashed() {
        let s = ReplicaFaultSchedule::builder(1).drain(0, 10, 20).build();
        assert!(s.is_down(0, 15));
        assert!(s.is_draining(0, 15));
        assert!(!s.is_crashed(0, 15));
    }

    #[test]
    fn overlapping_brownouts_compound() {
        let s = ReplicaFaultSchedule::builder(1)
            .brownout(0, 0, 100, 2.0)
            .brownout(0, 50, 80, 1.5)
            .brownout(1, 0, 100, 4.0)
            .build();
        assert_eq!(s.slowdown(0, 10), 2.0);
        assert_eq!(s.slowdown(0, 60), 3.0);
        assert_eq!(s.slowdown(0, 100), 1.0);
        assert_eq!(s.slowdown(1, 10), 4.0);
    }

    #[test]
    fn brownout_slowdown_clamps_below_one() {
        // Speedups are not a fault; sub-1 factors clamp to no-op.
        let s = ReplicaFaultSchedule::builder(1)
            .brownout(0, 0, 100, 0.5)
            .build();
        assert!(s.is_inert());
        assert_eq!(s.slowdown(0, 50), 1.0);
    }

    #[test]
    fn transitions_are_sorted_and_typed() {
        let s = ReplicaFaultSchedule::builder(1)
            .crash(1, 100, 200)
            .drain(0, 150, 250)
            .build();
        let t = s.transitions();
        assert_eq!(
            t,
            vec![
                ReplicaTransition {
                    at: 100,
                    replica: 1,
                    kind: TransitionKind::CrashStart
                },
                ReplicaTransition {
                    at: 150,
                    replica: 0,
                    kind: TransitionKind::DrainStart
                },
                ReplicaTransition {
                    at: 200,
                    replica: 1,
                    kind: TransitionKind::Recovery
                },
                ReplicaTransition {
                    at: 250,
                    replica: 0,
                    kind: TransitionKind::DrainEnd
                },
            ]
        );
    }

    #[test]
    fn overlapping_crash_windows_coalesce() {
        // [100, 200) and [150, 300) form one effective outage
        // [100, 300): exactly one CrashStart and one Recovery.
        let s = ReplicaFaultSchedule::builder(1)
            .crash(0, 100, 200)
            .crash(0, 150, 300)
            .build();
        let t = s.transitions();
        assert_eq!(
            t,
            vec![
                ReplicaTransition {
                    at: 100,
                    replica: 0,
                    kind: TransitionKind::CrashStart
                },
                ReplicaTransition {
                    at: 300,
                    replica: 0,
                    kind: TransitionKind::Recovery
                },
            ]
        );
    }

    #[test]
    fn crash_window_starting_at_zero_transitions_at_zero() {
        let s = ReplicaFaultSchedule::builder(1).crash(0, 0, 50).build();
        let t = s.transitions();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].at, 0);
        assert_eq!(t[0].kind, TransitionKind::CrashStart);
        assert_eq!(t[1].at, 50);
        assert_eq!(t[1].kind, TransitionKind::Recovery);
    }

    #[test]
    fn zero_length_windows_are_dropped_as_no_ops() {
        let s = ReplicaFaultSchedule::builder(1)
            .crash(0, 500, 500)
            .drain(1, 70, 70)
            .brownout(2, 900, 900, 3.0)
            .crash(3, 200, 100)
            .build();
        assert!(s.is_inert());
        assert!(s.transitions().is_empty());
    }

    #[test]
    fn synthetic_zero_intensity_is_identity() {
        assert!(ReplicaFaultSchedule::synthetic(9, 0.0, 1_000_000, 4).is_inert());
        assert!(ReplicaFaultSchedule::synthetic(9, 0.7, 0, 4).is_inert());
        assert!(ReplicaFaultSchedule::synthetic(9, 0.7, 1_000_000, 0).is_inert());
    }

    #[test]
    fn synthetic_is_reproducible_and_spares_replica_zero() {
        let a = ReplicaFaultSchedule::synthetic(9, 0.8, 1_000_000_000, 4);
        let b = ReplicaFaultSchedule::synthetic(9, 0.8, 1_000_000_000, 4);
        assert_eq!(a, b);
        assert!(!a.is_inert());
        // Replica 0 never crashes or drains, so a failover target and
        // warmup donor always exist.
        for t in a.transitions() {
            if matches!(
                t.kind,
                TransitionKind::CrashStart | TransitionKind::DrainStart
            ) {
                assert_ne!(t.replica, 0);
            }
        }
        // A singleton fleet gets brownouts at most — never crashes.
        let solo = ReplicaFaultSchedule::synthetic(9, 0.8, 1_000_000_000, 1);
        assert!(solo.transitions().is_empty());
    }
}
