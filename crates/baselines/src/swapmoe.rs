//! SwapMoE-style critical-expert serving (Kong et al., 2023; related
//! work §7).
//!
//! SwapMoE maintains a slowly-adapting set of *critical experts* in GPU
//! memory sized to a tunable budget, refreshed as the workload shifts,
//! rather than predicting per-iteration activations. We model it as a
//! popularity-tracked working set: an exponential moving average of expert
//! activation counts picks the top set, which is (re)staged at request
//! boundaries; within a request it does not speculate at all.

use fmoe_model::{ExpertId, ModelConfig};
use fmoe_serving::{ExpertPredictor, IterationContext, PredictorTiming, PrefetchPlan};

/// The SwapMoE stand-in predictor.
#[derive(Debug, Clone)]
pub struct SwapMoePredictor {
    num_layers: u32,
    experts_per_layer: u32,
    top_k: u32,
    /// Experts kept in the critical set, per layer.
    critical_per_layer: usize,
    /// EMA decay applied at request boundaries.
    alpha: f64,
    /// Flattened `L·J` EMA of activation mass.
    ema: Vec<f64>,
    /// Requests observed (the set only re-stages between requests).
    requests_seen: u64,
}

impl SwapMoePredictor {
    /// Creates the baseline with a critical set sized like the other
    /// baselines' per-layer prefetch width (`K + 1`).
    #[must_use]
    pub fn new(model: &ModelConfig) -> Self {
        let lj = (model.num_layers * model.experts_per_layer) as usize;
        Self {
            num_layers: model.num_layers,
            experts_per_layer: model.experts_per_layer,
            top_k: model.top_k,
            critical_per_layer: model.top_k as usize + 1,
            alpha: 0.2,
            ema: vec![0.0; lj],
            requests_seen: 0,
        }
    }

    /// Sets the critical-set width per layer (the "tunable memory budget"
    /// knob of SwapMoE).
    #[must_use]
    pub fn with_critical_per_layer(mut self, n: usize) -> Self {
        self.critical_per_layer = n.max(1);
        self
    }

    fn flat(&self, layer: u32, slot: usize) -> usize {
        (layer * self.experts_per_layer) as usize + slot
    }

    /// Current critical set: top experts per layer by EMA mass.
    fn critical_set(&self) -> Vec<PrefetchPlan> {
        let j = self.experts_per_layer as usize;
        let mut plans = Vec::new();
        for layer in 0..self.num_layers {
            let base = (layer * self.experts_per_layer) as usize;
            let row = &self.ema[base..base + j];
            let total: f64 = row.iter().sum();
            let mut ranked: Vec<(usize, f64)> = row
                .iter()
                .map(|&c| if total > 0.0 { c / total } else { 0.0 })
                .enumerate()
                .collect();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            for &(slot, p) in ranked.iter().take(self.critical_per_layer) {
                if p > 0.0 {
                    plans.push(PrefetchPlan::fetch(ExpertId::new(layer, slot as u32), p));
                }
            }
        }
        plans
    }
}

impl ExpertPredictor for SwapMoePredictor {
    fn name(&self) -> String {
        "SwapMoE".into()
    }

    fn timing(&self) -> PredictorTiming {
        // The set refresh is infrequent and off the critical path.
        PredictorTiming {
            latency_ns: 150_000,
            synchronous: false,
            blocking_prefetch: false,
            update_ns: 100_000,
        }
    }

    fn begin_iteration(&mut self, ctx: &IterationContext) -> Vec<PrefetchPlan> {
        if ctx.iteration == 0 {
            self.requests_seen += 1;
            // Re-stage the critical set at the request boundary.
            return self.critical_set();
        }
        Vec::new()
    }

    fn observe_gate(
        &mut self,
        _ctx: &IterationContext,
        layer: u32,
        distribution: &[f64],
    ) -> Vec<PrefetchPlan> {
        // Track, never speculate: top-K of the realized distribution feeds
        // the EMA that the next request's critical set is drawn from.
        let mut ranked: Vec<(usize, f64)> = distribution.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        for &(slot, _) in ranked.iter().take(self.top_k as usize) {
            let idx = self.flat(layer, slot);
            self.ema[idx] = (1.0 - self.alpha) * self.ema[idx] + self.alpha;
        }
        Vec::new()
    }

    fn end_iteration(&mut self, _ctx: &IterationContext, _realized_map: &[Vec<f64>]) {}

    fn reset(&mut self) {
        self.ema.iter_mut().for_each(|e| *e = 0.0);
        self.requests_seen = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmoe_model::gate::TokenSpan;
    use fmoe_model::{presets, RequestRouting};

    fn ctx(iteration: u64) -> IterationContext {
        IterationContext {
            element: 0,
            request_id: 1,
            iteration,
            is_prefill: iteration == 0,
            span: TokenSpan::single(4),
            embedding: vec![1.0],
            routing: RequestRouting {
                cluster: 0,
                request_seed: 0,
            },
        }
    }

    #[test]
    fn stages_nothing_before_any_history() {
        let mut p = SwapMoePredictor::new(&presets::small_test_model());
        assert!(p.begin_iteration(&ctx(0)).is_empty());
    }

    #[test]
    fn critical_set_tracks_popular_experts() {
        let m = presets::small_test_model();
        let mut p = SwapMoePredictor::new(&m);
        // Layer 2's expert 5 dominates observed traffic.
        let mut dist = vec![0.01; 8];
        dist[5] = 0.93;
        for _ in 0..10 {
            let _ = p.observe_gate(&ctx(1), 2, &dist);
        }
        let plans = p.begin_iteration(&ctx(0));
        assert!(plans
            .iter()
            .any(|pl| pl.expert.layer == 2 && pl.expert.slot == 5));
        // All plans respect the per-layer width.
        for layer in 0..m.num_layers {
            let n = plans.iter().filter(|pl| pl.expert.layer == layer).count();
            assert!(n <= p.critical_per_layer);
        }
    }

    #[test]
    fn never_speculates_mid_request() {
        let mut p = SwapMoePredictor::new(&presets::small_test_model());
        assert!(p
            .observe_gate(&ctx(1), 0, &[0.9, 0.1, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0])
            .is_empty());
        assert!(p.begin_iteration(&ctx(3)).is_empty());
    }

    #[test]
    fn reset_clears_history() {
        let mut p = SwapMoePredictor::new(&presets::small_test_model());
        let mut dist = vec![0.01; 8];
        dist[1] = 0.93;
        let _ = p.observe_gate(&ctx(1), 0, &dist);
        p.reset();
        assert!(p.begin_iteration(&ctx(0)).is_empty());
    }
}
