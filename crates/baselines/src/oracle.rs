//! Oracle reference: prefetches exactly the experts that *will* activate.
//!
//! Not a baseline from the paper — an upper bound for our harness. The
//! oracle reads the ground-truth routing identity from the iteration
//! context (which honest policies must ignore) and queries the router
//! directly for the activated slots of layer `l + d`. Any gap between the
//! oracle's hit rate and 100% is purely a *timeliness* gap (transfers not
//! finishing within `d` layers of lead time), which isolates
//! prediction-quality effects from bandwidth effects in experiments.

use fmoe_model::{ExpertId, GateSimulator};
use fmoe_serving::{ExpertPredictor, IterationContext, PredictorTiming, PrefetchPlan};

/// The cheating reference predictor.
#[derive(Debug, Clone)]
pub struct OraclePredictor {
    gate: GateSimulator,
    distance: u32,
    window: u32,
}

impl OraclePredictor {
    /// Creates an oracle around the same router the engine uses, with the
    /// same 4-layer prefetch-window depth fMoE uses by default.
    #[must_use]
    pub fn new(gate: GateSimulator, distance: u32) -> Self {
        Self {
            gate,
            distance: distance.max(1),
            window: 4,
        }
    }

    /// Overrides the prefetch-window depth.
    #[must_use]
    pub fn with_window(mut self, window: u32) -> Self {
        self.window = window.max(1);
        self
    }

    fn plans_for_layer(&self, ctx: &IterationContext, layer: u32) -> Vec<PrefetchPlan> {
        self.gate
            .activated_slots(ctx.routing, ctx.iteration, layer, ctx.span)
            .into_iter()
            .map(|slot| PrefetchPlan::fetch(ExpertId::new(layer, slot), 1.0))
            .collect()
    }
}

impl ExpertPredictor for OraclePredictor {
    fn name(&self) -> String {
        "Oracle".into()
    }

    fn timing(&self) -> PredictorTiming {
        PredictorTiming::free()
    }

    fn begin_iteration(&mut self, ctx: &IterationContext) -> Vec<PrefetchPlan> {
        let d = self.distance.min(self.gate.config().num_layers);
        (0..d).flat_map(|l| self.plans_for_layer(ctx, l)).collect()
    }

    fn observe_gate(
        &mut self,
        ctx: &IterationContext,
        layer: u32,
        _distribution: &[f64],
    ) -> Vec<PrefetchPlan> {
        let layers = self.gate.config().num_layers;
        let target = layer + self.distance;
        if target >= layers {
            return Vec::new();
        }
        let end = (target + self.window).min(layers);
        (target..end)
            .flat_map(|t| self.plans_for_layer(ctx, t))
            .collect()
    }

    fn end_iteration(&mut self, _ctx: &IterationContext, _realized_map: &[Vec<f64>]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmoe_model::gate::TokenSpan;
    use fmoe_model::{presets, GateParams, RequestRouting};

    fn gate() -> GateSimulator {
        let cfg = presets::small_test_model();
        GateSimulator::new(cfg.clone(), GateParams::for_model(&cfg))
    }

    fn ctx(iteration: u64) -> IterationContext {
        IterationContext {
            element: 0,
            request_id: 0,
            iteration,
            is_prefill: iteration == 0,
            span: TokenSpan::single(7 + iteration),
            embedding: vec![1.0],
            routing: RequestRouting {
                cluster: 3,
                request_seed: 42,
            },
        }
    }

    #[test]
    fn oracle_predicts_exactly_the_activated_experts() {
        let g = gate();
        let mut o = OraclePredictor::new(g.clone(), 2).with_window(1);
        let c = ctx(1);
        let plans = o.observe_gate(&c, 1, &[0.0; 8]);
        let truth = g.activated_slots(c.routing, c.iteration, 3, c.span);
        let planned: Vec<u32> = plans.iter().map(|p| p.expert.slot).collect();
        assert_eq!(planned, truth);
        assert!(plans
            .iter()
            .all(|p| p.expert.layer == 3 && p.probability == 1.0));
    }

    #[test]
    fn begin_iteration_covers_initial_window() {
        let g = gate();
        let mut o = OraclePredictor::new(g.clone(), 3);
        let c = ctx(0);
        let plans = o.begin_iteration(&c);
        assert!(plans.iter().all(|p| p.expert.layer < 3));
        // Perfect coverage of layer 0's activations.
        let truth = g.activated_slots(c.routing, 0, 0, c.span);
        for slot in truth {
            assert!(plans
                .iter()
                .any(|p| p.expert.layer == 0 && p.expert.slot == slot));
        }
    }

    #[test]
    fn nothing_beyond_last_layer() {
        let g = gate();
        let last = g.config().num_layers - 1;
        let mut o = OraclePredictor::new(g, 1);
        assert!(o.observe_gate(&ctx(1), last, &[0.0; 8]).is_empty());
    }
}
