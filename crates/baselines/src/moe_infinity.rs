//! MoE-Infinity-style request-level activation tracking (Xue et al.,
//! 2024).
//!
//! MoE-Infinity records an **Expert Activation Matrix** (EAM) per request:
//! the count of activations per `(layer, expert)` aggregated over *all*
//! iterations of the request. During serving it matches the in-progress
//! request's partial EAM against a collection of historical EAMs and
//! prefetches the matched matrix's hottest experts; for the initial layers
//! it falls back to global popularity. Prediction and prefetch are
//! synchronous (the paper notes forward computation cannot proceed before
//! they finish, §4.3).
//!
//! This is precisely the *coarse-grained* design the paper argues against:
//! aggregating over iterations erases the iteration-level structure
//! (Fig. 3), so the matched matrix's per-layer ranking carries little
//! signal for *this* iteration — the mechanism behind its low hit rate in
//! Fig. 9 and the "Hit count" ablation curve in Fig. 12a.

use fmoe_model::gate::TokenSpan;
use fmoe_model::{ExpertId, GateSimulator, ModelConfig, RequestRouting};
use fmoe_serving::{ExpertPredictor, IterationContext, PredictorTiming, PrefetchPlan};
use fmoe_stats::cosine_similarity;
use std::collections::BTreeMap;

/// A request to replay into the EAM collection offline (the 70% split).
#[derive(Debug, Clone, Copy)]
pub struct EamHistoryRequest {
    /// Routing identity of the historical prompt.
    pub routing: RequestRouting,
    /// Prompt length in tokens.
    pub prompt_tokens: u64,
    /// Iterations to aggregate.
    pub iterations: u64,
}

/// The request-level EAM baseline.
#[derive(Debug)]
pub struct MoeInfinityPredictor {
    num_layers: u32,
    experts_per_layer: u32,
    top_k: u32,
    distance: u32,
    /// Upcoming layers prefetched per observation: MoE-Infinity's EAM
    /// match guides prefetching across the request's remaining layers,
    /// not a single target (Xue et al. §4).
    prefetch_window: u32,
    prefetch_per_layer: usize,
    collection_capacity: usize,
    latency_ns: u64,
    /// Historical request-level matrices, flattened `L·J`, count-valued.
    collection: Vec<Vec<f64>>,
    /// Global activation counts (the "most popular experts" fallback).
    popularity: Vec<f64>,
    /// In-progress request matrices per batch element.
    current: BTreeMap<usize, Vec<f64>>,
}

impl MoeInfinityPredictor {
    /// Creates the baseline with the paper-comparable defaults: distance
    /// 3, width `K + 1`, a 1000-matrix collection.
    #[must_use]
    pub fn new(model: &ModelConfig) -> Self {
        let lj = (model.num_layers * model.experts_per_layer) as usize;
        Self {
            num_layers: model.num_layers,
            experts_per_layer: model.experts_per_layer,
            top_k: model.top_k,
            distance: 3,
            prefetch_window: 4,
            prefetch_per_layer: model.top_k as usize + 1,
            collection_capacity: 1000,
            latency_ns: 500_000, // synchronous matrix matching per layer
            collection: Vec::new(),
            popularity: vec![0.0; lj],
            current: BTreeMap::new(),
        }
    }

    /// Overrides the prefetch distance (sensitivity experiments).
    #[must_use]
    pub fn with_distance(mut self, d: u32) -> Self {
        self.distance = d.max(1);
        self
    }

    /// Overrides the prefetch-window depth.
    #[must_use]
    pub fn with_window(mut self, window: u32) -> Self {
        self.prefetch_window = window.max(1);
        self
    }

    /// Number of matrices currently in the collection.
    #[must_use]
    pub fn collection_len(&self) -> usize {
        self.collection.len()
    }

    fn lj(&self) -> usize {
        (self.num_layers * self.experts_per_layer) as usize
    }

    fn flat_index(&self, layer: u32, slot: usize) -> usize {
        (layer * self.experts_per_layer) as usize + slot
    }

    /// Adds a finished request's matrix to the collection (FIFO capped).
    fn commit_matrix(&mut self, matrix: Vec<f64>) {
        if matrix.iter().all(|&c| c == 0.0) {
            return;
        }
        for (pop, &c) in self.popularity.iter_mut().zip(&matrix) {
            *pop += c;
        }
        if self.collection.len() == self.collection_capacity {
            self.collection.remove(0);
        }
        self.collection.push(matrix);
    }

    /// Records top-K activations of one distribution into a matrix.
    fn record(&self, matrix: &mut [f64], layer: u32, distribution: &[f64]) {
        let mut ranked: Vec<(usize, f64)> = distribution.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        for &(slot, _) in ranked.iter().take(self.top_k as usize) {
            matrix[self.flat_index(layer, slot)] += 1.0;
        }
    }

    /// Top experts of `matrix` restricted to `layer`.
    fn top_of_layer(&self, matrix: &[f64], layer: u32) -> Vec<(usize, f64)> {
        let j = self.experts_per_layer as usize;
        let base = (layer * self.experts_per_layer) as usize;
        let row = &matrix[base..base + j];
        let total: f64 = row.iter().sum();
        let mut ranked: Vec<(usize, f64)> = row
            .iter()
            .map(|&c| if total > 0.0 { c / total } else { 0.0 })
            .enumerate()
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(self.prefetch_per_layer);
        ranked
    }

    /// Pre-populates the EAM collection by replaying historical requests
    /// through the router — the paper prepares MoE-Infinity's matrix
    /// collection before evaluation "for a fair comparison" (§6.1).
    pub fn populate_from_history(
        &mut self,
        gate: &GateSimulator,
        history: &[EamHistoryRequest],
        max_iterations_per_request: u64,
    ) {
        for req in history {
            let mut matrix = vec![0.0; self.lj()];
            let iters = req.iterations.min(max_iterations_per_request).max(1);
            for iter in 0..iters {
                let span = if iter == 0 {
                    TokenSpan::prefill(req.prompt_tokens)
                } else {
                    TokenSpan::single(req.prompt_tokens + iter - 1)
                };
                for layer in 0..self.num_layers {
                    let dist = gate.iteration_distribution(req.routing, iter, layer, span);
                    self.record(&mut matrix, layer, &dist);
                }
            }
            self.commit_matrix(matrix);
        }
    }
}

impl ExpertPredictor for MoeInfinityPredictor {
    fn name(&self) -> String {
        "MoE-Infinity".into()
    }

    fn timing(&self) -> PredictorTiming {
        PredictorTiming {
            latency_ns: self.latency_ns,
            synchronous: true,
            blocking_prefetch: false,
            update_ns: 200_000,
        }
    }

    fn begin_iteration(&mut self, ctx: &IterationContext) -> Vec<PrefetchPlan> {
        if ctx.iteration == 0 {
            // New request: commit the previous one on this slot.
            if let Some(prev) = self.current.remove(&ctx.element) {
                self.commit_matrix(prev);
            }
            self.current.insert(ctx.element, vec![0.0; self.lj()]);
        }
        // Initial layers: global popularity (the coarse-grained rule).
        let popularity = self.popularity.clone();
        let d = self.distance.min(self.num_layers);
        let mut plans = Vec::new();
        for layer in 0..d {
            for (slot, p) in self.top_of_layer(&popularity, layer) {
                if p > 0.0 {
                    plans.push(PrefetchPlan::fetch(ExpertId::new(layer, slot as u32), p));
                }
            }
        }
        plans
    }

    fn observe_gate(
        &mut self,
        ctx: &IterationContext,
        layer: u32,
        distribution: &[f64],
    ) -> Vec<PrefetchPlan> {
        // Aggregate into the request's partial matrix (request-level!).
        let lj = self.lj();
        let mut partial = self
            .current
            .remove(&ctx.element)
            .unwrap_or_else(|| vec![0.0; lj]);
        self.record(&mut partial, layer, distribution);
        self.current.insert(ctx.element, partial.clone());

        let target = layer + self.distance;
        if target >= self.num_layers || self.collection.is_empty() {
            return Vec::new();
        }
        // Request-level cosine match of the partial matrix.
        let mut best = (0usize, f64::NEG_INFINITY);
        for (i, m) in self.collection.iter().enumerate() {
            let s = cosine_similarity(&partial, m);
            if s > best.1 {
                best = (i, s);
            }
        }
        let matched = self.collection[best.0].clone();
        let end = (target + self.prefetch_window).min(self.num_layers);
        let mut plans = Vec::new();
        for t in target..end {
            plans.extend(
                self.top_of_layer(&matched, t)
                    .into_iter()
                    .filter(|&(_, p)| p > 0.0)
                    .map(|(slot, p)| PrefetchPlan::fetch(ExpertId::new(t, slot as u32), p)),
            );
        }
        plans
    }

    fn end_iteration(&mut self, _ctx: &IterationContext, _realized_map: &[Vec<f64>]) {}

    fn reset(&mut self) {
        self.collection.clear();
        self.current.clear();
        self.popularity = vec![0.0; self.lj()];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmoe_model::{presets, GateParams};

    fn gate() -> GateSimulator {
        let cfg = presets::small_test_model();
        GateSimulator::new(cfg.clone(), GateParams::for_model(&cfg))
    }

    fn history(cluster: u64, n: u64) -> Vec<EamHistoryRequest> {
        (0..n)
            .map(|i| EamHistoryRequest {
                routing: RequestRouting {
                    cluster,
                    request_seed: 500 + i,
                },
                prompt_tokens: 16,
                iterations: 6,
            })
            .collect()
    }

    fn ctx(iteration: u64) -> IterationContext {
        IterationContext {
            element: 0,
            request_id: 1,
            iteration,
            is_prefill: iteration == 0,
            span: TokenSpan::single(16 + iteration),
            embedding: vec![1.0],
            routing: RequestRouting {
                cluster: 1,
                request_seed: 9,
            },
        }
    }

    #[test]
    fn populate_builds_collection_and_popularity() {
        let g = gate();
        let mut p = MoeInfinityPredictor::new(g.config());
        p.populate_from_history(&g, &history(1, 5), 4);
        assert_eq!(p.collection_len(), 5);
        assert!(p.popularity.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn initial_layers_use_popularity() {
        let g = gate();
        let mut p = MoeInfinityPredictor::new(g.config());
        // Empty history: nothing to prefetch.
        assert!(p.begin_iteration(&ctx(0)).is_empty());
        p.populate_from_history(&g, &history(1, 5), 4);
        let plans = p.begin_iteration(&ctx(0));
        assert!(!plans.is_empty());
        assert!(plans.iter().all(|pl| pl.expert.layer < 3));
    }

    #[test]
    fn matching_targets_layer_plus_d() {
        let g = gate();
        let mut p = MoeInfinityPredictor::new(g.config());
        p.populate_from_history(&g, &history(1, 5), 4);
        let c = ctx(1);
        let _ = p.begin_iteration(&c);
        let dist = g.iteration_distribution(c.routing, 1, 0, c.span);
        let plans = p.observe_gate(&c, 0, &dist);
        assert!(!plans.is_empty());
        // Window of layers starting at l + d.
        assert!(plans.iter().all(|pl| (3..7).contains(&pl.expert.layer)));
        assert!(plans.iter().any(|pl| pl.expert.layer == 3));
    }

    #[test]
    fn request_matrix_commits_on_next_request() {
        let g = gate();
        let mut p = MoeInfinityPredictor::new(g.config());
        let c = ctx(0);
        let _ = p.begin_iteration(&c);
        let dist = g.iteration_distribution(c.routing, 0, 0, c.span);
        let _ = p.observe_gate(&c, 0, &dist);
        assert_eq!(p.collection_len(), 0);
        // Next request on the same element commits the matrix.
        let _ = p.begin_iteration(&ctx(0));
        assert_eq!(p.collection_len(), 1);
    }

    #[test]
    fn collection_is_capacity_bounded() {
        let g = gate();
        let mut p = MoeInfinityPredictor::new(g.config());
        p.collection_capacity = 3;
        p.populate_from_history(&g, &history(2, 10), 2);
        assert_eq!(p.collection_len(), 3);
    }

    #[test]
    fn reset_clears_state() {
        let g = gate();
        let mut p = MoeInfinityPredictor::new(g.config());
        p.populate_from_history(&g, &history(1, 3), 2);
        p.reset();
        assert_eq!(p.collection_len(), 0);
        assert_eq!(p.popularity.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn is_synchronous() {
        let p = MoeInfinityPredictor::new(gate().config());
        assert!(p.timing().synchronous);
    }
}
