//! DeepSpeed-Inference-style expert-agnostic offloading.
//!
//! DeepSpeed-Inference offloads layer-wise parameters without expert
//! awareness: no prediction, no prefetching — every non-resident expert is
//! loaded on demand when its layer needs it (§6.1 baseline 4; the paper
//! adds an expert cache to it for fairness, which our engine provides to
//! all policies).

use fmoe_serving::{ExpertPredictor, IterationContext, PredictorTiming, PrefetchPlan};

/// The expert-agnostic baseline: never predicts, never prefetches.
#[derive(Debug, Default, Clone, Copy)]
pub struct DeepSpeedPredictor;

impl DeepSpeedPredictor {
    /// Creates the predictor.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl ExpertPredictor for DeepSpeedPredictor {
    fn name(&self) -> String {
        "DeepSpeed-Inference".into()
    }

    fn timing(&self) -> PredictorTiming {
        PredictorTiming::free()
    }

    fn begin_iteration(&mut self, _ctx: &IterationContext) -> Vec<PrefetchPlan> {
        Vec::new()
    }

    fn observe_gate(
        &mut self,
        _ctx: &IterationContext,
        _layer: u32,
        _distribution: &[f64],
    ) -> Vec<PrefetchPlan> {
        Vec::new()
    }

    fn end_iteration(&mut self, _ctx: &IterationContext, _realized_map: &[Vec<f64>]) {}

    fn loads_entire_layer(&self) -> bool {
        // Layer-wise parameter offloading: expert-agnostic — the entire
        // layer's expert weights stream through GPU memory.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmoe_model::gate::TokenSpan;
    use fmoe_model::RequestRouting;

    #[test]
    fn never_plans_anything() {
        let mut p = DeepSpeedPredictor::new();
        let ctx = IterationContext {
            element: 0,
            request_id: 0,
            iteration: 0,
            is_prefill: true,
            span: TokenSpan::prefill(4),
            embedding: vec![1.0],
            routing: RequestRouting {
                cluster: 0,
                request_seed: 0,
            },
        };
        assert!(p.begin_iteration(&ctx).is_empty());
        assert!(p.observe_gate(&ctx, 3, &[0.9, 0.1]).is_empty());
        assert_eq!(p.timing(), PredictorTiming::free());
        assert_eq!(p.name(), "DeepSpeed-Inference");
    }
}
