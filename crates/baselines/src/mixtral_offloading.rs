//! Mixtral-Offloading-style speculative prefetching (Eliseev & Mazur,
//! 2023).
//!
//! The system exploits the residual stream: the gate's inputs change
//! slowly between adjacent layers, so the *current* layer's distribution
//! is a usable speculation for the *next* layer. It prefetches the top
//! speculated experts for layer `l + 1` while layer `l` executes, and its
//! cache is LRU.
//!
//! Faithfulness notes (matching §6.1/§6.2 of the paper):
//!
//! * prefetch distance is fixed at 1 — which is why its hit rate is the
//!   best of the baselines (Fig. 9) but collapses when forced to larger
//!   distances (Fig. 12a's "Speculate" curve, our `with_distance`);
//! * speculation runs *synchronously*, so its latency lands on the
//!   critical path, making its TTFT/TPOT worse than the async systems
//!   despite the hit rate.

use fmoe_model::{ExpertId, ModelConfig};
use fmoe_serving::{ExpertPredictor, IterationContext, PredictorTiming, PrefetchPlan};

/// Speculative distance-`d` prefetcher with synchronous issuance.
#[derive(Debug, Clone)]
pub struct MixtralOffloadingPredictor {
    num_layers: u32,
    distance: u32,
    prefetch_per_layer: usize,
    latency_ns: u64,
}

impl MixtralOffloadingPredictor {
    /// Creates the baseline with its native distance of 1 and a prefetch
    /// width of `K + 1`.
    #[must_use]
    pub fn new(model: &ModelConfig) -> Self {
        Self {
            num_layers: model.num_layers,
            distance: 1,
            prefetch_per_layer: model.top_k as usize + 1,
            // Synchronous speculation + LRU bookkeeping per layer, on the
            // critical path (the Python-side cache management of the
            // original implementation).
            latency_ns: 2_500_000,
        }
    }

    /// Forces a non-native speculation distance (the Fig. 12a "Speculate"
    /// ablation sweeps this).
    #[must_use]
    pub fn with_distance(mut self, d: u32) -> Self {
        self.distance = d.max(1);
        self
    }

    /// Overrides the per-layer prefetch width.
    #[must_use]
    pub fn with_prefetch_width(mut self, width: usize) -> Self {
        self.prefetch_per_layer = width.max(1);
        self
    }

    /// The speculation distance in use.
    #[must_use]
    pub fn distance(&self) -> u32 {
        self.distance
    }
}

impl ExpertPredictor for MixtralOffloadingPredictor {
    fn name(&self) -> String {
        "Mixtral-Offloading".into()
    }

    fn timing(&self) -> PredictorTiming {
        PredictorTiming {
            latency_ns: self.latency_ns,
            synchronous: true,
            blocking_prefetch: true,
            update_ns: 0,
        }
    }

    fn begin_iteration(&mut self, _ctx: &IterationContext) -> Vec<PrefetchPlan> {
        // No history, no semantic signal: nothing to go on before the
        // first gate fires.
        Vec::new()
    }

    fn observe_gate(
        &mut self,
        ctx: &IterationContext,
        layer: u32,
        distribution: &[f64],
    ) -> Vec<PrefetchPlan> {
        // Speculation exploits the residual stream of a *single* decoded
        // token; during prefill (hundreds of tokens, near-uniform
        // aggregate) the next-layer guess carries no signal and the
        // original system does not speculate there.
        if ctx.is_prefill {
            return Vec::new();
        }
        let target = layer + self.distance;
        if target >= self.num_layers {
            return Vec::new();
        }
        let mut ranked: Vec<(usize, f64)> = distribution.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked
            .into_iter()
            .take(self.prefetch_per_layer)
            .map(|(slot, p)| PrefetchPlan::fetch(ExpertId::new(target, slot as u32), p))
            .collect()
    }

    fn end_iteration(&mut self, _ctx: &IterationContext, _realized_map: &[Vec<f64>]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmoe_model::gate::TokenSpan;
    use fmoe_model::{presets, RequestRouting};

    fn ctx() -> IterationContext {
        IterationContext {
            element: 0,
            request_id: 0,
            iteration: 1,
            is_prefill: false,
            span: TokenSpan::single(5),
            embedding: vec![1.0],
            routing: RequestRouting {
                cluster: 0,
                request_seed: 0,
            },
        }
    }

    #[test]
    fn speculates_current_distribution_onto_next_layer() {
        let m = presets::small_test_model();
        let mut p = MixtralOffloadingPredictor::new(&m);
        let dist = [0.05, 0.6, 0.25, 0.04, 0.02, 0.02, 0.01, 0.01];
        let plans = p.observe_gate(&ctx(), 2, &dist);
        // top_k = 2 → width 3.
        assert_eq!(plans.len(), 3);
        assert!(plans.iter().all(|pl| pl.expert.layer == 3));
        assert_eq!(plans[0].expert.slot, 1);
        assert_eq!(plans[1].expert.slot, 2);
        assert_eq!(plans[2].expert.slot, 0);
    }

    #[test]
    fn no_speculation_past_last_layer() {
        let m = presets::small_test_model();
        let mut p = MixtralOffloadingPredictor::new(&m);
        let last = m.num_layers - 1;
        assert!(p.observe_gate(&ctx(), last, &[1.0; 8]).is_empty());
    }

    #[test]
    fn forced_distance_shifts_target() {
        let m = presets::small_test_model();
        let mut p = MixtralOffloadingPredictor::new(&m).with_distance(4);
        let plans = p.observe_gate(&ctx(), 1, &[0.5, 0.3, 0.1, 0.05, 0.03, 0.01, 0.005, 0.005]);
        assert!(plans.iter().all(|pl| pl.expert.layer == 5));
        assert_eq!(p.distance(), 4);
    }

    #[test]
    fn is_synchronous() {
        let m = presets::small_test_model();
        let p = MixtralOffloadingPredictor::new(&m);
        assert!(p.timing().synchronous);
        assert!(p.timing().latency_ns > 0);
    }

    #[test]
    fn begin_iteration_is_empty() {
        let m = presets::small_test_model();
        let mut p = MixtralOffloadingPredictor::new(&m);
        assert!(p.begin_iteration(&ctx()).is_empty());
    }
}
