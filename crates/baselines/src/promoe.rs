//! ProMoE-style proactive speculative prefetching (Song et al., 2024).
//!
//! ProMoE trains a small predictor per MoE layer that speculates the
//! experts of layer `l + d` from the hidden state at layer `l`, in a
//! sliding-window, *stride*-based schedule, issued asynchronously so the
//! forward pass never waits on prediction. Its code is closed-source; the
//! paper reproduced it "in our best effort" on MoE-Infinity, and we do the
//! same at the policy level: the learned predictor is stood in by a blend
//! of
//!
//! * **speculation** — the current layer's distribution carried forward
//!   (the signal a hidden-state predictor extracts, decaying with
//!   distance), and
//! * **per-layer recency** — an exponential moving average of each
//!   layer's recent distributions (the window the stride predictor is
//!   trained over).
//!
//! The blend puts it between Mixtral-Offloading (pure distance-1
//! speculation) and MoE-Infinity (pure aggregation), matching the paper's
//! measured ordering.

use fmoe_model::{ExpertId, ModelConfig};
use fmoe_serving::{ExpertPredictor, IterationContext, PredictorTiming, PrefetchPlan};

/// The ProMoE stand-in predictor.
#[derive(Debug, Clone)]
pub struct ProMoePredictor {
    num_layers: u32,
    experts_per_layer: u32,
    distance: u32,
    prefetch_per_layer: usize,
    /// EMA decay for the per-layer window.
    alpha: f64,
    /// Weight of speculation vs. the EMA in the blend.
    speculation_weight: f64,
    /// Per-layer EMA of recent distributions.
    ema: Vec<Vec<f64>>,
    latency_ns: u64,
}

impl ProMoePredictor {
    /// Creates the baseline with distance 3 (the paper profiles d = 3 for
    /// all prefetching systems) and width `K + 1`.
    #[must_use]
    pub fn new(model: &ModelConfig) -> Self {
        let j = model.experts_per_layer as usize;
        Self {
            num_layers: model.num_layers,
            experts_per_layer: model.experts_per_layer,
            distance: 3,
            prefetch_per_layer: model.top_k as usize + 1,
            alpha: 0.3,
            speculation_weight: 0.6,
            ema: vec![vec![1.0 / j as f64; j]; model.num_layers as usize],
            latency_ns: 250_000, // asynchronous predictor invocation
        }
    }

    /// Overrides the prefetch distance.
    #[must_use]
    pub fn with_distance(mut self, d: u32) -> Self {
        self.distance = d.max(1);
        self
    }

    fn blend(&self, current: &[f64], target_layer: u32) -> Vec<f64> {
        let ema = &self.ema[target_layer as usize];
        current
            .iter()
            .zip(ema)
            .map(|(&c, &e)| self.speculation_weight * c + (1.0 - self.speculation_weight) * e)
            .collect()
    }

    fn top_plans(&self, scores: &[f64], target_layer: u32) -> Vec<PrefetchPlan> {
        let mut ranked: Vec<(usize, f64)> = scores.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked
            .into_iter()
            .take(self.prefetch_per_layer)
            .map(|(slot, p)| PrefetchPlan::fetch(ExpertId::new(target_layer, slot as u32), p))
            .collect()
    }
}

impl ExpertPredictor for ProMoePredictor {
    fn name(&self) -> String {
        "ProMoE".into()
    }

    fn timing(&self) -> PredictorTiming {
        PredictorTiming {
            latency_ns: self.latency_ns,
            synchronous: false,
            blocking_prefetch: false,
            update_ns: 100_000,
        }
    }

    fn begin_iteration(&mut self, _ctx: &IterationContext) -> Vec<PrefetchPlan> {
        // Initial window: the per-layer EMAs are the only signal (ProMoE's
        // predictors have no hidden state before layer 0 either).
        let d = self.distance.min(self.num_layers);
        let mut plans = Vec::new();
        for layer in 0..d {
            let ema = self.ema[layer as usize].clone();
            plans.extend(self.top_plans(&ema, layer));
        }
        plans
    }

    fn observe_gate(
        &mut self,
        _ctx: &IterationContext,
        layer: u32,
        distribution: &[f64],
    ) -> Vec<PrefetchPlan> {
        // Slide the window for this layer.
        debug_assert_eq!(distribution.len(), self.experts_per_layer as usize);
        let ema = &mut self.ema[layer as usize];
        for (e, &p) in ema.iter_mut().zip(distribution) {
            *e = (1.0 - self.alpha) * *e + self.alpha * p;
        }

        let target = layer + self.distance;
        if target >= self.num_layers {
            return Vec::new();
        }
        let blended = self.blend(distribution, target);
        self.top_plans(&blended, target)
    }

    fn end_iteration(&mut self, _ctx: &IterationContext, _realized_map: &[Vec<f64>]) {}

    fn reset(&mut self) {
        let j = self.experts_per_layer as usize;
        self.ema = vec![vec![1.0 / j as f64; j]; self.num_layers as usize];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmoe_model::gate::TokenSpan;
    use fmoe_model::{presets, RequestRouting};

    fn ctx() -> IterationContext {
        IterationContext {
            element: 0,
            request_id: 0,
            iteration: 1,
            is_prefill: false,
            span: TokenSpan::single(3),
            embedding: vec![1.0],
            routing: RequestRouting {
                cluster: 0,
                request_seed: 0,
            },
        }
    }

    #[test]
    fn targets_layer_plus_d() {
        let m = presets::small_test_model();
        let mut p = ProMoePredictor::new(&m);
        let dist = [0.5, 0.2, 0.1, 0.05, 0.05, 0.05, 0.03, 0.02];
        let plans = p.observe_gate(&ctx(), 1, &dist);
        assert!(!plans.is_empty());
        assert!(plans.iter().all(|pl| pl.expert.layer == 4));
        assert!(p.observe_gate(&ctx(), m.num_layers - 1, &dist).is_empty());
    }

    #[test]
    fn ema_learns_recent_activity() {
        let m = presets::small_test_model();
        let mut p = ProMoePredictor::new(&m);
        // Hammer layer 4 with a slot-6-dominant distribution.
        let mut dist = vec![0.01; 8];
        dist[6] = 0.93;
        for _ in 0..20 {
            let _ = p.observe_gate(&ctx(), 4, &dist);
        }
        // Now speculate from a flat distribution at layer 1 targeting
        // layer 4: the EMA share should push slot 6 into the plans.
        let flat = vec![0.125; 8];
        let plans = p.observe_gate(&ctx(), 1, &flat);
        assert!(plans.iter().any(|pl| pl.expert.slot == 6));
    }

    #[test]
    fn begin_iteration_covers_initial_window() {
        let m = presets::small_test_model();
        let mut p = ProMoePredictor::new(&m).with_distance(2);
        let plans = p.begin_iteration(&ctx());
        assert!(!plans.is_empty());
        assert!(plans.iter().all(|pl| pl.expert.layer < 2));
    }

    #[test]
    fn is_asynchronous() {
        let p = ProMoePredictor::new(&presets::small_test_model());
        assert!(!p.timing().synchronous);
    }

    #[test]
    fn reset_restores_uniform_ema() {
        let m = presets::small_test_model();
        let mut p = ProMoePredictor::new(&m);
        let mut dist = vec![0.0; 8];
        dist[0] = 1.0;
        let _ = p.observe_gate(&ctx(), 0, &dist);
        p.reset();
        assert!(p.ema[0].iter().all(|&e| (e - 0.125).abs() < 1e-12));
    }
}
