//! Policy-level reimplementations of the paper's four baselines plus two
//! reference points, all running on the same `fmoe-serving` engine —
//! mirroring the paper, which ported every baseline onto the MoE-Infinity
//! codebase for fairness (§6.1).
//!
//! | Baseline | Prediction | Prefetch | Cache | Sync? |
//! |---|---|---|---|---|
//! | [`DeepSpeedPredictor`] | none (expert-agnostic) | none | any | — |
//! | [`MixtralOffloadingPredictor`] | distance-1 speculation from the current gate | next layer | LRU | yes |
//! | [`ProMoePredictor`] | sliding-window stride predictor (learned-predictor stand-in) | distance `d` | LFU | no |
//! | [`MoeInfinityPredictor`] | request-level Expert Activation Matrix matching | upcoming layers | LFU | yes |
//! | [`SwapMoePredictor`] | slow-adapting critical-expert set (related work) | request boundary | LFU | no |
//! | [`OraclePredictor`] | ground truth (cheats via the router) | distance `d` | any | no |
//! | No-offload | — | — | everything preloaded | — |
//!
//! No-offload is not a predictor: configure the engine with
//! `EngineConfig { preload_all: true, .. }` and a budget that fits the
//! model.
//!
//! ```
//! use fmoe_baselines::MixtralOffloadingPredictor;
//! use fmoe_model::presets;
//! use fmoe_serving::ExpertPredictor;
//!
//! let baseline = MixtralOffloadingPredictor::new(&presets::mixtral_8x7b());
//! // Its design signature: synchronous, blocking speculative loads.
//! let timing = baseline.timing();
//! assert!(timing.synchronous);
//! assert!(timing.blocking_prefetch);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deepspeed;
pub mod mixtral_offloading;
pub mod moe_infinity;
pub mod oracle;
pub mod promoe;
pub mod swapmoe;

pub use deepspeed::DeepSpeedPredictor;
pub use mixtral_offloading::MixtralOffloadingPredictor;
pub use moe_infinity::MoeInfinityPredictor;
pub use oracle::OraclePredictor;
pub use promoe::ProMoePredictor;
pub use swapmoe::SwapMoePredictor;
