//! Byte-budgeted multi-GPU expert cache for MoE offloading.
//!
//! Experts have a fixed *home GPU* (the paper's round-robin expert-parallel
//! placement, §5) and can only be resident there. The cache enforces a
//! per-GPU byte budget; when an insert would exceed it, a pluggable
//! [`policy::EvictionPolicy`] picks victims:
//!
//! * [`policy::LruPolicy`] — least-recently-used, as in Mixtral-Offloading.
//! * [`policy::LfuPolicy`] — least-frequently-used, as in MoE-Infinity.
//! * [`policy::FmoePriorityPolicy`] — fMoE's joint priority
//!   `PRI^evict = 1 / (p · freq)` (paper §4.5): evict the expert with the
//!   smallest product of searched-map probability and cache visit
//!   frequency.
//! * [`policy::SievePolicy`] — SIEVE (NSDI '24): a lazy-promotion hand
//!   sweep where a hit is a single visited-bit flip, no list surgery.
//! * [`policy::FifoPolicy`] — strict insertion-order eviction, the
//!   scan-resistance baseline SIEVE is measured against.
//!
//! The residency core is an arena-allocated intrusive list
//! ([`arena::LinkArena`]: `Vec<Option<Node>>` + `u32` indices, no
//! unsafe), and [`sharded::ShardedExpertCache`] layers an N-way
//! shard-by-expert concurrent cache on top for multi-replica hosts.
//!
//! The cache is a pure bookkeeping structure: it knows nothing about
//! virtual time beyond the monotone counter callers pass for recency, and
//! nothing about transfers — the serving engine coordinates both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod cache;
pub mod policy;
pub mod sharded;
pub mod stats;

pub use cache::{ExpertCache, InsertOutcome, Placement};
pub use policy::{
    EvictionPolicy, FifoPolicy, FmoePriorityPolicy, LfuPolicy, LruPolicy, PolicyKind, SievePolicy,
};
pub use sharded::{ShardOccupancy, ShardedExpertCache};
pub use stats::CacheStats;

#[cfg(test)]
mod proptests;
