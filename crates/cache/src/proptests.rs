//! Property-based tests for the expert cache: budget, residency, and
//! policy invariants under arbitrary operation sequences.

#![cfg(test)]

use crate::cache::{ExpertCache, InsertOutcome};
use crate::policy::{
    EvictionPolicy, FifoPolicy, FmoePriorityPolicy, LfuPolicy, LruPolicy, SievePolicy,
};
use fmoe_model::{presets, ExpertId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u8),
    Access(u8),
    Remove(u8),
    Pin(u8),
    UnpinAll,
    UpdateProbability(u8, f64),
    IterationBoundary,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16).prop_map(Op::Insert),
        (0u8..16).prop_map(Op::Access),
        (0u8..16).prop_map(Op::Remove),
        (0u8..16).prop_map(Op::Pin),
        Just(Op::UnpinAll),
        ((0u8..16), 0.0f64..1.0).prop_map(|(e, p)| Op::UpdateProbability(e, p)),
        Just(Op::IterationBoundary),
    ]
}

fn policies() -> Vec<Box<dyn EvictionPolicy>> {
    vec![
        Box::new(LruPolicy::new()),
        Box::new(LfuPolicy::new()),
        Box::new(LfuPolicy::coarse()),
        Box::new(FmoePriorityPolicy::new()),
        Box::new(SievePolicy::new()),
        Box::new(FifoPolicy::new()),
    ]
}

fn expert(i: u8) -> ExpertId {
    // Tiny model: 4 layers x 4 experts = 16 experts.
    ExpertId::from_dense_index(usize::from(i) % 16, 4)
}

proptest! {
    /// Core safety property: whatever the operation sequence and policy,
    /// per-GPU usage never exceeds the budget and byte accounting stays
    /// consistent with the resident set.
    #[test]
    fn budget_is_never_exceeded(
        ops in prop::collection::vec(op_strategy(), 1..200),
        slots in 1u64..8,
        gpus in 1u32..4,
        policy_idx in 0usize..6,
    ) {
        let cfg = presets::tiny_test_model();
        let budget = cfg.expert_bytes() * slots * u64::from(gpus);
        let policy = policies().swap_remove(policy_idx);
        let mut cache = ExpertCache::new(&cfg, budget, gpus, policy);
        let mut clock = 0u64;
        for op in ops {
            clock += 1;
            match op {
                Op::Insert(i) => {
                    let _ = cache.insert(expert(i), clock);
                }
                Op::Access(i) => {
                    let _ = cache.record_access(expert(i), clock);
                }
                Op::Remove(i) => {
                    let _ = cache.remove(expert(i));
                }
                Op::Pin(i) => {
                    let _ = cache.pin(expert(i));
                }
                Op::UnpinAll => cache.unpin_all(),
                Op::UpdateProbability(i, p) => cache.update_probability(expert(i), p),
                Op::IterationBoundary => cache.notify_iteration_boundary(),
            }
            for g in 0..gpus {
                prop_assert!(cache.used_bytes(g) <= cache.per_gpu_budget());
            }
            // Byte accounting equals resident count times expert size.
            prop_assert_eq!(
                cache.total_used_bytes(),
                cache.resident_count() as u64 * cache.expert_bytes()
            );
        }
    }

    /// An insert either leaves the expert resident or reports rejection —
    /// never a silent failure.
    #[test]
    fn insert_outcome_matches_residency(
        preload in prop::collection::vec(0u8..16, 0..12),
        target in 0u8..16,
        policy_idx in 0usize..6,
    ) {
        let cfg = presets::tiny_test_model();
        let budget = cfg.expert_bytes() * 4;
        let policy = policies().swap_remove(policy_idx);
        let mut cache = ExpertCache::new(&cfg, budget, 1, policy);
        for (t, &i) in preload.iter().enumerate() {
            let _ = cache.insert(expert(i), t as u64);
        }
        let outcome = cache.insert(expert(target), 999);
        match outcome {
            InsertOutcome::Inserted { .. } | InsertOutcome::AlreadyResident => {
                prop_assert!(cache.contains(expert(target)));
            }
            InsertOutcome::Rejected => {
                prop_assert!(!cache.contains(expert(target)));
            }
        }
    }

    /// Evicted experts reported by an insert are really gone, and the
    /// newly inserted expert never appears in its own eviction list.
    #[test]
    fn eviction_reports_are_accurate(
        preload in prop::collection::vec(0u8..16, 4..16),
        target in 0u8..16,
    ) {
        let cfg = presets::tiny_test_model();
        let budget = cfg.expert_bytes() * 3;
        let mut cache = ExpertCache::new(&cfg, budget, 1, Box::new(LruPolicy::new()));
        for (t, &i) in preload.iter().enumerate() {
            let _ = cache.insert(expert(i), t as u64);
        }
        if let InsertOutcome::Inserted { evicted } = cache.insert(expert(target), 999) {
            for e in &evicted {
                prop_assert!(!cache.contains(*e));
                prop_assert_ne!(*e, expert(target));
            }
        }
    }

    /// Pinned experts survive arbitrary insertion pressure.
    #[test]
    fn pinned_experts_are_never_evicted(
        pressure in prop::collection::vec(0u8..16, 1..64),
        pinned in 0u8..16,
    ) {
        let cfg = presets::tiny_test_model();
        let budget = cfg.expert_bytes() * 2;
        let mut cache = ExpertCache::new(&cfg, budget, 1, Box::new(LruPolicy::new()));
        let inserted =
            matches!(cache.insert(expert(pinned), 0), InsertOutcome::Inserted { .. });
        prop_assert!(inserted);
        prop_assert!(cache.pin(expert(pinned)));
        for (t, &i) in pressure.iter().enumerate() {
            let _ = cache.insert(expert(i), 1 + t as u64);
            prop_assert!(cache.contains(expert(pinned)));
        }
    }

    /// Policies always pick a victim from the candidate list.
    #[test]
    fn victims_come_from_candidates(
        candidates in prop::collection::vec(0u8..16, 1..16),
        hits in prop::collection::vec((0u8..16, 1u64..100), 0..32),
        policy_idx in 0usize..6,
    ) {
        let mut policy = policies().swap_remove(policy_idx);
        let unique: Vec<ExpertId> = {
            let mut v: Vec<ExpertId> = candidates.iter().map(|&i| expert(i)).collect();
            v.sort();
            v.dedup();
            v
        };
        for (t, &e) in unique.iter().enumerate() {
            policy.on_insert(e, t as u64);
        }
        for &(i, t) in &hits {
            policy.on_hit(expert(i), 100 + t);
        }
        let victim = policy.choose_victim(&unique);
        prop_assert!(victim.is_some());
        prop_assert!(unique.contains(&victim.unwrap()));
    }

    /// FIFO's whole contract: the eviction sequence is the insertion
    /// sequence, no matter how many hits land in between.
    #[test]
    fn fifo_evicts_in_insertion_order_regardless_of_hits(
        inserts in prop::collection::vec(0u8..16, 1..16),
        hits in prop::collection::vec((0u8..16, 1u64..100), 0..48),
    ) {
        let mut policy = FifoPolicy::new();
        let mut order: Vec<ExpertId> = Vec::new();
        for (t, &i) in inserts.iter().enumerate() {
            let e = expert(i);
            if !order.contains(&e) {
                policy.on_insert(e, t as u64);
                order.push(e);
            }
        }
        for &(i, t) in &hits {
            policy.on_hit(expert(i), 100 + t);
        }
        let mut remaining = order.clone();
        let mut evicted = Vec::new();
        while !remaining.is_empty() {
            let mut candidates = remaining.clone();
            candidates.sort();
            let victim = policy.choose_victim_mut(&candidates).unwrap();
            policy.on_remove(victim);
            remaining.retain(|&e| e != victim);
            evicted.push(victim);
        }
        prop_assert_eq!(evicted, order);
    }

    /// SIEVE's read-only preview (`choose_victim`) must name the same
    /// victim its mutating scan (`choose_victim_mut`) then takes, for
    /// any insert/hit history — the cache core relies on the preview
    /// for introspection without perturbing hand state.
    #[test]
    fn sieve_preview_agrees_with_scan_for_any_history(
        inserts in prop::collection::vec(0u8..16, 1..16),
        hits in prop::collection::vec((0u8..16, 1u64..100), 0..48),
        evictions in 1usize..8,
    ) {
        let mut policy = SievePolicy::new();
        let mut resident: Vec<ExpertId> = Vec::new();
        for (t, &i) in inserts.iter().enumerate() {
            let e = expert(i);
            if !resident.contains(&e) {
                policy.on_insert(e, t as u64);
                resident.push(e);
            }
        }
        for &(i, t) in &hits {
            policy.on_hit(expert(i), 100 + t);
        }
        for _ in 0..evictions.min(resident.len().saturating_sub(1)) {
            let mut candidates = resident.clone();
            candidates.sort();
            let preview = policy.choose_victim(&candidates);
            let victim = policy.choose_victim_mut(&candidates);
            prop_assert_eq!(preview, victim);
            let victim = victim.unwrap();
            policy.on_remove(victim);
            resident.retain(|&e| e != victim);
        }
    }
}
