//! Arena-allocated intrusive doubly-linked list.
//!
//! The cache core and the queue-ordered eviction policies (FIFO, SIEVE)
//! need a recency/insertion-ordered list whose nodes never move and can
//! be unlinked in O(1) — without per-node heap allocation, without
//! `unsafe`, and without pointer-chasing through `Box`es. The classic
//! answer (ported from SIEVE-style cache implementations, e.g. the
//! colander NSDI '24 artifact) is an **index arena**: nodes live in a
//! `Vec<Option<Node<T>>>`, links are `u32` slot indices, and freed slots
//! go on a free list for reuse, so a long-running cache never grows its
//! backing storage past its high-water mark.
//!
//! Orientation: the list runs **head (newest) → tail (oldest)**. New
//! nodes are pushed at the head; FIFO scans start at the tail; SIEVE's
//! hand walks tail → head, wrapping back to the tail.
//!
//! There is no panicking index math in the public surface: every
//! accessor returns `Option`, and a stale index simply yields `None`.

use std::fmt::Debug;

/// Sentinel index meaning "no node".
pub const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node<T> {
    value: T,
    /// Neighbor toward the head (newer side); `NIL` at the head.
    newer: u32,
    /// Neighbor toward the tail (older side); `NIL` at the tail.
    older: u32,
}

/// An arena-backed intrusive doubly-linked list over values of type `T`.
///
/// ```
/// use fmoe_cache::arena::{LinkArena, NIL};
///
/// let mut list: LinkArena<&'static str> = LinkArena::new();
/// let a = list.push_head("a");
/// let b = list.push_head("b");
/// assert_eq!(list.tail(), a);
/// assert_eq!(list.head(), b);
/// assert_eq!(list.remove(a), Some("a"));
/// assert_eq!(list.tail(), b);
/// // The freed slot is recycled by the next push.
/// assert_eq!(list.push_head("c"), a);
/// assert_eq!(list.len(), 2);
/// assert_ne!(list.head(), NIL);
/// ```
#[derive(Debug, Clone)]
pub struct LinkArena<T> {
    nodes: Vec<Option<Node<T>>>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: u32,
}

impl<T> Default for LinkArena<T> {
    // Manual impl: the derive would demand `T: Default`, which the
    // empty list does not need.
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LinkArena<T> {
    /// An empty list.
    #[must_use]
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// An empty list with room for `capacity` nodes before reallocating.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(capacity),
            ..Self::new()
        }
    }

    /// Number of linked nodes.
    #[must_use]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether no node is linked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The newest node's index, or [`NIL`] when empty.
    #[must_use]
    pub fn head(&self) -> u32 {
        self.head
    }

    /// The oldest node's index, or [`NIL`] when empty.
    #[must_use]
    pub fn tail(&self) -> u32 {
        self.tail
    }

    /// Pushes `value` at the head (newest end), returning its index.
    /// Freed slots are reused before the backing vec grows.
    pub fn push_head(&mut self, value: T) -> u32 {
        let node = Node {
            value,
            newer: NIL,
            older: self.head,
        };
        let idx = match self.free.pop() {
            Some(slot) => {
                if let Some(entry) = self.nodes.get_mut(slot as usize) {
                    *entry = Some(node);
                }
                slot
            }
            None => {
                let slot = self.nodes.len() as u32;
                self.nodes.push(Some(node));
                slot
            }
        };
        if let Some(Some(old_head)) = self.nodes.get_mut(self.head as usize) {
            old_head.newer = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
        self.len += 1;
        idx
    }

    /// The value at `idx`, if the slot holds a live node.
    #[must_use]
    pub fn get(&self, idx: u32) -> Option<&T> {
        self.nodes
            .get(idx as usize)
            .and_then(|n| n.as_ref())
            .map(|n| &n.value)
    }

    /// Mutable access to the value at `idx`.
    pub fn get_mut(&mut self, idx: u32) -> Option<&mut T> {
        self.nodes
            .get_mut(idx as usize)
            .and_then(|n| n.as_mut())
            .map(|n| &mut n.value)
    }

    /// The neighbor of `idx` toward the head (newer side), [`NIL`] at
    /// the head or for a dead index.
    #[must_use]
    pub fn newer(&self, idx: u32) -> u32 {
        self.nodes
            .get(idx as usize)
            .and_then(|n| n.as_ref())
            .map_or(NIL, |n| n.newer)
    }

    /// The neighbor of `idx` toward the tail (older side), [`NIL`] at
    /// the tail or for a dead index.
    #[must_use]
    pub fn older(&self, idx: u32) -> u32 {
        self.nodes
            .get(idx as usize)
            .and_then(|n| n.as_ref())
            .map_or(NIL, |n| n.older)
    }

    /// Unlinks and frees the node at `idx`, returning its value, or
    /// `None` if the slot is already dead.
    pub fn remove(&mut self, idx: u32) -> Option<T> {
        let node = self.nodes.get_mut(idx as usize).and_then(Option::take)?;
        if let Some(Some(n)) = self.nodes.get_mut(node.newer as usize) {
            n.older = node.older;
        }
        if let Some(Some(n)) = self.nodes.get_mut(node.older as usize) {
            n.newer = node.newer;
        }
        if self.head == idx {
            self.head = node.older;
        }
        if self.tail == idx {
            self.tail = node.newer;
        }
        self.free.push(idx);
        self.len -= 1;
        Some(node.value)
    }

    /// Unlinks `idx` and relinks it at the head (LRU-style
    /// move-to-front). No-op for a dead index or the current head.
    pub fn move_to_head(&mut self, idx: u32) {
        if idx == self.head {
            return;
        }
        if let Some(value) = self.remove(idx) {
            // Reuse pushes onto the free list we just extended, so the
            // node keeps its slot index and outstanding indices held by
            // the caller for *other* nodes stay valid.
            let new_idx = self.push_head(value);
            debug_assert_eq!(new_idx, idx);
        }
    }

    /// Applies `f` to every live value, in slot order (not list order).
    /// For order-insensitive bulk updates — e.g. clearing every
    /// resident's pin — without allocating an index list first.
    pub fn for_each_value_mut(&mut self, mut f: impl FnMut(&mut T)) {
        for node in self.nodes.iter_mut().flatten() {
            f(&mut node.value);
        }
    }

    /// Iterates values from the tail (oldest) toward the head (newest).
    pub fn iter_oldest_first(&self) -> OldestFirst<'_, T> {
        OldestFirst {
            arena: self,
            cur: self.tail,
        }
    }

    /// Drops every node and recycles all slots.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.len = 0;
    }
}

/// Iterator returned by [`LinkArena::iter_oldest_first`].
#[derive(Debug)]
pub struct OldestFirst<'a, T> {
    arena: &'a LinkArena<T>,
    cur: u32,
}

impl<'a, T> Iterator for OldestFirst<'a, T> {
    type Item = (u32, &'a T);

    fn next(&mut self) -> Option<Self::Item> {
        let idx = self.cur;
        let value = self.arena.get(idx)?;
        self.cur = self.arena.newer(idx);
        Some((idx, value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(list: &LinkArena<u32>) -> Vec<u32> {
        list.iter_oldest_first().map(|(_, &v)| v).collect()
    }

    #[test]
    fn push_and_order() {
        let mut l = LinkArena::new();
        for v in 0..4 {
            l.push_head(v);
        }
        assert_eq!(collect(&l), vec![0, 1, 2, 3]);
        assert_eq!(l.len(), 4);
        assert_eq!(l.get(l.tail()), Some(&0));
        assert_eq!(l.get(l.head()), Some(&3));
    }

    #[test]
    fn remove_middle_head_tail() {
        let mut l = LinkArena::new();
        let idx: Vec<u32> = (0..5).map(|v| l.push_head(v)).collect();
        assert_eq!(l.remove(idx[2]), Some(2));
        assert_eq!(collect(&l), vec![0, 1, 3, 4]);
        assert_eq!(l.remove(idx[0]), Some(0)); // tail
        assert_eq!(collect(&l), vec![1, 3, 4]);
        assert_eq!(l.remove(idx[4]), Some(4)); // head
        assert_eq!(collect(&l), vec![1, 3]);
        assert_eq!(l.len(), 2);
        // Double-remove is a no-op.
        assert_eq!(l.remove(idx[4]), None);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn slots_are_recycled_not_grown() {
        let mut l = LinkArena::new();
        let idx: Vec<u32> = (0..8).map(|v| l.push_head(v)).collect();
        for &i in &idx {
            l.remove(i);
        }
        for v in 0..8 {
            l.push_head(100 + v);
        }
        assert_eq!(l.nodes.len(), 8, "high-water mark, no growth");
        assert_eq!(l.len(), 8);
    }

    #[test]
    fn move_to_head_keeps_slot_index() {
        let mut l = LinkArena::new();
        let a = l.push_head(0);
        let _b = l.push_head(1);
        let c = l.push_head(2);
        l.move_to_head(a);
        assert_eq!(collect(&l), vec![1, 2, 0]);
        assert_eq!(l.get(a), Some(&0), "index survives the move");
        l.move_to_head(c); // head already? no: head is now a
        assert_eq!(collect(&l), vec![1, 0, 2]);
        l.move_to_head(c); // now a no-op
        assert_eq!(collect(&l), vec![1, 0, 2]);
    }

    #[test]
    fn dead_and_out_of_range_indices_are_safe() {
        let mut l: LinkArena<u32> = LinkArena::new();
        assert_eq!(l.get(0), None);
        assert_eq!(l.get(NIL), None);
        assert_eq!(l.newer(7), NIL);
        assert_eq!(l.older(NIL), NIL);
        assert_eq!(l.remove(3), None);
        l.move_to_head(9); // no-op
        assert!(l.is_empty());
    }

    #[test]
    fn clear_resets_everything() {
        let mut l = LinkArena::new();
        for v in 0..3 {
            l.push_head(v);
        }
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.head(), NIL);
        assert_eq!(l.tail(), NIL);
        assert_eq!(collect(&l), Vec::<u32>::new());
    }
}
